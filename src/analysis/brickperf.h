// brickperf: static performance-portability analysis of vector-IR kernels.
//
// brickcheck (brickcheck.h) proves a kernel is *correct* for a launch;
// brickperf predicts how it will *perform* -- before anything executes.  It
// reuses the same symbolic affine-address framework: every address in the IR
// is affine in the block coordinates, so per-warp transaction counts, sector
// phases, reuse opportunities and footprints are all derivable in closed
// form from one pass over the program.
//
// Five diagnostic families, one per portability hazard from the paper:
//  * coalesce    -- per-warp L1 transaction count vs the ideal for the
//                   architecture's sector size; unaligned vectorised array
//                   refs cost extra sectors per access (and on lowerings
//                   with bypass_l2_unaligned_vloads, DRAM traffic -- the
//                   paper's Figure 6 `array codegen` blow-up).
//  * spill      -- register pressure: spill slots allocated against the
//                   platform's register budget, with the scratch traffic
//                   they imply per block.
//  * vecwidth   -- program vector width vs the architecture's native SIMD
//                   width (idle lanes or multi-pass execution).
//  * reuse      -- the same affine address loaded twice with no intervening
//                   store to that grid: a missed register-reuse opportunity
//                   (naive lowerings reload every stencil tap).
//  * predication -- corner blocks only partially covered by the domain
//                   (tile does not divide the domain): predicated-off lanes
//                   still occupy issue slots.
//
// Alongside the diagnostics, analyze() produces a static cost estimate
// (PerfEstimate): exact per-launch L1 sector traffic whenever the sector
// phase is block-invariant (true for every paper configuration), a modelled
// HBM byte count (compulsory footprint + capacity re-fetch + page-locality
// overhead + RMW fills), and a bandwidth-bound time estimate.  The
// `bricksim lint` experiment joins these against the simulator's measured
// counters per configuration and fails on drift outside DriftTolerance --
// the static model and the simulator cross-validate each other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/brickcheck.h"
#include "arch/arch.h"
#include "common/types.h"
#include "ir/program.h"

namespace bricksim::analysis {

/// Performance-hazard family a diagnostic belongs to.
enum class PerfCheck : std::uint8_t {
  Coalesce,
  Spill,
  VecWidth,
  Reuse,
  Predication,
};
inline constexpr int kNumPerfChecks = 5;

const char* perf_check_name(PerfCheck c);

/// One finding: which hazard, where, and why.  All perf diagnostics are
/// warnings (a slow kernel is legal); `ok()` on the report stays true so a
/// clean-but-naive catalog never fails enforcement.
struct PerfDiag {
  PerfCheck check = PerfCheck::Coalesce;
  Severity severity = Severity::Warning;
  int inst = -1;  ///< instruction index in the program; -1 = program-level
  std::string message;

  /// Stable one-line rendering: "warning[coalesce] inst 12: <message>".
  std::string to_string() const;
};

/// Launch attributes the static cost model consumes, mirroring the fields
/// model::Launcher sets on simt::Kernel (minus data) plus the interior
/// domain.  Buildable from a Platform + lowering result without executing.
struct KernelAttrs {
  Vec3 domain{};            ///< interior extents; {0,0,0} => blocks * tile
  int read_streams = 1;
  double bw_derate = 1.0;
  bool streaming_stores = true;       ///< false => stores RMW-fill from HBM
  bool bypass_l2_unaligned_vloads = false;  ///< MI250X/HIP lowering quirk
  int regs_used = 0;        ///< registers per lane after allocation
  int reg_budget = 0;       ///< platform register budget per lane
};

/// Static per-launch cost estimate.
struct PerfEstimate {
  /// Register-file<->L1 sector traffic over the whole launch, matching
  /// memsim's l1_total() accounting (loads + stores + spill scratch).
  double l1_bytes = 0;
  /// True when every access's sector phase is block-invariant (all block
  /// strides are sector-multiples): l1_bytes is then EXACT, not a model.
  bool exact_sectors = false;
  std::uint64_t transactions_per_block = 0;  ///< L1 sector transactions
  double spill_bytes = 0;   ///< scratch portion of l1_bytes

  /// Modelled HBM bytes: compulsory footprints + capacity re-fetch +
  /// page-locality overhead + RMW fills + L2-bypass traffic.
  double hbm_bytes = 0;
  /// Bandwidth-bound time estimate: hbm_bytes over the achieved-bandwidth
  /// model (mirrors the simulator's t_hbm term).
  double est_seconds = 0;

  std::uint64_t flops = 0;  ///< whole-launch FLOPs
  int spill_slots = 0;      ///< exact (from the program)
};

/// Aggregate pass statistics (accumulable across configurations).  Counts
/// include diagnostics suppressed by the per-family cap.
struct PerfStats {
  long programs = 0;
  long insts = 0;
  long warnings = 0;
  long errors = 0;
  long by_check[kNumPerfChecks] = {0, 0, 0, 0, 0};

  PerfStats& operator+=(const PerfStats& o);
};

/// Result of one brickperf run.  At most kMaxDiagsPerCheck diagnostics are
/// materialised per family (naive lowerings reload hundreds of taps); the
/// full counts are always in stats.by_check, and a summary diagnostic
/// reports the suppression.
struct PerfReport {
  std::vector<PerfDiag> diags;
  PerfStats stats;
  PerfEstimate est;

  bool ok() const { return stats.errors == 0; }
  bool clean() const { return diags.empty(); }
  /// All diagnostics, one per line (empty string when clean).
  std::string to_string() const;
};

inline constexpr int kMaxDiagsPerCheck = 8;

/// Statically analyses `prog` against a launch geometry and architecture:
/// derives per-warp transaction counts, register pressure, vector-width
/// match, missed reuse and predication overhead, plus the PerfEstimate.
/// Purely symbolic -- nothing is executed.
PerfReport analyze(const ir::Program& prog, const LaunchGeom& geom,
                   const arch::GpuArch& arch, const KernelAttrs& attrs);

/// Declared agreement band between the static estimate and the simulator's
/// measured counters (the `bricksim lint` gate).
struct DriftTolerance {
  /// Relative L1-byte tolerance when exact_sectors (should be ~0; kept
  /// non-zero only for floating-point slack).
  double l1_exact = 1e-9;
  /// Relative L1-byte tolerance when the sector phase varies per block.
  double l1_inexact = 0.25;
  /// Relative HBM-byte tolerance (the HBM side is a model: capacity and
  /// replacement effects are approximated).
  double hbm = 0.35;
};

/// Static-vs-measured drift for one configuration.
struct Drift {
  double l1_rel = 0;        ///< |static - measured| / measured
  double hbm_rel = 0;
  bool spill_match = true;  ///< static spill slots == measured (exact)
  bool exact_sectors = false;

  bool within(const DriftTolerance& tol) const {
    return spill_match &&
           l1_rel <= (exact_sectors ? tol.l1_exact : tol.l1_inexact) &&
           hbm_rel <= tol.hbm;
  }
};

/// Joins a static estimate against measured counters (profiler fields).
Drift compare_measured(const PerfEstimate& est, double measured_l1_bytes,
                       double measured_hbm_bytes, int measured_spill_slots);

}  // namespace bricksim::analysis
