// planverify: differential verification of the ExecPlan decode.
//
// The ExecPlan engine (simt/execplan.h) hoists all kernel-invariant decode
// work -- pre-scaled register offsets, folded constants, affine array
// templates, brick adjacency codes, whole-launch bounds checks -- out of
// the replay loop.  A decode bug would corrupt every block of every launch
// while remaining plausible enough to survive spot checks; today it is
// caught only dynamically, by the A/B equivalence suite against the legacy
// interpreter.  planverify catches it STATICALLY: it abstractly interprets
// the source ir::Program against the launch binding, re-derives every
// block-invariant decode product from the MemRef/opcode semantics alone
// (sharing no code with the decoder), and compares the decoded stream field
// by field -- kinds, operand offsets, folded constants, affine templates,
// row keys, adjacency codes, bypass flags, grid strides and launch bounds.
//
// Wiring: Machine::set_plan_hook runs a verifier over every freshly decoded
// plan when installed; model::Launcher::set_verify_plan installs this one,
// and the harness --verify-plan flag plumbs through to it.
#pragma once

#include <string>
#include <vector>

#include "simt/execplan.h"

namespace bricksim::analysis {

/// One decode divergence: where and how the plan disagrees with the
/// program it claims to encode.
struct PlanDiag {
  int src_inst = -1;   ///< ir::Program instruction index; -1 = plan-level
  int plan_inst = -1;  ///< index into the decoded stream; -1 = none
  std::string field;   ///< decoded field that diverged ("idx0", "kind", ...)
  std::string message; ///< expected vs decoded values

  /// Stable one-line rendering:
  /// "plan divergence[idx0] src inst 3 / plan inst 2: <message>".
  std::string to_string() const;
};

/// Result of one differential verification.
struct PlanReport {
  std::vector<PlanDiag> diags;
  long insts_verified = 0;   ///< decoded instructions compared
  long bounds_checked = 0;   ///< whole-launch array bounds re-proved

  bool ok() const { return diags.empty(); }
  /// All divergences, one per line (empty string when clean).
  std::string to_string() const;
};

/// Differentially verifies `plan` against the kernel's source program: the
/// decoded stream must be exactly the independent re-derivation, instruction
/// for instruction, including the CountersOnly ALU aggregates and the
/// per-grid stride/binding templates.  Nothing is executed.
PlanReport verify_plan(const simt::ExecPlan& plan, const simt::Kernel& kernel);

/// Throws bricksim::Error listing every divergence when the report is not
/// ok; `context` prefixes the message ("7pt/bricks codegen on A100").
void enforce_plan(const PlanReport& report, const std::string& context);

}  // namespace bricksim::analysis
