#include "analysis/brickcheck.h"

#include <iostream>
#include <mutex>
#include <set>
#include <sstream>

#include "common/error.h"

namespace bricksim::analysis {

const char* check_name(Check c) {
  switch (c) {
    case Check::Bounds:    return "bounds";
    case Check::Dataflow:  return "dataflow";
    case Check::Race:      return "race";
    case Check::Alignment: return "alignment";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << (severity == Severity::Error ? "error" : "warning") << "["
     << check_name(check) << "] ";
  if (inst >= 0)
    os << "inst " << inst;
  else
    os << "program";
  os << ": " << message;
  return os.str();
}

CheckStats& CheckStats::operator+=(const CheckStats& o) {
  programs += o.programs;
  insts += o.insts;
  errors += o.errors;
  warnings += o.warnings;
  for (int c = 0; c < kNumChecks; ++c) by_check[c] += o.by_check[c];
  return *this;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (std::size_t n = 0; n < diags.size(); ++n)
    os << (n ? "\n" : "") << diags[n].to_string();
  return os.str();
}

const char* check_mode_name(CheckMode m) {
  switch (m) {
    case CheckMode::Off:    return "off";
    case CheckMode::Warn:   return "warn";
    case CheckMode::Strict: return "strict";
  }
  return "?";
}

CheckMode parse_check_mode(const std::string& s) {
  if (s == "off") return CheckMode::Off;
  if (s == "warn") return CheckMode::Warn;
  if (s == "strict") return CheckMode::Strict;
  throw Error("unknown check mode '" + s + "' (expected strict|warn|off)");
}

void enforce(const Report& report, CheckMode mode,
             const std::string& context) {
  if (mode == CheckMode::Off || report.clean()) return;
  if (mode == CheckMode::Strict && !report.ok())
    throw Error("brickcheck failed for " + context + ":\n" +
                report.to_string());
  // Launches may run concurrently (the parallel sweep executor); keep one
  // kernel's diagnostic block contiguous on stderr.
  static std::mutex cerr_mu;
  std::lock_guard<std::mutex> lock(cerr_mu);
  std::cerr << "[brickcheck] " << context << ": " << report.stats.errors
            << " error(s), " << report.stats.warnings << " warning(s)\n";
  for (const Diagnostic& d : report.diags)
    std::cerr << "[brickcheck]   " << d.to_string() << "\n";
}

namespace {

/// Operand/def shape of each op (which slots are read, whether dst is
/// defined, whether cidx must name a constant).
struct OpShape {
  bool reads_a = false, reads_b = false, reads_c = false;
  bool defines_dst = false, has_const = false;
};

OpShape shape_of(ir::Op op) {
  using ir::Op;
  switch (op) {
    case Op::VLoad:  return {false, false, false, true, false};
    case Op::VStore: return {true, false, false, false, false};
    case Op::VAlign: return {true, true, false, true, false};
    case Op::VAddV:  return {true, true, false, true, false};
    case Op::VMulV:  return {true, true, false, true, false};
    case Op::VFmaV:  return {true, true, true, true, false};
    case Op::VMulC:  return {true, false, false, true, true};
    case Op::VFmaC:  return {true, true, false, true, true};
    case Op::VSetC:  return {false, false, false, true, true};
    case Op::VZero:  return {false, false, false, true, false};
    case Op::IOp:    return {false, false, false, false, false};
  }
  return {};
}

bool is_mem(const ir::Inst& in) {
  return in.op == ir::Op::VLoad || in.op == ir::Op::VStore;
}

std::string array_ref_str(const ir::MemRef& m) {
  std::ostringstream os;
  os << "g" << m.grid << "[arr " << m.di << "," << m.dj << "," << m.dk << "]";
  return os.str();
}

std::string brick_ref_str(const ir::MemRef& m) {
  std::ostringstream os;
  os << "g" << m.grid << "[brk nbr(" << m.nbr_di << "," << m.nbr_dj << ","
     << m.nbr_dk << ") v(" << m.vi << "," << m.vj << "," << m.vk << ")]";
  return os.str();
}

class Checker {
 public:
  explicit Checker(const ir::Program& prog) : prog_(prog) {
    report_.stats.programs = 1;
    report_.stats.insts = static_cast<long>(prog.insts().size());
  }

  void add(Check check, Severity sev, int inst, std::string msg) {
    report_.stats.by_check[static_cast<int>(check)]++;
    if (sev == Severity::Error)
      report_.stats.errors++;
    else
      report_.stats.warnings++;
    report_.diags.push_back({check, sev, inst, std::move(msg)});
  }

  Report take() { return std::move(report_); }

  // --- Launch-free checks ----------------------------------------------------

  /// Def-before-use on vector registers, constant/shift/operand ranges, and
  /// spill-slot hygiene.  Reports instead of throwing (unlike
  /// ir::Program::verify, which predates this pass and guards the machine).
  void check_dataflow() {
    const auto& insts = prog_.insts();
    std::vector<bool> defined(static_cast<std::size_t>(prog_.num_vregs()),
                              false);
    // Spill-slot state: instruction index of the last store, whether that
    // store's value has been loaded since, whether the slot was ever stored.
    struct SlotState {
      int last_store = -1;
      bool loaded_since_store = true;
      bool ever_stored = false;
    };
    std::vector<SlotState> slots(
        static_cast<std::size_t>(prog_.num_spill_slots()));

    auto check_use = [&](int r, int pos) {
      if (r < 0 || r >= prog_.num_vregs()) {
        add(Check::Dataflow, Severity::Error, pos,
            "operand register v" + std::to_string(r) + " out of range (" +
                std::to_string(prog_.num_vregs()) + " registers)");
        return;
      }
      if (!defined[static_cast<std::size_t>(r)])
        add(Check::Dataflow, Severity::Error, pos,
            "read of register v" + std::to_string(r) +
                " before any definition");
    };

    for (int pos = 0; pos < static_cast<int>(insts.size()); ++pos) {
      const ir::Inst& in = insts[static_cast<std::size_t>(pos)];
      const OpShape s = shape_of(in.op);
      if (s.reads_a) check_use(in.a, pos);
      if (s.reads_b) check_use(in.b, pos);
      if (s.reads_c) check_use(in.c, pos);
      if (s.has_const && (in.cidx < 0 || in.cidx >= prog_.num_constants()))
        add(Check::Dataflow, Severity::Error, pos,
            "constant index " + std::to_string(in.cidx) + " out of range (" +
                std::to_string(prog_.num_constants()) + " constants)");
      if (in.op == ir::Op::VAlign &&
          (in.shift < 0 || in.shift > prog_.vec_width()))
        add(Check::Dataflow, Severity::Error, pos,
            "align shift " + std::to_string(in.shift) + " outside [0, W=" +
                std::to_string(prog_.vec_width()) + "]");

      if (is_mem(in) && in.mem.space == ir::Space::Spill) {
        if (in.mem.slot < 0 ||
            in.mem.slot >= prog_.num_spill_slots()) {
          add(Check::Dataflow, Severity::Error, pos,
              "spill slot " + std::to_string(in.mem.slot) +
                  " out of range (" +
                  std::to_string(prog_.num_spill_slots()) + " slots)");
        } else {
          SlotState& st = slots[static_cast<std::size_t>(in.mem.slot)];
          if (in.op == ir::Op::VLoad) {
            if (!st.ever_stored)
              add(Check::Dataflow, Severity::Error, pos,
                  "load from spill slot " + std::to_string(in.mem.slot) +
                      " before any store (read-before-write)");
            st.loaded_since_store = true;
          } else {
            if (!st.loaded_since_store)
              add(Check::Dataflow, Severity::Warning, pos,
                  "double-spill: slot " + std::to_string(in.mem.slot) +
                      " overwritten before the store at inst " +
                      std::to_string(st.last_store) + " was ever loaded");
            st.last_store = pos;
            st.loaded_since_store = false;
            st.ever_stored = true;
          }
        }
      }
      if (is_mem(in) && in.mem.space != ir::Space::Spill && in.mem.grid < 0)
        add(Check::Bounds, Severity::Error, pos,
            "negative grid index " + std::to_string(in.mem.grid));

      if (s.defines_dst) {
        if (in.dst < 0 || in.dst >= prog_.num_vregs())
          add(Check::Dataflow, Severity::Error, pos,
              "dst register v" + std::to_string(in.dst) + " out of range (" +
                  std::to_string(prog_.num_vregs()) + " registers)");
        else
          defined[static_cast<std::size_t>(in.dst)] = true;
      }
    }

    for (std::size_t slot = 0; slot < slots.size(); ++slot)
      if (slots[slot].ever_stored && !slots[slot].loaded_since_store)
        add(Check::Dataflow, Severity::Warning, slots[slot].last_store,
            "dead store: spill slot " + std::to_string(static_cast<int>(slot)) +
                " is never loaded after this store");
  }

  /// Brick-space invariants that need no launch geometry: adjacency
  /// displacements must stay within the one-ghost-brick ring and in-brick
  /// coordinates must be non-negative.
  void check_brick_structure() {
    const auto& insts = prog_.insts();
    for (int pos = 0; pos < static_cast<int>(insts.size()); ++pos) {
      const ir::Inst& in = insts[static_cast<std::size_t>(pos)];
      if (!is_mem(in) || in.mem.space != ir::Space::Brick) continue;
      const ir::MemRef& m = in.mem;
      auto bad_axis = [&](int d, const char* axis) {
        if (d < -1 || d > 1)
          add(Check::Bounds, Severity::Error, pos,
              "brick displacement " + std::string(axis) + "=" +
                  std::to_string(d) + " outside {-1,0,+1} in " +
                  brick_ref_str(m));
      };
      bad_axis(m.nbr_di, "nbr_di");
      bad_axis(m.nbr_dj, "nbr_dj");
      bad_axis(m.nbr_dk, "nbr_dk");
      if (m.vi < 0 || m.vj < 0 || m.vk < 0)
        add(Check::Bounds, Severity::Error, pos,
            "negative in-brick coordinate in " + brick_ref_str(m));
    }
  }

  // --- Geometry-aware checks -------------------------------------------------

  void check_geometry(const LaunchGeom& geom) {
    const int W = prog_.vec_width();
    if (geom.tile.i <= 0 || geom.tile.j <= 0 || geom.tile.k <= 0 ||
        geom.blocks.i <= 0 || geom.blocks.j <= 0 || geom.blocks.k <= 0) {
      add(Check::Bounds, Severity::Error, -1,
          "launch geometry has non-positive tile or block extents");
      return;
    }
    if (geom.tile.i % W != 0)
      add(Check::Bounds, Severity::Error, -1,
          "tile inner extent " + std::to_string(geom.tile.i) +
              " is not a multiple of the vector width " + std::to_string(W));
    if (prog_.num_grids() > static_cast<int>(geom.grids.size())) {
      add(Check::Bounds, Severity::Error, -1,
          "program references " + std::to_string(prog_.num_grids()) +
              " grids but the launch binds only " +
              std::to_string(geom.grids.size()));
      return;
    }

    // Per-grid layout sanity (once per grid, not per instruction).
    for (std::size_t g = 0; g < geom.grids.size(); ++g) {
      const GridGeom& gg = geom.grids[g];
      if (gg.layout == ir::Space::Brick && gg.brick_dims.i % W != 0)
        add(Check::Alignment, Severity::Error, -1,
            "grid " + std::to_string(g) + " brick inner extent " +
                std::to_string(gg.brick_dims.i) +
                " is not a multiple of the vector width " +
                std::to_string(W) + "; brick rows cannot hold whole vectors");
    }

    const auto& insts = prog_.insts();

    // Written grids feed the race analysis.
    std::set<int> written;
    for (const ir::Inst& in : insts)
      if (in.op == ir::Op::VStore && in.mem.space != ir::Space::Spill &&
          in.mem.grid >= 0)
        written.insert(in.mem.grid);
    std::set<int> inplace_warned;

    for (int pos = 0; pos < static_cast<int>(insts.size()); ++pos) {
      const ir::Inst& in = insts[static_cast<std::size_t>(pos)];
      if (!is_mem(in) || in.mem.space == ir::Space::Spill) continue;
      const ir::MemRef& m = in.mem;
      if (m.grid < 0 || m.grid >= static_cast<int>(geom.grids.size()))
        continue;  // already reported
      const GridGeom& gg = geom.grids[static_cast<std::size_t>(m.grid)];
      if (gg.layout != m.space) {
        add(Check::Bounds, Severity::Error, pos,
            "grid " + std::to_string(m.grid) + " is bound with " +
                (gg.layout == ir::Space::Array ? "array" : "brick") +
                " layout but referenced in " +
                (m.space == ir::Space::Array ? "array" : "brick") + " space");
        continue;
      }
      const bool is_store = in.op == ir::Op::VStore;
      if (m.space == ir::Space::Array) {
        check_array_bounds(pos, m, gg, geom);
        check_array_race(pos, m, geom, is_store,
                         written.count(m.grid) != 0, inplace_warned);
        if (geom.require_aligned_vloads && m.vectorized)
          check_array_alignment(pos, m, gg);
      } else {
        check_brick_bounds(pos, m, gg);
        check_brick_race(pos, m, is_store, written.count(m.grid) != 0,
                         inplace_warned);
      }
    }
  }

 private:
  /// Array refs are affine in the block coordinate, so the two extreme
  /// blocks per axis bound every block of the launch.
  void check_array_bounds(int pos, const ir::MemRef& m, const GridGeom& gg,
                          const LaunchGeom& geom) {
    const int W = prog_.vec_width();
    struct Axis {
      const char* name;
      int ghost, tile, blocks, padded, off, width;
    };
    const Axis axes[3] = {
        {"i", gg.ghost.i, geom.tile.i, geom.blocks.i, gg.padded.i, m.di, W},
        {"j", gg.ghost.j, geom.tile.j, geom.blocks.j, gg.padded.j, m.dj, 1},
        {"k", gg.ghost.k, geom.tile.k, geom.blocks.k, gg.padded.k, m.dk, 1},
    };
    for (const Axis& ax : axes) {
      const int lo = ax.ghost + ax.off;                        // block 0
      const int hi = ax.ghost + (ax.blocks - 1) * ax.tile + ax.off;
      if (lo < 0)
        add(Check::Bounds, Severity::Error, pos,
            "array ref " + array_ref_str(m) + " reaches " + ax.name + "=" +
                std::to_string(lo - ax.ghost) +
                " at block (0,0,0): " + std::to_string(-lo) +
                " element(s) before the padded buffer (ghost " +
                std::to_string(ax.ghost) + ")");
      if (hi + ax.width > ax.padded)
        add(Check::Bounds, Severity::Error, pos,
            "array ref " + array_ref_str(m) + " reaches padded " + ax.name +
                "=" + std::to_string(hi + ax.width - 1) + " at the last "
                "block, past the padded extent " + std::to_string(ax.padded));
    }
  }

  void check_brick_bounds(int pos, const ir::MemRef& m, const GridGeom& gg) {
    const int W = prog_.vec_width();
    if (m.vi >= 0 && (m.vi + 1) * W > gg.brick_dims.i)
      add(Check::Bounds, Severity::Error, pos,
          "brick ref " + brick_ref_str(m) + " vector index vi=" +
              std::to_string(m.vi) + " exceeds the " +
              std::to_string(gg.brick_dims.i / W) +
              " vector(s) of a brick row (brick inner extent " +
              std::to_string(gg.brick_dims.i) + ")");
    if (m.vj >= gg.brick_dims.j)
      add(Check::Bounds, Severity::Error, pos,
          "brick ref " + brick_ref_str(m) + " row vj=" +
              std::to_string(m.vj) + " outside brick extent " +
              std::to_string(gg.brick_dims.j));
    if (m.vk >= gg.brick_dims.k)
      add(Check::Bounds, Severity::Error, pos,
          "brick ref " + brick_ref_str(m) + " row vk=" +
              std::to_string(m.vk) + " outside brick extent " +
              std::to_string(gg.brick_dims.k));
  }

  /// Write-set / read-set overlap across concurrent blocks.  A block owns
  /// the tile [bc*tile, (bc+1)*tile); accesses to a written grid that leave
  /// the block's own tile touch elements a neighbouring block writes.
  void check_array_race(int pos, const ir::MemRef& m, const LaunchGeom& geom,
                        bool is_store, bool grid_written,
                        std::set<int>& inplace_warned) {
    if (!is_store && !grid_written) return;  // reads of pure inputs race-free
    const int W = prog_.vec_width();
    struct Axis {
      const char* name;
      int off, width, tile, blocks;
    };
    const Axis axes[3] = {
        {"i", m.di, W, geom.tile.i, geom.blocks.i},
        {"j", m.dj, 1, geom.tile.j, geom.blocks.j},
        {"k", m.dk, 1, geom.tile.k, geom.blocks.k},
    };
    bool escapes_concurrent = false, escapes_edge = false;
    std::string axis_desc;
    for (const Axis& ax : axes) {
      const bool escapes = ax.off < 0 || ax.off + ax.width > ax.tile;
      if (!escapes) continue;
      (ax.blocks > 1 ? escapes_concurrent : escapes_edge) = true;
      axis_desc += std::string(axis_desc.empty() ? "" : ",") + ax.name;
    }
    if (is_store) {
      if (escapes_concurrent)
        add(Check::Race, Severity::Error, pos,
            "store " + array_ref_str(m) + " escapes the block tile in " +
                axis_desc + ": concurrent blocks' write ranges overlap");
      else if (escapes_edge)
        add(Check::Race, Severity::Warning, pos,
            "store " + array_ref_str(m) +
                " writes outside the block tile in " + axis_desc +
                " (single-block axis: no overlap, but it lands in the "
                "ghost margin)");
      return;
    }
    // Load of a grid this kernel writes.
    if (escapes_concurrent) {
      add(Check::Race, Severity::Error, pos,
          "load " + array_ref_str(m) + " reads the written grid outside "
              "the block tile in " + axis_desc +
              ": observes a concurrent block's stores");
    } else if (inplace_warned.insert(m.grid).second) {
      add(Check::Race, Severity::Warning, pos,
          "grid " + std::to_string(m.grid) + " is both read and written "
              "(in-place kernel): block-local ordering holds, but "
              "cross-launch hazards are not checked");
    }
  }

  void check_brick_race(int pos, const ir::MemRef& m, bool is_store,
                        bool grid_written, std::set<int>& inplace_warned) {
    const bool own_brick = m.nbr_di == 0 && m.nbr_dj == 0 && m.nbr_dk == 0;
    if (is_store) {
      if (!own_brick)
        add(Check::Race, Severity::Error, pos,
            "store " + brick_ref_str(m) + " targets a neighbouring brick: "
                "concurrent blocks' write ranges overlap");
      return;
    }
    if (!grid_written) return;
    if (!own_brick)
      add(Check::Race, Severity::Error, pos,
          "load " + brick_ref_str(m) + " reads the written grid from a "
              "neighbouring brick: observes a concurrent block's stores");
    else if (inplace_warned.insert(m.grid).second)
      add(Check::Race, Severity::Warning, pos,
          "grid " + std::to_string(m.grid) + " is both read and written "
              "(in-place kernel): block-local ordering holds, but "
              "cross-launch hazards are not checked");
  }

  /// Lane 0 of a vectorised array access must sit on a W-element boundary
  /// when the lowering requires natural alignment.  tile.i is a multiple of
  /// W, so the block coordinate never changes alignment: (ghost.i + di)
  /// decides rows of the first j/k plane, and the row stride decides all
  /// later rows.
  void check_array_alignment(int pos, const ir::MemRef& m,
                             const GridGeom& gg) {
    const int W = prog_.vec_width();
    const int lane0 = gg.ghost.i + m.di;
    if (((lane0 % W) + W) % W != 0)
      add(Check::Alignment, Severity::Error, pos,
          "vectorized array ref " + array_ref_str(m) + " starts at element " +
              std::to_string(lane0) + " of its row, not a multiple of W=" +
              std::to_string(W) +
              "; this lowering requires naturally aligned vector accesses");
    else if (gg.padded.i % W != 0)
      add(Check::Alignment, Severity::Error, pos,
          "vectorized array ref " + array_ref_str(m) + ": row stride " +
              std::to_string(gg.padded.i) + " is not a multiple of W=" +
              std::to_string(W) +
              ", so rows beyond the first are unaligned");
  }

  const ir::Program& prog_;
  Report report_;
};

}  // namespace

Report check_program(const ir::Program& prog) {
  Checker c(prog);
  c.check_dataflow();
  c.check_brick_structure();
  return c.take();
}

Report check(const ir::Program& prog, const LaunchGeom& geom) {
  Checker c(prog);
  c.check_dataflow();
  c.check_brick_structure();
  c.check_geometry(geom);
  return c.take();
}

}  // namespace bricksim::analysis
