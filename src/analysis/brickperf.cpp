#include "analysis/brickperf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.h"

namespace bricksim::analysis {

namespace {

/// Inclusive min/max offset range per axis over a set of refs.
struct Spread {
  bool any = false;
  int lo[3] = {0, 0, 0};
  int hi[3] = {0, 0, 0};

  void add(int di, int dj, int dk) {
    const int d[3] = {di, dj, dk};
    if (!any) {
      for (int ax = 0; ax < 3; ++ax) lo[ax] = hi[ax] = d[ax];
      any = true;
      return;
    }
    for (int ax = 0; ax < 3; ++ax) {
      lo[ax] = std::min(lo[ax], d[ax]);
      hi[ax] = std::max(hi[ax], d[ax]);
    }
  }
  int span(int ax) const { return any ? hi[ax] - lo[ax] : 0; }
};

/// Per-grid address-set summary accumulated in the instruction scan.
struct GridUse {
  // Array layout.
  Spread load, store, all;
  long load_refs = 0;
  /// Distinct (dj, dk) rows the block touches (array refs carry absolute
  /// in-tile offsets, so row identity -- not the offset spread, which
  /// covers the whole unrolled tile -- is what matches the machine's
  /// per-block page and line accounting).
  std::set<std::pair<int, int>> all_rows_jk;
  /// Distinct dj (resp. dk) values over the grid's array loads.  A count
  /// above the tile extent means j- (k-) halo rows shared with neighbour
  /// blocks; the excess over the tile is the per-row re-read multiplicity
  /// when the reuse distance defeats the shared cache.
  std::set<int> load_dj, load_dk;
  /// L2-bypass path (MI250X/HIP unaligned vectorised loads).  Bypassed
  /// loads still allocate in the L1, so within a block overlapping taps
  /// collapse onto the row-union footprint: per touched row, the union
  /// [min di, max di + W) of the bypassing refs, in whole lines.
  std::map<std::pair<int, int>, std::pair<int, int>> bypass_rows;
  long bypass_refs = 0;    ///< refs taking the bypass path (weighted)
  double bypass_frac_sum = 0;  ///< sum of per-ref bypass probabilities
  /// Largest per-ref L2-path probability (1 - bypass fraction) over the
  /// grid's loads: the fraction of blocks in which at least one load still
  /// streams the compulsory footprint through the shared L2.
  double l2_gate = 0;

  // Brick layout.
  std::set<std::tuple<int, int, int>> load_rows, store_rows;
  std::set<std::tuple<int, int, int, int, int, int>> load_tuples;
  long far_k_tuples = 0;  ///< load (row, d) pairs with dk != 0
  long far_j_tuples = 0;  ///< dk == 0 but dj != 0
};

std::int64_t ipow_mod(std::int64_t v, std::int64_t m) {
  return ((v % m) + m) % m;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  return std::gcd(std::llabs(a), std::llabs(b));
}

}  // namespace

const char* perf_check_name(PerfCheck c) {
  switch (c) {
    case PerfCheck::Coalesce: return "coalesce";
    case PerfCheck::Spill: return "spill";
    case PerfCheck::VecWidth: return "vecwidth";
    case PerfCheck::Reuse: return "reuse";
    case PerfCheck::Predication: return "predication";
  }
  return "?";
}

std::string PerfDiag::to_string() const {
  std::ostringstream os;
  os << (severity == Severity::Error ? "error" : "warning") << "["
     << perf_check_name(check) << "]";
  if (inst >= 0) os << " inst " << inst;
  os << ": " << message;
  return os.str();
}

PerfStats& PerfStats::operator+=(const PerfStats& o) {
  programs += o.programs;
  insts += o.insts;
  warnings += o.warnings;
  errors += o.errors;
  for (int i = 0; i < kNumPerfChecks; ++i) by_check[i] += o.by_check[i];
  return *this;
}

std::string PerfReport::to_string() const {
  std::string out;
  for (const PerfDiag& d : diags) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

PerfReport analyze(const ir::Program& prog, const LaunchGeom& geom,
                   const arch::GpuArch& arch, const KernelAttrs& attrs) {
  const int W = prog.vec_width();
  const std::uint32_t vec_bytes = static_cast<std::uint32_t>(W) * kElemBytes;
  const int sector = arch.l1.sector_bytes;
  BRICKSIM_REQUIRE(sector > 0, "architecture without a sector size");
  BRICKSIM_REQUIRE(static_cast<int>(geom.grids.size()) >= prog.num_grids(),
                   "launch geometry misses grids the program references");

  PerfReport rep;
  rep.stats.programs = 1;
  rep.stats.insts = static_cast<long>(prog.insts().size());

  // Diagnostics with a per-family materialisation cap (naive lowerings
  // reload hundreds of taps; the counts stay exact in stats.by_check).
  auto diag = [&rep](PerfCheck c, int inst, std::string msg) {
    rep.stats.by_check[static_cast<int>(c)]++;
    rep.stats.warnings++;
    if (rep.stats.by_check[static_cast<int>(c)] <= kMaxDiagsPerCheck)
      rep.diags.push_back(
          {c, Severity::Warning, inst, std::move(msg)});
  };

  const Vec3 blocks = geom.blocks;
  const Vec3 tile = geom.tile;
  const double nblocks = static_cast<double>(blocks.volume());
  const Vec3 domain = attrs.domain.volume() > 0
                          ? attrs.domain
                          : Vec3{blocks.i * tile.i, blocks.j * tile.j,
                                 blocks.k * tile.k};

  // --- Sector-phase machinery -----------------------------------------------
  // addr = line-aligned base + (idx0 + bc . (bi,bj,bk)) * 8.  The phase
  // (addr mod sector) is block-invariant exactly when every block stride is
  // a sector multiple -- then the static sector count per access is the
  // count memsim observes, for every block.
  bool exact = true;
  std::vector<std::int64_t> stride_mod(geom.grids.size(), 0);  // gcd of
  // block-stride byte values mod vec_bytes, for the bypass-fraction model.
  for (std::size_t g = 0; g < geom.grids.size(); ++g) {
    const GridGeom& gg = geom.grids[g];
    if (gg.layout == ir::Space::Array) {
      const std::int64_t b8[3] = {
          static_cast<std::int64_t>(tile.i) * kElemBytes,
          static_cast<std::int64_t>(tile.j) * gg.padded.i * kElemBytes,
          static_cast<std::int64_t>(tile.k) * gg.padded.i * gg.padded.j *
              kElemBytes};
      const int nb[3] = {blocks.i, blocks.j, blocks.k};
      for (int ax = 0; ax < 3; ++ax) {
        if (nb[ax] <= 1) continue;
        if (b8[ax] % sector != 0) exact = false;
        stride_mod[g] = gcd64(stride_mod[g], b8[ax]);
      }
    } else {
      const std::int64_t epb8 =
          static_cast<std::int64_t>(gg.brick_dims.volume()) * kElemBytes;
      if (epb8 % sector != 0) exact = false;
      stride_mod[g] = epb8;
    }
  }

  const int ideal_sectors =
      (static_cast<int>(vec_bytes) + sector - 1) / sector;

  // --- Instruction scan -----------------------------------------------------
  std::vector<GridUse> use(geom.grids.size());
  // Reuse tracking: affine address keys loaded since the last store to the
  // same grid.  Spill traffic is deliberate (regalloc), so only Array and
  // Brick loads participate.
  std::vector<std::set<std::tuple<int, int, int, int, int, int, int>>>
      live_loads(geom.grids.size());

  std::uint64_t sectors_per_block = 0;
  std::uint64_t spill_sectors_per_block = 0;

  const std::vector<ir::Inst>& insts = prog.insts();
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const ir::Inst& in = insts[i];
    if (in.op != ir::Op::VLoad && in.op != ir::Op::VStore) continue;
    const bool is_store = in.op == ir::Op::VStore;
    const ir::MemRef& m = in.mem;

    if (m.space == ir::Space::Spill) {
      spill_sectors_per_block += (vec_bytes + sector - 1) / sector;
      continue;
    }

    const std::size_t gi = static_cast<std::size_t>(m.grid);
    const GridGeom& gg = geom.grids[gi];
    GridUse& u = use[gi];

    std::int64_t idx0 = 0;
    std::tuple<int, int, int, int, int, int, int> key;
    if (m.space == ir::Space::Array) {
      const Vec3 e0{gg.ghost.i + m.di, gg.ghost.j + m.dj, gg.ghost.k + m.dk};
      idx0 = linear_index(e0, gg.padded);
      key = {0, m.di, m.dj, m.dk, 0, 0, 0};
      if (is_store)
        u.store.add(m.di, m.dj, m.dk);
      else
        u.load.add(m.di, m.dj, m.dk);
      u.all.add(m.di, m.dj, m.dk);
      u.all_rows_jk.emplace(m.dj, m.dk);
      if (!is_store) {
        ++u.load_refs;
        u.load_dj.insert(m.dj);
        u.load_dk.insert(m.dk);
      }
    } else {
      idx0 = (static_cast<std::int64_t>(m.vk) * gg.brick_dims.j + m.vj) *
                 gg.brick_dims.i +
             static_cast<std::int64_t>(m.vi) * W;
      key = {1, m.nbr_di, m.nbr_dj, m.nbr_dk, m.vi, m.vj, m.vk};
      const auto row = std::make_tuple(m.vi, m.vj, m.vk);
      if (is_store) {
        u.store_rows.insert(row);
        u.store.add(m.nbr_di, m.nbr_dj, m.nbr_dk);
      } else {
        u.load_rows.insert(row);
        u.load.add(m.nbr_di, m.nbr_dj, m.nbr_dk);
        if (u.load_tuples
                .insert(std::make_tuple(m.vi, m.vj, m.vk, m.nbr_di, m.nbr_dj,
                                        m.nbr_dk))
                .second) {
          if (m.nbr_dk != 0)
            ++u.far_k_tuples;
          else if (m.nbr_dj != 0)
            ++u.far_j_tuples;
        }
      }
      u.all.add(m.nbr_di, m.nbr_dj, m.nbr_dk);
      if (!is_store) ++u.load_refs;
    }

    // Per-warp transaction count (block 0; exact for all blocks when the
    // phase is block-invariant).
    const std::int64_t phase = ipow_mod(idx0 * kElemBytes, sector);
    const int sectors = static_cast<int>(
        (phase + static_cast<std::int64_t>(vec_bytes) - 1) / sector + 1);
    sectors_per_block += static_cast<std::uint64_t>(sectors);

    if (sectors > ideal_sectors) {
      std::ostringstream os;
      os << (is_store ? "store" : "load") << " of grid " << m.grid
         << " is misaligned by " << phase << "B: " << sectors << " "
         << sector << "B transactions per warp (ideal " << ideal_sectors
         << ") on " << arch.name;
      if (!is_store && m.vectorized && attrs.bypass_l2_unaligned_vloads)
        os << "; unaligned vectorised loads bypass the L2 on this lowering";
      diag(PerfCheck::Coalesce, static_cast<int>(i), os.str());
    }

    // L2-bypass classification (MI250X/HIP): an unaligned vectorised load
    // misses the L2 on every L1 line miss and fetches straight from DRAM.
    // With a block-invariant phase the bypass predicate is exact;
    // otherwise the aligned fraction is G/vec_bytes for the stride
    // subgroup gcd G.  The traffic itself is charged per block from the
    // row-union footprint after the scan (the L1 collapses overlapping
    // taps), so here we only classify the ref and record its offset.
    if (!is_store && m.space == ir::Space::Array) {
      double frac = 0.0;
      if (m.vectorized && attrs.bypass_l2_unaligned_vloads) {
        const std::int64_t vb = vec_bytes;
        const std::int64_t pv = ipow_mod(idx0 * kElemBytes, vb);
        if (stride_mod[gi] % vb == 0 || stride_mod[gi] == 0) {
          frac = pv != 0 ? 1.0 : 0.0;
        } else {
          const std::int64_t g = gcd64(stride_mod[gi], vb);
          const double aligned =
              (pv % g == 0) ? static_cast<double>(g) / static_cast<double>(vb)
                            : 0.0;
          frac = 1.0 - aligned;
        }
      }
      if (frac > 0) {
        auto [it, fresh] =
            u.bypass_rows.try_emplace({m.dj, m.dk}, m.di, m.di);
        if (!fresh) {
          it->second.first = std::min(it->second.first, m.di);
          it->second.second = std::max(it->second.second, m.di);
        }
        ++u.bypass_refs;
        u.bypass_frac_sum += frac;
      }
      u.l2_gate = std::max(u.l2_gate, 1.0 - frac);
    }

    // Missed-reuse detection.
    if (is_store) {
      live_loads[gi].clear();
    } else if (!live_loads[gi].insert(key).second) {
      std::ostringstream os;
      os << "grid " << m.grid
         << " address reloaded with no intervening store (";
      if (m.space == ir::Space::Array)
        os << "offset " << m.di << "," << m.dj << "," << m.dk;
      else
        os << "row " << m.vi << "," << m.vj << "," << m.vk << " nbr "
           << m.nbr_di << "," << m.nbr_dj << "," << m.nbr_dk;
      os << "): missed register reuse";
      diag(PerfCheck::Reuse, static_cast<int>(i), os.str());
    }
  }

  // --- Program-level hazards ------------------------------------------------
  if (prog.num_spill_slots() > 0) {
    const ir::InstStats st = prog.stats();
    const double bytes_per_block =
        static_cast<double>(st.spill_loads + st.spill_stores) *
        ((vec_bytes + sector - 1) / sector) * sector;
    std::ostringstream os;
    os << prog.num_spill_slots() << " spill slot(s): register pressure "
       << attrs.regs_used << "/" << attrs.reg_budget << " regs per lane ("
       << arch.name << " register file " << arch.regs_per_lane
       << "), " << bytes_per_block << "B scratch traffic per block";
    diag(PerfCheck::Spill, -1, os.str());
  }

  if (W != arch.simd_width) {
    std::ostringstream os;
    os << "program vector width " << W << " vs native SIMD width "
       << arch.simd_width << " on " << arch.name << ": "
       << (W < arch.simd_width ? "idle lanes" : "multi-pass execution");
    diag(PerfCheck::VecWidth, -1, os.str());
  }

  {
    const double covered = static_cast<double>(blocks.i) * tile.i *
                           static_cast<double>(blocks.j) * tile.j *
                           static_cast<double>(blocks.k) * tile.k;
    const double interior = static_cast<double>(domain.volume());
    if (covered > interior && interior > 0) {
      const double frac = 1.0 - interior / covered;
      std::ostringstream os;
      os << "corner-block predication: tile " << tile.i << "x" << tile.j
         << "x" << tile.k << " does not divide the domain; "
         << 100.0 * frac
         << "% of issued lanes are predicated off";
      diag(PerfCheck::Predication, -1, os.str());
    }
  }

  // Suppression summaries.
  for (int c = 0; c < kNumPerfChecks; ++c) {
    if (rep.stats.by_check[c] > kMaxDiagsPerCheck) {
      std::ostringstream os;
      os << (rep.stats.by_check[c] - kMaxDiagsPerCheck) << " further "
         << perf_check_name(static_cast<PerfCheck>(c))
         << " diagnostics suppressed (full count in stats)";
      rep.diags.push_back({static_cast<PerfCheck>(c), Severity::Warning, -1,
                           os.str()});
    }
  }

  // --- Static cost estimate -------------------------------------------------
  PerfEstimate& est = rep.est;
  est.exact_sectors = exact;
  est.transactions_per_block = sectors_per_block + spill_sectors_per_block;
  est.spill_bytes = static_cast<double>(spill_sectors_per_block) * sector *
                    nblocks;
  est.l1_bytes = static_cast<double>(sectors_per_block +
                                     spill_sectors_per_block) *
                 sector * nblocks;
  est.spill_slots = prog.num_spill_slots();
  est.flops = static_cast<std::uint64_t>(prog.stats().flops_per_lane) * W *
              static_cast<std::uint64_t>(blocks.volume());

  // HBM model: compulsory footprints + capacity re-fetch + RMW fills +
  // L2-bypass traffic + page-locality overhead.
  double hbm = 0;

  // Reuse distances for the capacity heuristic: halo rows are re-fetched
  // when the bytes streamed between their two uses exceed the shared
  // cache.  The L2 is LRU, so the stream that ages a line out is the
  // *inserted* (compulsory-miss) traffic -- re-touches of resident halo
  // lines hit and merely refresh recency.  The fresh stream per block is
  // the total compulsory footprint (read + write: streaming stores
  // install into the L2 too) spread over all blocks.
  double fresh_bytes = 0;
  // The bricks far-row heuristic predates the fresh-stream model and is
  // calibrated against the per-block touched row footprint; keep its
  // distance definition.
  double touched_per_block = 0;
  for (std::size_t g = 0; g < geom.grids.size(); ++g) {
    const GridGeom& gg = geom.grids[g];
    const GridUse& u = use[g];
    if (gg.layout == ir::Space::Array) {
      if (u.load.any)
        fresh_bytes += static_cast<double>(domain.i + u.load.span(0)) *
                       (domain.j + u.load.span(1)) *
                       (domain.k + u.load.span(2)) * kElemBytes;
      if (u.store.any)
        fresh_bytes += static_cast<double>(domain.i + u.store.span(0)) *
                       (domain.j + u.store.span(1)) *
                       (domain.k + u.store.span(2)) * kElemBytes;
      // Exact distinct-row union: star-shaped taps touch far fewer rows
      // than the (span_j x span_k) bounding box suggests.
      if (u.all.any)
        touched_per_block += static_cast<double>(u.all_rows_jk.size()) *
                             (tile.i + u.all.span(0)) * kElemBytes;
    } else {
      const double ghost_bricks =
          static_cast<double>(blocks.i + u.load.span(0)) *
          (blocks.j + u.load.span(1)) * (blocks.k + u.load.span(2));
      fresh_bytes += static_cast<double>(u.load_rows.size()) * ghost_bricks *
                     vec_bytes;
      const double store_bricks =
          static_cast<double>(blocks.i + u.store.span(0)) *
          (blocks.j + u.store.span(1)) * (blocks.k + u.store.span(2));
      fresh_bytes += static_cast<double>(u.store_rows.size()) *
                     store_bricks * vec_bytes;
      const double rows = static_cast<double>(u.load_rows.size() +
                                              u.store_rows.size());
      touched_per_block += rows * vec_bytes;
    }
  }
  const double fresh_per_block = fresh_bytes / nblocks;
  const double l2_cap = static_cast<double>(arch.l2.capacity_bytes);
  // Array halo reuse: j neighbours are blocks.i apart in schedule order,
  // k neighbours a full block-plane apart.
  const double aj_reuse_dist = fresh_per_block * blocks.i;
  const double ak_reuse_dist = fresh_per_block * blocks.i * blocks.j;
  const double j_reuse_dist = touched_per_block * blocks.i;
  const double k_reuse_dist = touched_per_block * blocks.i * blocks.j;

  for (std::size_t g = 0; g < geom.grids.size(); ++g) {
    const GridGeom& gg = geom.grids[g];
    const GridUse& u = use[g];
    double read_g = 0, write_g = 0;
    if (gg.layout == ir::Space::Array) {
      if (u.load.any) {
        read_g = static_cast<double>(domain.i + u.load.span(0)) *
                 (domain.j + u.load.span(1)) * (domain.k + u.load.span(2)) *
                 kElemBytes;
        // Halo re-fetch beyond the shared cache.  A distinct-dj count
        // above tile.j means each domain row is read by halo_j/tile.j
        // extra block rows; those re-reads hit the L2 only while the
        // inter-use stream fits it.
        const double halo_j =
            static_cast<double>(u.load_dj.size()) - tile.j;
        const double halo_k =
            static_cast<double>(u.load_dk.size()) - tile.k;
        if (halo_j > 0 && aj_reuse_dist > l2_cap)
          read_g += read_g * halo_j / tile.j;
        else if (halo_k > 0 && ak_reuse_dist > l2_cap)
          read_g += read_g * halo_k / tile.k;
      }
      if (u.store.any)
        write_g = static_cast<double>(domain.i + u.store.span(0)) *
                  (domain.j + u.store.span(1)) *
                  (domain.k + u.store.span(2)) * kElemBytes;
      // L2 bypass: bypassed lines are fetched from DRAM once per L1 line
      // miss.  The L1 collapses overlapping taps within a block, so each
      // block pays its row-union footprint in lines -- per touched row,
      // the union [min di, max di + W) of the bypassing refs -- and
      // nothing is shared across blocks (bypassed lines never enter the
      // L2).  When every load bypasses, no compulsory read footprint
      // streams through the L2 at all.
      if (u.bypass_refs > 0) {
        const std::int64_t line = arch.l1.line_bytes;
        std::int64_t lines_per_block = 0;
        for (const auto& [row, di] : u.bypass_rows) {
          const std::int64_t extent_bytes =
              (static_cast<std::int64_t>(di.second) - di.first + W) *
              kElemBytes;
          lines_per_block += (extent_bytes + line - 1) / line + 1;
        }
        const double weight =
            u.bypass_frac_sum / static_cast<double>(u.bypass_refs);
        const double bypass_bytes = static_cast<double>(lines_per_block) *
                                    static_cast<double>(line) * nblocks *
                                    weight;
        // Only the block fraction where some load stays on the L2 path
        // still streams the compulsory footprint through the L2.
        read_g = read_g * u.l2_gate + bypass_bytes;
      }
    } else {
      const double ghost_bricks =
          static_cast<double>(blocks.i + u.load.span(0)) *
          (blocks.j + u.load.span(1)) * (blocks.k + u.load.span(2));
      read_g = static_cast<double>(u.load_rows.size()) * ghost_bricks *
               vec_bytes;
      // Far-neighbour rows whose reuse distance exceeds the shared cache
      // are fetched twice (once as ghost, once as the owner's row).
      if (k_reuse_dist > l2_cap)
        read_g += static_cast<double>(u.far_k_tuples) * nblocks * vec_bytes;
      if (j_reuse_dist > l2_cap)
        read_g += static_cast<double>(u.far_j_tuples) * nblocks * vec_bytes;
      const double store_bricks =
          static_cast<double>(blocks.i + u.store.span(0)) *
          (blocks.j + u.store.span(1)) * (blocks.k + u.store.span(2));
      write_g = static_cast<double>(u.store_rows.size()) * store_bricks *
                vec_bytes;
    }
    hbm += read_g + write_g;
    if (!attrs.streaming_stores) hbm += write_g;  // read-modify-write fills
    if (std::getenv("BRICKPERF_DEBUG") != nullptr)
      std::fprintf(stderr,
                   "[brickperf] grid %zu read %.3f MB write %.3f MB bypass "
                   "refs %ld gate %.3f frac %.3f\n",
                   g, read_g / 1e6, write_g / 1e6, u.bypass_refs, u.l2_gate,
                   u.bypass_refs > 0
                       ? u.bypass_frac_sum / static_cast<double>(u.bypass_refs)
                       : 0.0);

    // Page-locality overhead (row activations / TLB): the machine charges
    // page_open_bytes per (block, DRAM-touched page).  Array pages are
    // keyed per (grid, k, j) row, and only accesses that actually reach
    // DRAM insert one.  On the L2 path a row's lines are compulsory-missed
    // by exactly one (bj, bk) block column (the first toucher) but by
    // every block along i -- each owns fresh lines of its own i-extent --
    // so each distinct global row is charged blocks.i times.  Bypassed
    // rows never enter the L2 and are charged in every touching block.
    // Single-stream kernels are exempt.
    if (attrs.read_streams > 1 && arch.page_open_bytes > 0) {
      if (gg.layout == ir::Space::Array) {
        double pages = 0;
        if (u.bypass_refs > 0)
          pages += static_cast<double>(u.bypass_rows.size()) * nblocks *
                   (u.bypass_frac_sum / static_cast<double>(u.bypass_refs));
        const double gate =
            u.bypass_refs > 0 && !u.store.any ? u.l2_gate : 1.0;
        if (u.all.any && gate > 0) {
          // Exact global row union over all (bj, bk) translations of the
          // per-block row set, via a bitmap over the padded row range
          // (star-shaped halos make this smaller than the bounding box).
          const int jlo = u.all.lo[1], jhi = blocks.j * tile.j + u.all.hi[1];
          const int klo = u.all.lo[2], khi = blocks.k * tile.k + u.all.hi[2];
          const std::size_t hj = static_cast<std::size_t>(jhi - jlo + 1);
          const std::size_t hk = static_cast<std::size_t>(khi - klo + 1);
          std::vector<char> touched(hj * hk, 0);
          for (int bj = 0; bj < blocks.j; ++bj)
            for (int bk = 0; bk < blocks.k; ++bk)
              for (const auto& [dj, dk] : u.all_rows_jk)
                touched[static_cast<std::size_t>(bj * tile.j + dj - jlo) *
                            hk +
                        static_cast<std::size_t>(bk * tile.k + dk - klo)] = 1;
          const double rows = static_cast<double>(
              std::count(touched.begin(), touched.end(), char{1}));
          pages += rows * blocks.i * gate;
        }
        hbm += pages * arch.page_open_bytes;
      } else {
        hbm += (read_g + write_g) / 4096.0 * arch.page_open_bytes;
      }
    }
  }
  est.hbm_bytes = hbm;

  const double bw = arch.achieved_bw(attrs.read_streams) * attrs.bw_derate;
  est.est_seconds = bw > 0 ? hbm / bw : 0;

  return rep;
}

Drift compare_measured(const PerfEstimate& est, double measured_l1_bytes,
                       double measured_hbm_bytes,
                       int measured_spill_slots) {
  Drift d;
  d.exact_sectors = est.exact_sectors;
  d.spill_match = est.spill_slots == measured_spill_slots;
  auto rel = [](double stat, double meas) {
    if (meas > 0) return std::fabs(stat - meas) / meas;
    return stat > 0 ? 1.0 : 0.0;
  };
  d.l1_rel = rel(est.l1_bytes, measured_l1_bytes);
  d.hbm_rel = rel(est.hbm_bytes, measured_hbm_bytes);
  return d;
}

}  // namespace bricksim::analysis
