#include "analysis/planverify.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.h"

namespace bricksim::analysis {

namespace {

using simt::ExecPlan;
using PKind = ExecPlan::PKind;
using PlanInst = ExecPlan::PlanInst;

const char* pkind_name(PKind k) {
  switch (k) {
    case PKind::LoadArray: return "LoadArray";
    case PKind::LoadBrick: return "LoadBrick";
    case PKind::LoadSpill: return "LoadSpill";
    case PKind::StoreArray: return "StoreArray";
    case PKind::StoreBrick: return "StoreBrick";
    case PKind::StoreSpill: return "StoreSpill";
    case PKind::Align: return "Align";
    case PKind::AddV: return "AddV";
    case PKind::MulV: return "MulV";
    case PKind::FmaV: return "FmaV";
    case PKind::MulC: return "MulC";
    case PKind::FmaC: return "FmaC";
    case PKind::SetC: return "SetC";
    case PKind::Zero: return "Zero";
    case PKind::IOp: return "IOp";
  }
  return "?";
}

/// Expected replay opcode of a memory instruction, from MemRef semantics
/// alone (NOT the decoder's switch).
PKind mem_kind(const ir::MemRef& m, bool is_store) {
  switch (m.space) {
    case ir::Space::Array:
      return is_store ? PKind::StoreArray : PKind::LoadArray;
    case ir::Space::Brick:
      return is_store ? PKind::StoreBrick : PKind::LoadBrick;
    case ir::Space::Spill:
      break;
  }
  return is_store ? PKind::StoreSpill : PKind::LoadSpill;
}

/// Expected replay opcode of a functional-mode arithmetic instruction.
PKind alu_kind(ir::Op op) {
  switch (op) {
    case ir::Op::VAddV: return PKind::AddV;
    case ir::Op::VMulV: return PKind::MulV;
    case ir::Op::VFmaV: return PKind::FmaV;
    case ir::Op::VMulC: return PKind::MulC;
    case ir::Op::VFmaC: return PKind::FmaC;
    case ir::Op::VSetC: return PKind::SetC;
    default: return PKind::Zero;
  }
}

template <typename T>
std::string str(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string PlanDiag::to_string() const {
  std::ostringstream os;
  os << "plan divergence[" << field << "]";
  if (src_inst >= 0) os << " src inst " << src_inst;
  if (plan_inst >= 0) os << (src_inst >= 0 ? " /" : "") << " plan inst "
                         << plan_inst;
  os << ": " << message;
  return os.str();
}

std::string PlanReport::to_string() const {
  std::string out;
  for (const PlanDiag& d : diags) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

PlanReport verify_plan(const simt::ExecPlan& plan,
                       const simt::Kernel& kernel) {
  BRICKSIM_REQUIRE(kernel.program != nullptr, "kernel without a program");
  const ir::Program& prog = *kernel.program;
  BRICKSIM_REQUIRE(static_cast<int>(kernel.grids.size()) >= prog.num_grids(),
                   "not enough grid bindings for the program");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.constants.size()) >=
                       prog.num_constants(),
                   "not enough constant values bound");

  PlanReport rep;
  auto diag = [&rep](int src, int pc, const char* field, std::string msg) {
    rep.diags.push_back({src, pc, field, std::move(msg)});
  };

  const int W = prog.vec_width();
  const bool functional = plan.mode() == simt::ExecMode::Functional;

  // Plan-level invariants.
  if (plan.vec_width() != W)
    diag(-1, -1, "vec_width",
         "expected " + str(W) + ", decoded " + str(plan.vec_width()));
  if (plan.vec_bytes() != static_cast<std::uint32_t>(W) * kElemBytes)
    diag(-1, -1, "vec_bytes",
         "expected " + str(W * kElemBytes) + ", decoded " +
             str(plan.vec_bytes()));
  if (plan.num_vregs() != prog.num_vregs())
    diag(-1, -1, "num_vregs",
         "expected " + str(prog.num_vregs()) + ", decoded " +
             str(plan.num_vregs()));
  if (plan.num_spill_slots() != prog.num_spill_slots())
    diag(-1, -1, "num_spill_slots",
         "expected " + str(prog.num_spill_slots()) + ", decoded " +
             str(plan.num_spill_slots()));

  // Per-grid templates: base, functional pointer, block strides (one block
  // step per launch axis in elements), brick metadata.
  if (plan.grids().size() != kernel.grids.size())
    diag(-1, -1, "grids",
         "expected " + str(kernel.grids.size()) + " grid templates, decoded " +
             str(plan.grids().size()));
  const std::size_t ngrids =
      std::min(plan.grids().size(), kernel.grids.size());
  for (std::size_t g = 0; g < ngrids; ++g) {
    const ExecPlan::GridPlan& gp = plan.grids()[g];
    const simt::GridBinding& gb = kernel.grids[g];
    const int src = -1;
    auto gdiag = [&](const char* field, std::string msg) {
      diag(src, -1, field, "grid " + str(g) + ": " + std::move(msg));
    };
    if (gp.base != gb.device_base)
      gdiag("base", "expected " + str(gb.device_base) + ", decoded " +
                        str(gp.base));
    if (gp.data != gb.data) gdiag("data", "functional pointer diverged");
    const std::int64_t bi = kernel.tile.i;
    const std::int64_t bj =
        static_cast<std::int64_t>(kernel.tile.j) * gb.padded.i;
    const std::int64_t bk = static_cast<std::int64_t>(kernel.tile.k) *
                            gb.padded.i * gb.padded.j;
    if (gp.bi != bi)
      gdiag("bi", "expected " + str(bi) + ", decoded " + str(gp.bi));
    if (gp.bj != bj)
      gdiag("bj", "expected " + str(bj) + ", decoded " + str(gp.bj));
    if (gp.bk != bk)
      gdiag("bk", "expected " + str(bk) + ", decoded " + str(gp.bk));
    if (gp.adjacency != gb.adjacency.data())
      gdiag("adjacency", "adjacency pointer diverged");
    if (gp.block_to_brick != gb.block_to_brick.data())
      gdiag("block_to_brick", "block-to-brick pointer diverged");
    if (gp.elems_per_brick != gb.elems_per_brick)
      gdiag("elems_per_brick", "expected " + str(gb.elems_per_brick) +
                                   ", decoded " + str(gp.elems_per_brick));
  }

  // Largest per-grid block offset in the launch (monotone in each block
  // coordinate, so the far corner bounds every block).
  auto max_block_offset = [&](const simt::GridBinding& gb) {
    const std::int64_t bi = kernel.tile.i;
    const std::int64_t bj =
        static_cast<std::int64_t>(kernel.tile.j) * gb.padded.i;
    const std::int64_t bk = static_cast<std::int64_t>(kernel.tile.k) *
                            gb.padded.i * gb.padded.j;
    return static_cast<std::int64_t>(kernel.blocks.i - 1) * bi +
           static_cast<std::int64_t>(kernel.blocks.j - 1) * bj +
           static_cast<std::int64_t>(kernel.blocks.k - 1) * bk;
  };

  // Walk the source program, re-derive the expected decode of every
  // instruction that lands in the replay stream, and compare field by
  // field; CountersOnly ALU work is re-aggregated instead.
  const std::vector<PlanInst>& stream = plan.insts();
  std::size_t pc = 0;
  ExecPlan::AluAggregates alu;

  // The SoA replay lanes must mirror the stream index-for-index; their
  // expected values are re-derived from the MemRef semantics below (never
  // read back from the AoS record the plan holds).
  const ExecPlan::SoaStream& soa = plan.soa();
  if (soa.kind.size() != stream.size() || soa.flags.size() != stream.size() ||
      soa.sel.size() != stream.size() || soa.tmpl.size() != stream.size() ||
      soa.row_key0.size() != stream.size())
    diag(-1, -1, "soa.size",
         "SoA lanes not index-aligned with the decoded stream (" +
             str(stream.size()) + " instructions)");
  const bool soa_aligned = soa.kind.size() == stream.size();
  const std::uint32_t nslots =
      static_cast<std::uint32_t>(kernel.grids.size()) * 28 + 1;

  auto expect = [&](int src, const PlanInst& want) {
    if (pc >= stream.size()) {
      diag(src, -1, "stream",
           "decoded stream ended before this instruction");
      return;
    }
    const PlanInst& got = stream[pc];
    const int at = static_cast<int>(pc);
    if (want.kind != got.kind)
      diag(src, at, "kind",
           std::string("expected ") + pkind_name(want.kind) + ", decoded " +
               pkind_name(got.kind));
    if (want.grid != got.grid)
      diag(src, at, "grid",
           "expected " + str(static_cast<int>(want.grid)) + ", decoded " +
               str(static_cast<int>(got.grid)));
    if (want.nbr_code != got.nbr_code)
      diag(src, at, "nbr_code",
           "expected " + str(static_cast<int>(want.nbr_code)) +
               ", decoded " + str(static_cast<int>(got.nbr_code)));
    if (want.bypass_candidate != got.bypass_candidate)
      diag(src, at, "bypass_candidate",
           "expected " + str(want.bypass_candidate) + ", decoded " +
               str(got.bypass_candidate));
    if (want.shift_or_iops != got.shift_or_iops)
      diag(src, at, "shift_or_iops",
           "expected " + str(want.shift_or_iops) + ", decoded " +
               str(got.shift_or_iops));
    if (want.dst != got.dst)
      diag(src, at, "dst",
           "expected " + str(want.dst) + ", decoded " + str(got.dst));
    if (want.a != got.a)
      diag(src, at, "a",
           "expected " + str(want.a) + ", decoded " + str(got.a));
    if (want.b != got.b)
      diag(src, at, "b",
           "expected " + str(want.b) + ", decoded " + str(got.b));
    if (want.c != got.c)
      diag(src, at, "c",
           "expected " + str(want.c) + ", decoded " + str(got.c));
    if (want.cv != got.cv)
      diag(src, at, "cv",
           "folded constant: expected " + str(want.cv) + ", decoded " +
               str(got.cv));
    if (want.idx0 != got.idx0)
      diag(src, at, "idx0",
           "expected " + str(want.idx0) + ", decoded " + str(got.idx0));
    if (want.row_key0 != got.row_key0)
      diag(src, at, "row_key0",
           "expected " + str(want.row_key0) + ", decoded " +
               str(got.row_key0));

    // SoA lanes at the same index: flags, addend slot, address template and
    // page-key invariant, each re-derived from `want` and the binding.
    if (soa_aligned) {
      std::uint8_t wflags = 0;
      std::uint32_t wsel = nslots - 1;  // always-zero addend slot
      std::uint64_t wtmpl = 0;
      std::uint64_t wrow = 0;
      switch (want.kind) {
        case PKind::LoadArray:
        case PKind::StoreArray:
          wflags = want.kind == PKind::StoreArray ? ExecPlan::kSoaStore
                                                  : ExecPlan::kSoaGlobalLoad;
          if (want.bypass_candidate) wflags |= ExecPlan::kSoaBypassCand;
          wsel = want.grid;
          wtmpl = kernel.grids[want.grid].device_base +
                  static_cast<std::uint64_t>(want.idx0) * kElemBytes;
          wrow = want.row_key0;
          break;
        case PKind::LoadBrick:
        case PKind::StoreBrick:
          wflags = ExecPlan::kSoaBrick |
                   (want.kind == PKind::StoreBrick ? ExecPlan::kSoaStore
                                                   : ExecPlan::kSoaGlobalLoad);
          wsel = static_cast<std::uint32_t>(kernel.grids.size()) +
                 static_cast<std::uint32_t>(want.grid) * 27u + want.nbr_code;
          wtmpl = kernel.grids[want.grid].device_base +
                  static_cast<std::uint64_t>(want.idx0) * kElemBytes;
          break;
        case PKind::LoadSpill:
          wflags = ExecPlan::kSoaSpill;
          break;
        case PKind::StoreSpill:
          wflags = ExecPlan::kSoaSpill | ExecPlan::kSoaStore;
          break;
        default:
          break;  // ALU lane: no flags, zero slot, zero template
      }
      const std::size_t ai = static_cast<std::size_t>(at);
      if (soa.kind[ai] != want.kind)
        diag(src, at, "soa.kind",
             std::string("expected ") + pkind_name(want.kind) + ", decoded " +
                 pkind_name(soa.kind[ai]));
      if (soa.flags[ai] != wflags)
        diag(src, at, "soa.flags",
             "expected " + str(static_cast<int>(wflags)) + ", decoded " +
                 str(static_cast<int>(soa.flags[ai])));
      if (soa.sel[ai] != wsel)
        diag(src, at, "soa.sel",
             "expected " + str(wsel) + ", decoded " + str(soa.sel[ai]));
      if (soa.tmpl[ai] != wtmpl)
        diag(src, at, "soa.tmpl",
             "expected " + str(wtmpl) + ", decoded " + str(soa.tmpl[ai]));
      if (soa.row_key0[ai] != wrow)
        diag(src, at, "soa.row_key",
             "expected " + str(wrow) + ", decoded " + str(soa.row_key0[ai]));
    }
    ++pc;
    ++rep.insts_verified;
  };

  const std::vector<ir::Inst>& insts = prog.insts();
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const ir::Inst& in = insts[i];
    const int src = static_cast<int>(i);
    switch (in.op) {
      case ir::Op::VLoad:
      case ir::Op::VStore: {
        const bool is_store = in.op == ir::Op::VStore;
        const ir::MemRef& m = in.mem;
        PlanInst want;
        want.kind = mem_kind(m, is_store);
        want.grid = static_cast<std::uint8_t>(m.grid);
        if (is_store)
          want.a = static_cast<std::uint32_t>(in.a) * W;
        else
          want.dst = static_cast<std::uint32_t>(in.dst) * W;
        if (m.space == ir::Space::Spill) {
          want.idx0 = static_cast<std::int64_t>(m.slot) * W;
        } else if (m.space == ir::Space::Array) {
          const simt::GridBinding& gb =
              kernel.grids[static_cast<std::size_t>(m.grid)];
          const Vec3 e0{gb.ghost.i + m.di, gb.ghost.j + m.dj,
                        gb.ghost.k + m.dk};
          want.idx0 = linear_index(e0, gb.padded);
          want.row_key0 = (1ull << 62) |
                          (static_cast<std::uint64_t>(m.grid) << 56) |
                          (static_cast<std::uint64_t>(e0.k) << 28) |
                          static_cast<std::uint64_t>(e0.j);
          want.bypass_candidate = !is_store && m.vectorized;
          // Re-prove the whole-launch bounds the decoder hoisted out of
          // the replay loop.
          ++rep.bounds_checked;
          if (want.idx0 < 0)
            diag(src, static_cast<int>(pc), "bounds",
                 "array access before the buffer (idx0 " + str(want.idx0) +
                     ")");
          else if (gb.data != nullptr &&
                   want.idx0 + max_block_offset(gb) + W >
                       static_cast<std::int64_t>(gb.len))
            diag(src, static_cast<int>(pc), "bounds",
                 "array access out of bounds at the far-corner block");
        } else {
          const simt::GridBinding& gb =
              kernel.grids[static_cast<std::size_t>(m.grid)];
          want.nbr_code = static_cast<std::uint8_t>(
              (m.nbr_dk + 1) * 9 + (m.nbr_dj + 1) * 3 + (m.nbr_di + 1));
          want.idx0 =
              (static_cast<std::int64_t>(m.vk) * gb.brick_dims.j + m.vj) *
                  gb.brick_dims.i +
              static_cast<std::int64_t>(m.vi) * W;
        }
        expect(src, want);
        break;
      }
      case ir::Op::VAlign: {
        if (functional) {
          PlanInst want;
          want.kind = PKind::Align;
          want.dst = static_cast<std::uint32_t>(in.dst) * W;
          want.a = static_cast<std::uint32_t>(in.a) * W;
          want.b = static_cast<std::uint32_t>(in.b) * W;
          want.shift_or_iops = in.shift;
          expect(src, want);
        } else {
          alu.shuffle_lanes += W * kernel.shuffle_cost_mult;
          ++alu.warp_insts;
        }
        break;
      }
      case ir::Op::VAddV:
      case ir::Op::VMulV:
      case ir::Op::VMulC:
      case ir::Op::VFmaV:
      case ir::Op::VFmaC:
      case ir::Op::VSetC:
      case ir::Op::VZero: {
        if (functional) {
          PlanInst want;
          want.kind = alu_kind(in.op);
          want.dst = static_cast<std::uint32_t>(in.dst) * W;
          if (in.a >= 0) want.a = static_cast<std::uint32_t>(in.a) * W;
          if (in.b >= 0) want.b = static_cast<std::uint32_t>(in.b) * W;
          if (in.c >= 0) want.c = static_cast<std::uint32_t>(in.c) * W;
          if (in.cidx >= 0)
            want.cv = kernel.constants[static_cast<std::size_t>(in.cidx)];
          expect(src, want);
        } else {
          alu.fp_lanes += W;
          ++alu.warp_insts;
          if (in.op == ir::Op::VAddV || in.op == ir::Op::VMulV ||
              in.op == ir::Op::VMulC)
            alu.flops += W;
          else if (in.op == ir::Op::VFmaV || in.op == ir::Op::VFmaC)
            alu.flops += 2ull * W;
        }
        break;
      }
      case ir::Op::IOp: {
        if (functional) {
          PlanInst want;
          want.kind = PKind::IOp;
          want.shift_or_iops = in.iops;
          expect(src, want);
        } else {
          alu.int_lanes += static_cast<double>(in.iops) * W;
          alu.warp_insts += in.iops;
        }
        break;
      }
    }
  }

  if (pc != stream.size())
    diag(-1, static_cast<int>(pc), "stream",
         str(stream.size() - pc) +
             " trailing decoded instructions with no source instruction");

  if (!functional) {
    const ExecPlan::AluAggregates& got = plan.alu();
    if (alu.fp_lanes != got.fp_lanes)
      diag(-1, -1, "alu.fp_lanes",
           "expected " + str(alu.fp_lanes) + ", decoded " +
               str(got.fp_lanes));
    if (alu.int_lanes != got.int_lanes)
      diag(-1, -1, "alu.int_lanes",
           "expected " + str(alu.int_lanes) + ", decoded " +
               str(got.int_lanes));
    if (alu.shuffle_lanes != got.shuffle_lanes)
      diag(-1, -1, "alu.shuffle_lanes",
           "expected " + str(alu.shuffle_lanes) + ", decoded " +
               str(got.shuffle_lanes));
    if (alu.flops != got.flops)
      diag(-1, -1, "alu.flops",
           "expected " + str(alu.flops) + ", decoded " + str(got.flops));
    if (alu.warp_insts != got.warp_insts)
      diag(-1, -1, "alu.warp_insts",
           "expected " + str(alu.warp_insts) + ", decoded " +
               str(got.warp_insts));

    // Block classes and congruence lumping: re-derive both decode products
    // from the source program, the binding tables and the architecture --
    // the same inputs the decoder consumed, none of its code.
    const long total_blocks = kernel.blocks.volume();
    bool any_mem = false;
    std::vector<std::uint8_t> array_used(kernel.grids.size(), 0);
    std::vector<std::uint8_t> brick_used(kernel.grids.size(), 0);
    std::vector<std::pair<int, int>> brick_codes;  // used (grid, code)
    for (const ir::Inst& in : insts) {
      if (in.op != ir::Op::VLoad && in.op != ir::Op::VStore) continue;
      const ir::MemRef& m = in.mem;
      if (m.space == ir::Space::Array) {
        any_mem = true;
        array_used[static_cast<std::size_t>(m.grid)] = 1;
      } else if (m.space == ir::Space::Brick) {
        any_mem = true;
        brick_used[static_cast<std::size_t>(m.grid)] = 1;
        const int code =
            (m.nbr_dk + 1) * 9 + (m.nbr_dj + 1) * 3 + (m.nbr_di + 1);
        bool seen = false;
        for (const auto& [g2, c2] : brick_codes)
          seen |= g2 == m.grid && c2 == code;
        if (!seen) brick_codes.emplace_back(m.grid, code);
      }
    }

    // Corner blocks: adjacency deviates from block 0's canonical delta on
    // any used off-center code.
    std::uint64_t corners = 0;
    bool corner_map_ok = true;
    if (!brick_codes.empty()) {
      for (long b = 0; b < total_blocks; ++b) {
        bool corner = false;
        for (const auto& [g2, code] : brick_codes) {
          if (code == 13) continue;
          const simt::GridBinding& gb =
              kernel.grids[static_cast<std::size_t>(g2)];
          const std::uint32_t b0 = gb.block_to_brick[0];
          const std::int64_t canon =
              static_cast<std::int64_t>(
                  gb.adjacency[static_cast<std::size_t>(b0) * 27 +
                               static_cast<std::size_t>(code)]) -
              b0;
          const std::uint32_t bid =
              gb.block_to_brick[static_cast<std::size_t>(b)];
          if (static_cast<std::int64_t>(
                  gb.adjacency[static_cast<std::size_t>(bid) * 27 +
                               static_cast<std::size_t>(code)]) !=
              static_cast<std::int64_t>(bid) + canon) {
            corner = true;
            break;
          }
        }
        corners += corner ? 1 : 0;
        corner_map_ok &= plan.block_is_corner(b) == corner;
      }
    }
    if (plan.num_corner_blocks() != corners)
      diag(-1, -1, "classes.corner",
           "expected " + str(corners) + " corner blocks, decoded " +
               str(plan.num_corner_blocks()));
    else if (!corner_map_ok)
      diag(-1, -1, "classes.corner_map",
           "per-block corner classification diverged");

    // Congruence lump width and byte delta (all-or-nothing eligibility).
    const arch::GpuArch& arch = plan.arch();
    long want_g = std::gcd(static_cast<long>(kernel.blocks.i),
                           static_cast<long>(arch.num_cores));
    want_g = std::gcd(
        want_g, std::min<long>(arch.max_resident_blocks(), total_blocks));
    std::int64_t du = 0;
    bool eligible = want_g >= 2 && any_mem;
    auto note_delta = [&](std::int64_t d) {
      if (d <= 0 || (du != 0 && du != d)) eligible = false;
      else du = d;
    };
    for (std::size_t g2 = 0; g2 < kernel.grids.size(); ++g2) {
      const simt::GridBinding& gb = kernel.grids[g2];
      if (array_used[g2]) note_delta(kernel.tile.i);
      if (brick_used[g2]) note_delta(gb.elems_per_brick);
    }
    const std::uint64_t du_bytes =
        static_cast<std::uint64_t>(du > 0 ? du : 0) * kElemBytes;
    if (eligible &&
        (du_bytes % static_cast<std::uint64_t>(arch.l1.line_bytes) != 0 ||
         du_bytes % static_cast<std::uint64_t>(arch.l1.sector_bytes) != 0 ||
         du_bytes % static_cast<std::uint64_t>(W * kElemBytes) != 0))
      eligible = false;
    for (std::size_t g2 = 0; eligible && g2 < kernel.grids.size(); ++g2) {
      if (!brick_used[g2]) continue;
      const simt::GridBinding& gb = kernel.grids[g2];
      for (long b0 = 0; eligible && b0 < total_blocks; b0 += want_g)
        for (long r = 1; r < want_g; ++r)
          if (gb.block_to_brick[static_cast<std::size_t>(b0 + r)] !=
              gb.block_to_brick[static_cast<std::size_t>(b0)] +
                  static_cast<std::uint32_t>(r)) {
            eligible = false;
            break;
          }
    }
    for (const auto& [g2, code] : brick_codes) {
      if (!eligible) break;
      if (code == 13) continue;
      const simt::GridBinding& gb = kernel.grids[static_cast<std::size_t>(g2)];
      for (long b0 = 0; eligible && b0 < total_blocks; b0 += want_g)
        for (long r = 1; r < want_g; ++r) {
          const auto at = [&](long b) {
            return gb.adjacency[static_cast<std::size_t>(
                                    gb.block_to_brick[static_cast<std::size_t>(
                                        b)]) *
                                    27 +
                                static_cast<std::size_t>(code)];
          };
          if (at(b0 + r) != at(b0) + static_cast<std::uint32_t>(r)) {
            eligible = false;
            break;
          }
        }
    }
    const int exp_g = eligible ? static_cast<int>(want_g) : 1;
    const std::uint64_t exp_delta = eligible ? du_bytes : 0;
    if (plan.lump_factor() != exp_g)
      diag(-1, -1, "lump.G",
           "expected " + str(exp_g) + ", decoded " + str(plan.lump_factor()));
    if (plan.lump_delta_bytes() != exp_delta)
      diag(-1, -1, "lump.delta",
           "expected " + str(exp_delta) + " bytes, decoded " +
               str(plan.lump_delta_bytes()));
  }

  return rep;
}

void enforce_plan(const PlanReport& report, const std::string& context) {
  if (report.ok()) return;
  throw Error("plan verification failed for " + context + " (" +
              std::to_string(report.diags.size()) + " divergence(s)):\n" +
              report.to_string());
}

}  // namespace bricksim::analysis
