// brickcheck: static verification of vector-IR kernels.
//
// Nothing downstream of codegen re-derives what a program *may* touch; the
// SIMT machine simply executes it.  A codegen bug (bad adjacency
// displacement, read-before-def register, a store that escapes its block's
// tile, a misaligned vectorised load on an architecture that requires
// alignment) would silently corrupt both values and counters -- and every
// Roofline number built on them.  brickcheck closes that gap: it analyses an
// ir::Program SYMBOLICALLY against a launch geometry, covering all blocks of
// the grid at once (every address is affine in the block coordinates, so the
// extreme blocks bound every block), and reports structured diagnostics.
//
// Four check families:
//  * bounds    -- array refs stay inside the padded extents for every block;
//                 brick refs use displacements in {-1,0,+1} and in-brick
//                 coordinates inside brick_dims.
//  * dataflow  -- def-before-use on vector registers; spill-slot hygiene
//                 (read-before-write, dead stores, double-spill).
//  * race      -- concurrent blocks of one launch must have disjoint write
//                 sets, and must never read another block's portion of a
//                 grid the kernel writes (out-of-place stencils are clean by
//                 construction; anything else is flagged).
//  * alignment -- vectorised accesses whose lane-0 element is not W-aligned,
//                 flagged only where the architecture's lowering requires
//                 natural alignment (arch::GpuArch::requires_aligned_vloads).
//
// Wiring: codegen::lower runs the launch-free checks as a mandatory
// post-emit gate (throws on any error); model::Launcher runs the full
// geometry-aware pass before every launch under a CheckMode (strict = throw,
// warn = print to stderr, off = skip); pass statistics flow through
// model::LaunchResult into profiler::Measurement and metrics::.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "ir/program.h"

namespace bricksim::analysis {

/// Check family a diagnostic belongs to.
enum class Check : std::uint8_t { Bounds, Dataflow, Race, Alignment };
inline constexpr int kNumChecks = 4;

const char* check_name(Check c);

enum class Severity : std::uint8_t { Warning, Error };

/// One finding: which check fired, how bad, where, and why.
struct Diagnostic {
  Check check = Check::Bounds;
  Severity severity = Severity::Error;
  int inst = -1;  ///< instruction index in the program; -1 = program-level
  std::string message;

  /// Stable one-line rendering: "error[bounds] inst 12: <message>".
  std::string to_string() const;
};

/// Layout of one grid binding, as the checker needs it.  Exactly one of the
/// two layout descriptions is meaningful, selected by `layout`.
struct GridGeom {
  ir::Space layout = ir::Space::Array;  ///< Array or Brick (never Spill)

  // Array layout: allocated extents and the element offset of the interior
  // origin (matches simt::GridBinding).
  Vec3 padded{};
  Vec3 ghost{};

  // Brick layout: extents of one brick (BI = f * W, BJ, BK).
  Vec3 brick_dims{};
};

/// Everything about a launch the checker consumes.  Mirrors simt::Kernel
/// minus the data; buildable at codegen time with a representative grid.
struct LaunchGeom {
  Vec3 blocks{1, 1, 1};  ///< thread-block grid extents
  Vec3 tile{};           ///< elements per block: (f * W, TJ, TK)
  std::vector<GridGeom> grids;  ///< one per IR grid slot
  /// The target lowering requires vectorised loads/stores to be naturally
  /// aligned (lane 0 at a W-element boundary); unaligned ones become
  /// alignment errors instead of modelled slow paths.
  bool require_aligned_vloads = false;
};

/// Aggregate pass statistics (accumulable across launches).
struct CheckStats {
  long programs = 0;   ///< programs checked
  long insts = 0;      ///< instructions scanned
  long errors = 0;
  long warnings = 0;
  long by_check[kNumChecks] = {0, 0, 0, 0};  ///< diagnostics per family

  CheckStats& operator+=(const CheckStats& o);
};

/// Result of one brickcheck run.
struct Report {
  std::vector<Diagnostic> diags;
  CheckStats stats;

  bool ok() const { return stats.errors == 0; }       ///< no errors
  bool clean() const { return diags.empty(); }        ///< no diagnostics
  /// All diagnostics, one per line (empty string when clean).
  std::string to_string() const;
};

/// Launch-free verification: dataflow (registers, spill slots, constants,
/// align shifts) plus the structural brick-space invariants that need no
/// geometry (displacements in {-1,0,+1}, non-negative in-brick coords).
/// This is the mandatory post-emit gate codegen runs on every lowering.
Report check_program(const ir::Program& prog);

/// Full verification of `prog` against a concrete launch geometry: all of
/// check_program plus bounds, race and alignment analysis across every
/// block of the grid (symbolic -- nothing is executed).
Report check(const ir::Program& prog, const LaunchGeom& geom);

/// Enforcement policy for a Report (the harness `--check` flag).
enum class CheckMode : std::uint8_t { Off, Warn, Strict };

const char* check_mode_name(CheckMode m);
/// Parses "off" / "warn" / "strict"; throws bricksim::Error otherwise.
CheckMode parse_check_mode(const std::string& s);

/// Applies `mode`: Strict throws bricksim::Error listing every diagnostic
/// when the report has errors; Warn prints all diagnostics to stderr;
/// Off does nothing.  `context` prefixes the output ("5pt/bricks codegen").
void enforce(const Report& report, CheckMode mode, const std::string& context);

}  // namespace bricksim::analysis
