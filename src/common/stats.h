// Small statistics helpers used by the metrics and roofline modules.
#pragma once

#include <span>

namespace bricksim {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Harmonic mean; 0 if the input is empty or any element is <= 0
/// (matching the Pennycook performance-portability convention that an
/// unsupported platform zeroes the whole metric).
double harmonic_mean(std::span<const double> xs);

/// Sample minimum / maximum; 0 for an empty input.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Sample standard deviation (Bessel-corrected, divides by n-1: the inputs
/// are repeated measurements of a larger population, not the population
/// itself); 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length samples; 0 when
/// either side has zero variance or the spans are empty/mismatched.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Geometric mean; 0 if empty or any element <= 0.
double geomean(std::span<const double> xs);

}  // namespace bricksim
