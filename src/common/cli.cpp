#include "common/cli.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace bricksim {

Cli::Cli(int argc, const char* const* argv,
         std::map<std::string, std::string> known)
    : known_(std::move(known)) {
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0)
      throw UsageError("expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string name = arg, value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (a + 1 < argc && std::string(argv[a + 1]).rfind("--", 0) != 0) {
      // The next argv is this flag's value unless it is itself a flag.
      // Flags always carry the "--" prefix, so a lone negative number
      // ("--shift -3") is a value, not a flag.  A value-bearing flag at
      // argv end gets an empty value, which get_long/get_double reject.
      value = argv[++a];
    }
    if (known_.count(name) == 0) throw UsageError("unknown flag: --" + name);
    values_[name] = value;
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) != 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Cli::get_long(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno != 0)
    throw UsageError("--" + name + " expects an integer, got: '" + s + "'");
  return v;
}

long Cli::get_long_min(const std::string& name, long fallback,
                       long min) const {
  const long v = get_long(name, fallback);
  if (has(name) && v < min)
    throw UsageError("--" + name + " must be >= " + std::to_string(min) +
                     ", got: " + std::to_string(v));
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno != 0)
    throw UsageError("--" + name + " expects a number, got: '" + s + "'");
  return v;
}

std::string Cli::get_choice(const std::string& name,
                            std::initializer_list<const char*> allowed,
                            const std::string& fallback) const {
  const std::string value = get(name, fallback);
  std::string choices;
  for (const char* a : allowed) {
    if (value == a) return value;
    choices += std::string(choices.empty() ? "" : "|") + a;
  }
  throw UsageError("--" + name + " must be one of " + choices +
                   ", got: " + value);
}

std::string Cli::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--flag value]...\n";
  for (const auto& [name, doc] : known_) os << "  --" << name << "  " << doc << "\n";
  return os.str();
}

}  // namespace bricksim
