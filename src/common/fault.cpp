#include "common/fault.h"

#include <mutex>

#include "common/error.h"

namespace bricksim::fault {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "cache.write.torn", "cache.write.rename", "cache.read.short",
    "cache.read.corrupt", "roofline", "launch", "emit",
    "lease.steal", "conn.drop", "client.slow",
};

struct Injector {
  std::mutex mu;
  FaultPlan plan;
  std::vector<long> clause_hits;   // matching hits per plan clause
  long site_hits[kNumSites] = {};  // raw hits per site
};

Injector& injector() {
  static Injector inj;
  return inj;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

const char* site_name(Site site) {
  return kSiteNames[static_cast<int>(site)];
}

std::optional<Site> parse_site(const std::string& name) {
  for (int s = 0; s < kNumSites; ++s)
    if (name == kSiteNames[s]) return static_cast<Site>(s);
  return std::nullopt;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) {
      if (pos > spec.size()) break;  // trailing end; empty clauses rejected
      BRICKSIM_REQUIRE(false, "fault spec: empty clause in '" + spec + "'");
    }
    if (clause.rfind("seed=", 0) == 0) {
      const std::string v = clause.substr(5);
      BRICKSIM_REQUIRE(!v.empty() &&
                           v.find_first_not_of("0123456789") ==
                               std::string::npos,
                       "fault spec: bad seed in '" + clause + "'");
      plan.seed = std::stoull(v);
      continue;
    }
    Clause c;
    std::string head = clause;
    const std::size_t at = head.rfind('@');
    BRICKSIM_REQUIRE(at != std::string::npos,
                     "fault spec: clause '" + clause +
                         "' is missing '@<nth>' (e.g. launch@1)");
    std::string nth = head.substr(at + 1);
    head = head.substr(0, at);
    if (!nth.empty() && nth.back() == '+') {
      c.persistent = true;
      nth.pop_back();
    }
    BRICKSIM_REQUIRE(!nth.empty() &&
                         nth.find_first_not_of("0123456789") ==
                             std::string::npos,
                     "fault spec: bad hit index in '" + clause + "'");
    c.nth = std::stol(nth);
    BRICKSIM_REQUIRE(c.nth >= 1,
                     "fault spec: hit index must be >= 1 in '" + clause +
                         "'");
    if (const std::size_t lb = head.find('[');
        lb != std::string::npos) {
      BRICKSIM_REQUIRE(head.back() == ']',
                       "fault spec: unterminated '[' in '" + clause + "'");
      c.match = head.substr(lb + 1, head.size() - lb - 2);
      head = head.substr(0, lb);
    }
    const auto site = parse_site(head);
    BRICKSIM_REQUIRE(site.has_value(),
                     "fault spec: unknown site '" + head + "' in '" +
                         clause + "'");
    c.site = *site;
    plan.clauses.push_back(std::move(c));
  }
  return plan;
}

void arm(FaultPlan plan) {
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  inj.plan = std::move(plan);
  inj.clause_hits.assign(inj.plan.clauses.size(), 0);
  for (long& h : inj.site_hits) h = 0;
  detail::g_armed.store(!inj.plan.empty(), std::memory_order_relaxed);
}

void disarm() {
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  inj.plan = FaultPlan{};
  inj.clause_hits.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

bool fire(Site site, const std::string& context) {
  if (!armed()) return false;
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  ++inj.site_hits[static_cast<int>(site)];
  bool fired = false;
  for (std::size_t c = 0; c < inj.plan.clauses.size(); ++c) {
    const FaultPlan::Clause& cl = inj.plan.clauses[c];
    if (cl.site != site) continue;
    if (!cl.match.empty() && context.find(cl.match) == std::string::npos)
      continue;
    const long hit = ++inj.clause_hits[c];
    if (hit == cl.nth || (cl.persistent && hit > cl.nth)) fired = true;
  }
  return fired;
}

void throw_if(Site site, const std::string& context) {
  if (fire(site, context))
    throw Error(std::string("fault injected: ") + site_name(site) +
                (context.empty() ? "" : " " + context));
}

std::string mutate(Site site, const std::string& payload) {
  if (payload.empty()) return payload;
  std::uint64_t seed;
  {
    Injector& inj = injector();
    std::lock_guard<std::mutex> lock(inj.mu);
    seed = inj.plan.seed;
  }
  const std::uint64_t r = splitmix64(
      seed ^ splitmix64(static_cast<std::uint64_t>(site) * 2654435761ull +
                        payload.size()));
  std::string out = payload;
  switch (site) {
    case Site::CacheWriteTorn:
    case Site::CacheReadShort:
      out.resize(static_cast<std::size_t>(r % payload.size()));  // proper prefix
      break;
    case Site::CacheReadCorrupt:
      out[static_cast<std::size_t>(r % payload.size())] ^=
          static_cast<char>(0xFF);  // always changes the byte
      break;
    default:
      break;  // throwing sites have no payload to mutate
  }
  return out;
}

long hits(Site site) {
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  return inj.site_hits[static_cast<int>(site)];
}

}  // namespace bricksim::fault
