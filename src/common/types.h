// Fundamental value and index types shared across every BrickSim module.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>

namespace bricksim {

/// Element type of all grids (the paper evaluates double precision only).
using bElem = double;

/// Size of one grid element in bytes.
inline constexpr int kElemBytes = sizeof(bElem);

/// A 3D integer coordinate or extent.  Convention throughout BrickSim:
/// component 0 is `i` (unit stride / SIMD dimension), 1 is `j`, 2 is `k`.
struct Vec3 {
  int i = 0;
  int j = 0;
  int k = 0;

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {i + o.i, j + o.j, k + o.k};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {i - o.i, j - o.j, k - o.k};
  }
  constexpr Vec3 operator*(int s) const { return {i * s, j * s, k * s}; }

  /// Total number of points in the box [0,i) x [0,j) x [0,k).
  constexpr long volume() const {
    return static_cast<long>(i) * j * k;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.i << "," << v.j << "," << v.k << ")";
}

/// Lexicographic ordering so Vec3 can key ordered containers.
constexpr bool operator<(const Vec3& a, const Vec3& b) {
  if (a.k != b.k) return a.k < b.k;
  if (a.j != b.j) return a.j < b.j;
  return a.i < b.i;
}

/// Row-major (k outermost, i innermost) linear index of `p` in extent `n`.
constexpr long linear_index(const Vec3& p, const Vec3& n) {
  return (static_cast<long>(p.k) * n.j + p.j) * n.i + p.i;
}

}  // namespace bricksim
