// Cooperative shutdown: one process-wide flag set from SIGINT/SIGTERM.
//
// Two clients with different drain semantics share this module:
//
//  * The CLI driver (`bricksim run|all`) installs the handler and threads
//    the flag into every sweep as a cancellation token
//    (SweepConfig::cancel): workers finish the config they are on --
//    which checkpoints it as a resume shard -- and simply stop claiming
//    new ones.  The partial run is never stored as a full cache entry,
//    its shards stay on disk for `--resume`, and the driver exits with
//    the conventional 128+signo code (130 for SIGINT, 143 for SIGTERM)
//    instead of dying mid-write and leaving a torn run directory.
//
//  * `bricksim serve` installs the handler but does NOT cancel sweeps:
//    a service drains -- it stops accepting work, lets every in-flight
//    sweep complete and reply, then exits 0.  The server waits on
//    shutdown_fd() (a self-pipe) from its poll loop rather than
//    spinning on the flag.
//
// The handler is async-signal-safe: it stores the signal number in an
// atomic and writes one byte to a pipe, nothing else.
#pragma once

#include <atomic>

namespace bricksim {

/// Installs the SIGINT/SIGTERM handler (idempotent; first call wins).
void install_shutdown_handler();

/// The cancellation flag the handler trips.  Stable address for the
/// lifetime of the process, so it can be wired into SweepConfig::cancel.
const std::atomic<bool>& shutdown_flag();

/// True once a shutdown signal (or a test request) has been received.
bool shutdown_requested();

/// The signal that tripped the flag (0 when none).
int shutdown_signal();

/// The conventional exit code for the received signal: 128 + signo
/// (130 for SIGINT, 143 for SIGTERM); 0 when no signal arrived.
int shutdown_exit_code();

/// Read end of the self-pipe the handler writes to; poll()-able by a
/// server loop.  Valid after install_shutdown_handler().
int shutdown_fd();

/// Trips the flag as if `signo` had been delivered (tests, and the
/// server's `shutdown` protocol op, which must drain exactly like
/// SIGTERM without involving a real signal).
void request_shutdown(int signo);

/// Clears the flag and drains the pipe so one test cannot poison the
/// next.  Test-only: real shutdowns are one-way.
void reset_shutdown_for_tests();

}  // namespace bricksim
