#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace bricksim::json {

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v < 0 ? "-Infinity" : "Infinity";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  BRICKSIM_ASSERT(res.ec == std::errc(), "to_chars(double) cannot fail");
  std::string s(buf, res.ptr);
  // to_chars emits integral doubles without a decimal point ("3"), which a
  // strict reader could take for an integer; that is fine here, as_double
  // accepts either spelling.
  return s;
}

double parse_double(const std::string& s) {
  if (s == "NaN") return std::nan("");
  if (s == "Infinity") return HUGE_VAL;
  if (s == "-Infinity") return -HUGE_VAL;
  double v = 0;
  const char* b = s.data();
  const char* e = s.data() + s.size();
  const auto res = std::from_chars(b, e, v);
  BRICKSIM_REQUIRE(res.ec == std::errc() && res.ptr == e,
                   "malformed number: '" + s + "'");
  return v;
}

bool Value::as_bool() const {
  BRICKSIM_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double Value::as_double() const {
  BRICKSIM_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return parse_double(text_);
}

long Value::as_long() const {
  BRICKSIM_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  long v = 0;
  const char* b = text_.data();
  const char* e = text_.data() + text_.size();
  const auto res = std::from_chars(b, e, v);
  BRICKSIM_REQUIRE(res.ec == std::errc() && res.ptr == e,
                   "JSON number is not a long: '" + text_ + "'");
  return v;
}

std::uint64_t Value::as_u64() const {
  BRICKSIM_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  std::uint64_t v = 0;
  const char* b = text_.data();
  const char* e = text_.data() + text_.size();
  const auto res = std::from_chars(b, e, v);
  BRICKSIM_REQUIRE(res.ec == std::errc() && res.ptr == e,
                   "JSON number is not a uint64: '" + text_ + "'");
  return v;
}

const std::string& Value::as_string() const {
  BRICKSIM_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
  return text_;
}

const std::string& Value::number_text() const {
  BRICKSIM_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return text_;
}

void Value::push_back(Value v) {
  BRICKSIM_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  BRICKSIM_REQUIRE(false, "JSON value has no size");
  return 0;
}

const Value& Value::operator[](std::size_t i) const {
  BRICKSIM_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
  BRICKSIM_REQUIRE(i < arr_.size(), "JSON array index out of range");
  return arr_[i];
}

Value& Value::operator[](const std::string& key) {
  BRICKSIM_REQUIRE(kind_ == Kind::Object || kind_ == Kind::Null,
                   "JSON value is not an object");
  kind_ = Kind::Object;
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(key, Value());
  return obj_.back().second;
}

const Value& Value::at(const std::string& key) const {
  BRICKSIM_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  for (const auto& [k, v] : obj_)
    if (k == key) return v;
  BRICKSIM_REQUIRE(false, "JSON object has no member '" + key + "'");
  return obj_.front().second;  // unreachable
}

bool Value::contains(const std::string& key) const {
  if (kind_ != Kind::Object) return false;
  for (const auto& [k, v] : obj_)
    if (k == key) return true;
  return false;
}

const std::vector<std::pair<std::string, Value>>& Value::items() const {
  BRICKSIM_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  return obj_;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += text_; break;
    case Kind::String: append_escaped(out, text_); break;
    case Kind::Array: {
      if (arr_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, obj_[i].first);
        out += ':';
        if (indent >= 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    require(pos_ == s_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) +
                ": " + msg);
  }
  void require(bool cond, const char* msg) const {
    if (!cond) fail(msg);
  }
  char peek() {
    require(pos_ < s_.size(), "unexpected end of input");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        require(consume_literal("true"), "invalid literal");
        return Value(true);
      case 'f':
        require(consume_literal("false"), "invalid literal");
        return Value(false);
      case 'n':
        require(consume_literal("null"), "invalid literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    take();  // '{'
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') { take(); return v; }
    while (true) {
      skip_ws();
      require(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      require(take() == ':', "expected ':' after object key");
      require(!v.contains(key), "duplicate object key");
      v[key] = parse_value();
      skip_ws();
      const char sep = take();
      if (sep == '}') return v;
      require(sep == ',', "expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    take();  // '['
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') { take(); return v; }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      const char sep = take();
      if (sep == ']') return v;
      require(sep == ',', "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20,
                "unescaped control character in string");
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (surrogate pairs unsupported; the writer never
          // emits them -- it only escapes ASCII control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    // Non-standard non-finite tokens first (see header).
    const std::size_t start = pos_;
    if (consume_literal("NaN") || consume_literal("Infinity") ||
        consume_literal("-Infinity"))
      return Value(parse_double(s_.substr(start, pos_ - start)));
    if (peek() == '-') take();
    require(pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9',
            "expected digit");
    const std::size_t int_start = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    require(s_[int_start] != '0' || pos_ == int_start + 1,
            "leading zeros are not valid JSON");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      require(pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9',
              "expected digit after '.'");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      require(pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9',
              "expected digit in exponent");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    return token_value(s_.substr(start, pos_ - start));
  }

  static Value token_value(const std::string& text);

  const std::string& s_;
  std::size_t pos_ = 0;
};

Value Parser::token_value(const std::string& text) {
  // Integer tokens round-trip as integers (exact text); everything else
  // becomes a double.  "-0" must stay a double so the sign survives.
  const bool integral =
      text.find_first_of(".eE") == std::string::npos && text != "-0";
  if (integral) {
    long l = 0;
    const char* b = text.data();
    const char* e = text.data() + text.size();
    auto res = std::from_chars(b, e, l);
    if (res.ec == std::errc() && res.ptr == e) return Value(l);
    std::uint64_t u = 0;
    res = std::from_chars(b, e, u);
    if (res.ec == std::errc() && res.ptr == e) return Value(u);
  }
  return Value(parse_double(text));
}

}  // namespace

Value Value::parse(const std::string& text) {
  Parser p(text);
  return p.parse_document();
}

}  // namespace bricksim::json
