#include "common/shutdown.h"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

namespace bricksim {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};
std::atomic<bool> g_installed{false};
int g_pipe[2] = {-1, -1};

extern "C" void bricksim_shutdown_handler(int signo) {
  // Async-signal-safe: an atomic store and one pipe write, nothing else.
  int expected = 0;
  g_signal.compare_exchange_strong(expected, signo);
  g_requested.store(true);
  if (g_pipe[1] >= 0) {
    const char byte = 1;
    // A full pipe just means a wakeup is already pending.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

}  // namespace

void install_shutdown_handler() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  if (::pipe(g_pipe) != 0) {
    g_pipe[0] = g_pipe[1] = -1;
  } else {
    // Non-blocking both ways: the handler must never block on a full
    // pipe, and reset_shutdown_for_tests drains without hanging.
    ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
  }
  struct sigaction sa = {};
  sa.sa_handler = bricksim_shutdown_handler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocking reads (the server's accept/recv) must return
  // EINTR so the drain starts promptly.
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

const std::atomic<bool>& shutdown_flag() { return g_requested; }

bool shutdown_requested() { return g_requested.load(); }

int shutdown_signal() { return g_signal.load(); }

int shutdown_exit_code() {
  const int s = g_signal.load();
  return s == 0 ? 0 : 128 + s;
}

int shutdown_fd() { return g_pipe[0]; }

void request_shutdown(int signo) {
  int expected = 0;
  g_signal.compare_exchange_strong(expected, signo);
  g_requested.store(true);
  if (g_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

void reset_shutdown_for_tests() {
  g_requested.store(false);
  g_signal.store(0);
  if (g_pipe[0] >= 0) {
    char buf[64];
    while (::read(g_pipe[0], buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace bricksim
