// Deterministic, seedable random number generation.
//
// Experiments must be bit-reproducible across runs, so every module that
// needs randomness takes an explicit SplitMix64 generator rather than using
// global state.
#pragma once

#include <cstdint>

namespace bricksim {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
/// Suitable for seeding and for filling grids with test data; not for
/// cryptography.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace bricksim
