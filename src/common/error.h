// Error handling for BrickSim.
//
// The library is exception-based: violated preconditions and invariants throw
// bricksim::Error with a formatted message.  BRICKSIM_REQUIRE is used for
// user-facing precondition checks (always on); BRICKSIM_ASSERT for internal
// invariants (also always on -- the simulator is not in any inner loop hot
// enough for them to matter, and silent corruption of counters would
// invalidate every experiment built on top).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bricksim {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A command-line usage error: a malformed flag, an out-of-range value, an
/// unknown option.  Subclasses Error so existing catch sites keep working;
/// drivers distinguish it to exit 2 (usage) instead of 1 (hard error),
/// matching the Unix convention the test suite asserts on.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// A cooperative shutdown (SIGINT/SIGTERM) observed mid-run: the work was
/// neither completed nor failed -- it was deliberately cut short with its
/// resume shards intact.  Subclasses Error so generic catch sites keep
/// working; the driver distinguishes it to exit 128+signo instead of
/// marking experiments failed (common/shutdown.h).
class Interrupted : public Error {
 public:
  explicit Interrupted(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace bricksim

#define BRICKSIM_REQUIRE(cond, msg)                                       \
  do {                                                                    \
    if (!(cond))                                                          \
      ::bricksim::detail::raise("precondition", #cond, __FILE__,          \
                                __LINE__, (msg));                         \
  } while (0)

#define BRICKSIM_ASSERT(cond, msg)                                        \
  do {                                                                    \
    if (!(cond))                                                          \
      ::bricksim::detail::raise("invariant", #cond, __FILE__, __LINE__,   \
                                (msg));                                   \
  } while (0)
