// Minimal JSON: an insertion-ordered value tree, a strict parser, and a
// writer whose number formatting is lossless for doubles.
//
// Built for the structured result artifacts and the content-addressed sweep
// cache (DESIGN.md "One driver"): every Measurement, Roofline and Table the
// harness emits round-trips through this module bit-exactly, so a cached
// sweep replays *identically* to a fresh simulation.  Design choices that
// follow from that contract:
//
//  * Numbers are stored as their canonical text.  A double is formatted
//    with the shortest decimal that round-trips (std::to_chars), an integer
//    as plain decimal; parsing keeps the token text verbatim.  Dump-parse
//    therefore preserves numbers exactly, without float compare tolerance.
//  * Object members keep insertion order, so serialization is deterministic
//    and cache files diff cleanly.
//  * Non-finite doubles are written as the non-standard tokens NaN /
//    Infinity / -Infinity (accepted back by the parser) rather than
//    corrupting the value to null; finite-only data never produces them.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bricksim::json {

/// Shortest decimal formatting of `v` that parses back to the exact same
/// bits (finite values; NaN/Infinity/-Infinity tokens otherwise).
std::string format_double(double v);

/// Inverse of format_double; throws bricksim::Error on malformed input.
double parse_double(const std::string& s);

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(double v) : kind_(Kind::Number), text_(format_double(v)) {}
  Value(int v) : kind_(Kind::Number), text_(std::to_string(v)) {}
  Value(long v) : kind_(Kind::Number), text_(std::to_string(v)) {}
  Value(long long v) : kind_(Kind::Number), text_(std::to_string(v)) {}
  Value(unsigned long v) : kind_(Kind::Number), text_(std::to_string(v)) {}
  Value(unsigned long long v)
      : kind_(Kind::Number), text_(std::to_string(v)) {}
  Value(std::string s) : kind_(Kind::String), text_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::String), text_(s) {}

  static Value array() { Value v; v.kind_ = Kind::Array; return v; }
  static Value object() { Value v; v.kind_ = Kind::Object; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  // Typed access; each throws bricksim::Error on a kind mismatch.
  bool as_bool() const;
  double as_double() const;
  long as_long() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  /// The verbatim number token (Kind::Number only).
  const std::string& number_text() const;

  // Arrays.
  void push_back(Value v);
  std::size_t size() const;
  const Value& operator[](std::size_t i) const;

  // Objects (insertion-ordered).
  Value& operator[](const std::string& key);  ///< inserts null when missing
  const Value& at(const std::string& key) const;  ///< throws when missing
  bool contains(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& items() const;

  /// Serializes; indent < 0 is compact, otherwise pretty with `indent`
  /// spaces per level.  Deterministic: member order is insertion order,
  /// number text is canonical.
  std::string dump(int indent = -1) const;

  /// Strict parse of one JSON document (plus the non-finite tokens above);
  /// throws bricksim::Error with an offset on malformed input.
  static Value parse(const std::string& text);

  /// Structural equality; numbers compare by canonical text.
  friend bool operator==(const Value&, const Value&) = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string text_;  ///< string payload or number token
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

}  // namespace bricksim::json
