// Aligned ASCII table, CSV and JSON emitters.
//
// Every experiment regenerating one of the paper's tables or figures
// prints a human-readable aligned table to stdout and can dump the same
// rows as CSV for plotting; the bricksim driver additionally persists each
// table as a lossless JSON artifact (see harness/registry.h).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"

namespace bricksim {

/// A simple rectangular table: a header row plus data rows of strings.
/// Columns are right-aligned except the first (row label), which is
/// left-aligned, matching typical numeric-table layout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row.  The row must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  /// Formats a value as a percentage string such as "61%".
  static std::string pct(double fraction, int precision = 0);

  /// Prints as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Prints as RFC 4180 CSV: fields containing a comma, quote, or newline
  /// are wrapped in double quotes with embedded quotes doubled (stencil
  /// labels such as "cube, r=2" must not shear columns).
  void print_csv(std::ostream& os) const;

  /// Lossless JSON round trip: {"header": [...], "rows": [[...], ...]}.
  json::Value to_json() const;
  static Table from_json(const json::Value& v);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t r) const { return rows_[r]; }

  friend bool operator==(const Table&, const Table&) = default;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bricksim
