// Deterministic, seeded fault injection for robustness testing.
//
// Production sweep runners are only trustworthy if their failure paths are
// exercised; this module makes every failure path reachable on demand and
// bit-reproducible.  A FaultPlan -- parsed from `--fault-inject=SPEC` or
// $BRICKSIM_FAULT_INJECT -- names *sites* (fixed instrumentation points in
// cache I/O, kernel launch, and emitter dispatch) and which hit of each
// site should fail.  Disabled cost is a single relaxed atomic load per
// site; armed behaviour is a pure function of (plan, hit sequence), so a
// seeded plan reproduces the same torn byte or thrown launch every run.
//
// SPEC grammar (comma-separated clauses):
//   seed=<uint64>            RNG seed for payload mutation (default 1)
//   <site>@<nth>             fire on the nth hit of the site (1-based)
//   <site>@<nth>+            fire on every hit from the nth on
//   <site>[<substr>]@<nth>   count only hits whose context contains
//                            <substr> (a context is e.g. the cache path or
//                            "A100/CUDA 125pt bricks codegen" for a launch)
//
// Sites:
//   cache.write.torn    persist a truncated payload at the final path
//                       (simulates a crash mid-persist; detected later by
//                       the checksum line)
//   cache.write.rename  the tmp -> final rename fails (store is dropped
//                       with a warning; the sweep itself continues)
//   cache.read.short    the read observes only a prefix of the file
//   cache.read.corrupt  the read observes one flipped byte (seeded)
//   roofline            the mixbench roofline derivation throws
//   launch              the kernel launch throws bricksim::Error
//   emit                the experiment emitter throws bricksim::Error
//   lease.steal         a live sweep lease is treated as stale and stolen
//                       (harness/lease.h; context is the fingerprint)
//   conn.drop           the server drops the connection instead of replying
//                       (serve/server.cpp; exercises client retry)
//   client.slow         a protocol client stalls before sending its request
//                       (serve loadtest; exercises the idle reaper)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bricksim::fault {

enum class Site : int {
  CacheWriteTorn = 0,
  CacheWriteRename,
  CacheReadShort,
  CacheReadCorrupt,
  Roofline,
  Launch,
  Emit,
  LeaseSteal,
  ConnDrop,
  ClientSlow,
};
inline constexpr int kNumSites = 10;

/// "cache.write.torn", "launch", ... (the spec spelling).
const char* site_name(Site site);

/// Inverse of site_name; nullopt for unknown names.
std::optional<Site> parse_site(const std::string& name);

struct FaultPlan {
  struct Clause {
    Site site = Site::Launch;
    std::string match;        ///< context substring filter; empty = any
    long nth = 1;             ///< 1-based matching-hit index that fires
    bool persistent = false;  ///< "nth+": keep firing from the nth hit on
  };
  std::vector<Clause> clauses;
  std::uint64_t seed = 1;  ///< mutation RNG seed (the `seed=` clause)

  bool empty() const { return clauses.empty(); }

  /// Parses the SPEC grammar above; throws bricksim::Error naming the
  /// offending clause on malformed input.
  static FaultPlan parse(const std::string& spec);
};

/// Installs `plan` process-wide and resets all hit counters.
void arm(FaultPlan plan);

/// Returns to the zero-overhead disabled state.
void disarm();

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when a plan is armed.  This load is the entire cost of a disabled
/// fault site; call sites guard context-string construction behind it.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Counts one hit of `site` under `context` and reports whether a clause
/// of the armed plan fires on it.  Never fires (and never counts) when
/// disarmed.
bool fire(Site site, const std::string& context = "");

/// fire(), but throws bricksim::Error("fault injected: <site> <context>")
/// when the hit fires.
void throw_if(Site site, const std::string& context = "");

/// Deterministic payload mutation for the firing cache sites: the
/// truncation point / flipped byte depend only on (plan seed, site,
/// payload size), so a seeded run is bit-reproducible.
std::string mutate(Site site, const std::string& payload);

/// Total hits counted for `site` since the last arm() (armed time only).
long hits(Site site);

/// RAII arm/disarm, used by driver_main and the tests so an exception
/// never leaks an armed plan into unrelated code.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan plan) { arm(std::move(plan)); }
  explicit ScopedPlan(const std::string& spec) { arm(FaultPlan::parse(spec)); }
  ~ScopedPlan() { disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace bricksim::fault
