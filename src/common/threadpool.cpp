#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>

namespace bricksim {

ThreadPool::ThreadPool(int jobs) {
  const int n = jobs < 1 ? 1 : jobs;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  submit(0, std::move(task));
}

void ThreadPool::submit(int priority, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace(std::make_pair(-priority, seq_++), std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::move(first_error_);
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      const auto it = queue_.begin();
      task = std::move(it->second);
      queue_.erase(it);
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void parallel_for(int jobs, long n, const std::function<void(long)>& fn) {
  if (n <= 0) return;
  if (jobs <= 1 || n == 1) {
    for (long i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers = static_cast<int>(
      jobs < n ? jobs : n);  // never more threads than indices

  std::atomic<long> next{0};
  std::mutex err_mu;
  long err_index = -1;
  std::exception_ptr err;

  {
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w)
      pool.submit([&] {
        for (;;) {
          const long i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            next.store(n, std::memory_order_relaxed);  // abandon the rest
            std::lock_guard<std::mutex> lock(err_mu);
            if (err_index < 0 || i < err_index) {
              err_index = i;
              err = std::current_exception();
            }
            return;
          }
        }
      });
    pool.wait();
  }
  if (err) std::rethrow_exception(err);
}

std::vector<TaskFailure> parallel_for_collect(
    int jobs, long n, const std::function<void(long)>& fn) {
  std::vector<TaskFailure> failures;
  if (n <= 0) return failures;

  auto run_one = [&fn](long i) -> std::optional<TaskFailure> {
    try {
      fn(i);
      return std::nullopt;
    } catch (const std::exception& e) {
      return TaskFailure{i, e.what()};
    } catch (...) {
      return TaskFailure{i, "unknown exception"};
    }
  };

  if (jobs <= 1 || n == 1) {
    for (long i = 0; i < n; ++i)
      if (auto f = run_one(i)) failures.push_back(std::move(*f));
    return failures;
  }

  const int workers = static_cast<int>(jobs < n ? jobs : n);
  std::atomic<long> next{0};
  std::mutex fail_mu;
  {
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w)
      pool.submit([&] {
        for (;;) {
          const long i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          if (auto f = run_one(i)) {
            std::lock_guard<std::mutex> lock(fail_mu);
            failures.push_back(std::move(*f));
          }
        }
      });
    pool.wait();
  }
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return failures;
}

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int effective_jobs(int requested) {
  const int want = requested > 0 ? requested : default_jobs();
  const char* env = std::getenv("BRICKSIM_OVERSUBSCRIBE");
  if (env && env[0] == '1' && env[1] == '\0') return want;
  return std::min(want, default_jobs());
}

}  // namespace bricksim
