#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace bricksim {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    s += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / s;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t n = 0; n < xs.size(); ++n) {
    const double dx = xs[n] - mx;
    const double dy = ys[n] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace bricksim
