#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace bricksim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BRICKSIM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  BRICKSIM_REQUIRE(row.size() == header_.size(),
                   "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << "\n";
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto sanitize = [](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char c : s) {
      quoted += c;
      if (c == '"') quoted += '"';
    }
    quoted += '"';
    return quoted;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << sanitize(row[c]);
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

json::Value Table::to_json() const {
  auto strings = [](const std::vector<std::string>& xs) {
    json::Value a = json::Value::array();
    for (const auto& x : xs) a.push_back(x);
    return a;
  };
  json::Value v = json::Value::object();
  v["header"] = strings(header_);
  json::Value rows = json::Value::array();
  for (const auto& row : rows_) rows.push_back(strings(row));
  v["rows"] = rows;
  return v;
}

Table Table::from_json(const json::Value& v) {
  auto strings = [](const json::Value& a) {
    std::vector<std::string> xs;
    for (std::size_t i = 0; i < a.size(); ++i) xs.push_back(a[i].as_string());
    return xs;
  };
  Table t(strings(v.at("header")));
  const json::Value& rows = v.at("rows");
  for (std::size_t r = 0; r < rows.size(); ++r) t.add_row(strings(rows[r]));
  return t;
}

}  // namespace bricksim
