// Minimal command-line flag parsing shared by the bench and example
// binaries:  --name value  or  --name=value  pairs plus boolean switches.
#pragma once

#include <initializer_list>
#include <map>
#include <string>

namespace bricksim {

/// Parsed flags.  Unknown flags are an error (typos in an experiment sweep
/// silently changing nothing would be worse than failing loudly).
class Cli {
 public:
  /// `known` maps flag name (without "--") to a help string; parsing rejects
  /// anything not in the map.
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> known);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  /// Numeric getters return `fallback` when the flag is absent and throw
  /// bricksim::UsageError when the value is present but not entirely a
  /// number (e.g. "--n=abc", "--n=12x", or a value-bearing flag at argv
  /// end).
  long get_long(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// get_long with a lower bound enforced on explicitly passed values:
  /// "--jobs=0" and "--jobs=-1" throw UsageError instead of smuggling a
  /// nonsense worker count into the scheduler.  The fallback is exempt so
  /// sentinel defaults (0 = auto) keep working.
  long get_long_min(const std::string& name, long fallback, long min) const;
  /// Like get, but the value (or fallback) must be one of `allowed`;
  /// anything else throws bricksim::Error naming the choices.
  std::string get_choice(const std::string& name,
                         std::initializer_list<const char*> allowed,
                         const std::string& fallback) const;

  /// True when --help was passed; the caller should print `help()` and exit.
  bool help_requested() const { return help_; }
  std::string help(const std::string& program) const;

 private:
  std::map<std::string, std::string> known_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace bricksim
