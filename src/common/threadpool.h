// A small fixed-size thread pool for the embarrassingly parallel sweeps of
// the experiment harness.
//
// Design constraints (see DESIGN.md "Threading model"):
//  * results must be bit-identical and deterministically ordered regardless
//    of the job count -- so the pool never aggregates: callers pre-size an
//    output vector and every task writes only its own slot;
//  * exceptions thrown by tasks must not be lost -- the first one (in task
//    submission order for parallel_for) is captured and rethrown on wait();
//  * the pool is a host-side utility; the one simulator-side client is
//    ExecPlan::replay_sharded, whose two-phase design (private L1 shards,
//    serially merged L2 event stream) keeps its results bit-identical at
//    any worker count -- everything else in simt/memsim/codegen/model
//    remains thread-oblivious.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bricksim {

/// A fixed-size pool of worker threads draining one priority-ordered task
/// queue.
///
/// Tasks are `void()` closures.  Workers always pick the queued task with
/// the highest priority; ties break in submission order (FIFO), so the
/// default priority 0 preserves the classic queue behaviour exactly.
/// Completion order is unspecified.  `wait()` blocks until the queue is
/// empty and every worker is idle, then rethrows the first task exception
/// (if any).  The destructor waits for queued tasks and joins.
///
/// The priority hook exists for the SweepBroker (serve/broker.h), which
/// schedules cold sweep requests by client-supplied priority; the sweep
/// executor's parallel_for/parallel_for_collect keep submitting at the
/// default priority and are unaffected.
class ThreadPool {
 public:
  /// Spawns `jobs` workers (clamped to at least 1).
  explicit ThreadPool(int jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task at the default priority 0.  Must not be called
  /// concurrently with wait().
  void submit(std::function<void()> task);

  /// Enqueues a task; higher `priority` runs first, equal priorities run
  /// in submission order.
  void submit(int priority, std::function<void()> task);

  /// Blocks until all submitted tasks have finished.  If any task threw,
  /// rethrows the first captured exception (clearing it for reuse).
  void wait();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  /// Key is (-priority, submission sequence): begin() is always the
  /// highest-priority, earliest-submitted task.
  std::map<std::pair<int, std::uint64_t>, std::function<void()>> queue_;
  std::uint64_t seq_ = 0;
  std::vector<std::thread> workers_;
  long in_flight_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Runs `fn(index)` for every index in [0, n) on up to `jobs` worker
/// threads and blocks until all calls have returned.
///
/// Indices are claimed dynamically (an atomic counter), so the assignment
/// of index to thread varies between runs -- determinism is the caller's
/// contract: `fn` must write only to per-index state (e.g. slot `index` of
/// a pre-sized vector) so the outcome is independent of the interleaving.
///
/// `jobs <= 1` (or `n <= 1`) runs everything inline on the calling thread
/// with zero threading overhead -- the serial and parallel paths are the
/// same code.  If any call throws, the remaining indices are abandoned,
/// all workers are joined, and the exception thrown by the lowest index
/// that failed is rethrown on the calling thread.
void parallel_for(int jobs, long n, const std::function<void(long)>& fn);

/// One captured task failure of parallel_for_collect.
struct TaskFailure {
  long index = -1;      ///< the index whose fn() threw
  std::string what;     ///< exception message ("unknown exception" if not
                        ///< derived from std::exception)
  friend bool operator==(const TaskFailure&, const TaskFailure&) = default;
};

/// Continue-on-error variant of parallel_for: every index in [0, n) runs
/// exactly once even when some throw.  Returns the captured failures
/// sorted by index -- a deterministic record regardless of the worker
/// interleaving -- and never itself throws on a task failure.  The
/// per-index slot-writing determinism contract is the same as
/// parallel_for's; a failing index simply leaves its slot untouched.
std::vector<TaskFailure> parallel_for_collect(
    int jobs, long n, const std::function<void(long)>& fn);

/// The default worker count for `--jobs`: std::thread::hardware_concurrency,
/// or 1 when the runtime cannot report it.
int default_jobs();

/// The worker count a scheduler should actually use for a `--jobs`
/// request: `requested` (or default_jobs() when requested <= 0), clamped
/// to the hardware concurrency.  On a host with fewer cores than the
/// requested jobs, oversubscribed workers only time-slice one another --
/// BENCH_interpreter.json measured fig3@128 *losing* ~5% going from
/// --jobs=1 to --jobs=4 on a single-core host -- so the clamp is what
/// makes `--jobs=N` never slower than `--jobs=1` at any N.  Results are
/// unaffected by construction (the determinism contract above).
///
/// Setting BRICKSIM_OVERSUBSCRIBE=1 disables the clamp: the TSan CI leg
/// runs sweeps with more workers than CI cores precisely to provoke real
/// interleavings, and tests exercising the contract at --jobs=8 need the
/// threads to exist.
int effective_jobs(int requested);

}  // namespace bricksim
