// HostGrid: a padded 3D double-precision grid on the host.
//
// The canonical data container experiments start from: an interior region
// of `interior` elements surrounded by a ghost margin (so stencils of radius
// <= ghost can be applied without branches).  Storage is lexicographic with
// i innermost -- the "conventional array data layout" of the paper; the
// brick module converts to/from the blocked layout.
#pragma once

#include <span>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/types.h"

namespace bricksim {

class HostGrid {
 public:
  HostGrid(Vec3 interior, Vec3 ghost)
      : interior_(interior),
        ghost_(ghost),
        padded_{interior.i + 2 * ghost.i, interior.j + 2 * ghost.j,
                interior.k + 2 * ghost.k},
        data_(static_cast<std::size_t>(padded_.volume()), 0.0) {
    BRICKSIM_REQUIRE(interior.i > 0 && interior.j > 0 && interior.k > 0,
                     "interior extents must be positive");
    BRICKSIM_REQUIRE(ghost.i >= 0 && ghost.j >= 0 && ghost.k >= 0,
                     "ghost extents must be non-negative");
  }

  Vec3 interior() const { return interior_; }
  Vec3 ghost() const { return ghost_; }
  Vec3 padded() const { return padded_; }

  /// Element at interior coordinates; negative / overflowing coordinates up
  /// to the ghost width address the ghost margin.
  bElem& at(int i, int j, int k) {
    return data_[index(i, j, k)];
  }
  bElem at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  std::span<bElem> raw() { return data_; }
  std::span<const bElem> raw() const { return data_; }

  /// Fills interior AND ghost with reproducible pseudo-random values in
  /// [-1, 1) -- ghost values participate in boundary stencil applications.
  void fill_random(SplitMix64& rng) {
    for (bElem& v : data_) v = rng.next_double(-1.0, 1.0);
  }

  /// Fills with a smooth deterministic function of the coordinates
  /// (useful where tests want a recognisable pattern).
  void fill_linear(double ci = 1.0, double cj = 100.0, double ck = 10000.0) {
    for (int k = -ghost_.k; k < interior_.k + ghost_.k; ++k)
      for (int j = -ghost_.j; j < interior_.j + ghost_.j; ++j)
        for (int i = -ghost_.i; i < interior_.i + ghost_.i; ++i)
          at(i, j, k) = ci * i + cj * j + ck * k;
  }

 private:
  std::size_t index(int i, int j, int k) const {
    const Vec3 p{i + ghost_.i, j + ghost_.j, k + ghost_.k};
    BRICKSIM_ASSERT(p.i >= 0 && p.i < padded_.i && p.j >= 0 &&
                        p.j < padded_.j && p.k >= 0 && p.k < padded_.k,
                    "grid access outside padded region");
    return static_cast<std::size_t>(linear_index(p, padded_));
  }

  Vec3 interior_;
  Vec3 ghost_;
  Vec3 padded_;
  std::vector<bElem> data_;
};

}  // namespace bricksim
