#include "ir/regalloc.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace bricksim::ir {

namespace {

constexpr int kNoReg = -1;
constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

struct OpReads {
  int regs[3];
  int count = 0;
};

OpReads reads_of(const Inst& in) {
  OpReads r{};
  auto push = [&](int v) { r.regs[r.count++] = v; };
  switch (in.op) {
    case Op::VStore: push(in.a); break;
    case Op::VAlign:
    case Op::VAddV:
    case Op::VMulV:
      push(in.a);
      push(in.b);
      break;
    case Op::VFmaV:
      push(in.a);
      push(in.b);
      push(in.c);
      break;
    case Op::VMulC: push(in.a); break;
    case Op::VFmaC:
      push(in.a);
      push(in.b);
      break;
    case Op::VLoad:
    case Op::VSetC:
    case Op::VZero:
    case Op::IOp:
      break;
  }
  return r;
}

bool defines_dst(const Inst& in) {
  switch (in.op) {
    case Op::VStore:
    case Op::IOp:
      return false;
    default:
      return true;
  }
}

}  // namespace

RegAllocResult allocate_registers(const Program& prog, int budget) {
  BRICKSIM_REQUIRE(budget >= 4, "register budget must be at least 4");
  prog.verify();

  const auto& insts = prog.insts();
  const int nv = prog.num_vregs();

  // Use lists per vreg (ascending instruction positions).
  std::vector<std::vector<std::size_t>> uses(nv);
  for (std::size_t pos = 0; pos < insts.size(); ++pos) {
    const OpReads r = reads_of(insts[pos]);
    for (int n = 0; n < r.count; ++n) uses[r.regs[n]].push_back(pos);
  }
  // Cursor into each use list: next_use(v) is the first entry >= current pos.
  std::vector<std::size_t> cursor(nv, 0);
  auto next_use = [&](int v, std::size_t pos) -> std::size_t {
    auto& u = uses[v];
    std::size_t& c = cursor[v];
    while (c < u.size() && u[c] < pos) ++c;
    return c < u.size() ? u[c] : kNever;
  };

  RegAllocResult out{Program(prog.vec_width())};
  for (const auto& name : prog.constant_names())
    out.program.add_constant(name);

  std::vector<int> phys_of(nv, kNoReg);     // vreg -> phys or kNoReg
  std::vector<int> slot_of(nv, kNoReg);     // vreg -> spill slot or kNoReg
  std::vector<int> owner(budget, kNoReg);   // phys -> vreg or kNoReg
  std::vector<int> free_regs;
  for (int p = budget - 1; p >= 0; --p) free_regs.push_back(p);
  int next_slot = 0;
  int regs_high_water = 0;

  // Registers that must not be evicted while processing the current inst.
  std::vector<int> pinned;

  auto emit = [&](Inst in) { out.program.insts().push_back(in); };

  auto acquire_phys = [&](std::size_t pos) -> int {
    if (!free_regs.empty()) {
      int p = free_regs.back();
      free_regs.pop_back();
      regs_high_water = std::max(regs_high_water, budget - static_cast<int>(free_regs.size()));
      return p;
    }
    // Belady eviction: the resident, unpinned value with the farthest next
    // use goes to its spill slot (with a store only on first eviction).
    int victim_phys = kNoReg;
    std::size_t victim_next = 0;
    for (int p = 0; p < budget; ++p) {
      const int v = owner[p];
      if (v == kNoReg) continue;
      if (std::find(pinned.begin(), pinned.end(), p) != pinned.end()) continue;
      const std::size_t nu = next_use(v, pos);
      if (victim_phys == kNoReg || nu > victim_next) {
        victim_phys = p;
        victim_next = nu;
      }
    }
    BRICKSIM_REQUIRE(victim_phys != kNoReg,
                     "register pressure exceeds budget with all regs pinned");
    const int v = owner[victim_phys];
    if (victim_next != kNever && slot_of[v] == kNoReg) {
      slot_of[v] = next_slot++;
      Inst st;
      st.op = Op::VStore;
      st.a = victim_phys;
      st.mem.space = Space::Spill;
      st.mem.slot = slot_of[v];
      emit(st);
      out.spill_stores++;
    }
    phys_of[v] = kNoReg;
    owner[victim_phys] = kNoReg;
    return victim_phys;
  };

  auto ensure_resident = [&](int v, std::size_t pos) -> int {
    if (phys_of[v] != kNoReg) {
      pinned.push_back(phys_of[v]);
      return phys_of[v];
    }
    BRICKSIM_REQUIRE(slot_of[v] != kNoReg,
                     "value neither resident nor spilled (allocator bug)");
    const int p = acquire_phys(pos);
    Inst ld;
    ld.op = Op::VLoad;
    ld.dst = p;
    ld.mem.space = Space::Spill;
    ld.mem.slot = slot_of[v];
    emit(ld);
    out.spill_loads++;
    phys_of[v] = p;
    owner[p] = v;
    pinned.push_back(p);
    return p;
  };

  auto release_if_dead = [&](int v, std::size_t pos) {
    if (phys_of[v] != kNoReg && next_use(v, pos + 1) == kNever) {
      owner[phys_of[v]] = kNoReg;
      free_regs.push_back(phys_of[v]);
      phys_of[v] = kNoReg;
    }
  };

  for (std::size_t pos = 0; pos < insts.size(); ++pos) {
    Inst in = insts[pos];
    pinned.clear();

    const OpReads r = reads_of(in);
    int mapped[3] = {kNoReg, kNoReg, kNoReg};
    for (int n = 0; n < r.count; ++n)
      mapped[n] = ensure_resident(r.regs[n], pos);

    // Rewrite operand fields in the same order reads_of produced them.
    {
      int n = 0;
      switch (in.op) {
        case Op::VStore: in.a = mapped[n++]; break;
        case Op::VAlign:
        case Op::VAddV:
        case Op::VMulV:
          in.a = mapped[n++];
          in.b = mapped[n++];
          break;
        case Op::VFmaV:
          in.a = mapped[n++];
          in.b = mapped[n++];
          in.c = mapped[n++];
          break;
        case Op::VMulC: in.a = mapped[n++]; break;
        case Op::VFmaC:
          in.a = mapped[n++];
          in.b = mapped[n++];
          break;
        default:
          break;
      }
    }

    // Operands whose last use is this instruction free their registers
    // before the destination is allocated, enabling in-place reuse.
    for (int n = 0; n < r.count; ++n) release_if_dead(r.regs[n], pos);

    if (defines_dst(in)) {
      const int v = in.dst;
      const int p = acquire_phys(pos);
      in.dst = p;
      phys_of[v] = p;
      owner[p] = v;
      // A value with no uses at all (e.g. a store-less experiment) stays
      // resident until evicted; that is fine.
    }
    emit(in);

    // The defined value might itself be dead (never read) -- free eagerly.
    if (defines_dst(in)) {
      const Inst& orig = insts[pos];
      release_if_dead(orig.dst, pos);
    }
  }

  out.program.set_num_vregs(budget);
  out.program.set_num_spill_slots(next_slot);
  out.regs_used = regs_high_water;
  out.spill_slots = next_slot;
  out.program.verify();
  return out;
}

}  // namespace bricksim::ir
