#include "ir/schedule.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace bricksim::ir {

namespace {

struct Reads {
  int regs[3];
  int count = 0;
};

Reads reads_of(const Inst& in) {
  Reads r{};
  auto push = [&](int v) {
    if (v >= 0) r.regs[r.count++] = v;
  };
  switch (in.op) {
    case Op::VStore: push(in.a); break;
    case Op::VAlign:
    case Op::VAddV:
    case Op::VMulV:
      push(in.a);
      push(in.b);
      break;
    case Op::VFmaV:
      push(in.a);
      push(in.b);
      push(in.c);
      break;
    case Op::VMulC: push(in.a); break;
    case Op::VFmaC:
      push(in.a);
      push(in.b);
      break;
    default:
      break;
  }
  return r;
}

bool defines_dst(const Inst& in) {
  return in.op != Op::VStore && in.op != Op::IOp;
}

}  // namespace

int max_live_values(const Program& prog) {
  const auto& insts = prog.insts();
  // Last use position of every vreg.
  std::vector<std::ptrdiff_t> last_use(prog.num_vregs(), -1);
  for (std::size_t pos = 0; pos < insts.size(); ++pos) {
    const Reads r = reads_of(insts[pos]);
    for (int n = 0; n < r.count; ++n)
      last_use[r.regs[n]] = static_cast<std::ptrdiff_t>(pos);
  }
  int live = 0, peak = 0;
  for (std::size_t pos = 0; pos < insts.size(); ++pos) {
    if (defines_dst(insts[pos])) {
      ++live;
      peak = std::max(peak, live);
    }
    const Reads r = reads_of(insts[pos]);
    for (int n = 0; n < r.count; ++n)
      if (last_use[r.regs[n]] == static_cast<std::ptrdiff_t>(pos)) {
        --live;
        last_use[r.regs[n]] = -2;  // a repeated operand dies once
      }
  }
  return peak;
}

ScheduleResult schedule_for_pressure(const Program& prog) {
  prog.verify();
  const auto& insts = prog.insts();
  const std::size_t n = insts.size();

  // Dependences: value edges (def -> use) plus a chain through the stores.
  std::vector<int> pending(n, 0);            // unscheduled predecessors
  std::vector<std::vector<int>> succ(n);     // dependents
  std::vector<int> def_site(prog.num_vregs(), -1);
  std::vector<int> remaining_uses(prog.num_vregs(), 0);

  int prev_store = -1;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Inst& in = insts[pos];
    const Reads r = reads_of(in);
    for (int u = 0; u < r.count; ++u) {
      const int site = def_site[r.regs[u]];
      BRICKSIM_ASSERT(site >= 0, "SSA input expected");
      succ[site].push_back(static_cast<int>(pos));
      ++pending[pos];
      ++remaining_uses[r.regs[u]];
    }
    if (in.op == Op::VStore) {
      if (prev_store >= 0) {
        succ[prev_store].push_back(static_cast<int>(pos));
        ++pending[pos];
      }
      prev_store = static_cast<int>(pos);
    }
    if (defines_dst(in)) def_site[in.dst] = static_cast<int>(pos);
  }

  // Greedy selection: prefer the ready instruction with the best net
  // pressure change (operands it kills minus values it defines), then the
  // earliest original position (keeps loads near their first use).
  std::vector<char> scheduled(n, 0);
  std::vector<int> ready;
  for (std::size_t pos = 0; pos < n; ++pos)
    if (pending[pos] == 0) ready.push_back(static_cast<int>(pos));

  ScheduleResult out{Program(prog.vec_width())};
  for (const auto& name : prog.constant_names()) out.program.add_constant(name);
  out.program.set_num_vregs(prog.num_vregs());
  out.program.set_num_spill_slots(prog.num_spill_slots());

  auto net_pressure = [&](int pos) {
    const Reads r = reads_of(insts[pos]);
    int kills = 0;
    // Count distinct operands whose last remaining use this would be.
    for (int u = 0; u < r.count; ++u) {
      bool dup = false;
      for (int v = 0; v < u; ++v) dup = dup || r.regs[v] == r.regs[u];
      if (!dup && remaining_uses[r.regs[u]] == 1) ++kills;
    }
    return kills - (defines_dst(insts[pos]) ? 1 : 0);
  };

  while (!ready.empty()) {
    int best = -1, best_score = std::numeric_limits<int>::min();
    for (std::size_t c = 0; c < ready.size(); ++c) {
      const int score = net_pressure(ready[c]);
      if (score > best_score ||
          (score == best_score && ready[c] < ready[best])) {
        best = static_cast<int>(c);
        best_score = score;
      }
    }
    const int pos = ready[best];
    ready.erase(ready.begin() + best);
    scheduled[pos] = 1;
    out.program.insts().push_back(insts[pos]);

    const Reads r = reads_of(insts[pos]);
    for (int u = 0; u < r.count; ++u) --remaining_uses[r.regs[u]];
    for (int s : succ[pos])
      if (--pending[s] == 0) ready.push_back(s);
  }

  BRICKSIM_REQUIRE(out.program.insts().size() == n,
                   "scheduler dropped instructions (cyclic dependences?)");
  out.program.verify();
  out.max_live_before = max_live_values(prog);
  out.max_live_after = max_live_values(out.program);
  return out;
}

}  // namespace bricksim::ir
