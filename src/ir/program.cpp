#include "ir/program.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace bricksim::ir {

int Program::add_constant(const std::string& name) {
  for (std::size_t n = 0; n < const_names_.size(); ++n)
    if (const_names_[n] == name) return static_cast<int>(n);
  const_names_.push_back(name);
  return static_cast<int>(const_names_.size()) - 1;
}

int Program::num_grids() const {
  int hi = -1;
  for (const Inst& in : insts_)
    if (in.op == Op::VLoad || in.op == Op::VStore)
      if (in.mem.space != Space::Spill) hi = std::max(hi, in.mem.grid);
  return hi + 1;
}

int Program::load(const MemRef& mem) {
  Inst in;
  in.op = Op::VLoad;
  in.dst = new_vreg();
  in.mem = mem;
  insts_.push_back(in);
  return in.dst;
}

void Program::store(int src, const MemRef& mem) {
  Inst in;
  in.op = Op::VStore;
  in.a = src;
  in.mem = mem;
  insts_.push_back(in);
}

int Program::align(int a, int b, int shift) {
  Inst in;
  in.op = Op::VAlign;
  in.dst = new_vreg();
  in.a = a;
  in.b = b;
  in.shift = shift;
  insts_.push_back(in);
  return in.dst;
}

int Program::add(int a, int b) {
  Inst in;
  in.op = Op::VAddV;
  in.dst = new_vreg();
  in.a = a;
  in.b = b;
  insts_.push_back(in);
  return in.dst;
}

int Program::mul(int a, int b) {
  Inst in;
  in.op = Op::VMulV;
  in.dst = new_vreg();
  in.a = a;
  in.b = b;
  insts_.push_back(in);
  return in.dst;
}

int Program::fma(int a, int b, int c) {
  Inst in;
  in.op = Op::VFmaV;
  in.dst = new_vreg();
  in.a = a;
  in.b = b;
  in.c = c;
  insts_.push_back(in);
  return in.dst;
}

int Program::mul_const(int a, int cidx) {
  Inst in;
  in.op = Op::VMulC;
  in.dst = new_vreg();
  in.a = a;
  in.cidx = cidx;
  insts_.push_back(in);
  return in.dst;
}

int Program::fma_const(int acc, int in_reg, int cidx) {
  Inst in;
  in.op = Op::VFmaC;
  in.dst = new_vreg();
  in.a = acc;
  in.b = in_reg;
  in.cidx = cidx;
  insts_.push_back(in);
  return in.dst;
}

int Program::set_const(int cidx) {
  Inst in;
  in.op = Op::VSetC;
  in.dst = new_vreg();
  in.cidx = cidx;
  insts_.push_back(in);
  return in.dst;
}

int Program::zero() {
  Inst in;
  in.op = Op::VZero;
  in.dst = new_vreg();
  insts_.push_back(in);
  return in.dst;
}

void Program::int_ops(int count) {
  if (count <= 0) return;
  Inst in;
  in.op = Op::IOp;
  in.iops = count;
  insts_.push_back(in);
}

namespace {
/// Which operand slots an op reads / whether it defines dst.
struct OpShape {
  bool reads_a, reads_b, reads_c, defines_dst, has_const;
};
OpShape shape_of(Op op) {
  switch (op) {
    case Op::VLoad:  return {false, false, false, true, false};
    case Op::VStore: return {true, false, false, false, false};
    case Op::VAlign: return {true, true, false, true, false};
    case Op::VAddV:  return {true, true, false, true, false};
    case Op::VMulV:  return {true, true, false, true, false};
    case Op::VFmaV:  return {true, true, true, true, false};
    case Op::VMulC:  return {true, false, false, true, true};
    case Op::VFmaC:  return {true, true, false, true, true};
    case Op::VSetC:  return {false, false, false, true, true};
    case Op::VZero:  return {false, false, false, true, false};
    case Op::IOp:    return {false, false, false, false, false};
  }
  throw Error("unreachable op");
}
}  // namespace

void Program::verify() const {
  std::vector<bool> defined(num_vregs_, false);
  auto check_use = [&](int r, std::size_t pos) {
    BRICKSIM_REQUIRE(r >= 0 && r < num_vregs_,
                     "operand register out of range at inst " +
                         std::to_string(pos));
    BRICKSIM_REQUIRE(defined[r], "use of undefined register v" +
                                     std::to_string(r) + " at inst " +
                                     std::to_string(pos));
  };
  for (std::size_t pos = 0; pos < insts_.size(); ++pos) {
    const Inst& in = insts_[pos];
    const OpShape s = shape_of(in.op);
    if (s.reads_a) check_use(in.a, pos);
    if (s.reads_b) check_use(in.b, pos);
    if (s.reads_c) check_use(in.c, pos);
    if (s.has_const)
      BRICKSIM_REQUIRE(in.cidx >= 0 &&
                           in.cidx < static_cast<int>(const_names_.size()),
                       "constant index out of range at inst " +
                           std::to_string(pos));
    if (in.op == Op::VAlign)
      BRICKSIM_REQUIRE(in.shift >= 0 && in.shift <= vec_width_,
                       "align shift out of [0, W] at inst " +
                           std::to_string(pos));
    if (in.op == Op::VLoad || in.op == Op::VStore) {
      BRICKSIM_REQUIRE(in.mem.grid >= 0, "negative grid index");
      if (in.mem.space == Space::Spill)
        BRICKSIM_REQUIRE(in.mem.slot >= 0 && in.mem.slot < num_spill_slots_,
                         "spill slot out of range at inst " +
                             std::to_string(pos));
    }
    if (s.defines_dst) {
      BRICKSIM_REQUIRE(in.dst >= 0 && in.dst < num_vregs_,
                       "dst register out of range at inst " +
                           std::to_string(pos));
      defined[in.dst] = true;
    }
  }
}

InstStats Program::stats() const {
  InstStats st;
  for (const Inst& in : insts_) {
    st.total_insts++;
    switch (in.op) {
      case Op::VLoad:
        if (in.mem.space == Space::Spill)
          st.spill_loads++;
        else
          st.loads++;
        break;
      case Op::VStore:
        if (in.mem.space == Space::Spill)
          st.spill_stores++;
        else
          st.stores++;
        break;
      case Op::VAlign:
        st.aligns++;
        break;
      case Op::VAddV:
      case Op::VMulV:
      case Op::VMulC:
        st.fp_insts++;
        st.flops_per_lane += 1;
        break;
      case Op::VFmaV:
      case Op::VFmaC:
        st.fp_insts++;
        st.flops_per_lane += 2;
        break;
      case Op::VSetC:
      case Op::VZero:
        st.fp_insts++;  // register initialisation occupies the FP pipe
        break;
      case Op::IOp:
        st.int_ops += in.iops;
        st.total_insts--;  // IOp is an annotation, not one instruction
        st.total_insts += in.iops;
        break;
    }
  }
  return st;
}

namespace {
const char* op_name(Op op) {
  switch (op) {
    case Op::VLoad:  return "vload";
    case Op::VStore: return "vstore";
    case Op::VAlign: return "valign";
    case Op::VAddV:  return "vadd";
    case Op::VMulV:  return "vmul";
    case Op::VFmaV:  return "vfma";
    case Op::VMulC:  return "vmulc";
    case Op::VFmaC:  return "vfmac";
    case Op::VSetC:  return "vsetc";
    case Op::VZero:  return "vzero";
    case Op::IOp:    return "iop";
  }
  return "?";
}

std::string memref_str(const MemRef& m) {
  std::ostringstream os;
  switch (m.space) {
    case Space::Array:
      os << "g" << m.grid << "[arr " << m.di << "," << m.dj << "," << m.dk
         << "]";
      break;
    case Space::Brick:
      os << "g" << m.grid << "[brk nbr(" << m.nbr_di << "," << m.nbr_dj << ","
         << m.nbr_dk << ") v(" << m.vi << "," << m.vj << "," << m.vk << ")]";
      break;
    case Space::Spill:
      os << "spill[" << m.slot << "]";
      break;
  }
  return os.str();
}
}  // namespace

std::string Program::to_string() const {
  std::ostringstream os;
  os << "program W=" << vec_width_ << " vregs=" << num_vregs_
     << " spills=" << num_spill_slots_ << " consts=";
  for (std::size_t n = 0; n < const_names_.size(); ++n)
    os << (n ? "," : "[") << const_names_[n];
  os << (const_names_.empty() ? "[]" : "]") << "\n";
  for (const Inst& in : insts_) {
    os << "  " << op_name(in.op);
    switch (in.op) {
      case Op::VLoad:
        os << " v" << in.dst << " <- " << memref_str(in.mem);
        break;
      case Op::VStore:
        os << " " << memref_str(in.mem) << " <- v" << in.a;
        break;
      case Op::VAlign:
        os << " v" << in.dst << " <- (v" << in.a << ":v" << in.b << ")>>"
           << in.shift;
        break;
      case Op::VAddV:
        os << " v" << in.dst << " <- v" << in.a << " + v" << in.b;
        break;
      case Op::VMulV:
        os << " v" << in.dst << " <- v" << in.a << " * v" << in.b;
        break;
      case Op::VFmaV:
        os << " v" << in.dst << " <- v" << in.a << " * v" << in.b << " + v"
           << in.c;
        break;
      case Op::VMulC:
        os << " v" << in.dst << " <- v" << in.a << " * "
           << const_names_[in.cidx];
        break;
      case Op::VFmaC:
        os << " v" << in.dst << " <- v" << in.a << " + v" << in.b << " * "
           << const_names_[in.cidx];
        break;
      case Op::VSetC:
        os << " v" << in.dst << " <- " << const_names_[in.cidx];
        break;
      case Op::VZero:
        os << " v" << in.dst << " <- 0";
        break;
      case Op::IOp:
        os << " x" << in.iops;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bricksim::ir
