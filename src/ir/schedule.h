// Register-pressure-aware instruction scheduling.
//
// Gather-mode high-order kernels build large reuse sets; the ORDER in which
// the straight-line program walks them decides how many values are live at
// once and therefore how many spills the register allocator must insert
// (the problem the paper's reference [44], "Associative Instruction
// Reordering to Alleviate Register Pressure", attacks at the source level).
//
// schedule_for_pressure() is a greedy list scheduler over the dataflow DAG:
// at each step it picks, among the ready instructions, the one that frees
// the most live values (net of what it defines), tie-breaking by original
// program order.  Only instruction ORDER changes -- the operand tree is
// untouched, so floating-point results are bit-identical; stores keep their
// relative order (distinct addresses, but cheap and safe).
#pragma once

#include "ir/program.h"

namespace bricksim::ir {

struct ScheduleResult {
  Program program;
  int max_live_before = 0;  ///< peak simultaneously-live values, input order
  int max_live_after = 0;   ///< peak after scheduling
};

/// Reorders `prog` (straight-line SSA, as produced by the code generator;
/// run BEFORE register allocation) to reduce peak register pressure.
ScheduleResult schedule_for_pressure(const Program& prog);

/// Peak number of simultaneously-live values of a straight-line program
/// (exact, by liveness scan); exposed for tests and reporting.
int max_live_values(const Program& prog);

}  // namespace bricksim::ir
