// The BrickSim vector IR.
//
// A Program is the straight-line, fully unrolled body of ONE thread block
// (one brick / one tile).  Every instruction is warp-wide: it operates on
// vector registers of `vec_width` doubles.  The same program runs for every
// block of a kernel; only the block coordinates (and hence memory addresses)
// differ.  This mirrors BrickLib's generated kernels, which are sequences of
// vector code blocks computing portions of a brick's stencil grid.
//
// Address semantics live in MemRef: array-space references are relative to
// the block's tile origin, brick-space references name a neighbor brick via
// the adjacency list plus an in-brick vector row, and spill-space references
// name per-block scratch slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bricksim::ir {

enum class Space : std::uint8_t {
  Array,  ///< lexicographic padded array, vector of W lanes along i
  Brick,  ///< blocked layout, vector rows addressed by (neighbor, vj, vk)
  Spill,  ///< per-block scratch (register spills), addressed by slot
};

/// A memory operand.  Exactly one addressing form is meaningful depending on
/// `space`; the unused fields stay zero.
struct MemRef {
  int grid = 0;  ///< grid slot bound at launch (0 = first input, ...)
  Space space = Space::Array;

  // --- Array space: lane 0 reads element (origin + (di,dj,dk)); lanes
  // advance along i.  di may be any small offset => unaligned vector access.
  int di = 0, dj = 0, dk = 0;

  // --- Brick space: displacement (-1/0/+1 per axis) to a neighboring brick,
  // then vector row (vj, vk) inside that brick and, when the brick's i
  // extent folds multiple hardware vectors (B_i = f * W), the vector index
  // vi within the row.
  int nbr_di = 0, nbr_dj = 0, nbr_dk = 0;
  int vi = 0, vj = 0, vk = 0;

  // --- Spill space.
  int slot = 0;

  /// True when the access is an explicit vector load/store emitted by the
  /// vector code generator (as opposed to per-lane accesses of a naive
  /// kernel that merely happen to coalesce).  The MI250X/HIP lowering treats
  /// unaligned vectorised loads specially (see memsim::MemoryHierarchy).
  bool vectorized = false;
};

enum class Op : std::uint8_t {
  VLoad,   ///< dst <- mem
  VStore,  ///< mem <- a
  VAlign,  ///< dst[l] = concat(a,b)[shift + l], shift in [0, W]
  VAddV,   ///< dst = a + b
  VMulV,   ///< dst = a * b
  VFmaV,   ///< dst = a * b + c   (c given via the `c` operand)
  VMulC,   ///< dst = a * const[cidx]
  VFmaC,   ///< dst = a + b * const[cidx]   (accumulate form)
  VSetC,   ///< dst = broadcast const[cidx]
  VZero,   ///< dst = 0
  IOp,     ///< `iops` warp-wide integer ops (address arithmetic); no dataflow
};

struct Inst {
  Op op = Op::VZero;
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t cidx = -1;
  std::int32_t shift = 0;
  std::int32_t iops = 0;
  MemRef mem;
};

/// Per-program instruction statistics (per thread block).
struct InstStats {
  std::int64_t loads = 0;
  std::int64_t stores = 0;
  std::int64_t spill_loads = 0;
  std::int64_t spill_stores = 0;
  std::int64_t aligns = 0;     ///< shuffle-implemented lane realignments
  std::int64_t fp_insts = 0;
  std::int64_t flops_per_lane = 0;  ///< adds+muls, FMA counts 2
  std::int64_t int_ops = 0;    ///< warp-wide integer ops (incl. IOp weights)
  std::int64_t total_insts = 0;
};

class Program {
 public:
  explicit Program(int vec_width) : vec_width_(vec_width) {}

  int vec_width() const { return vec_width_; }

  /// Registers a named constant (stencil coefficient); returns its index.
  int add_constant(const std::string& name);
  int num_constants() const { return static_cast<int>(const_names_.size()); }
  const std::vector<std::string>& constant_names() const { return const_names_; }

  /// Allocates a fresh virtual vector register.
  int new_vreg() { return num_vregs_++; }
  int num_vregs() const { return num_vregs_; }
  /// Used only by the register allocator when rewriting a program.
  void set_num_vregs(int n) { num_vregs_ = n; }

  int num_spill_slots() const { return num_spill_slots_; }
  void set_num_spill_slots(int n) { num_spill_slots_ = n; }

  /// Number of distinct grids referenced (max grid index + 1).
  int num_grids() const;

  std::vector<Inst>& insts() { return insts_; }
  const std::vector<Inst>& insts() const { return insts_; }

  // -- Builder helpers (append an instruction, return dst where relevant) --
  int load(const MemRef& mem);
  void store(int src, const MemRef& mem);
  int align(int a, int b, int shift);
  int add(int a, int b);
  int mul(int a, int b);
  int fma(int a, int b, int c);
  int mul_const(int a, int cidx);
  int fma_const(int acc, int in, int cidx);
  int set_const(int cidx);
  int zero();
  void int_ops(int count);

  /// Throws bricksim::Error if the program is malformed (use before def,
  /// out-of-range operands, bad shift, bad constant index).
  void verify() const;

  InstStats stats() const;

  /// Human-readable listing (for debugging and golden tests).
  std::string to_string() const;

 private:
  int vec_width_;
  int num_vregs_ = 0;
  int num_spill_slots_ = 0;
  std::vector<Inst> insts_;
  std::vector<std::string> const_names_;
};

}  // namespace bricksim::ir
