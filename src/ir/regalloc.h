// Register allocation for straight-line SSA vector programs.
//
// Kernels lowered for a concrete (architecture, programming model) pair have
// a finite vector-register budget; exceeding it forces spills to per-thread
// local memory, which on a real GPU turns into extra L1/L2 traffic -- one of
// the effects the paper attributes performance differences to (gather-style
// high-order stencils spill; the vector-scatter codegen avoids it).
//
// Programs built by ir::Program's builder are SSA (every helper defines a
// fresh vreg), so allocation is the classic Belady/furthest-next-use scheme:
// on pressure, evict the resident value whose next use is farthest away,
// storing it to a spill slot on first eviction (SSA values never change, so
// later evictions of the same value need no store).
#pragma once

#include "ir/program.h"

namespace bricksim::ir {

struct RegAllocResult {
  Program program;       ///< rewritten with physical registers + spill code
  int regs_used = 0;     ///< physical registers actually used
  int spill_slots = 0;
  int spill_stores = 0;  ///< VStore-to-spill instructions inserted
  int spill_loads = 0;   ///< VLoad-from-spill instructions inserted
};

/// Allocates `prog` (virtual, SSA) onto `budget` physical vector registers.
/// Requires budget >= 4 (max operands of one instruction plus its result).
/// Throws bricksim::Error on malformed input.
RegAllocResult allocate_registers(const Program& prog, int budget);

}  // namespace bricksim::ir
