#include "dsl/expr.h"

#include "common/error.h"

namespace bricksim::dsl {

Index::Index(int dim) : dim_(dim) {
  BRICKSIM_REQUIRE(dim >= 0 && dim < 3, "Index dimension must be 0, 1 or 2");
}

IndexExpr operator+(const Index& x, int off) { return {x.dim(), off}; }
IndexExpr operator-(const Index& x, int off) { return {x.dim(), -off}; }

const ExprNode& Expr::node() const {
  BRICKSIM_REQUIRE(node_ != nullptr, "use of an empty expression");
  return *node_;
}

namespace {
Expr make_binary(ExprKind kind, const Expr& a, const Expr& b) {
  auto n = std::make_shared<ExprNode>();
  n->kind = kind;
  n->lhs = a;
  n->rhs = b;
  return Expr(std::move(n));
}
}  // namespace

Expr operator+(const Expr& a, const Expr& b) {
  return make_binary(ExprKind::Add, a, b);
}
Expr operator-(const Expr& a, const Expr& b) {
  return make_binary(ExprKind::Sub, a, b);
}
Expr operator*(const Expr& a, const Expr& b) {
  return make_binary(ExprKind::Mul, a, b);
}

Expr literal(double v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::Literal;
  n->literal = v;
  return Expr(std::move(n));
}

ConstRef::ConstRef(std::string name) : name_(std::move(name)) {
  BRICKSIM_REQUIRE(!name_.empty(), "ConstRef needs a name");
}

ConstRef::operator Expr() const {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::ConstRef;
  n->const_name = name_;
  return Expr(std::move(n));
}

Expr operator*(const ConstRef& c, const Expr& e) { return Expr(c) * e; }
Expr operator*(const Expr& e, const ConstRef& c) { return e * Expr(c); }

GridAccess::GridAccess(std::string grid, Vec3 offset)
    : grid_(std::move(grid)), offset_(offset) {}

GridAccess::operator Expr() const {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::GridAccess;
  n->grid_name = grid_;
  n->offset = offset_;
  return Expr(std::move(n));
}

Expr operator+(const GridAccess& a, const GridAccess& b) {
  return Expr(a) + Expr(b);
}
Expr operator*(const ConstRef& c, const GridAccess& a) {
  return Expr(c) * Expr(a);
}
Expr operator*(const GridAccess& a, const ConstRef& c) {
  return Expr(a) * Expr(c);
}

Grid::Grid(std::string name, int rank) : name_(std::move(name)) {
  BRICKSIM_REQUIRE(rank == 3, "only 3D grids are supported");
  BRICKSIM_REQUIRE(!name_.empty(), "Grid needs a name");
}

GridAccess Grid::operator()(IndexExpr ie, IndexExpr je, IndexExpr ke) const {
  BRICKSIM_REQUIRE(ie.dim == 0 && je.dim == 1 && ke.dim == 2,
                   "grid arguments must be (i, j, k) index expressions");
  return GridAccess(name_, Vec3{ie.offset, je.offset, ke.offset});
}

namespace {

/// Recursive term collection.  `coeff` carries the (at most one) ConstRef
/// factor on the current path; `sign` tracks +/- through Sub nodes.
void collect(const Expr& e, const std::string& coeff, int sign,
             StencilProgram& out) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case ExprKind::Add:
      collect(n.lhs, coeff, sign, out);
      collect(n.rhs, coeff, sign, out);
      return;
    case ExprKind::Sub:
      collect(n.lhs, coeff, sign, out);
      collect(n.rhs, coeff, -sign, out);
      return;
    case ExprKind::Mul: {
      const ExprNode& l = n.lhs.node();
      const ExprNode& r = n.rhs.node();
      const bool l_const = l.kind == ExprKind::ConstRef;
      const bool r_const = r.kind == ExprKind::ConstRef;
      BRICKSIM_REQUIRE(l_const != r_const,
                       "each product must have exactly one ConstRef factor");
      BRICKSIM_REQUIRE(coeff.empty(),
                       "nested coefficient products are not a stencil");
      const std::string name = l_const ? l.const_name : r.const_name;
      collect(l_const ? n.rhs : n.lhs, name, sign, out);
      return;
    }
    case ExprKind::GridAccess: {
      BRICKSIM_REQUIRE(sign > 0,
                       "negated stencil terms are not supported; fold the "
                       "sign into the coefficient value");
      if (out.in_grid.empty()) out.in_grid = n.grid_name;
      BRICKSIM_REQUIRE(out.in_grid == n.grid_name,
                       "stencil must read a single input grid");
      for (const StencilTerm& t : out.terms)
        BRICKSIM_REQUIRE(!(t.offset == n.offset),
                         "duplicate stencil offset in expression");
      out.terms.push_back({n.offset, coeff});
      return;
    }
    case ExprKind::ConstRef:
      throw Error("a bare coefficient is not a stencil term");
    case ExprKind::Literal:
      throw Error("literal terms are not supported in stencil expressions");
  }
}

}  // namespace

StencilProgram GridAccess::assign(const Expr& rhs) const {
  BRICKSIM_REQUIRE(offset_ == (Vec3{0, 0, 0}),
                   "output must be written at the centre point");
  StencilProgram out;
  out.out_grid = grid_;
  collect(rhs, "", 1, out);
  BRICKSIM_REQUIRE(!out.terms.empty(), "empty stencil expression");
  BRICKSIM_REQUIRE(out.out_grid != out.in_grid,
                   "stencil must be out of place");
  return out;
}

}  // namespace bricksim::dsl
