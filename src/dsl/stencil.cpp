#include "dsl/stencil.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "common/error.h"

namespace bricksim::dsl {

std::string shape_name(Shape s) {
  switch (s) {
    case Shape::Star: return "star";
    case Shape::Cube: return "cube";
    case Shape::Custom: return "custom";
  }
  return "?";
}

namespace {

/// Deterministic default coefficient values: distinct per group, small
/// enough that repeated application stays well-conditioned.
double default_value(int group_index, std::size_t group_size) {
  return 1.0 / ((group_index + 2) * static_cast<double>(group_size));
}

void sort_offsets(std::vector<Vec3>& offs) {
  std::sort(offs.begin(), offs.end());
}

std::array<int, 3> abs_sorted(const Vec3& o) {
  std::array<int, 3> t{std::abs(o.i), std::abs(o.j), std::abs(o.k)};
  std::sort(t.begin(), t.end());
  return t;
}

}  // namespace

Stencil Stencil::star(int radius) {
  BRICKSIM_REQUIRE(radius >= 1 && radius <= 8, "star radius out of range");
  Stencil s;
  s.shape_ = Shape::Star;
  s.radius_ = radius;
  for (int d = 0; d <= radius; ++d) {
    Group g;
    g.coeff = "a" + std::to_string(d);
    if (d == 0) {
      g.offsets = {Vec3{0, 0, 0}};
    } else {
      g.offsets = {Vec3{-d, 0, 0}, Vec3{d, 0, 0}, Vec3{0, -d, 0},
                   Vec3{0, d, 0},  Vec3{0, 0, -d}, Vec3{0, 0, d}};
    }
    sort_offsets(g.offsets);
    g.value = default_value(d, g.offsets.size());
    s.groups_.push_back(std::move(g));
  }
  s.name_ = std::to_string(s.num_points()) + "pt";
  return s;
}

Stencil Stencil::cube(int radius) {
  BRICKSIM_REQUIRE(radius >= 1 && radius <= 4, "cube radius out of range");
  Stencil s;
  s.shape_ = Shape::Cube;
  s.radius_ = radius;
  // Group by sorted absolute offset tuple, tuples in lexicographic order.
  std::map<std::array<int, 3>, std::vector<Vec3>> classes;
  for (int dk = -radius; dk <= radius; ++dk)
    for (int dj = -radius; dj <= radius; ++dj)
      for (int di = -radius; di <= radius; ++di) {
        const Vec3 o{di, dj, dk};
        classes[abs_sorted(o)].push_back(o);
      }
  int gi = 0;
  for (auto& [tuple, offs] : classes) {
    Group g;
    g.coeff = "a" + std::to_string(gi);
    g.offsets = offs;
    sort_offsets(g.offsets);
    g.value = default_value(gi, g.offsets.size());
    s.groups_.push_back(std::move(g));
    ++gi;
  }
  s.name_ = std::to_string(s.num_points()) + "pt";
  return s;
}

Stencil Stencil::from_program(const StencilProgram& prog) {
  BRICKSIM_REQUIRE(!prog.terms.empty(), "empty stencil program");

  // Group terms by coefficient name, preserving first-appearance order.
  Stencil s;
  std::vector<std::string> order;
  std::map<std::string, std::vector<Vec3>> by_coeff;
  int radius = 0;
  for (const StencilTerm& t : prog.terms) {
    if (by_coeff.find(t.coeff) == by_coeff.end()) order.push_back(t.coeff);
    by_coeff[t.coeff].push_back(t.offset);
    radius = std::max({radius, std::abs(t.offset.i), std::abs(t.offset.j),
                       std::abs(t.offset.k)});
  }
  s.radius_ = radius;
  int gi = 0;
  for (const std::string& c : order) {
    Group g;
    g.coeff = c.empty() ? "one" : c;
    g.offsets = by_coeff[c];
    sort_offsets(g.offsets);
    g.value = c.empty() ? 1.0 : default_value(gi, g.offsets.size());
    s.groups_.push_back(std::move(g));
    ++gi;
  }

  // Shape classification: compare the full offset set against the canonical
  // star/cube sets of the same radius.
  std::set<Vec3> have;
  for (const StencilTerm& t : prog.terms) have.insert(t.offset);
  auto matches = [&](const Stencil& canon) {
    std::set<Vec3> want;
    for (const auto& g : canon.groups_)
      want.insert(g.offsets.begin(), g.offsets.end());
    return want == have;
  };
  if (radius >= 1 && matches(star(radius)))
    s.shape_ = Shape::Star;
  else if (radius >= 1 && radius <= 4 && matches(cube(radius)))
    s.shape_ = Shape::Cube;
  else
    s.shape_ = Shape::Custom;
  s.name_ = std::to_string(s.num_points()) + "pt";
  return s;
}

std::vector<Stencil> Stencil::paper_catalog() {
  return {star(1), star(2), star(3), star(4), cube(1), cube(2)};
}

int Stencil::num_points() const {
  int n = 0;
  for (const Group& g : groups_) n += static_cast<int>(g.offsets.size());
  return n;
}

std::vector<Vec3> Stencil::offsets() const {
  std::vector<Vec3> out;
  for (const Group& g : groups_)
    out.insert(out.end(), g.offsets.begin(), g.offsets.end());
  return out;
}

void Stencil::set_coefficient(const std::string& name, double value) {
  for (Group& g : groups_) {
    if (g.coeff == name) {
      g.value = value;
      return;
    }
  }
  throw Error("unknown coefficient: " + name);
}

long Stencil::flops_per_point() const {
  return (num_points() - 1) + static_cast<long>(groups_.size());
}

double Stencil::theoretical_ai() const {
  // Compulsory traffic per point: one 8-byte read of the input + one 8-byte
  // write of the output = 16 bytes (paper Section 5.2.1 / Table 4).
  return static_cast<double>(flops_per_point()) / (2.0 * kElemBytes);
}

long Stencil::min_flops(Vec3 domain) const {
  return flops_per_point() * domain.volume();
}

std::map<std::string, double> Stencil::coefficient_values() const {
  std::map<std::string, double> m;
  for (const Group& g : groups_) m[g.coeff] = g.value;
  return m;
}

}  // namespace bricksim::dsl
