// The BrickSim stencil DSL.
//
// A C++ re-casting of BrickLib's python-like stencil DSL (paper Figure 1):
//
//   Index i(0), j(1), k(2);
//   Grid input("in", 3), output("out", 3);
//   ConstRef a0("MPI_B0"), a1("MPI_B1");
//   auto calc = a0 * input(i, j, k) +
//               a1 * (input(i + 1, j, k) + input(i - 1, j, k)) + ...;
//   StencilProgram prog = output(i, j, k).assign(calc);
//
// Expressions are immutable shared ASTs; `assign` walks the AST and extracts
// the stencil as a set of (offset -> coefficient) terms, validating that the
// computation is an affine-offset, constant-coefficient stencil over a
// single input grid (the class of computations BrickLib generates code for).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace bricksim::dsl {

/// A loop index bound to one of the three spatial dimensions
/// (0 = i, 1 = j, 2 = k).
class Index {
 public:
  explicit Index(int dim);
  int dim() const { return dim_; }

 private:
  int dim_;
};

/// `index + constant` -- the only index arithmetic stencils need.
/// An Index converts implicitly (offset 0) so grids accept both forms.
struct IndexExpr {
  IndexExpr(const Index& x) : dim(x.dim()) {}  // NOLINT(google-explicit-constructor)
  IndexExpr(int d, int o) : dim(d), offset(o) {}
  int dim = 0;
  int offset = 0;
};

IndexExpr operator+(const Index& x, int off);
IndexExpr operator-(const Index& x, int off);

// --- Expression AST ---------------------------------------------------------

enum class ExprKind { GridAccess, ConstRef, Literal, Add, Sub, Mul };

struct ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

/// Value-semantics handle to an immutable expression tree.
class Expr {
 public:
  Expr() = default;
  explicit Expr(ExprPtr node) : node_(std::move(node)) {}
  const ExprNode& node() const;
  bool valid() const { return node_ != nullptr; }

 private:
  ExprPtr node_;
};

struct ExprNode {
  ExprKind kind;
  // GridAccess:
  std::string grid_name;
  Vec3 offset{};
  // ConstRef / Literal:
  std::string const_name;
  double literal = 0;
  // Add / Sub / Mul:
  Expr lhs, rhs;
};

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr literal(double v);

/// A named constant coefficient (ConstRef("MPI_B0") in the paper's DSL).
class ConstRef {
 public:
  explicit ConstRef(std::string name);
  operator Expr() const;  // NOLINT(google-explicit-constructor)
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

Expr operator*(const ConstRef& c, const Expr& e);
Expr operator*(const Expr& e, const ConstRef& c);

// --- Grids and stencil extraction -------------------------------------------

/// One stencil term: out(p) += coeff * in(p + offset).
struct StencilTerm {
  Vec3 offset{};
  std::string coeff;  ///< coefficient name; "" means an implicit 1.0
};

/// The extracted (but not yet shape-classified) stencil computation.
struct StencilProgram {
  std::string out_grid;
  std::string in_grid;
  std::vector<StencilTerm> terms;  ///< unique offsets, DSL order
};

/// `grid(i, j+1, k-2)`: usable as an expression (right-hand side) or, at the
/// centre point, as the assignment target (left-hand side).
class GridAccess {
 public:
  GridAccess(std::string grid, Vec3 offset);
  operator Expr() const;  // NOLINT(google-explicit-constructor)

  /// Extracts the stencil; throws on non-stencil expressions (non-affine,
  /// multiple input grids, products of accesses, duplicate offsets) and on
  /// a non-centre output point.
  StencilProgram assign(const Expr& rhs) const;

 private:
  std::string grid_;
  Vec3 offset_;
};

Expr operator+(const GridAccess& a, const GridAccess& b);
Expr operator*(const ConstRef& c, const GridAccess& a);
Expr operator*(const GridAccess& a, const ConstRef& c);

/// A named 3D grid.
class Grid {
 public:
  Grid(std::string name, int rank);
  const std::string& name() const { return name_; }

  /// Access at `(i + di, j + dj, k + dk)`.  Arguments must be bound to the
  /// matching dimension (first argument dim 0, ...), as in the paper's DSL.
  GridAccess operator()(IndexExpr ie, IndexExpr je, IndexExpr ke) const;

 private:
  std::string name_;
};

}  // namespace bricksim::dsl
