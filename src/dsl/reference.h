// Scalar reference evaluation of stencils on HostGrids.
//
// The reference applies the canonical grouped evaluation order documented in
// stencil.h: groups ascending, offsets within a group in lexicographic
// (k, j, i) order, group partial sums accumulated in group order.  Gather
// codegen follows the same association, so results can be compared with a
// tight tolerance; the vector-scatter codegen reassociates and is compared
// with a small relative tolerance instead.
#pragma once

#include "common/grid.h"
#include "dsl/stencil.h"

namespace bricksim::dsl {

/// out(p) = stencil applied to in at every interior point p.
/// Requires matching interiors and ghosts >= stencil radius on `in`.
void apply_reference(const Stencil& stencil, const HostGrid& in,
                     HostGrid& out);

/// Maximum relative error between interiors, |a-b| / max(1, |a|, |b|).
double max_rel_error(const HostGrid& a, const HostGrid& b);

}  // namespace bricksim::dsl
