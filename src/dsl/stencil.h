// Stencil shapes, coefficient symmetry groups, FLOP counts and theoretical
// arithmetic intensity (paper Tables 2 and 4).
//
// A Stencil is the shape-classified form of a StencilProgram: its offsets
// are partitioned into symmetry groups sharing one constant coefficient
// (a 7-point star has two unique coefficients: the centre and the six
// distance-1 neighbours).  The canonical evaluation exploits that symmetry:
//
//   out(p) = sum_g coeff_g * ( sum_{o in group g} in(p + o) )
//
// giving (points - 1) additions and (groups) multiplications per point --
// exactly the minimal FLOP counts behind the paper's Table 4 theoretical
// arithmetic intensities (FLOPs / 16 bytes of compulsory traffic per point).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "dsl/expr.h"

namespace bricksim::dsl {

enum class Shape { Star, Cube, Custom };

std::string shape_name(Shape s);

class Stencil {
 public:
  /// Star of radius r: points along the axes up to distance r
  /// (7pt/13pt/19pt/25pt for r = 1..4).  Coefficients a0..ar by distance.
  static Stencil star(int radius);

  /// Cube of radius r: every point with max-norm <= r (27pt/125pt for
  /// r = 1..2).  Coefficients grouped by the sorted absolute offset tuple.
  static Stencil cube(int radius);

  /// Classifies an extracted DSL program.  Star/cube point sets with
  /// symmetry-consistent coefficients become Star/Cube; anything else is a
  /// Custom stencil grouped by coefficient name.
  static Stencil from_program(const StencilProgram& prog);

  /// The six stencils of the paper's evaluation (Table 2 order):
  /// star 1-4, cube 1-2.
  static std::vector<Stencil> paper_catalog();

  /// Paper-style name: "7pt", "13pt", "19pt", "25pt", "27pt", "125pt".
  const std::string& name() const { return name_; }
  Shape shape() const { return shape_; }
  int radius() const { return radius_; }
  int num_points() const;
  int num_unique_coefficients() const { return static_cast<int>(groups_.size()); }

  struct Group {
    std::string coeff;          ///< coefficient name, e.g. "a1"
    double value = 0;           ///< coefficient value used in experiments
    std::vector<Vec3> offsets;  ///< lexicographic (k, j, i) order
  };
  const std::vector<Group>& groups() const { return groups_; }

  /// All offsets in canonical order (group-major).
  std::vector<Vec3> offsets() const;

  /// Overrides a coefficient value (by group name); throws on unknown name.
  void set_coefficient(const std::string& name, double value);

  /// Minimal FLOPs per output point: (points - 1) adds + (groups) muls.
  long flops_per_point() const;

  /// Theoretical AI assuming compulsory-only traffic: one 8-byte read and
  /// one 8-byte write per point (Table 4).
  double theoretical_ai() const;

  /// Normalised FLOP count for a whole domain (the "minimum FLOP count"
  /// the paper uses to place every kernel variant on the same Roofline).
  long min_flops(Vec3 domain) const;

  /// Map of coefficient name -> value, for binding kernel constants.
  std::map<std::string, double> coefficient_values() const;

 private:
  Stencil() = default;

  std::string name_;
  Shape shape_ = Shape::Custom;
  int radius_ = 0;
  std::vector<Group> groups_;
};

}  // namespace bricksim::dsl
