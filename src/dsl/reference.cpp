#include "dsl/reference.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace bricksim::dsl {

void apply_reference(const Stencil& stencil, const HostGrid& in,
                     HostGrid& out) {
  const Vec3 n = in.interior();
  BRICKSIM_REQUIRE(out.interior() == n, "interior extents must match");
  const int r = stencil.radius();
  BRICKSIM_REQUIRE(in.ghost().i >= r && in.ghost().j >= r && in.ghost().k >= r,
                   "input ghost must cover the stencil radius");

  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i) {
        double acc = 0.0;
        for (const Stencil::Group& g : stencil.groups()) {
          double partial = 0.0;
          for (const Vec3& o : g.offsets)
            partial += in.at(i + o.i, j + o.j, k + o.k);
          acc += partial * g.value;
        }
        out.at(i, j, k) = acc;
      }
}

double max_rel_error(const HostGrid& a, const HostGrid& b) {
  BRICKSIM_REQUIRE(a.interior() == b.interior(),
                   "interior extents must match");
  const Vec3 n = a.interior();
  double worst = 0.0;
  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i) {
        const double va = a.at(i, j, k);
        const double vb = b.at(i, j, k);
        const double denom =
            std::max({1.0, std::abs(va), std::abs(vb)});
        worst = std::max(worst, std::abs(va - vb) / denom);
      }
  return worst;
}

}  // namespace bricksim::dsl
