// Source-text emission: render a lowered kernel as CUDA / HIP / SYCL /
// OpenMP-intrinsics source code, the way BrickLib's code generator emits
// target-language kernels (paper Figure 2 shows the three GPU dialects of
// one star-stencil kernel).
//
// The emitted text is a faithful rendering of the vector IR: one statement
// per instruction, with the architecture-specific primitives the paper
// lists in Section 3 -- `__shfl_down_sync`/`__shfl_up_sync` for CUDA >= 9,
// `__shfl_down`/`__shfl_up` for HIP, `sub_group_shfl_down`/`_up` for SYCL,
// and AVX-512 `valignq` for the CPU backend.  It is documentation-grade
// output (for inspection, diffing and the Figure 2 reproduction), not a
// compilation input: the simulator executes the IR directly.
#pragma once

#include <string>

#include "codegen/codegen.h"

namespace bricksim::codegen {

/// Target dialect of the emitted source (mirrors the programming models of
/// the study plus the CPU extension backend).
enum class Dialect { Cuda, Hip, Sycl, OpenMp };

std::string dialect_name(Dialect d);

/// Renders `kernel` as source text in `dialect`.  `stencil` provides the
/// kernel name and coefficient names.
std::string emit_kernel_source(const LoweredKernel& kernel,
                               const dsl::Stencil& stencil, Dialect dialect);

}  // namespace bricksim::codegen
