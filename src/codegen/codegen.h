// The BrickSim vector code generator.
//
// Lowers a classified stencil (dsl::Stencil) to a vector-IR thread-block
// program for one of the paper's three kernel variants:
//
//  * Variant::Array         -- naive tiled kernel: each output point gathers
//    all of its inputs independently; no cross-output register reuse.  The
//    baseline every optimisation is measured against.
//  * Variant::ArrayCodegen  -- vector code generation over the conventional
//    array layout: unaligned vector loads, load CSE across the tile
//    ("array common subexpressions" reused from buffers), and vector
//    scatter (associative reordering) where profitable.
//  * Variant::BricksCodegen -- the same generator over the brick layout:
//    aligned vector loads resolved through the adjacency table, with lane
//    realignment done by VAlign (lowered to warp shuffles on hardware).
//
// The three domain-specific optimisations of Section 3:
//  1. vector folding: the brick's innermost 4x4xW rows ARE the vectors; the
//     generator emits whole-row operations, never per-lane code.
//  2. reuse of array common subexpressions: loaded (and realigned) vectors
//     are cached and reused across all 16 output rows of the block, shifting
//     iteration spaces instead of data.
//  3. vector scatter: for high-order stencils the generator iterates inputs
//     and scatters each into every output accumulator that uses it, slashing
//     the live set (and thus spills) relative to gather.
//
// Gather-mode programs reproduce the scalar reference's floating-point
// association exactly; scatter reassociates (tests compare with tolerance).
#pragma once

#include <cstdint>
#include <string>

#include "dsl/stencil.h"
#include "ir/program.h"

namespace bricksim::codegen {

enum class Variant { Array, ArrayCodegen, BricksCodegen };

std::string variant_name(Variant v);

/// Generator options (defaults reproduce the paper's configuration).
struct Options {
  bool enable_cse = true;  ///< reuse loaded/realigned vectors across outputs
  /// Scatter when the stencil has at least this many points (the
  /// profitability heuristic: cube stencils scatter, stars gather).
  int scatter_threshold_points = 27;
  bool force_scatter = false;  ///< ablation: scatter regardless of size
  bool force_gather = false;   ///< ablation: never scatter
  /// Run the pressure-aware list scheduler (ir/schedule.h) on the lowered
  /// program before register allocation -- the associative-reordering idea
  /// of the paper's reference [44], as an instruction-order pass.
  bool reorder_for_pressure = false;
  /// Tile/brick extents in j and k (the paper uses 4 x 4 x SIMD_width;
  /// its conclusion names brick-shape tuning as the next optimisation --
  /// the autotuner in harness/autotune.h sweeps these).
  int tile_j = 4;
  int tile_k = 4;
  /// Vector folding in i: the brick's i extent is tile_i_vectors * W, so a
  /// brick row folds several hardware vectors (paper Section 3, "vector
  /// folding as described by Yount": longer logical vectors by collapsing
  /// brick dimensions).  i-shifts inside a folded row realign between
  /// vectors of the SAME brick and only cross bricks at the row ends.
  int tile_i_vectors = 1;
  /// Store bricks in a deterministic shuffled order instead of the natural
  /// lexicographic one.  The adjacency indirection makes kernels oblivious
  /// to storage order ("allowing flexibility in how bricks are organized in
  /// memory", Section 1) -- this exercises exactly that freedom.
  bool shuffled_brick_order = false;
  std::uint64_t brick_order_seed = 0x5eed;
};

/// Per-access lowering costs injected by the programming model (address
/// arithmetic the target compiler fails to strength-reduce shows up as
/// integer instructions in the kernel).
struct LoweringCosts {
  int addr_ops_per_load = 0;
  int addr_ops_per_store = 0;
};

struct LoweredKernel {
  ir::Program program;  ///< virtual registers; run regalloc before launch
  Variant variant = Variant::Array;
  bool used_scatter = false;
  /// Distinct read address streams (rows of (dj,dk) for arrays, neighbour
  /// brick columns for bricks) -- feeds the bandwidth model.
  int read_streams = 1;
  int tile_j = 4;  ///< tile/brick extents the program was generated for
  int tile_k = 4;
  int tile_i_vectors = 1;
};

/// Default tile extents in j and k (the paper's 4 x 4 x SIMD_width blocks).
inline constexpr int kTileJ = 4;
inline constexpr int kTileK = 4;

/// Lowers `stencil` for `variant` at vector width `W`.
/// Grid slot 0 is the input, slot 1 the output.  Requires
/// radius <= min(tile_j, tile_k) (one ghost-brick layer) and radius <= W.
LoweredKernel lower(const dsl::Stencil& stencil, Variant variant, int W,
                    const Options& opts = {}, const LoweringCosts& costs = {});

}  // namespace bricksim::codegen
