#include "codegen/codegen.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "analysis/brickcheck.h"
#include "common/error.h"

namespace bricksim::codegen {

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::Array: return "array";
    case Variant::ArrayCodegen: return "array codegen";
    case Variant::BricksCodegen: return "bricks codegen";
  }
  return "?";
}

namespace {

int floor_div(int a, int b) { return (a >= 0) ? a / b : -((-a + b - 1) / b); }

struct Ctx {
  const dsl::Stencil* st = nullptr;
  ir::Program prog{0};
  Options opts;
  LoweringCosts costs;
  int W = 0;
  int f = 1;             ///< vectors per brick row (tile_i = f * W)
  int tj = kTileJ;       ///< tile extent in j
  int tk = kTileK;       ///< tile extent in k
  bool brick = false;    ///< brick layout (else array)
  bool codegen = false;  ///< vector-codegen variant (else naive)

  std::map<Vec3, int> array_vecs;                        // (i,j,k) offset
  std::map<std::tuple<int, int, int>, int> brick_aligned;  // (bdi, j, k)
  std::map<std::tuple<int, int, int>, int> brick_shifted;  // (j, k, s)
  std::map<Vec3, int> coeff_of;                          // offset -> cidx
};

/// Loads the input vector whose lane 0 is at array offset d (relative to the
/// tile origin), with CSE when enabled.
int load_array_vec(Ctx& c, Vec3 d) {
  if (c.codegen && c.opts.enable_cse) {
    auto it = c.array_vecs.find(d);
    if (it != c.array_vecs.end()) return it->second;
  }
  c.prog.int_ops(c.costs.addr_ops_per_load);
  ir::MemRef m;
  m.grid = 0;
  m.space = ir::Space::Array;
  m.di = d.i;
  m.dj = d.j;
  m.dk = d.k;
  m.vectorized = c.codegen;
  const int v = c.prog.load(m);
  if (c.codegen && c.opts.enable_cse) c.array_vecs[d] = v;
  return v;
}

/// Loads the aligned brick vector q of logical row (j, k): q indexes the
/// f vectors of a (possibly folded) brick row; q = -1 and q = f address the
/// last/first vector of the i-neighbouring brick (adjacency resolves it).
int brick_aligned_vec(Ctx& c, int q, int j, int k) {
  const auto key = std::make_tuple(q, j, k);
  if (c.opts.enable_cse) {
    auto it = c.brick_aligned.find(key);
    if (it != c.brick_aligned.end()) return it->second;
  }
  const int bdi = floor_div(q, c.f);
  const int bdj = floor_div(j, c.tj);
  const int bdk = floor_div(k, c.tk);
  c.prog.int_ops(c.costs.addr_ops_per_load);
  ir::MemRef m;
  m.grid = 0;
  m.space = ir::Space::Brick;
  m.nbr_di = bdi;
  m.nbr_dj = bdj;
  m.nbr_dk = bdk;
  m.vi = q - c.f * bdi;
  m.vj = j - c.tj * bdj;
  m.vk = k - c.tk * bdk;
  m.vectorized = true;
  const int v = c.prog.load(m);
  if (c.opts.enable_cse) c.brick_aligned[key] = v;
  return v;
}

/// The brick vector covering lanes [g, g + W) of logical row (j, k) (g is
/// a lane offset from the row start; misaligned windows realign with
/// VAlign/shuffles, crossing into the i-neighbour brick only at row ends).
int brick_vec(Ctx& c, int j, int k, int g) {
  const int q = floor_div(g, c.W);
  const int s = g - q * c.W;
  if (s == 0) return brick_aligned_vec(c, q, j, k);
  const auto key = std::make_tuple(j, k, g);
  if (c.opts.enable_cse) {
    auto it = c.brick_shifted.find(key);
    if (it != c.brick_shifted.end()) return it->second;
  }
  const int lo = brick_aligned_vec(c, q, j, k);
  const int hi = brick_aligned_vec(c, q + 1, j, k);
  const int v = c.prog.align(lo, hi, s);
  if (c.opts.enable_cse) c.brick_shifted[key] = v;
  return v;
}

/// The input vector feeding output vector (vi, vj, vk) for offset o.
int get_input_vec(Ctx& c, int vi, int vj, int vk, const Vec3& o) {
  if (c.brick)
    return brick_vec(c, vj + o.j, vk + o.k, vi * c.W + o.i);
  return load_array_vec(c, Vec3{vi * c.W + o.i, vj + o.j, vk + o.k});
}

void emit_store(Ctx& c, int src, int vi, int vj, int vk) {
  c.prog.int_ops(c.costs.addr_ops_per_store);
  ir::MemRef m;
  m.grid = 1;
  if (c.brick) {
    m.space = ir::Space::Brick;
    m.vi = vi;
    m.vj = vj;
    m.vk = vk;
  } else {
    m.space = ir::Space::Array;
    m.di = vi * c.W;
    m.dj = vj;
    m.dk = vk;
  }
  m.vectorized = c.codegen;
  c.prog.store(src, m);
}

/// Gather lowering: per output row, group partial sums in the canonical
/// order (bit-identical to dsl::apply_reference).
void emit_gather(Ctx& c) {
  for (int vk = 0; vk < c.tk; ++vk)
    for (int vj = 0; vj < c.tj; ++vj)
      for (int vi = 0; vi < c.f; ++vi) {
        int acc = -1;
        int gi = 0;
        for (const auto& group : c.st->groups()) {
          int partial = -1;
          for (const Vec3& o : group.offsets) {
            const int v = get_input_vec(c, vi, vj, vk, o);
            partial = partial < 0 ? v : c.prog.add(partial, v);
          }
          acc = acc < 0 ? c.prog.mul_const(partial, gi)
                        : c.prog.fma_const(acc, partial, gi);
          ++gi;
        }
        emit_store(c, acc, vi, vj, vk);
      }
}

/// Scatter lowering: iterate inputs once, FMA each into every output
/// accumulator that uses it (associative reordering / statement splitting).
void emit_scatter(Ctx& c) {
  auto slot_of = [&](int vi, int vj, int vk) -> std::size_t {
    return (static_cast<std::size_t>(vk) * c.tj + vj) * c.f + vi;
  };
  std::vector<int> acc(static_cast<std::size_t>(c.tk) * c.tj * c.f);
  for (int vk = 0; vk < c.tk; ++vk)
    for (int vj = 0; vj < c.tj; ++vj)
      for (int vi = 0; vi < c.f; ++vi)
        acc[slot_of(vi, vj, vk)] = c.prog.zero();

  const auto offsets = c.st->offsets();
  // An input vector at (row j, k; lane offset g) contributes to output
  // vector (tvi, j - o.j, k - o.k) for every offset o with
  // g - o.i == tvi * W.
  auto scatter_into = [&](int vec, int in_j, int in_k, int g) {
    for (const Vec3& o : offsets) {
      const int t = g - o.i;
      if (t % c.W != 0) continue;
      const int tvi = t / c.W;
      const int tvj = in_j - o.j;
      const int tvk = in_k - o.k;
      if (tvi < 0 || tvi >= c.f || tvj < 0 || tvj >= c.tj || tvk < 0 ||
          tvk >= c.tk)
        continue;
      int& slot = acc[slot_of(tvi, tvj, tvk)];
      slot = c.prog.fma_const(slot, vec, c.coeff_of.at(o));
    }
  };

  if (c.brick) {
    // Needed logical rows and, per row, the set of lane offsets.
    std::map<std::pair<int, int>, std::set<int>> rows;  // (k, j) -> g set
    for (int vk = 0; vk < c.tk; ++vk)
      for (int vj = 0; vj < c.tj; ++vj)
        for (int vi = 0; vi < c.f; ++vi)
          for (const Vec3& o : offsets)
            rows[{vk + o.k, vj + o.j}].insert(vi * c.W + o.i);
    for (const auto& [kj, gs] : rows)
      for (int g : gs) {
        const int v = brick_vec(c, kj.second, kj.first, g);
        scatter_into(v, kj.second, kj.first, g);
      }
  } else {
    std::set<Vec3> needed;  // ordered by (k, j, i); .i holds the lane offset
    for (int vk = 0; vk < c.tk; ++vk)
      for (int vj = 0; vj < c.tj; ++vj)
        for (int vi = 0; vi < c.f; ++vi)
          for (const Vec3& o : offsets)
            needed.insert(Vec3{vi * c.W + o.i, vj + o.j, vk + o.k});
    for (const Vec3& d : needed) {
      const int v = load_array_vec(c, d);
      scatter_into(v, d.j, d.k, d.i);
    }
  }

  for (int vk = 0; vk < c.tk; ++vk)
    for (int vj = 0; vj < c.tj; ++vj)
      for (int vi = 0; vi < c.f; ++vi)
        emit_store(c, acc[slot_of(vi, vj, vk)], vi, vj, vk);
}

/// Distinct read address streams of the stencil: as the block grid advances,
/// every distinct (o.j, o.k) plane/row offset is a separate DRAM access
/// stream (i-offsets share the row's stream).  Brick kernels additionally
/// stream the two i-neighbour brick columns when the stencil has i-offsets.
int count_read_streams(const dsl::Stencil& st, Variant variant) {
  std::set<std::pair<int, int>> rows;
  bool has_i = false;
  for (const Vec3& o : st.offsets()) {
    rows.insert({o.j, o.k});
    has_i = has_i || o.i != 0;
  }
  int streams = static_cast<int>(rows.size());
  if (variant == Variant::BricksCodegen && has_i) streams += 2;
  return std::max(1, streams);
}

/// A representative launch geometry for the post-emit brickcheck gate: a
/// 2x2x2 block grid (so every escape overlaps a concurrent block) with the
/// minimal ghosts a legal launch provides (radius on the input, none on the
/// output).  Array addresses are affine in the block coordinates, so any
/// violation against this geometry is a violation of every real launch.
analysis::LaunchGeom representative_geom(const Ctx& c, int radius) {
  analysis::LaunchGeom geom;
  geom.blocks = {2, 2, 2};
  geom.tile = {c.f * c.W, c.tj, c.tk};
  const int grids = std::max(2, c.prog.num_grids());
  for (int g = 0; g < grids; ++g) {
    analysis::GridGeom gg;
    if (c.brick) {
      gg.layout = ir::Space::Brick;
      gg.brick_dims = geom.tile;
    } else {
      gg.layout = ir::Space::Array;
      const int gh = g == 0 ? radius : 0;
      gg.ghost = {gh, gh, gh};
      gg.padded = {geom.blocks.i * geom.tile.i + 2 * gh,
                   geom.blocks.j * geom.tile.j + 2 * gh,
                   geom.blocks.k * geom.tile.k + 2 * gh};
    }
    geom.grids.push_back(gg);
  }
  return geom;
}

}  // namespace

LoweredKernel lower(const dsl::Stencil& stencil, Variant variant, int W,
                    const Options& opts, const LoweringCosts& costs) {
  BRICKSIM_REQUIRE(W >= 8 && (W & (W - 1)) == 0,
                   "vector width must be a power of two >= 8");
  BRICKSIM_REQUIRE(opts.tile_j >= 1 && opts.tile_k >= 1,
                   "tile extents must be positive");
  BRICKSIM_REQUIRE(opts.tile_i_vectors >= 1,
                   "tile_i_vectors must be positive");
  BRICKSIM_REQUIRE(stencil.radius() <= opts.tile_j &&
                       stencil.radius() <= opts.tile_k,
                   "stencil radius exceeds the brick dimensions");
  BRICKSIM_REQUIRE(stencil.radius() <= W,
                   "stencil radius exceeds the vector width");
  BRICKSIM_REQUIRE(!(opts.force_scatter && opts.force_gather),
                   "cannot force both scatter and gather");

  Ctx c;
  c.st = &stencil;
  c.prog = ir::Program(W);
  c.opts = opts;
  c.costs = costs;
  c.W = W;
  c.f = opts.tile_i_vectors;
  c.tj = opts.tile_j;
  c.tk = opts.tile_k;
  c.brick = variant == Variant::BricksCodegen;
  c.codegen = variant != Variant::Array;

  int gi = 0;
  for (const auto& group : stencil.groups()) {
    const int cidx = c.prog.add_constant(group.coeff);
    BRICKSIM_ASSERT(cidx == gi, "constant indices must follow group order");
    for (const Vec3& o : group.offsets) c.coeff_of[o] = gi;
    ++gi;
  }

  const bool scatter =
      c.codegen && !opts.force_gather &&
      (opts.force_scatter ||
       stencil.num_points() >= opts.scatter_threshold_points);

  if (scatter)
    emit_scatter(c);
  else
    emit_gather(c);

  c.prog.verify();

  // Mandatory post-emit gate: no lowered program leaves codegen without a
  // clean brickcheck bill of health against a representative launch.
  const analysis::Report rep =
      analysis::check(c.prog, representative_geom(c, stencil.radius()));
  if (!rep.ok())
    throw Error("codegen emitted a program that fails brickcheck (" +
                stencil.name() + ", " + variant_name(variant) + "):\n" +
                rep.to_string());

  LoweredKernel out{std::move(c.prog)};
  out.variant = variant;
  out.used_scatter = scatter;
  out.read_streams = count_read_streams(stencil, variant);
  out.tile_j = opts.tile_j;
  out.tile_k = opts.tile_k;
  out.tile_i_vectors = opts.tile_i_vectors;
  return out;
}

}  // namespace bricksim::codegen
