#include "brick/exchange.h"

#include "common/error.h"

namespace bricksim::brick {

namespace {

int wrap(int x, int n) { return ((x % n) + n) % n; }

/// True when (i, j, k) lies inside the interior box.
bool in_interior(const Vec3& n, int i, int j, int k) {
  return i >= 0 && i < n.i && j >= 0 && j < n.j && k >= 0 && k < n.k;
}

}  // namespace

void fill_periodic_ghost(BrickedArray& a) {
  const Vec3 n = a.decomp().interior();
  const BrickDims d = a.decomp().dims();
  for (int k = -d.bk; k < n.k + d.bk; ++k)
    for (int j = -d.bj; j < n.j + d.bj; ++j)
      for (int i = -d.bi; i < n.i + d.bi; ++i) {
        if (in_interior(n, i, j, k)) continue;
        a.at(i, j, k) = a.at(wrap(i, n.i), wrap(j, n.j), wrap(k, n.k));
      }
}

void exchange_ghost(BrickedArray& lo, BrickedArray& hi, int axis) {
  BRICKSIM_REQUIRE(axis >= 0 && axis < 3, "axis must be 0, 1 or 2");
  const Vec3 n = lo.decomp().interior();
  BRICKSIM_REQUIRE(hi.decomp().interior() == n,
                   "subdomains must have equal extents");
  const BrickDims d = lo.decomp().dims();
  BRICKSIM_REQUIRE(hi.decomp().dims().elems() == d.elems() &&
                       hi.decomp().dims().bi == d.bi &&
                       hi.decomp().dims().bj == d.bj,
                   "subdomains must share the brick shape");

  const int extent = axis == 0 ? n.i : axis == 1 ? n.j : n.k;
  const int depth = axis == 0 ? d.bi : axis == 1 ? d.bj : d.bk;
  BRICKSIM_REQUIRE(extent >= depth, "subdomain thinner than one brick");

  // Iterate the face shell: `a` runs over the exchange axis depth, (b, c)
  // over the full cross-section of the interior.
  const int nb = axis == 0 ? n.j : n.i;
  const int nc = axis == 2 ? n.j : n.k;
  for (int c = 0; c < nc; ++c)
    for (int b = 0; b < nb; ++b)
      for (int a = 0; a < depth; ++a) {
        auto put = [&](BrickedArray& dst, int da, BrickedArray& src,
                       int sa) {
          switch (axis) {
            case 0:
              dst.at(da, b, c) = src.at(sa, b, c);
              break;
            case 1:
              dst.at(b, da, c) = src.at(b, sa, c);
              break;
            default:
              dst.at(b, c, da) = src.at(b, c, sa);
              break;
          }
        };
        // hi's low ghost <- lo's high boundary interior.
        put(hi, a - depth, lo, extent - depth + a);
        // lo's high ghost <- hi's low boundary interior.
        put(lo, extent + a, hi, a);
      }
}

}  // namespace bricksim::brick
