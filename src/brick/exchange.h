// Ghost-brick exchange: the halo-communication patterns BrickLib provides
// for distributed stencil runs (its MPI layer ships whole bricks, which is
// why the layout carries no per-brick ghost cells -- a ghost BRICK is the
// communication unit).  BrickSim proxies the MPI transport with in-process
// copies; the data placement logic is the real thing.
//
//  * fill_periodic_ghost: wrap-around boundary fill within one subdomain
//    (periodic boundary conditions for a single-process run).
//  * exchange_ghost: the two-subdomain halo exchange along one axis -- each
//    side's boundary bricks are copied into the other side's ghost bricks,
//    exactly what an MPI Isend/Irecv pair of brick payloads achieves.
#pragma once

#include "brick/brick.h"

namespace bricksim::brick {

/// Fills the entire one-brick-deep ghost shell of `a` with periodic copies
/// of its interior (ghost coordinate g maps to interior (g + N) mod N).
void fill_periodic_ghost(BrickedArray& a);

/// Halo exchange between two equal subdomains adjacent along `axis`
/// (0 = i, 1 = j, 2 = k), with `lo` logically below `hi`:
/// hi's low ghost bricks receive lo's high interior boundary and vice
/// versa.  Only the face shell is exchanged (edges/corners belong to the
/// neighbours in the other axes, as in a standard per-axis MPI exchange).
void exchange_ghost(BrickedArray& lo, BrickedArray& hi, int axis);

}  // namespace bricksim::brick
