#include "brick/brick.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace bricksim::brick {

BrickDecomp::BrickDecomp(Vec3 interior, BrickDims dims, bool shuffled_order,
                         std::uint64_t seed)
    : interior_(interior), dims_(dims) {
  BRICKSIM_REQUIRE(dims.bi > 0 && dims.bj > 0 && dims.bk > 0,
                   "brick dimensions must be positive");
  BRICKSIM_REQUIRE(interior.i % dims.bi == 0 && interior.j % dims.bj == 0 &&
                       interior.k % dims.bk == 0,
                   "interior extents must be divisible by brick dimensions");
  grid_ = {interior.i / dims.bi + 2, interior.j / dims.bj + 2,
           interior.k / dims.bk + 2};
  const long nb = grid_.volume();
  BRICKSIM_REQUIRE(nb <= (1ll << 31), "too many bricks for 32-bit ids");

  order_.resize(static_cast<std::size_t>(nb));
  std::iota(order_.begin(), order_.end(), 0u);
  if (shuffled_order) {
    SplitMix64 rng(seed);
    for (std::size_t n = order_.size() - 1; n > 0; --n)
      std::swap(order_[n], order_[rng.next_below(n + 1)]);
  }

  // Adjacency in storage-id space.
  adjacency_.resize(static_cast<std::size_t>(nb) * 27);
  for (int gk = 0; gk < grid_.k; ++gk)
    for (int gj = 0; gj < grid_.j; ++gj)
      for (int gi = 0; gi < grid_.i; ++gi) {
        const std::uint32_t id = brick_at({gi, gj, gk});
        for (int dk = -1; dk <= 1; ++dk)
          for (int dj = -1; dj <= 1; ++dj)
            for (int di = -1; di <= 1; ++di) {
              const Vec3 ng{gi + di, gj + dj, gk + dk};
              const bool inside = ng.i >= 0 && ng.i < grid_.i && ng.j >= 0 &&
                                  ng.j < grid_.j && ng.k >= 0 && ng.k < grid_.k;
              adjacency_[static_cast<std::size_t>(id) * 27 +
                         neighbor_code(di, dj, dk)] =
                  inside ? brick_at(ng) : id;
            }
      }

  // Interior block -> brick map (ghost layer shifts coordinates by one).
  const Vec3 bl = blocks();
  block_to_brick_.resize(static_cast<std::size_t>(bl.volume()));
  for (int bk = 0; bk < bl.k; ++bk)
    for (int bj = 0; bj < bl.j; ++bj)
      for (int bi = 0; bi < bl.i; ++bi)
        block_to_brick_[static_cast<std::size_t>(
            linear_index({bi, bj, bk}, bl))] =
            brick_at({bi + 1, bj + 1, bk + 1});
}

std::uint32_t BrickDecomp::brick_at(Vec3 g) const {
  BRICKSIM_ASSERT(g.i >= 0 && g.i < grid_.i && g.j >= 0 && g.j < grid_.j &&
                      g.k >= 0 && g.k < grid_.k,
                  "brick grid coordinates out of range");
  return order_[static_cast<std::size_t>(linear_index(g, grid_))];
}

BrickedArray::BrickedArray(const BrickDecomp& decomp)
    : decomp_(&decomp),
      data_(static_cast<std::size_t>(decomp.num_bricks()) *
                decomp.dims().elems(),
            0.0) {}

std::size_t BrickedArray::index(int i, int j, int k) const {
  const BrickDims d = decomp_->dims();
  // Shift by one brick so the ghost layer is addressable with negatives.
  const int si = i + d.bi;
  const int sj = j + d.bj;
  const int sk = k + d.bk;
  BRICKSIM_ASSERT(si >= 0 && sj >= 0 && sk >= 0,
                  "coordinates beyond the ghost-brick layer");
  const Vec3 g{si / d.bi, sj / d.bj, sk / d.bk};
  const std::uint32_t id = decomp_->brick_at(g);
  const int li = si % d.bi;
  const int lj = sj % d.bj;
  const int lk = sk % d.bk;
  return static_cast<std::size_t>(id) * d.elems() +
         (static_cast<std::size_t>(lk) * d.bj + lj) * d.bi + li;
}

void BrickedArray::from_host(const HostGrid& host) {
  const Vec3 n = decomp_->interior();
  BRICKSIM_REQUIRE(host.interior() == n, "interior extents must match");
  const BrickDims d = decomp_->dims();
  const Vec3 g{std::min(host.ghost().i, d.bi), std::min(host.ghost().j, d.bj),
               std::min(host.ghost().k, d.bk)};
  for (int k = -g.k; k < n.k + g.k; ++k)
    for (int j = -g.j; j < n.j + g.j; ++j)
      for (int i = -g.i; i < n.i + g.i; ++i)
        at(i, j, k) = host.at(i, j, k);
}

void BrickedArray::to_host(HostGrid& host) const {
  const Vec3 n = decomp_->interior();
  BRICKSIM_REQUIRE(host.interior() == n, "interior extents must match");
  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i)
        host.at(i, j, k) = at(i, j, k);
}

}  // namespace bricksim::brick
