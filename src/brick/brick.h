// The brick data layout: fine-grained data blocking with adjacency lists.
//
// A brick is a small 3D block (4 x 4 x SIMD_width in the paper) stored
// contiguously in memory.  Bricks carry no per-brick ghost cells; instead a
// 26-neighbour adjacency table lets stencil kernels reach into neighbouring
// bricks.  Because neighbours are resolved through the table, bricks can be
// laid out in memory in ANY order -- BrickSim exposes a deterministic
// shuffled ordering to exercise exactly that flexibility.
//
// The decomposition covers the interior domain plus ONE layer of ghost
// bricks on every side (stencil radius <= brick dimension is required, which
// holds for every paper stencil: radius <= 4 = BDIM_j = BDIM_k <= SIMD_width).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/grid.h"
#include "common/types.h"

namespace bricksim::brick {

/// Brick extents; `bi` is the SIMD/vector dimension.
struct BrickDims {
  int bi = 0;
  int bj = 0;
  int bk = 0;
  int elems() const { return bi * bj * bk; }
  Vec3 as_vec() const { return {bi, bj, bk}; }
};

/// Neighbour code for a displacement in {-1,0,1}^3 (13 == self).
inline int neighbor_code(int di, int dj, int dk) {
  return (dk + 1) * 9 + (dj + 1) * 3 + (di + 1);
}

class BrickDecomp {
 public:
  /// Decomposes an `interior` domain (extents divisible by the brick
  /// dimensions) into bricks plus one ghost-brick layer.  With
  /// `shuffled_order`, brick storage indices are a deterministic
  /// permutation of the natural lexicographic order (seeded by `seed`).
  BrickDecomp(Vec3 interior, BrickDims dims, bool shuffled_order = false,
              std::uint64_t seed = 0x5eed);

  Vec3 interior() const { return interior_; }
  BrickDims dims() const { return dims_; }
  /// Brick-grid extents including the ghost layer.
  Vec3 grid_extents() const { return grid_; }
  /// Interior thread-block grid (= interior brick grid).
  Vec3 blocks() const {
    return {grid_.i - 2, grid_.j - 2, grid_.k - 2};
  }
  long num_bricks() const { return grid_.volume(); }

  /// Storage index of the brick at brick-grid coordinates (incl. ghost
  /// layer, so (0,0,0) is the low-corner ghost brick).
  std::uint32_t brick_at(Vec3 g) const;

  /// Adjacency table: entry [id * 27 + neighbor_code] is the storage index
  /// of the neighbouring brick (self for out-of-grid directions, which
  /// kernels never follow).
  std::span<const std::uint32_t> adjacency() const { return adjacency_; }

  /// Map from interior block linear index (lexicographic over blocks())
  /// to brick storage index -- the `grid[tk][tj][ti]` array of the paper's
  /// kernels (Figure 2).
  std::span<const std::uint32_t> block_to_brick() const {
    return block_to_brick_;
  }

 private:
  Vec3 interior_;
  BrickDims dims_;
  Vec3 grid_{};
  std::vector<std::uint32_t> order_;          ///< grid linear -> storage id
  std::vector<std::uint32_t> adjacency_;
  std::vector<std::uint32_t> block_to_brick_;
};

/// Element storage for one decomposition, plus layout conversions.
class BrickedArray {
 public:
  explicit BrickedArray(const BrickDecomp& decomp);

  const BrickDecomp& decomp() const { return *decomp_; }

  std::span<bElem> raw() { return data_; }
  std::span<const bElem> raw() const { return data_; }

  /// Element access by interior coordinates; coordinates may extend one
  /// brick into the ghost layer on every side.
  bElem& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  bElem at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  /// Copies the host grid's interior plus as much ghost as both sides have.
  void from_host(const HostGrid& host);
  /// Copies the interior back to the host grid.
  void to_host(HostGrid& host) const;

 private:
  std::size_t index(int i, int j, int k) const;

  const BrickDecomp* decomp_;
  std::vector<bElem> data_;
};

}  // namespace bricksim::brick
