#include "serve/broker.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "common/threadpool.h"
#include "harness/lease.h"
#include "harness/sweepcache.h"

namespace bricksim::serve {

namespace {

/// Sliding-window capacity of the latency ring: enough for stable p99 at
/// storm sizes, small enough that a counters() snapshot stays cheap.
constexpr std::size_t kLatencyWindow = 4096;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The memo charges an entry its serialized size -- the same bytes the
/// disk cache would store, so `--memo-bytes` budgets real footprint.
std::size_t sweep_memo_cost(const harness::Sweep& sweep) {
  return harness::sweep_to_json(sweep).dump().size();
}

double percentile(std::vector<double>& sorted_scratch, double p) {
  if (sorted_scratch.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_scratch.size() - 1) / 100.0 + 0.5);
  return sorted_scratch[std::min(idx, sorted_scratch.size() - 1)];
}

}  // namespace

const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::WarmMemo: return "warm_memo";
    case RequestStatus::WarmDisk: return "warm_disk";
    case RequestStatus::Simulated: return "simulated";
    case RequestStatus::Coalesced: return "coalesced";
    case RequestStatus::Queued: return "queued";
    case RequestStatus::Expired: return "expired";
    case RequestStatus::Failed: return "failed";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Overloaded: return "overloaded";
  }
  return "unknown";
}

SweepBroker::SweepBroker(Options opts) : opts_(std::move(opts)) {}

SweepBroker::~SweepBroker() { drain(); }

void SweepBroker::set_pre_run_hook(
    std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  pre_run_hook_ = std::move(hook);
}

std::shared_ptr<const harness::Sweep> SweepBroker::peek_memo(
    const harness::SweepConfig& config) {
  const std::string fp = harness::fingerprint(config);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = memo_.find(fp);
  if (it == memo_.end()) return nullptr;
  memo_touch_locked(fp);
  return it->second.sweep;
}

std::shared_ptr<const harness::Sweep> SweepBroker::load_disk(
    const harness::SweepConfig& config) {
  if (opts_.cache_dir.empty()) return nullptr;
  auto sweep = harness::load_cached_sweep(opts_.cache_dir, config);
  if (!sweep) return nullptr;
  const std::size_t bytes = sweep_memo_cost(*sweep);
  auto shared =
      std::make_shared<const harness::Sweep>(std::move(*sweep));
  std::lock_guard<std::mutex> lock(mu_);
  // Keep the first copy if someone memoized concurrently (identical
  // content either way -- the cache is content-addressed).
  return memo_insert_locked(harness::fingerprint(config), std::move(shared),
                            bytes);
}

std::shared_ptr<const harness::Sweep> SweepBroker::memo_insert_locked(
    const std::string& fp, std::shared_ptr<const harness::Sweep> sweep,
    std::size_t bytes) {
  if (const auto it = memo_.find(fp); it != memo_.end()) {
    memo_touch_locked(fp);
    return it->second.sweep;
  }
  lru_.push_front(fp);
  MemoEntry entry{std::move(sweep), bytes, lru_.begin()};
  auto kept = entry.sweep;
  memo_.emplace(fp, std::move(entry));
  memo_bytes_ += bytes;
  if (evicted_fps_.erase(fp) > 0) ++counters_.memo_readmissions;
  // Evict LRU-first until the budget holds.  The bound is hard: a single
  // entry bigger than the whole budget evicts itself immediately (it is
  // still returned to the caller, and the DISK cache still has it), so
  // memo_bytes <= memo_bytes budget is an invariant, not a goal.
  while (opts_.memo_bytes > 0 && memo_bytes_ > opts_.memo_bytes &&
         !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto vit = memo_.find(victim);
    memo_bytes_ -= vit->second.bytes;
    memo_.erase(vit);
    evicted_fps_.insert(victim);
    ++counters_.memo_evictions;
  }
  // The readmission ledger must not become its own unbounded memo: under
  // truly arbitrary traffic, forget the oldest distinctions wholesale
  // (readmission counts go conservative, memory stays bounded).
  if (evicted_fps_.size() > 65536) evicted_fps_.clear();
  return kept;
}

void SweepBroker::memo_touch_locked(const std::string& fp) {
  const auto it = memo_.find(fp);
  if (it == memo_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void SweepBroker::record_latency_locked(
    std::chrono::steady_clock::time_point start) {
  const double ms = elapsed_ms(start);
  if (latencies_ms_.size() < kLatencyWindow) {
    latencies_ms_.push_back(ms);
  } else {
    latencies_ms_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

long SweepBroker::estimated_queue_wait_locked() const {
  if (cold_runs_ == 0) return 0;
  const int workers = opts_.workers > 0 ? opts_.workers : default_jobs();
  const double avg = cold_ms_total_ / static_cast<double>(cold_runs_);
  return static_cast<long>(avg * static_cast<double>(queued_) /
                           static_cast<double>(std::max(1, workers)));
}

void SweepBroker::finish(const std::string& fp,
                         const std::shared_ptr<InFlight>& fl,
                         SweepResponse resp) {
  // Memoize every materialized sweep -- including degraded ones, which
  // the legacy provider also memoized (their failures are re-reported
  // per consumer, never re-simulated within one process) -- EXCEPT a
  // sweep cut short by a cancellation token: its holes are not results,
  // and memoizing them would poison every later request.
  const bool memoize = resp.sweep && resp.sweep->run_stats.skipped == 0;
  // Serialization is the entry's byte cost; computed outside the lock.
  const std::size_t bytes = memoize ? sweep_memo_cost(*resp.sweep) : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (memoize) resp.sweep = memo_insert_locked(fp, resp.sweep, bytes);
    switch (resp.status) {
      case RequestStatus::WarmDisk: ++counters_.warm_disk; break;
      case RequestStatus::Simulated:
        ++counters_.simulated;
        // Leader span feeds the admission controller's wait estimate.
        cold_ms_total_ += elapsed_ms(fl->arrival);
        ++cold_runs_;
        break;
      case RequestStatus::Expired: ++counters_.expired; break;
      case RequestStatus::Failed: ++counters_.failed; break;
      default: break;
    }
    record_latency_locked(fl->arrival);
    inflight_.erase(fp);
  }
  idle_.notify_all();
  fl->promise.set_value(std::move(resp));
}

void SweepBroker::run_leader(const std::string& fp,
                             const harness::SweepConfig& config,
                             const std::shared_ptr<InFlight>& fl) {
  SweepResponse resp;
  resp.fingerprint = fp;
  try {
    // Disk before simulation, exactly as the legacy provider resolved.
    if (!opts_.cache_dir.empty()) {
      if (auto sweep = harness::load_cached_sweep(opts_.cache_dir, config)) {
        resp.status = RequestStatus::WarmDisk;
        resp.sweep =
            std::make_shared<const harness::Sweep>(std::move(*sweep));
        finish(fp, fl, std::move(resp));
        return;
      }
    }
    // Cross-process lease (harness/lease.h): claim lease-<fp>.json before
    // simulating.  Held by a live peer -> poll the disk cache (the peer's
    // completed sweep lands there, or its lease frees/goes stale); stale
    // -> steal and ADOPT the dead owner's resume shards.
    std::optional<harness::SweepLease> lease;
    bool stolen = false;
    if (!opts_.cache_dir.empty() && opts_.lease_ttl_ms > 0) {
      lease.emplace(opts_.cache_dir, fp, opts_.lease_ttl_ms);
      const auto poll = std::chrono::milliseconds(
          std::clamp<long>(opts_.lease_ttl_ms / 4, 10, 250));
      bool counted_wait = false;
      for (;;) {
        const auto outcome = lease->try_acquire();
        if (outcome == harness::SweepLease::Outcome::Acquired) break;
        if (outcome == harness::SweepLease::Outcome::Stolen) {
          stolen = true;
          break;
        }
        if (!counted_wait) {
          counted_wait = true;
          std::lock_guard<std::mutex> lock(mu_);
          ++counters_.lease_waits;
        }
        std::this_thread::sleep_for(poll);
        if (auto sweep =
                harness::load_cached_sweep(opts_.cache_dir, config)) {
          resp.status = RequestStatus::WarmDisk;
          resp.sweep =
              std::make_shared<const harness::Sweep>(std::move(*sweep));
          finish(fp, fl, std::move(resp));
          return;
        }
      }
      if (stolen) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.lease_steals;
      }
      // Re-check the disk AFTER winning the lease: the previous owner
      // stores its entry before releasing, so this closes the window
      // between our cold miss and the claim.
      if (auto sweep = harness::load_cached_sweep(opts_.cache_dir, config)) {
        lease->release();
        resp.status = RequestStatus::WarmDisk;
        resp.sweep =
            std::make_shared<const harness::Sweep>(std::move(*sweep));
        finish(fp, fl, std::move(resp));
        return;
      }
    }
    std::function<void(const std::string&)> hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook = pre_run_hook_;
    }
    if (hook) hook(fp);
    // Checkpoint/resume are presentation knobs layered on top of the
    // identity-carrying config, so they are set here, not by callers.
    harness::SweepConfig run_cfg = config;
    if (!opts_.cache_dir.empty()) {
      run_cfg.checkpoint_dir = opts_.cache_dir;
      run_cfg.resume = opts_.resume;
    }
    // A stolen lease means a peer died mid-sweep: its checkpoint shards
    // are exactly why we steal instead of restart.
    if (stolen) run_cfg.resume = true;
    // Heartbeat while simulating, so a long sweep's lease never goes
    // stale under a live owner.
    std::optional<harness::LeaseHeartbeat> heartbeat;
    if (lease && lease->owned()) heartbeat.emplace(*lease);
    harness::Sweep sweep = harness::run_sweep(run_cfg);
    if (sweep.run_stats.skipped == 0 && sweep.failures.empty() &&
        !opts_.cache_dir.empty()) {
      // A degraded sweep is never stored as a full entry -- its holes
      // would outlive the fault -- but its good shards stay on disk for
      // --resume.  An interrupted (skipped > 0) sweep likewise keeps only
      // its shards.
      harness::store_cached_sweep(opts_.cache_dir, sweep);
      harness::clear_shards(opts_.cache_dir, config);
    }
    // Store BEFORE releasing the lease: a polling peer that wins the
    // freed lease re-checks the disk and finds the entry.
    heartbeat.reset();
    if (lease) lease->release();
    resp.status = RequestStatus::Simulated;
    resp.sweep = std::make_shared<const harness::Sweep>(std::move(sweep));
  } catch (const std::exception& e) {
    resp.status = RequestStatus::Failed;
    resp.sweep = nullptr;
    resp.error = e.what();
  }
  finish(fp, fl, std::move(resp));
}

SweepResponse SweepBroker::request(const harness::SweepConfig& config) {
  const std::string fp = harness::fingerprint(config);
  const auto arrival = std::chrono::steady_clock::now();
  std::shared_ptr<InFlight> fl;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    if (draining_) {
      ++counters_.rejected;
      record_latency_locked(arrival);
      SweepResponse resp;
      resp.status = RequestStatus::Rejected;
      resp.fingerprint = fp;
      resp.error = "broker is draining";
      return resp;
    }
    if (const auto it = memo_.find(fp); it != memo_.end()) {
      ++counters_.warm_memo;
      memo_touch_locked(fp);
      record_latency_locked(arrival);
      SweepResponse resp;
      resp.status = RequestStatus::WarmMemo;
      resp.fingerprint = fp;
      resp.sweep = it->second.sweep;
      return resp;
    }
    if (const auto it = inflight_.find(fp); it != inflight_.end()) {
      ++counters_.coalesced;
      fl = it->second;
    } else {
      ++counters_.cold_misses;
      fl = std::make_shared<InFlight>();
      fl->future = fl->promise.get_future().share();
      fl->arrival = arrival;
      inflight_.emplace(fp, fl);
      leader = true;
    }
  }
  if (leader) {
    // Inline on the calling thread: the CLI cold path is byte-identical
    // to the pre-broker SweepProvider::get() by construction.
    run_leader(fp, config, fl);
    return fl->future.get();
  }
  SweepResponse resp = fl->future.get();
  resp.status = RequestStatus::Coalesced;
  return resp;
}

Ticket SweepBroker::submit(
    const harness::SweepConfig& config, int priority,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const std::string fp = harness::fingerprint(config);
  const auto arrival = std::chrono::steady_clock::now();
  Ticket ticket;
  std::shared_ptr<InFlight> fl;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    if (draining_) {
      ++counters_.rejected;
      record_latency_locked(arrival);
      std::promise<SweepResponse> p;
      SweepResponse resp;
      resp.status = RequestStatus::Rejected;
      resp.fingerprint = fp;
      resp.error = "broker is draining";
      p.set_value(std::move(resp));
      ticket.admission = RequestStatus::Rejected;
      ticket.result = p.get_future().share();
      return ticket;
    }
    if (const auto it = memo_.find(fp); it != memo_.end()) {
      // Warm requests never touch the ThreadPool: completed right here.
      ++counters_.warm_memo;
      memo_touch_locked(fp);
      record_latency_locked(arrival);
      std::promise<SweepResponse> p;
      SweepResponse resp;
      resp.status = RequestStatus::WarmMemo;
      resp.fingerprint = fp;
      resp.sweep = it->second.sweep;
      p.set_value(std::move(resp));
      ticket.admission = RequestStatus::WarmMemo;
      ticket.result = p.get_future().share();
      return ticket;
    }
    if (const auto it = inflight_.find(fp); it != inflight_.end()) {
      ++counters_.coalesced;
      // A follower can only ever RELAX the leader's deadline: the
      // in-flight entry expires at the max over all attached requests,
      // where "no deadline" is the maximum (unbounded).
      if (it->second->deadline) {
        if (!deadline)
          it->second->deadline.reset();
        else if (*deadline > *it->second->deadline)
          it->second->deadline = deadline;
      }
      ticket.admission = RequestStatus::Coalesced;
      ticket.result = it->second->future;
      return ticket;
    }
    // Admission control: a NEW leader past the queue bound -- or one
    // whose deadline the backlog provably cannot meet -- is shed at the
    // door with a retry hint, instead of queueing forever.  Warm hits
    // and coalesced followers above are never shed.
    if (opts_.max_queue > 0) {
      const long wait_ms = estimated_queue_wait_locked();
      bool shed = queued_ >= opts_.max_queue;
      if (!shed && deadline && cold_runs_ > 0 &&
          arrival + std::chrono::milliseconds(wait_ms) > *deadline)
        shed = true;  // would only expire in the queue: reject fast
      if (shed) {
        ++counters_.overloaded;
        record_latency_locked(arrival);
        std::promise<SweepResponse> p;
        SweepResponse resp;
        resp.status = RequestStatus::Overloaded;
        resp.fingerprint = fp;
        resp.error = "cold-miss queue is full";
        resp.retry_after_ms =
            wait_ms > 0 ? std::min<long>(wait_ms, 60000)
                        : 100 * static_cast<long>(queued_ + 1);
        if (resp.retry_after_ms < 50) resp.retry_after_ms = 50;
        p.set_value(std::move(resp));
        ticket.admission = RequestStatus::Overloaded;
        ticket.result = p.get_future().share();
        return ticket;
      }
    }
    ++counters_.cold_misses;
    ++counters_.enqueued;
    ++queued_;
    fl = std::make_shared<InFlight>();
    fl->future = fl->promise.get_future().share();
    fl->deadline = deadline;
    fl->arrival = arrival;
    inflight_.emplace(fp, fl);
    if (!pool_) {
      const int workers =
          opts_.workers > 0 ? opts_.workers : default_jobs();
      pool_ = std::make_unique<ThreadPool>(workers);
    }
    ticket.admission = RequestStatus::Queued;
    ticket.result = fl->future;
    pool_->submit(priority, [this, fp, config, fl] {
      std::optional<std::chrono::steady_clock::time_point> dl;
      {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;  // a worker picked us up; we no longer occupy the queue
        dl = fl->deadline;  // max over every request attached so far
      }
      if (dl && std::chrono::steady_clock::now() > *dl) {
        // Expired while queued: fail fast without occupying the worker.
        // (A deadline never cancels a simulation already running.)
        SweepResponse resp;
        resp.status = RequestStatus::Expired;
        resp.fingerprint = fp;
        resp.error = "deadline expired while queued";
        finish(fp, fl, std::move(resp));
        return;
      }
      run_leader(fp, config, fl);
    });
  }
  return ticket;
}

void SweepBroker::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  idle_.wait(lock, [this] { return inflight_.empty(); });
}

BrokerCounters SweepBroker::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  BrokerCounters c = counters_;
  c.inflight = static_cast<long>(inflight_.size());
  c.queued = queued_;
  c.memo_entries = static_cast<long>(memo_.size());
  c.memo_bytes = static_cast<long>(memo_bytes_);
  if (!latencies_ms_.empty()) {
    std::vector<double> sorted = latencies_ms_;
    std::sort(sorted.begin(), sorted.end());
    c.p50_ms = percentile(sorted, 0.50);
    c.p95_ms = percentile(sorted, 0.95);
    c.p99_ms = percentile(sorted, 0.99);
  }
  return c;
}

}  // namespace bricksim::serve
