#include "serve/broker.h"

#include "common/error.h"
#include "common/threadpool.h"
#include "harness/sweepcache.h"

namespace bricksim::serve {

const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::WarmMemo: return "warm_memo";
    case RequestStatus::WarmDisk: return "warm_disk";
    case RequestStatus::Simulated: return "simulated";
    case RequestStatus::Coalesced: return "coalesced";
    case RequestStatus::Queued: return "queued";
    case RequestStatus::Expired: return "expired";
    case RequestStatus::Failed: return "failed";
    case RequestStatus::Rejected: return "rejected";
  }
  return "unknown";
}

SweepBroker::SweepBroker(Options opts) : opts_(std::move(opts)) {}

SweepBroker::~SweepBroker() { drain(); }

void SweepBroker::set_pre_run_hook(
    std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  pre_run_hook_ = std::move(hook);
}

std::shared_ptr<const harness::Sweep> SweepBroker::peek_memo(
    const harness::SweepConfig& config) {
  const std::string fp = harness::fingerprint(config);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = memo_.find(fp);
  return it != memo_.end() ? it->second : nullptr;
}

std::shared_ptr<const harness::Sweep> SweepBroker::load_disk(
    const harness::SweepConfig& config) {
  if (opts_.cache_dir.empty()) return nullptr;
  auto sweep = harness::load_cached_sweep(opts_.cache_dir, config);
  if (!sweep) return nullptr;
  auto shared =
      std::make_shared<const harness::Sweep>(std::move(*sweep));
  std::lock_guard<std::mutex> lock(mu_);
  // Keep the first copy if someone memoized concurrently (identical
  // content either way -- the cache is content-addressed).
  return memo_.emplace(harness::fingerprint(config), shared).first->second;
}

void SweepBroker::finish(const std::string& fp,
                         const std::shared_ptr<InFlight>& fl,
                         SweepResponse resp) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Memoize every materialized sweep -- including degraded ones, which
    // the legacy provider also memoized (their failures are re-reported
    // per consumer, never re-simulated within one process) -- EXCEPT a
    // sweep cut short by a cancellation token: its holes are not results,
    // and memoizing them would poison every later request.
    if (resp.sweep && resp.sweep->run_stats.skipped == 0)
      memo_.emplace(fp, resp.sweep);
    switch (resp.status) {
      case RequestStatus::WarmDisk: ++counters_.warm_disk; break;
      case RequestStatus::Simulated: ++counters_.simulated; break;
      case RequestStatus::Expired: ++counters_.expired; break;
      case RequestStatus::Failed: ++counters_.failed; break;
      default: break;
    }
    inflight_.erase(fp);
  }
  idle_.notify_all();
  fl->promise.set_value(std::move(resp));
}

void SweepBroker::run_leader(const std::string& fp,
                             const harness::SweepConfig& config,
                             const std::shared_ptr<InFlight>& fl) {
  SweepResponse resp;
  resp.fingerprint = fp;
  try {
    // Disk before simulation, exactly as the legacy provider resolved.
    if (!opts_.cache_dir.empty()) {
      if (auto sweep = harness::load_cached_sweep(opts_.cache_dir, config)) {
        resp.status = RequestStatus::WarmDisk;
        resp.sweep =
            std::make_shared<const harness::Sweep>(std::move(*sweep));
        finish(fp, fl, std::move(resp));
        return;
      }
    }
    std::function<void(const std::string&)> hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook = pre_run_hook_;
    }
    if (hook) hook(fp);
    // Checkpoint/resume are presentation knobs layered on top of the
    // identity-carrying config, so they are set here, not by callers.
    harness::SweepConfig run_cfg = config;
    if (!opts_.cache_dir.empty()) {
      run_cfg.checkpoint_dir = opts_.cache_dir;
      run_cfg.resume = opts_.resume;
    }
    harness::Sweep sweep = harness::run_sweep(run_cfg);
    if (sweep.run_stats.skipped == 0 && sweep.failures.empty() &&
        !opts_.cache_dir.empty()) {
      // A degraded sweep is never stored as a full entry -- its holes
      // would outlive the fault -- but its good shards stay on disk for
      // --resume.  An interrupted (skipped > 0) sweep likewise keeps only
      // its shards.
      harness::store_cached_sweep(opts_.cache_dir, sweep);
      harness::clear_shards(opts_.cache_dir, config);
    }
    resp.status = RequestStatus::Simulated;
    resp.sweep = std::make_shared<const harness::Sweep>(std::move(sweep));
  } catch (const std::exception& e) {
    resp.status = RequestStatus::Failed;
    resp.sweep = nullptr;
    resp.error = e.what();
  }
  finish(fp, fl, std::move(resp));
}

SweepResponse SweepBroker::request(const harness::SweepConfig& config) {
  const std::string fp = harness::fingerprint(config);
  std::shared_ptr<InFlight> fl;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    if (draining_) {
      ++counters_.rejected;
      SweepResponse resp;
      resp.status = RequestStatus::Rejected;
      resp.fingerprint = fp;
      resp.error = "broker is draining";
      return resp;
    }
    if (const auto it = memo_.find(fp); it != memo_.end()) {
      ++counters_.warm_memo;
      SweepResponse resp;
      resp.status = RequestStatus::WarmMemo;
      resp.fingerprint = fp;
      resp.sweep = it->second;
      return resp;
    }
    if (const auto it = inflight_.find(fp); it != inflight_.end()) {
      ++counters_.coalesced;
      fl = it->second;
    } else {
      ++counters_.cold_misses;
      fl = std::make_shared<InFlight>();
      fl->future = fl->promise.get_future().share();
      inflight_.emplace(fp, fl);
      leader = true;
    }
  }
  if (leader) {
    // Inline on the calling thread: the CLI cold path is byte-identical
    // to the pre-broker SweepProvider::get() by construction.
    run_leader(fp, config, fl);
    return fl->future.get();
  }
  SweepResponse resp = fl->future.get();
  resp.status = RequestStatus::Coalesced;
  return resp;
}

Ticket SweepBroker::submit(
    const harness::SweepConfig& config, int priority,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const std::string fp = harness::fingerprint(config);
  Ticket ticket;
  std::shared_ptr<InFlight> fl;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    if (draining_) {
      ++counters_.rejected;
      std::promise<SweepResponse> p;
      SweepResponse resp;
      resp.status = RequestStatus::Rejected;
      resp.fingerprint = fp;
      resp.error = "broker is draining";
      p.set_value(std::move(resp));
      ticket.admission = RequestStatus::Rejected;
      ticket.result = p.get_future().share();
      return ticket;
    }
    if (const auto it = memo_.find(fp); it != memo_.end()) {
      // Warm requests never touch the ThreadPool: completed right here.
      ++counters_.warm_memo;
      std::promise<SweepResponse> p;
      SweepResponse resp;
      resp.status = RequestStatus::WarmMemo;
      resp.fingerprint = fp;
      resp.sweep = it->second;
      p.set_value(std::move(resp));
      ticket.admission = RequestStatus::WarmMemo;
      ticket.result = p.get_future().share();
      return ticket;
    }
    if (const auto it = inflight_.find(fp); it != inflight_.end()) {
      ++counters_.coalesced;
      // A follower can only ever RELAX the leader's deadline: the
      // in-flight entry expires at the max over all attached requests,
      // where "no deadline" is the maximum (unbounded).
      if (it->second->deadline) {
        if (!deadline)
          it->second->deadline.reset();
        else if (*deadline > *it->second->deadline)
          it->second->deadline = deadline;
      }
      ticket.admission = RequestStatus::Coalesced;
      ticket.result = it->second->future;
      return ticket;
    }
    ++counters_.cold_misses;
    ++counters_.enqueued;
    fl = std::make_shared<InFlight>();
    fl->future = fl->promise.get_future().share();
    fl->deadline = deadline;
    inflight_.emplace(fp, fl);
    if (!pool_) {
      const int workers =
          opts_.workers > 0 ? opts_.workers : default_jobs();
      pool_ = std::make_unique<ThreadPool>(workers);
    }
    ticket.admission = RequestStatus::Queued;
    ticket.result = fl->future;
    pool_->submit(priority, [this, fp, config, fl] {
      std::optional<std::chrono::steady_clock::time_point> dl;
      {
        std::lock_guard<std::mutex> lock(mu_);
        dl = fl->deadline;  // max over every request attached so far
      }
      if (dl && std::chrono::steady_clock::now() > *dl) {
        // Expired while queued: fail fast without occupying the worker.
        // (A deadline never cancels a simulation already running.)
        SweepResponse resp;
        resp.status = RequestStatus::Expired;
        resp.fingerprint = fp;
        resp.error = "deadline expired while queued";
        finish(fp, fl, std::move(resp));
        return;
      }
      run_leader(fp, config, fl);
    });
  }
  return ticket;
}

void SweepBroker::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  idle_.wait(lock, [this] { return inflight_.empty(); });
}

BrokerCounters SweepBroker::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  BrokerCounters c = counters_;
  c.inflight = static_cast<long>(inflight_.size());
  return c;
}

}  // namespace bricksim::serve
