#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/shutdown.h"
#include "harness/registry.h"
#include "harness/sweepcache.h"

namespace bricksim::serve {

namespace {

/// Sanity cap on one frame: no legitimate request or reply is near this.
constexpr std::uint32_t kMaxFrame = 64u << 20;

/// Per-server stop pipe so tests can run several servers without sharing
/// the process-wide shutdown flag; the global shutdown_fd() is ALSO
/// honoured when installed (serve_main's SIGINT/SIGTERM path).
struct StopPipe {
  int fds[2] = {-1, -1};
  StopPipe() {
    if (::pipe(fds) != 0) throw Error("cannot create stop pipe");
  }
  ~StopPipe() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
  void trip() {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(fds[1], &b, 1);
  }
  int read_fd() const { return fds[0]; }
};

/// Writes exactly `len` bytes, resuming across EINTR and partial sends (a
/// full socket buffer legitimately accepts fewer bytes than asked).
/// Returns false on a closed peer, write timeout (SO_SNDTIMEO ->
/// EAGAIN), or hard error.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes, resuming across EINTR and partial reads.
/// Returns the bytes actually received: `len` on success, 0 on EOF before
/// the first byte (a clean close), anything between on a torn stream or
/// read timeout (SO_RCVTIMEO -> EAGAIN).
std::size_t recv_fully(int fd, char* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  return got;
}

/// Client-side capped jittered exponential backoff: attempt 0 waits
/// ~50 ms, doubling up to ~3.2 s, floored at the server's retry_after_ms
/// hint when it gave one, capped at 5 s, then jittered to [x/2, 3x/2) so
/// a storm of shed clients does not re-arrive in lockstep.
long backoff_delay_ms(int attempt, long retry_after_ms, std::mt19937& rng) {
  const long expo = 50L << std::min(attempt, 6);
  long base = std::max(retry_after_ms, expo);
  if (base > 5000) base = 5000;
  std::uniform_int_distribution<long> jitter(base / 2, base + base / 2);
  return jitter(rng);
}

json::Value error_reply(const std::string& what) {
  json::Value v = json::Value::object();
  v["ok"] = false;
  v["error"] = what;
  return v;
}

json::Value counters_to_json(const BrokerCounters& c) {
  json::Value v = json::Value::object();
  v["requests"] = c.requests;
  v["warm_memo"] = c.warm_memo;
  v["warm_disk"] = c.warm_disk;
  v["cold_misses"] = c.cold_misses;
  v["coalesced"] = c.coalesced;
  v["enqueued"] = c.enqueued;
  v["simulated"] = c.simulated;
  v["expired"] = c.expired;
  v["failed"] = c.failed;
  v["rejected"] = c.rejected;
  v["overloaded"] = c.overloaded;
  v["memo_evictions"] = c.memo_evictions;
  v["memo_readmissions"] = c.memo_readmissions;
  v["lease_waits"] = c.lease_waits;
  v["lease_steals"] = c.lease_steals;
  v["inflight"] = c.inflight;
  v["queued"] = c.queued;
  v["memo_entries"] = c.memo_entries;
  v["memo_bytes"] = c.memo_bytes;
  v["p50_ms"] = c.p50_ms;
  v["p95_ms"] = c.p95_ms;
  v["p99_ms"] = c.p99_ms;
  return v;
}

/// The registry listing, byte-compatible with `bricksim list --json`.
json::Value registry_json() {
  json::Value arr = json::Value::array();
  for (const auto& exp : harness::experiment_registry()) {
    json::Value v = json::Value::object();
    v["name"] = exp.name;
    v["sweep"] = harness::sweep_kind_name(exp.sweep);
    v["default_n"] = exp.default_n;
    v["legacy_alias"] = exp.legacy_binary;
    v["title"] = exp.title;
    arr.push_back(v);
  }
  return arr;
}

/// Builds the sweep config of a protocol request: a driver-default base at
/// domain n, normalized through the same main/cpu derivation the CLI uses
/// -- so a served sweep and `bricksim run` share fingerprints (and
/// therefore cache entries) by construction.
harness::SweepConfig request_config(const std::string& kind, long n) {
  BRICKSIM_REQUIRE(n > 0 && n % 64 == 0,
                   "sweep op: n must be a positive multiple of 64, got " +
                       std::to_string(n));
  harness::SweepConfig base;
  base.domain = {static_cast<int>(n), static_cast<int>(n),
                 static_cast<int>(n)};
  if (kind == "main") return harness::SweepProvider::main_config(base);
  if (kind == "cpu") return harness::SweepProvider::cpu_config(base);
  throw Error("sweep op: unknown kind '" + kind + "' (main|cpu)");
}

}  // namespace

// --- Framing -----------------------------------------------------------------

void write_frame(int fd, const std::string& payload) {
  BRICKSIM_REQUIRE(payload.size() < kMaxFrame, "frame too large");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const char prefix[4] = {static_cast<char>(len >> 24),
                          static_cast<char>(len >> 16),
                          static_cast<char>(len >> 8),
                          static_cast<char>(len)};
  if (!send_all(fd, prefix, 4) ||
      (len > 0 && !send_all(fd, payload.data(), len)))
    throw Error("frame write failed (peer closed or write timed out)");
}

std::optional<std::string> read_frame(int fd, int abort_fd,
                                      long idle_timeout_ms,
                                      std::size_t max_frame) {
  const std::size_t cap = max_frame > 0 ? max_frame : kMaxFrame;
  // Wait for the first prefix byte, also watching abort_fd: an idle
  // connection unblocks the moment a drain begins.  Once a frame has
  // started arriving it is read to completion regardless -- a request
  // racing the drain still gets a well-formed reply (typically Rejected).
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {abort_fd, POLLIN, 0};
    const int nfds = abort_fd >= 0 ? 2 : 1;
    const int timeout =
        idle_timeout_ms > 0 ? static_cast<int>(idle_timeout_ms) : -1;
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("poll failed on connection");
    }
    if (rc == 0) return std::nullopt;  // idle past the reaper horizon
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) break;
    if (nfds == 2 && (fds[1].revents & POLLIN)) return std::nullopt;
  }
  char prefix[4];
  {
    // Distinguish clean EOF (no frame) from a torn prefix.  MSG_WAITALL
    // would be tempting but can legally short-read on a signal; loop.
    const std::size_t n = recv_fully(fd, prefix, 4);
    if (n == 0) return std::nullopt;
    if (n != 4) throw Error("truncated frame prefix");
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len >= cap)
    throw FrameTooLarge("frame prefix " + std::to_string(len) +
                        " exceeds the " + std::to_string(cap) +
                        "-byte cap");
  std::string payload(len, '\0');
  if (len > 0 && recv_fully(fd, payload.data(), len) != len)
    throw Error("truncated frame payload");
  return payload;
}

int connect_client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BRICKSIM_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long for AF_UNIX: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BRICKSIM_REQUIRE(fd >= 0, "cannot create client socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    throw Error("cannot connect to " + socket_path +
                " (is `bricksim serve` running?)");
  }
  return fd;
}

json::Value client_call(const std::string& socket_path,
                        const json::Value& request) {
  const int fd = connect_client(socket_path);
  try {
    write_frame(fd, request.dump());
    const auto reply = read_frame(fd);
    BRICKSIM_REQUIRE(reply.has_value(),
                     "server closed the connection without a reply");
    ::close(fd);
    return json::Value::parse(*reply);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

std::string default_socket_path(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("BRICKSIM_SOCKET");
      env != nullptr && env[0] != '\0')
    return env;
  return "results/bricksim.sock";
}

// --- Server ------------------------------------------------------------------

struct ServerImpl {
  StopPipe stop;
  std::atomic<bool> stopping{false};
  /// Connection threads that have finished and await a join; the accept
  /// loop reaps them so connections_ tracks live connections only.
  std::mutex reap_mu;
  std::vector<unsigned long> finished;
};

namespace {
/// One StopPipe per Server, stored out-of-line so server.h stays free of
/// platform includes.
std::mutex g_impl_mu;
std::map<const Server*, std::shared_ptr<ServerImpl>> g_impls;

std::shared_ptr<ServerImpl> impl_of(const Server* s) {
  std::lock_guard<std::mutex> lock(g_impl_mu);
  auto& slot = g_impls[s];
  if (!slot) slot = std::make_shared<ServerImpl>();
  return slot;
}

void drop_impl(const Server* s) {
  std::lock_guard<std::mutex> lock(g_impl_mu);
  g_impls.erase(s);
}
}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  opts_.socket_path = default_socket_path(opts_.socket_path);
  SweepBroker::Options bopts;
  bopts.cache_dir = opts_.cache_dir;
  bopts.resume = opts_.resume;
  bopts.workers = opts_.workers;
  bopts.memo_bytes = opts_.memo_bytes;
  bopts.max_queue = opts_.max_queue;
  bopts.lease_ttl_ms = opts_.lease_ttl_ms;
  broker_ = std::make_shared<SweepBroker>(std::move(bopts));
  impl_of(this);  // allocate the stop pipe up front
}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    std::error_code ec;
    std::filesystem::remove(opts_.socket_path, ec);
  }
  for (auto& [id, t] : connections_)
    if (t.joinable()) t.join();
  drop_impl(this);
}

void Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BRICKSIM_REQUIRE(opts_.socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long for AF_UNIX: " + opts_.socket_path);
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  const std::filesystem::path parent =
      std::filesystem::path(opts_.socket_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  // A stale socket file from a crashed server would make bind fail; a
  // LIVE server on the same path is lost either way, so takeover is the
  // useful behaviour.
  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BRICKSIM_REQUIRE(listen_fd_ >= 0, "cannot create listen socket");
  BRICKSIM_REQUIRE(::bind(listen_fd_,
                          reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "cannot bind " + opts_.socket_path);
  BRICKSIM_REQUIRE(::listen(listen_fd_, 128) == 0,
                   "cannot listen on " + opts_.socket_path);
}

void Server::stop() {
  const auto impl = impl_of(this);
  impl->stopping.store(true);
  impl->stop.trip();
}

json::Value Server::handle_request(const json::Value& req) {
  const std::string op =
      req.contains("op") ? req.at("op").as_string() : "";
  json::Value reply = json::Value::object();
  if (op == "healthz") {
    const BrokerCounters c = broker_->counters();
    reply["ok"] = true;
    reply["status"] =
        impl_of(this)->stopping.load() ? "draining" : "serving";
    reply["inflight"] = c.inflight;
    return reply;
  }
  if (op == "counters") {
    reply["ok"] = true;
    reply["counters"] = counters_to_json(broker_->counters());
    return reply;
  }
  if (op == "list") {
    reply["ok"] = true;
    reply["experiments"] = registry_json();
    return reply;
  }
  if (op == "shutdown") {
    stop();
    reply["ok"] = true;
    reply["draining"] = true;
    return reply;
  }
  if (op == "sweep") {
    const std::string kind =
        req.contains("kind") ? req.at("kind").as_string() : "main";
    const long n = req.contains("n") ? req.at("n").as_long() : 256;
    const int priority =
        req.contains("priority")
            ? static_cast<int>(req.at("priority").as_long())
            : 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (req.contains("deadline_ms")) {
      const long ms = req.at("deadline_ms").as_long();
      if (ms > 0)
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(ms);
    }
    const harness::SweepConfig config = request_config(kind, n);
    const Ticket ticket = broker_->submit(config, priority, deadline);
    const SweepResponse resp = ticket.result.get();
    reply["ok"] = true;
    reply["admission"] = request_status_name(ticket.admission);
    reply["status"] = request_status_name(resp.status);
    reply["fingerprint"] = resp.fingerprint;
    reply["measurements"] =
        resp.sweep ? static_cast<long>(resp.sweep->measurements.size()) : 0L;
    reply["failures"] =
        resp.sweep ? static_cast<long>(resp.sweep->failures.size()) : 0L;
    if (resp.retry_after_ms > 0) reply["retry_after_ms"] = resp.retry_after_ms;
    if (!resp.error.empty()) reply["error"] = resp.error;
    return reply;
  }
  if (op == "experiment") {
    BRICKSIM_REQUIRE(req.contains("name"),
                     "experiment op: missing 'name'");
    const std::string name = req.at("name").as_string();
    const harness::Experiment* exp = harness::find_experiment(name);
    if (exp == nullptr)
      return error_reply("unknown experiment: " + name +
                         " (see the list op)");
    const long n =
        req.contains("n") ? req.at("n").as_long() : exp->default_n;
    BRICKSIM_REQUIRE(n > 0 && n % 64 == 0,
                     "experiment op: n must be a positive multiple of 64, "
                     "got " + std::to_string(n));
    harness::SweepConfig config;
    config.domain = {static_cast<int>(n), static_cast<int>(n),
                     static_cast<int>(n)};
    // A provider per request, all sharing this server's broker: requests
    // share every materialized sweep, while failure accounting stays
    // per-request (each client is told about the holes in ITS tables).
    harness::SweepProvider provider(broker_);
    std::ostringstream oss;
    harness::ExperimentContext ctx(config, &provider, &oss);
    std::string status = "ok";
    std::string error;
    try {
      exp->emit(ctx);
    } catch (const std::exception& e) {
      status = "failed";
      error = e.what();
    }
    if (status == "ok" && !provider.all_failures().empty())
      status = "degraded";
    reply["ok"] = true;
    reply["status"] = status;
    reply["output"] = oss.str();
    reply["failures"] =
        static_cast<long>(provider.all_failures().size());
    if (!error.empty()) reply["error"] = error;
    return reply;
  }
  return error_reply("unknown op '" + op +
                     "' (healthz|counters|list|sweep|experiment|shutdown)");
}

void Server::handle_connection(int fd, unsigned long id) {
  const auto impl = impl_of(this);
  if (opts_.io_timeout_ms > 0) {
    // A peer stalling mid-frame (read) or not draining its replies
    // (write) loses the connection after this long; a server thread is
    // never parked forever on one socket.
    timeval tv{};
    tv.tv_sec = opts_.io_timeout_ms / 1000;
    tv.tv_usec = (opts_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  try {
    for (;;) {
      std::optional<std::string> frame;
      try {
        frame = read_frame(fd, impl->stop.read_fd(), opts_.idle_timeout_ms,
                           opts_.max_frame_bytes);
      } catch (const FrameTooLarge& e) {
        // The stream cannot be resynchronized past an oversized (or
        // garbage) prefix, but the client still deserves a diagnosis:
        // one clean error reply, then the connection closes.
        write_frame(fd, error_reply(e.what()).dump());
        break;
      }
      if (!frame) break;  // EOF, idle past the reaper horizon, or drain
      json::Value reply;
      try {
        reply = handle_request(json::Value::parse(*frame));
      } catch (const std::exception& e) {
        reply = error_reply(e.what());
      }
      if (fault::armed() && fault::fire(fault::Site::ConnDrop))
        break;  // drop instead of replying: exercises client retry
      write_frame(fd, reply.dump());
    }
  } catch (const std::exception&) {
    // A torn frame or a peer that vanished mid-reply costs this
    // connection, never the server.
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(impl->reap_mu);
    impl->finished.push_back(id);
  }
}

void Server::reap_finished() {
  const auto impl = impl_of(this);
  std::vector<unsigned long> done;
  {
    std::lock_guard<std::mutex> lock(impl->reap_mu);
    done.swap(impl->finished);
  }
  for (const unsigned long id : done) {
    if (const auto it = connections_.find(id); it != connections_.end()) {
      if (it->second.joinable()) it->second.join();
      connections_.erase(it);
    }
  }
}

void Server::run() {
  BRICKSIM_REQUIRE(listen_fd_ >= 0, "Server::run before start()");
  const auto impl = impl_of(this);
  const int global_fd = shutdown_fd();  // -1 when no handler installed
  while (!impl->stopping.load()) {
    pollfd fds[3];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {impl->stop.read_fd(), POLLIN, 0};
    fds[2] = {global_fd, POLLIN, 0};
    const int nfds = global_fd >= 0 ? 3 : 2;
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("poll failed on listen socket");
    }
    if ((fds[1].revents & POLLIN) ||
        (nfds == 3 && (fds[2].revents & POLLIN)))
      break;
    if (fds[0].revents & POLLIN) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      reap_finished();
      if (opts_.max_conns > 0 &&
          connections_.size() >= static_cast<std::size_t>(opts_.max_conns)) {
        // Over the cap: one clean refusal, then close.  A best-effort
        // write -- a peer that already vanished loses nothing.
        try {
          write_frame(conn, error_reply("connection limit reached (" +
                                        std::to_string(opts_.max_conns) +
                                        "); retry later")
                                .dump());
        } catch (const std::exception&) {
        }
        ::close(conn);
        continue;
      }
      const unsigned long id = next_conn_id_++;
      connections_.emplace(
          id, std::thread([this, conn, id] { handle_connection(conn, id); }));
    }
  }
  // Graceful drain: stop accepting, unblock idle connections, let every
  // in-flight request complete and reply, then quiesce the broker.
  stop();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);
  for (auto& [id, t] : connections_)
    if (t.joinable()) t.join();
  connections_.clear();
  broker_->drain();
}

// --- CLI entry points --------------------------------------------------------

int serve_main(int argc, const char* const* argv) {
  const Cli cli(
      argc, argv,
      {{"socket",
        "AF_UNIX socket path (default $BRICKSIM_SOCKET or "
        "results/bricksim.sock)"},
       {"cache-dir",
        "sweep cache directory (default $BRICKSIM_CACHE_DIR or "
        "results/cache)"},
       {"no-cache", "disable reading and writing the sweep cache"},
       {"resume", "replay checkpoint shards on cold misses"},
       {"workers",
        "broker worker threads for cold sweeps (default: hardware "
        "concurrency)"},
       {"memo-bytes",
        "in-process memo byte budget, LRU-evicted to the disk cache "
        "(default 0 = unlimited)"},
       {"max-queue",
        "cold-miss admission bound; past it sweeps reply 'overloaded' "
        "with a retry hint (default 0 = unlimited)"},
       {"lease-ttl-ms",
        "cross-process sweep lease TTL; daemons sharing a cache dir "
        "dedupe cold sweeps and adopt a dead peer's shards "
        "(default 10000; 0 disables)"},
       {"io-timeout-ms",
        "per-connection socket read/write timeout (default 30000; 0 "
        "disables)"},
       {"idle-timeout-ms",
        "close connections idle this long (default 0 = never)"},
       {"max-conns",
        "concurrent connection cap; excess connections get one error "
        "reply (default 0 = unlimited)"},
       {"max-frame-bytes",
        "per-frame protocol cap (default 67108864)"}});
  if (cli.help_requested()) {
    std::cout << cli.help("bricksim serve");
    return 0;
  }
  ServerOptions opts;
  opts.socket_path = default_socket_path(cli.get("socket", ""));
  opts.cache_dir = cli.has("no-cache")
                       ? ""
                       : harness::default_cache_dir(cli.get("cache-dir", ""));
  opts.resume = cli.has("resume");
  opts.workers = static_cast<int>(cli.get_long_min("workers", 0, 1));
  opts.memo_bytes =
      static_cast<std::size_t>(cli.get_long_min("memo-bytes", 0, 0));
  opts.max_queue = static_cast<int>(cli.get_long_min("max-queue", 0, 0));
  opts.lease_ttl_ms = cli.get_long_min("lease-ttl-ms", 10000, 0);
  opts.io_timeout_ms = cli.get_long_min("io-timeout-ms", 30000, 0);
  opts.idle_timeout_ms = cli.get_long_min("idle-timeout-ms", 0, 0);
  opts.max_conns = static_cast<int>(cli.get_long_min("max-conns", 0, 0));
  opts.max_frame_bytes =
      static_cast<std::size_t>(cli.get_long_min("max-frame-bytes", 0, 0));

  // Fault injection from the environment, exactly like the driver: the
  // serve CI leg arms it to prove degraded sweeps are served, counted and
  // drained like healthy ones.
  std::optional<fault::ScopedPlan> fault_plan;
  if (const char* env = std::getenv("BRICKSIM_FAULT_INJECT");
      env != nullptr && env[0] != '\0') {
    std::cerr << "bricksim serve: note: fault injection armed from "
                 "BRICKSIM_FAULT_INJECT (" << env << ")\n";
    fault_plan.emplace(fault::FaultPlan::parse(env));
  }

  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
  install_shutdown_handler();
  Server server(opts);
  server.start();
  std::cerr << "bricksim serve: listening on " << server.socket_path()
            << (opts.cache_dir.empty() ? " (cache disabled)"
                                       : " (cache " + opts.cache_dir + ")")
            << "\n";
  server.run();
  const BrokerCounters c = server.broker().counters();
  std::cerr << "bricksim serve: drained cleanly (" << c.requests
            << " requests: " << c.warm_memo << " warm, " << c.simulated
            << " simulated, " << c.coalesced << " coalesced, " << c.expired
            << " expired, " << c.failed << " failed, " << c.overloaded
            << " shed)\n";
  return 0;
}

int query_main(int argc, const char* const* argv) {
  std::vector<const char*> flag_argv{argv[0]};
  std::string op;
  for (int a = 1; a < argc; ++a) {
    if (op.empty() && std::string(argv[a]).rfind("--", 0) != 0)
      op = argv[a];
    else
      flag_argv.push_back(argv[a]);
  }
  const Cli cli(static_cast<int>(flag_argv.size()), flag_argv.data(),
                {{"socket", "server socket path (default $BRICKSIM_SOCKET "
                            "or results/bricksim.sock)"},
                 {"kind", "sweep kind: main|cpu (sweep op; default main)"},
                 {"n", "cubic domain extent (sweep/experiment ops)"},
                 {"name", "experiment name (experiment op)"},
                 {"priority",
                  "scheduling priority, higher runs first (sweep op)"},
                 {"deadline-ms",
                  "fail fast if still queued after this long (sweep op)"},
                 {"retries",
                  "retry overloaded replies and dropped connections this "
                  "many times with capped jittered backoff (default 4)"}});
  if (cli.help_requested() || op.empty()) {
    std::cout << "usage: bricksim query [--socket P] "
                 "<healthz|counters|list|sweep|experiment|shutdown> "
                 "[--kind K] [--n N] [--name E] [--priority P] "
                 "[--deadline-ms MS] [--retries N]\n\n"
              << cli.help("bricksim query");
    return op.empty() && !cli.help_requested() ? 2 : 0;
  }
  json::Value req = json::Value::object();
  req["op"] = op;
  if (cli.has("kind")) req["kind"] = cli.get("kind", "main");
  if (cli.has("n")) req["n"] = cli.get_long("n", 256);
  if (cli.has("name")) req["name"] = cli.get("name", "");
  if (cli.has("priority")) req["priority"] = cli.get_long("priority", 0);
  if (cli.has("deadline-ms"))
    req["deadline_ms"] = cli.get_long("deadline-ms", 0);
  const long retries = cli.get_long_min("retries", 4, 0);
  const std::string socket_path =
      default_socket_path(cli.get("socket", ""));
  std::mt19937 rng(std::random_device{}());
  json::Value reply;
  for (int attempt = 0;; ++attempt) {
    try {
      reply = client_call(socket_path, req);
    } catch (const Error& e) {
      // A dropped connection (server restarted, conn.drop fault) is worth
      // retrying; "cannot connect" means nobody is listening -- fail now.
      const std::string what = e.what();
      if (attempt >= retries ||
          what.find("cannot connect") != std::string::npos)
        throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_delay_ms(attempt, 0, rng)));
      continue;
    }
    const bool overloaded = reply.contains("status") &&
                            reply.at("status").as_string() == "overloaded";
    if (!overloaded || attempt >= retries) break;
    const long hint = reply.contains("retry_after_ms")
                          ? reply.at("retry_after_ms").as_long()
                          : 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_delay_ms(attempt, hint, rng)));
  }
  std::cout << reply.dump(1) << "\n";
  const bool ok = reply.contains("ok") && reply.at("ok").as_bool();
  const bool still_overloaded =
      reply.contains("status") &&
      reply.at("status").as_string() == "overloaded";
  return ok && !still_overloaded ? 0 : 1;
}

int loadtest_main(int argc, const char* const* argv) {
  const Cli cli(
      argc, argv,
      {{"socket", "server socket path (default $BRICKSIM_SOCKET or "
                  "results/bricksim.sock)"},
       {"requests", "total requests across all threads (default 200)"},
       {"threads", "concurrent client connections (default 8)"},
       {"kind", "sweep kind to request: main|cpu (default cpu)"},
       {"hot-n", "domain of the hot (repeated) config (default 64)"},
       {"cold-ns",
        "comma-separated cold domains cycled through (default 128,192)"},
       {"cold-every",
        "every k-th request is cold (default 7; 0 disables cold)"},
       {"priority-spread",
        "cycle priorities 0..2 instead of all-default"},
       {"deadline-ms",
        "per-request deadline (default none)"},
       {"retries",
        "retries per request on overload/drop, with capped jittered "
        "backoff honouring retry_after_ms (default 8)"}});
  if (cli.help_requested()) {
    std::cout << cli.help("bricksim loadtest");
    return 0;
  }
  const std::string socket_path =
      default_socket_path(cli.get("socket", ""));
  const long requests = cli.get_long_min("requests", 200, 1);
  const long threads = cli.get_long_min("threads", 8, 1);
  const std::string kind =
      cli.get_choice("kind", {"main", "cpu"}, "cpu");
  const long hot_n = cli.get_long_min("hot-n", 64, 64);
  const long cold_every = cli.get_long("cold-every", 7);
  const long deadline_ms = cli.get_long("deadline-ms", 0);
  const long retries = cli.get_long_min("retries", 8, 0);
  const bool spread = cli.has("priority-spread");
  std::vector<long> cold_ns;
  {
    std::istringstream ss(cli.get("cold-ns", "128,192"));
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) cold_ns.push_back(std::stol(tok));
    if (cold_ns.empty()) cold_ns.push_back(hot_n);
  }

  std::mutex tally_mu;
  std::map<std::string, long> by_status;
  std::map<std::string, long> by_admission;
  long protocol_errors = 0;  ///< requests lost even after every retry
  long shed = 0;             ///< overloaded replies observed
  long retried = 0;          ///< retry attempts (overload backoff + reconnects)
  long succeeded = 0;        ///< requests that got a usable terminal status
  long gave_up = 0;          ///< still overloaded after the last retry
  std::vector<double> latencies_ms;  ///< first attempt -> final reply
  std::vector<std::thread> workers;
  for (long t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(std::random_device{}() +
                       static_cast<unsigned long>(t) * 0x9e3779b9UL);
      int fd = -1;
      const long per = requests / threads + (t < requests % threads);
      for (long i = 0; i < per; ++i) {
        const long g = t * (requests / threads + 1) + i;
        const bool cold = cold_every > 0 && g % cold_every == 0;
        json::Value req = json::Value::object();
        req["op"] = "sweep";
        req["kind"] = kind;
        req["n"] = cold ? cold_ns[static_cast<std::size_t>(
                              (g / cold_every) %
                              static_cast<long>(cold_ns.size()))]
                        : hot_n;
        if (spread) req["priority"] = g % 3;
        if (deadline_ms > 0) req["deadline_ms"] = deadline_ms;
        const auto t0 = std::chrono::steady_clock::now();
        for (int attempt = 0; attempt <= retries; ++attempt) {
          try {
            if (fd < 0) fd = connect_client(socket_path);
            if (fault::armed() && fault::fire(fault::Site::ClientSlow))
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(250));  // idle-reaper bait
            write_frame(fd, req.dump());
            const auto raw = read_frame(fd);
            if (!raw) throw Error("server closed mid-run");
            const json::Value reply = json::Value::parse(*raw);
            if (!reply.contains("ok") || !reply.at("ok").as_bool()) {
              // e.g. the connection-limit refusal: the server closes this
              // connection after it, so retry on a fresh one.
              ::close(fd);
              fd = -1;
              throw Error(reply.contains("error")
                              ? reply.at("error").as_string()
                              : "error reply");
            }
            const std::string status = reply.at("status").as_string();
            if (status == "overloaded") {
              const long hint = reply.contains("retry_after_ms")
                                    ? reply.at("retry_after_ms").as_long()
                                    : 0;
              bool final_shed = false;
              {
                std::lock_guard<std::mutex> lock(tally_mu);
                ++shed;
                if (attempt >= retries) {
                  ++gave_up;
                  ++by_status[status];
                  final_shed = true;
                } else {
                  ++retried;
                }
              }
              if (final_shed) break;
              std::this_thread::sleep_for(std::chrono::milliseconds(
                  backoff_delay_ms(attempt, hint, rng)));
              continue;
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            std::lock_guard<std::mutex> lock(tally_mu);
            latencies_ms.push_back(ms);
            ++by_status[status];
            ++by_admission[reply.at("admission").as_string()];
            if (status != "failed" && status != "rejected") ++succeeded;
            break;
          } catch (const std::exception& e) {
            if (fd >= 0) {
              ::close(fd);
              fd = -1;
            }
            {
              std::lock_guard<std::mutex> lock(tally_mu);
              if (attempt >= retries) {
                ++protocol_errors;
                std::cerr << "bricksim loadtest: thread " << t << ": "
                          << e.what() << "\n";
                break;
              }
              ++retried;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoff_delay_ms(attempt, 0, rng)));
          }
        }
      }
      if (fd >= 0) ::close(fd);
    });
  }
  for (auto& w : workers) w.join();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies_ms.size()) + 0.999999);
    if (rank < 1) rank = 1;
    if (rank > latencies_ms.size()) rank = latencies_ms.size();
    return latencies_ms[rank - 1];
  };

  json::Value out = json::Value::object();
  out["requests"] = requests;
  out["threads"] = threads;
  out["protocol_errors"] = protocol_errors;
  out["shed"] = shed;
  out["retried"] = retried;
  out["succeeded"] = succeeded;
  out["gave_up"] = gave_up;
  out["p50_ms"] = pct(0.50);
  out["p95_ms"] = pct(0.95);
  out["p99_ms"] = pct(0.99);
  json::Value st = json::Value::object();
  for (const auto& [k, v] : by_status) st[k] = v;
  out["by_status"] = st;
  json::Value ad = json::Value::object();
  for (const auto& [k, v] : by_admission) ad[k] = v;
  out["by_admission"] = ad;
  std::cout << out.dump(1) << "\n";
  const long bad = protocol_errors + gave_up + by_status["failed"] +
                   by_status["rejected"];
  return bad == 0 ? 0 : 1;
}

}  // namespace bricksim::serve
