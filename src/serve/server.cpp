#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/shutdown.h"
#include "harness/registry.h"
#include "harness/sweepcache.h"

namespace bricksim::serve {

namespace {

/// Sanity cap on one frame: no legitimate request or reply is near this.
constexpr std::uint32_t kMaxFrame = 64u << 20;

/// Per-server stop pipe so tests can run several servers without sharing
/// the process-wide shutdown flag; the global shutdown_fd() is ALSO
/// honoured when installed (serve_main's SIGINT/SIGTERM path).
struct StopPipe {
  int fds[2] = {-1, -1};
  StopPipe() {
    if (::pipe(fds) != 0) throw Error("cannot create stop pipe");
  }
  ~StopPipe() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
  void trip() {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(fds[1], &b, 1);
  }
  int read_fd() const { return fds[0]; }
};

ssize_t send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return n;
    sent += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(sent);
}

/// Reads exactly `len` bytes; false on EOF/error before they all arrive.
bool recv_all(int fd, char* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

json::Value error_reply(const std::string& what) {
  json::Value v = json::Value::object();
  v["ok"] = false;
  v["error"] = what;
  return v;
}

json::Value counters_to_json(const BrokerCounters& c) {
  json::Value v = json::Value::object();
  v["requests"] = c.requests;
  v["warm_memo"] = c.warm_memo;
  v["warm_disk"] = c.warm_disk;
  v["cold_misses"] = c.cold_misses;
  v["coalesced"] = c.coalesced;
  v["enqueued"] = c.enqueued;
  v["simulated"] = c.simulated;
  v["expired"] = c.expired;
  v["failed"] = c.failed;
  v["rejected"] = c.rejected;
  v["inflight"] = c.inflight;
  return v;
}

/// The registry listing, byte-compatible with `bricksim list --json`.
json::Value registry_json() {
  json::Value arr = json::Value::array();
  for (const auto& exp : harness::experiment_registry()) {
    json::Value v = json::Value::object();
    v["name"] = exp.name;
    v["sweep"] = harness::sweep_kind_name(exp.sweep);
    v["default_n"] = exp.default_n;
    v["legacy_alias"] = exp.legacy_binary;
    v["title"] = exp.title;
    arr.push_back(v);
  }
  return arr;
}

/// Builds the sweep config of a protocol request: a driver-default base at
/// domain n, normalized through the same main/cpu derivation the CLI uses
/// -- so a served sweep and `bricksim run` share fingerprints (and
/// therefore cache entries) by construction.
harness::SweepConfig request_config(const std::string& kind, long n) {
  BRICKSIM_REQUIRE(n > 0 && n % 64 == 0,
                   "sweep op: n must be a positive multiple of 64, got " +
                       std::to_string(n));
  harness::SweepConfig base;
  base.domain = {static_cast<int>(n), static_cast<int>(n),
                 static_cast<int>(n)};
  if (kind == "main") return harness::SweepProvider::main_config(base);
  if (kind == "cpu") return harness::SweepProvider::cpu_config(base);
  throw Error("sweep op: unknown kind '" + kind + "' (main|cpu)");
}

}  // namespace

// --- Framing -----------------------------------------------------------------

void write_frame(int fd, const std::string& payload) {
  BRICKSIM_REQUIRE(payload.size() < kMaxFrame, "frame too large");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const char prefix[4] = {static_cast<char>(len >> 24),
                          static_cast<char>(len >> 16),
                          static_cast<char>(len >> 8),
                          static_cast<char>(len)};
  if (send_all(fd, prefix, 4) <= 0 ||
      (len > 0 && send_all(fd, payload.data(), len) <= 0))
    throw Error("frame write failed (peer closed?)");
}

std::optional<std::string> read_frame(int fd, int abort_fd) {
  // Wait for the first prefix byte, also watching abort_fd: an idle
  // connection unblocks the moment a drain begins.  Once a frame has
  // started arriving it is read to completion regardless -- a request
  // racing the drain still gets a well-formed reply (typically Rejected).
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {abort_fd, POLLIN, 0};
    const int nfds = abort_fd >= 0 ? 2 : 1;
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("poll failed on connection");
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) break;
    if (nfds == 2 && (fds[1].revents & POLLIN)) return std::nullopt;
  }
  char prefix[4];
  {
    // Distinguish clean EOF (no frame) from a torn prefix.
    const ssize_t n = ::recv(fd, prefix, 4, MSG_WAITALL);
    if (n == 0) return std::nullopt;
    if (n != 4) throw Error("truncated frame prefix");
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
  BRICKSIM_REQUIRE(len < kMaxFrame,
                   "frame prefix " + std::to_string(len) +
                       " exceeds the sanity cap");
  std::string payload(len, '\0');
  if (len > 0 && !recv_all(fd, payload.data(), len))
    throw Error("truncated frame payload");
  return payload;
}

int connect_client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BRICKSIM_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long for AF_UNIX: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BRICKSIM_REQUIRE(fd >= 0, "cannot create client socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    throw Error("cannot connect to " + socket_path +
                " (is `bricksim serve` running?)");
  }
  return fd;
}

json::Value client_call(const std::string& socket_path,
                        const json::Value& request) {
  const int fd = connect_client(socket_path);
  try {
    write_frame(fd, request.dump());
    const auto reply = read_frame(fd);
    BRICKSIM_REQUIRE(reply.has_value(),
                     "server closed the connection without a reply");
    ::close(fd);
    return json::Value::parse(*reply);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

std::string default_socket_path(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("BRICKSIM_SOCKET");
      env != nullptr && env[0] != '\0')
    return env;
  return "results/bricksim.sock";
}

// --- Server ------------------------------------------------------------------

struct ServerImpl {
  StopPipe stop;
  std::atomic<bool> stopping{false};
};

namespace {
/// One StopPipe per Server, stored out-of-line so server.h stays free of
/// platform includes.
std::mutex g_impl_mu;
std::map<const Server*, std::shared_ptr<ServerImpl>> g_impls;

std::shared_ptr<ServerImpl> impl_of(const Server* s) {
  std::lock_guard<std::mutex> lock(g_impl_mu);
  auto& slot = g_impls[s];
  if (!slot) slot = std::make_shared<ServerImpl>();
  return slot;
}

void drop_impl(const Server* s) {
  std::lock_guard<std::mutex> lock(g_impl_mu);
  g_impls.erase(s);
}
}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  opts_.socket_path = default_socket_path(opts_.socket_path);
  broker_ = std::make_shared<SweepBroker>(
      SweepBroker::Options{opts_.cache_dir, opts_.resume, opts_.workers});
  impl_of(this);  // allocate the stop pipe up front
}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    std::error_code ec;
    std::filesystem::remove(opts_.socket_path, ec);
  }
  for (auto& t : connections_)
    if (t.joinable()) t.join();
  drop_impl(this);
}

void Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BRICKSIM_REQUIRE(opts_.socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long for AF_UNIX: " + opts_.socket_path);
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  const std::filesystem::path parent =
      std::filesystem::path(opts_.socket_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  // A stale socket file from a crashed server would make bind fail; a
  // LIVE server on the same path is lost either way, so takeover is the
  // useful behaviour.
  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BRICKSIM_REQUIRE(listen_fd_ >= 0, "cannot create listen socket");
  BRICKSIM_REQUIRE(::bind(listen_fd_,
                          reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "cannot bind " + opts_.socket_path);
  BRICKSIM_REQUIRE(::listen(listen_fd_, 128) == 0,
                   "cannot listen on " + opts_.socket_path);
}

void Server::stop() {
  const auto impl = impl_of(this);
  impl->stopping.store(true);
  impl->stop.trip();
}

json::Value Server::handle_request(const json::Value& req) {
  const std::string op =
      req.contains("op") ? req.at("op").as_string() : "";
  json::Value reply = json::Value::object();
  if (op == "healthz") {
    const BrokerCounters c = broker_->counters();
    reply["ok"] = true;
    reply["status"] =
        impl_of(this)->stopping.load() ? "draining" : "serving";
    reply["inflight"] = c.inflight;
    return reply;
  }
  if (op == "counters") {
    reply["ok"] = true;
    reply["counters"] = counters_to_json(broker_->counters());
    return reply;
  }
  if (op == "list") {
    reply["ok"] = true;
    reply["experiments"] = registry_json();
    return reply;
  }
  if (op == "shutdown") {
    stop();
    reply["ok"] = true;
    reply["draining"] = true;
    return reply;
  }
  if (op == "sweep") {
    const std::string kind =
        req.contains("kind") ? req.at("kind").as_string() : "main";
    const long n = req.contains("n") ? req.at("n").as_long() : 256;
    const int priority =
        req.contains("priority")
            ? static_cast<int>(req.at("priority").as_long())
            : 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (req.contains("deadline_ms")) {
      const long ms = req.at("deadline_ms").as_long();
      if (ms > 0)
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(ms);
    }
    const harness::SweepConfig config = request_config(kind, n);
    const Ticket ticket = broker_->submit(config, priority, deadline);
    const SweepResponse resp = ticket.result.get();
    reply["ok"] = true;
    reply["admission"] = request_status_name(ticket.admission);
    reply["status"] = request_status_name(resp.status);
    reply["fingerprint"] = resp.fingerprint;
    reply["measurements"] =
        resp.sweep ? static_cast<long>(resp.sweep->measurements.size()) : 0L;
    reply["failures"] =
        resp.sweep ? static_cast<long>(resp.sweep->failures.size()) : 0L;
    if (!resp.error.empty()) reply["error"] = resp.error;
    return reply;
  }
  if (op == "experiment") {
    BRICKSIM_REQUIRE(req.contains("name"),
                     "experiment op: missing 'name'");
    const std::string name = req.at("name").as_string();
    const harness::Experiment* exp = harness::find_experiment(name);
    if (exp == nullptr)
      return error_reply("unknown experiment: " + name +
                         " (see the list op)");
    const long n =
        req.contains("n") ? req.at("n").as_long() : exp->default_n;
    BRICKSIM_REQUIRE(n > 0 && n % 64 == 0,
                     "experiment op: n must be a positive multiple of 64, "
                     "got " + std::to_string(n));
    harness::SweepConfig config;
    config.domain = {static_cast<int>(n), static_cast<int>(n),
                     static_cast<int>(n)};
    // A provider per request, all sharing this server's broker: requests
    // share every materialized sweep, while failure accounting stays
    // per-request (each client is told about the holes in ITS tables).
    harness::SweepProvider provider(broker_);
    std::ostringstream oss;
    harness::ExperimentContext ctx(config, &provider, &oss);
    std::string status = "ok";
    std::string error;
    try {
      exp->emit(ctx);
    } catch (const std::exception& e) {
      status = "failed";
      error = e.what();
    }
    if (status == "ok" && !provider.all_failures().empty())
      status = "degraded";
    reply["ok"] = true;
    reply["status"] = status;
    reply["output"] = oss.str();
    reply["failures"] =
        static_cast<long>(provider.all_failures().size());
    if (!error.empty()) reply["error"] = error;
    return reply;
  }
  return error_reply("unknown op '" + op +
                     "' (healthz|counters|list|sweep|experiment|shutdown)");
}

void Server::handle_connection(int fd) {
  const auto impl = impl_of(this);
  try {
    for (;;) {
      const auto frame = read_frame(fd, impl->stop.read_fd());
      if (!frame) break;  // EOF or drain while idle
      json::Value reply;
      try {
        reply = handle_request(json::Value::parse(*frame));
      } catch (const std::exception& e) {
        reply = error_reply(e.what());
      }
      write_frame(fd, reply.dump());
    }
  } catch (const std::exception&) {
    // A torn frame or a peer that vanished mid-reply costs this
    // connection, never the server.
  }
  ::close(fd);
}

void Server::run() {
  BRICKSIM_REQUIRE(listen_fd_ >= 0, "Server::run before start()");
  const auto impl = impl_of(this);
  const int global_fd = shutdown_fd();  // -1 when no handler installed
  while (!impl->stopping.load()) {
    pollfd fds[3];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {impl->stop.read_fd(), POLLIN, 0};
    fds[2] = {global_fd, POLLIN, 0};
    const int nfds = global_fd >= 0 ? 3 : 2;
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("poll failed on listen socket");
    }
    if ((fds[1].revents & POLLIN) ||
        (nfds == 3 && (fds[2].revents & POLLIN)))
      break;
    if (fds[0].revents & POLLIN) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      connections_.emplace_back([this, conn] { handle_connection(conn); });
    }
  }
  // Graceful drain: stop accepting, unblock idle connections, let every
  // in-flight request complete and reply, then quiesce the broker.
  stop();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);
  for (auto& t : connections_)
    if (t.joinable()) t.join();
  connections_.clear();
  broker_->drain();
}

// --- CLI entry points --------------------------------------------------------

int serve_main(int argc, const char* const* argv) {
  const Cli cli(
      argc, argv,
      {{"socket",
        "AF_UNIX socket path (default $BRICKSIM_SOCKET or "
        "results/bricksim.sock)"},
       {"cache-dir",
        "sweep cache directory (default $BRICKSIM_CACHE_DIR or "
        "results/cache)"},
       {"no-cache", "disable reading and writing the sweep cache"},
       {"resume", "replay checkpoint shards on cold misses"},
       {"workers",
        "broker worker threads for cold sweeps (default: hardware "
        "concurrency)"}});
  if (cli.help_requested()) {
    std::cout << cli.help("bricksim serve");
    return 0;
  }
  ServerOptions opts;
  opts.socket_path = default_socket_path(cli.get("socket", ""));
  opts.cache_dir = cli.has("no-cache")
                       ? ""
                       : harness::default_cache_dir(cli.get("cache-dir", ""));
  opts.resume = cli.has("resume");
  opts.workers = static_cast<int>(cli.get_long_min("workers", 0, 1));

  // Fault injection from the environment, exactly like the driver: the
  // serve CI leg arms it to prove degraded sweeps are served, counted and
  // drained like healthy ones.
  std::optional<fault::ScopedPlan> fault_plan;
  if (const char* env = std::getenv("BRICKSIM_FAULT_INJECT");
      env != nullptr && env[0] != '\0') {
    std::cerr << "bricksim serve: note: fault injection armed from "
                 "BRICKSIM_FAULT_INJECT (" << env << ")\n";
    fault_plan.emplace(fault::FaultPlan::parse(env));
  }

  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
  install_shutdown_handler();
  Server server(opts);
  server.start();
  std::cerr << "bricksim serve: listening on " << server.socket_path()
            << (opts.cache_dir.empty() ? " (cache disabled)"
                                       : " (cache " + opts.cache_dir + ")")
            << "\n";
  server.run();
  const BrokerCounters c = server.broker().counters();
  std::cerr << "bricksim serve: drained cleanly (" << c.requests
            << " requests: " << c.warm_memo << " warm, " << c.simulated
            << " simulated, " << c.coalesced << " coalesced, " << c.expired
            << " expired, " << c.failed << " failed)\n";
  return 0;
}

int query_main(int argc, const char* const* argv) {
  std::vector<const char*> flag_argv{argv[0]};
  std::string op;
  for (int a = 1; a < argc; ++a) {
    if (op.empty() && std::string(argv[a]).rfind("--", 0) != 0)
      op = argv[a];
    else
      flag_argv.push_back(argv[a]);
  }
  const Cli cli(static_cast<int>(flag_argv.size()), flag_argv.data(),
                {{"socket", "server socket path (default $BRICKSIM_SOCKET "
                            "or results/bricksim.sock)"},
                 {"kind", "sweep kind: main|cpu (sweep op; default main)"},
                 {"n", "cubic domain extent (sweep/experiment ops)"},
                 {"name", "experiment name (experiment op)"},
                 {"priority",
                  "scheduling priority, higher runs first (sweep op)"},
                 {"deadline-ms",
                  "fail fast if still queued after this long (sweep op)"}});
  if (cli.help_requested() || op.empty()) {
    std::cout << "usage: bricksim query [--socket P] "
                 "<healthz|counters|list|sweep|experiment|shutdown> "
                 "[--kind K] [--n N] [--name E] [--priority P] "
                 "[--deadline-ms MS]\n\n"
              << cli.help("bricksim query");
    return op.empty() && !cli.help_requested() ? 2 : 0;
  }
  json::Value req = json::Value::object();
  req["op"] = op;
  if (cli.has("kind")) req["kind"] = cli.get("kind", "main");
  if (cli.has("n")) req["n"] = cli.get_long("n", 256);
  if (cli.has("name")) req["name"] = cli.get("name", "");
  if (cli.has("priority")) req["priority"] = cli.get_long("priority", 0);
  if (cli.has("deadline-ms"))
    req["deadline_ms"] = cli.get_long("deadline-ms", 0);
  const json::Value reply =
      client_call(default_socket_path(cli.get("socket", "")), req);
  std::cout << reply.dump(1) << "\n";
  return reply.contains("ok") && reply.at("ok").as_bool() ? 0 : 1;
}

int loadtest_main(int argc, const char* const* argv) {
  const Cli cli(
      argc, argv,
      {{"socket", "server socket path (default $BRICKSIM_SOCKET or "
                  "results/bricksim.sock)"},
       {"requests", "total requests across all threads (default 200)"},
       {"threads", "concurrent client connections (default 8)"},
       {"kind", "sweep kind to request: main|cpu (default cpu)"},
       {"hot-n", "domain of the hot (repeated) config (default 64)"},
       {"cold-ns",
        "comma-separated cold domains cycled through (default 128,192)"},
       {"cold-every",
        "every k-th request is cold (default 7; 0 disables cold)"},
       {"priority-spread",
        "cycle priorities 0..2 instead of all-default"},
       {"deadline-ms",
        "per-request deadline (default none)"}});
  if (cli.help_requested()) {
    std::cout << cli.help("bricksim loadtest");
    return 0;
  }
  const std::string socket_path =
      default_socket_path(cli.get("socket", ""));
  const long requests = cli.get_long_min("requests", 200, 1);
  const long threads = cli.get_long_min("threads", 8, 1);
  const std::string kind =
      cli.get_choice("kind", {"main", "cpu"}, "cpu");
  const long hot_n = cli.get_long_min("hot-n", 64, 64);
  const long cold_every = cli.get_long("cold-every", 7);
  const long deadline_ms = cli.get_long("deadline-ms", 0);
  const bool spread = cli.has("priority-spread");
  std::vector<long> cold_ns;
  {
    std::istringstream ss(cli.get("cold-ns", "128,192"));
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) cold_ns.push_back(std::stol(tok));
    if (cold_ns.empty()) cold_ns.push_back(hot_n);
  }

  std::mutex tally_mu;
  std::map<std::string, long> by_status;
  std::map<std::string, long> by_admission;
  long protocol_errors = 0;
  std::vector<std::thread> workers;
  for (long t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      try {
        const int fd = connect_client(socket_path);
        const long per = requests / threads + (t < requests % threads);
        for (long i = 0; i < per; ++i) {
          const long g = t * (requests / threads + 1) + i;
          const bool cold = cold_every > 0 && g % cold_every == 0;
          json::Value req = json::Value::object();
          req["op"] = "sweep";
          req["kind"] = kind;
          req["n"] = cold ? cold_ns[static_cast<std::size_t>(
                                (g / cold_every) %
                                static_cast<long>(cold_ns.size()))]
                          : hot_n;
          if (spread) req["priority"] = g % 3;
          if (deadline_ms > 0) req["deadline_ms"] = deadline_ms;
          write_frame(fd, req.dump());
          const auto raw = read_frame(fd);
          if (!raw) throw Error("server closed mid-run");
          const json::Value reply = json::Value::parse(*raw);
          std::lock_guard<std::mutex> lock(tally_mu);
          if (!reply.contains("ok") || !reply.at("ok").as_bool()) {
            ++protocol_errors;
            continue;
          }
          ++by_status[reply.at("status").as_string()];
          ++by_admission[reply.at("admission").as_string()];
        }
        ::close(fd);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(tally_mu);
        ++protocol_errors;
        std::cerr << "bricksim loadtest: thread " << t << ": " << e.what()
                  << "\n";
      }
    });
  }
  for (auto& w : workers) w.join();

  json::Value out = json::Value::object();
  out["requests"] = requests;
  out["threads"] = threads;
  out["protocol_errors"] = protocol_errors;
  json::Value st = json::Value::object();
  for (const auto& [k, v] : by_status) st[k] = v;
  out["by_status"] = st;
  json::Value ad = json::Value::object();
  for (const auto& [k, v] : by_admission) ad[k] = v;
  out["by_admission"] = ad;
  std::cout << out.dump(1) << "\n";
  const long bad =
      protocol_errors + by_status["failed"] + by_status["rejected"];
  return bad == 0 ? 0 : 1;
}

}  // namespace bricksim::serve
