// SweepBroker: the one front door to sweep materialization.
//
// Everything that wants a Sweep -- the `bricksim run`/`all` CLI paths (via
// SweepProvider, which is now a thin stats-keeping client), the `bricksim
// serve` daemon, and the load-test harness -- goes through a broker.  The
// broker owns the three-level resolution the provider used to inline:
//
//   1. in-process memo        (warm; never touches any thread pool)
//   2. content-addressed disk cache (harness/sweepcache.h)
//   3. a real run_sweep, persisted for next time
//
// plus the two behaviours a long-running server needs on top:
//
//   * single-flight deduplication: concurrent identical requests (same
//     config_identity fingerprint) coalesce onto ONE in-flight simulation;
//     followers share the leader's result instead of re-simulating.
//   * an admission queue: cold misses from submit() land on a
//     priority-ordered ThreadPool (common/threadpool.h) with an optional
//     per-request deadline -- a request whose deadline passes while still
//     queued fails fast with RequestStatus::Expired instead of occupying a
//     worker.
//
// The synchronous request() used by the CLI deliberately runs a cold miss
// INLINE on the caller's thread -- no pool, no handoff -- so `bricksim
// run`/`all` execute exactly the same code on exactly the same thread as
// the pre-broker SweepProvider::get() and their artifacts stay
// byte-identical by construction (tests/test_broker.cpp holds the proof).
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "harness/harness.h"

namespace bricksim {
class ThreadPool;
}

namespace bricksim::serve {

/// How a request was (or will be) satisfied.  Terminal statuses land in
/// SweepResponse; Queued/Coalesced additionally appear as the *admission*
/// verdict of an async submit() (Ticket::admission) whose terminal status
/// is still in the future.
enum class RequestStatus {
  WarmMemo,   ///< served from the in-process memo; no pool, no disk
  WarmDisk,   ///< leader replayed the persisted cache entry
  Simulated,  ///< leader ran the simulator
  Coalesced,  ///< attached to an identical in-flight request (admission)
  Queued,     ///< admitted cold onto the pool (admission only)
  Expired,    ///< deadline passed before a worker dequeued the request
  Failed,     ///< the simulation threw; `error` carries the text
  Rejected,   ///< broker is draining; no new work admitted
};

/// Human-readable status name ("warm_memo", "simulated", ...), as it
/// appears in server counter/response JSON.
const char* request_status_name(RequestStatus s);

/// The terminal answer to one sweep request.  `sweep` is shared with the
/// broker's memo (and any coalesced followers); it is null exactly when
/// `status` is Expired/Failed/Rejected.
struct SweepResponse {
  RequestStatus status = RequestStatus::Rejected;
  std::shared_ptr<const harness::Sweep> sweep;
  std::string fingerprint;
  std::string error;  ///< exception text when status == Failed
};

/// Admission receipt of an async submit().  `admission` says what happened
/// at the door (WarmMemo: `result` is already ready; Coalesced: attached
/// to the in-flight leader; Queued: a new leader was enqueued; Rejected:
/// draining, `result` is ready and Rejected).  `result` always becomes a
/// terminal SweepResponse.
struct Ticket {
  RequestStatus admission = RequestStatus::Rejected;
  std::shared_future<SweepResponse> result;
};

/// Monotonic broker counters, exposed by `bricksim serve` under the
/// `counters` op and asserted by the CI load test.  Invariant:
///   requests == warm_memo + coalesced + cold_misses + rejected
/// and every cold miss resolves to exactly one of warm_disk / simulated /
/// expired / failed.  enqueued counts the cold misses that went through
/// the ThreadPool (async submits only) -- warm requests never touch it.
struct BrokerCounters {
  long requests = 0;
  long warm_memo = 0;
  long warm_disk = 0;
  long cold_misses = 0;
  long coalesced = 0;
  long enqueued = 0;
  long simulated = 0;
  long expired = 0;
  long failed = 0;
  long rejected = 0;
  long inflight = 0;  ///< gauge: leaders currently queued or running
};

class SweepBroker {
 public:
  struct Options {
    /// Empty disables persistence (legacy shims, --no-cache), exactly as
    /// SweepProvider's empty cache_dir did.
    std::string cache_dir;
    /// Replay checkpoint shards of an interrupted run before simulating.
    bool resume = false;
    /// Worker threads of the async admission pool (0 = hardware
    /// concurrency).  The pool is created lazily on the first async cold
    /// miss, so a CLI-only broker never spawns a thread.
    int workers = 0;
  };

  explicit SweepBroker(Options opts);
  ~SweepBroker();  ///< drains: blocks until every in-flight leader resolved

  SweepBroker(const SweepBroker&) = delete;
  SweepBroker& operator=(const SweepBroker&) = delete;

  /// Synchronous resolution for the CLI: memo -> disk -> inline run_sweep
  /// on the calling thread.  If an identical request is already in flight
  /// (only possible with concurrent submitters), waits for it and returns
  /// its result with status Coalesced.
  SweepResponse request(const harness::SweepConfig& config);

  /// Asynchronous resolution for the server: memo hits complete
  /// immediately (never enqueued), identical in-flight requests coalesce,
  /// cold misses enqueue on the priority pool.  Higher `priority` runs
  /// first; equal priorities FIFO.  A request still queued past `deadline`
  /// resolves to Expired without simulating; a deadline never cancels a
  /// simulation already running (followers extend the leader's deadline to
  /// the max over all attached requests).
  Ticket submit(const harness::SweepConfig& config, int priority = 0,
                std::optional<std::chrono::steady_clock::time_point> deadline =
                    std::nullopt);

  /// Memo-only probe (no counters, no disk, no simulation): the
  /// SweepProvider rooflines fast path uses these to preserve its exact
  /// legacy counter ordering (memo -> rooflines memo -> disk -> compute).
  std::shared_ptr<const harness::Sweep> peek_memo(
      const harness::SweepConfig& config);

  /// Disk-only probe: loads + memoizes the persisted entry, or null on a
  /// miss.  Never simulates; no counters.
  std::shared_ptr<const harness::Sweep> load_disk(
      const harness::SweepConfig& config);

  /// Stops admitting (further requests are Rejected) and blocks until
  /// every in-flight leader has resolved.  In-flight sweeps COMPLETE --
  /// drain never cancels work, so a served client always gets a terminal
  /// answer.  Idempotent.
  void drain();

  /// Counter snapshot (consistent under one lock).
  BrokerCounters counters() const;

  const std::string& cache_dir() const { return opts_.cache_dir; }
  bool resume() const { return opts_.resume; }

  /// Test hook: runs on the leader thread immediately before run_sweep,
  /// with the fingerprint about to be simulated.  Lets tests count real
  /// simulations and park leaders to provoke coalescing/priority/deadline
  /// windows.  Not for production use.
  void set_pre_run_hook(std::function<void(const std::string&)> hook);

 private:
  struct InFlight {
    std::promise<SweepResponse> promise;
    std::shared_future<SweepResponse> future;
    /// Latest deadline over every attached request; unset = unbounded.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  /// The leader's cold-miss body: disk -> run_sweep -> persist -> memo.
  /// Runs with mu_ NOT held; publishes the response and erases the
  /// in-flight entry.
  void run_leader(const std::string& fp, const harness::SweepConfig& config,
                  const std::shared_ptr<InFlight>& fl);

  /// Publishes `resp` as fp's terminal answer: memoizes (unless the sweep
  /// was cut short by cancellation), erases the in-flight entry, bumps the
  /// terminal counter, fulfils the promise.
  void finish(const std::string& fp, const std::shared_ptr<InFlight>& fl,
              SweepResponse resp);

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable idle_;  ///< signalled when an in-flight resolves
  std::map<std::string, std::shared_ptr<const harness::Sweep>> memo_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  BrokerCounters counters_;
  bool draining_ = false;
  std::unique_ptr<ThreadPool> pool_;  ///< lazily created on first enqueue
  std::function<void(const std::string&)> pre_run_hook_;
};

}  // namespace bricksim::serve
