// SweepBroker: the one front door to sweep materialization.
//
// Everything that wants a Sweep -- the `bricksim run`/`all` CLI paths (via
// SweepProvider, which is now a thin stats-keeping client), the `bricksim
// serve` daemon, and the load-test harness -- goes through a broker.  The
// broker owns the three-level resolution the provider used to inline:
//
//   1. in-process memo        (warm; never touches any thread pool)
//   2. content-addressed disk cache (harness/sweepcache.h)
//   3. a real run_sweep, persisted for next time
//
// plus the two behaviours a long-running server needs on top:
//
//   * single-flight deduplication: concurrent identical requests (same
//     config_identity fingerprint) coalesce onto ONE in-flight simulation;
//     followers share the leader's result instead of re-simulating.
//   * an admission queue: cold misses from submit() land on a
//     priority-ordered ThreadPool (common/threadpool.h) with an optional
//     per-request deadline -- a request whose deadline passes while still
//     queued fails fast with RequestStatus::Expired instead of occupying a
//     worker.
//
// The synchronous request() used by the CLI deliberately runs a cold miss
// INLINE on the caller's thread -- no pool, no handoff -- so `bricksim
// run`/`all` execute exactly the same code on exactly the same thread as
// the pre-broker SweepProvider::get() and their artifacts stay
// byte-identical by construction (tests/test_broker.cpp holds the proof).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "harness/harness.h"

namespace bricksim {
class ThreadPool;
}

namespace bricksim::serve {

/// How a request was (or will be) satisfied.  Terminal statuses land in
/// SweepResponse; Queued/Coalesced additionally appear as the *admission*
/// verdict of an async submit() (Ticket::admission) whose terminal status
/// is still in the future.
enum class RequestStatus {
  WarmMemo,   ///< served from the in-process memo; no pool, no disk
  WarmDisk,   ///< leader replayed the persisted cache entry
  Simulated,  ///< leader ran the simulator
  Coalesced,  ///< attached to an identical in-flight request (admission)
  Queued,     ///< admitted cold onto the pool (admission only)
  Expired,    ///< deadline passed before a worker dequeued the request
  Failed,     ///< the simulation threw; `error` carries the text
  Rejected,   ///< broker is draining; no new work admitted
  Overloaded, ///< cold queue full or deadline unmeetable; retry later
};

/// Human-readable status name ("warm_memo", "simulated", ...), as it
/// appears in server counter/response JSON.
const char* request_status_name(RequestStatus s);

/// The terminal answer to one sweep request.  `sweep` is shared with the
/// broker's memo (and any coalesced followers); it is null exactly when
/// `status` is Expired/Failed/Rejected.
struct SweepResponse {
  RequestStatus status = RequestStatus::Rejected;
  std::shared_ptr<const harness::Sweep> sweep;
  std::string fingerprint;
  std::string error;  ///< exception text when status == Failed
  /// Backoff hint for Overloaded responses (how long until a worker is
  /// plausibly free, from queue depth x recent cold duration); 0 otherwise.
  long retry_after_ms = 0;
};

/// Admission receipt of an async submit().  `admission` says what happened
/// at the door (WarmMemo: `result` is already ready; Coalesced: attached
/// to the in-flight leader; Queued: a new leader was enqueued; Rejected:
/// draining, `result` is ready and Rejected).  `result` always becomes a
/// terminal SweepResponse.
struct Ticket {
  RequestStatus admission = RequestStatus::Rejected;
  std::shared_future<SweepResponse> result;
};

/// Monotonic broker counters, exposed by `bricksim serve` under the
/// `counters` op and asserted by the CI load test.  Invariant:
///   requests == warm_memo + coalesced + cold_misses + rejected + overloaded
/// and every cold miss resolves to exactly one of warm_disk / simulated /
/// expired / failed.  enqueued counts the cold misses that went through
/// the ThreadPool (async submits only) -- warm requests never touch it.
struct BrokerCounters {
  long requests = 0;
  long warm_memo = 0;
  long warm_disk = 0;
  long cold_misses = 0;
  long coalesced = 0;
  long enqueued = 0;
  long simulated = 0;
  long expired = 0;
  long failed = 0;
  long rejected = 0;
  long overloaded = 0;         ///< shed at the door (queue full / unmeetable)
  long memo_evictions = 0;     ///< entries evicted to honor memo_bytes
  long memo_readmissions = 0;  ///< evicted fingerprints memoized again
  long lease_waits = 0;        ///< cold misses that found a peer's live lease
  long lease_steals = 0;       ///< stale leases expired and taken over
  long inflight = 0;     ///< gauge: leaders currently queued or running
  long queued = 0;       ///< gauge: leaders enqueued but not yet running
  long memo_entries = 0; ///< gauge: sweeps currently memoized
  long memo_bytes = 0;   ///< gauge: serialized bytes memoized (<= budget)
  /// Request-latency percentiles over a sliding window of broker-side
  /// resolution times (arrival to terminal status), in milliseconds.
  /// Gauges; 0 before any request resolved.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

class SweepBroker {
 public:
  struct Options {
    /// Empty disables persistence (legacy shims, --no-cache), exactly as
    /// SweepProvider's empty cache_dir did.
    std::string cache_dir;
    /// Replay checkpoint shards of an interrupted run before simulating.
    bool resume = false;
    /// Worker threads of the async admission pool (0 = hardware
    /// concurrency).  The pool is created lazily on the first async cold
    /// miss, so a CLI-only broker never spawns a thread.
    int workers = 0;
    /// Byte budget for the in-process memo (0 = unlimited, the legacy
    /// behaviour).  Cost is the entry's serialized size -- the same bytes
    /// the disk cache stores -- and eviction is LRU.  Evicted entries are
    /// not lost: they fall back to the disk cache (counted as
    /// memo_readmissions when they return).  The budget is a hard bound:
    /// an entry larger than the whole budget is never memoized.
    std::size_t memo_bytes = 0;
    /// Admission bound on the async cold-miss queue (0 = unlimited).
    /// submit() calls that would queue a NEW leader past this depth -- or
    /// whose deadline the current queue provably cannot meet -- resolve
    /// immediately to Overloaded with a retry_after_ms hint instead of
    /// queueing forever.  Warm hits and coalesced followers are never
    /// shed.  The synchronous request() path is exempt: the CLI runs its
    /// own cold misses inline and has nobody to shed for.
    int max_queue = 0;
    /// Cross-process sweep lease TTL (0 = leases disabled).  With a
    /// cache_dir and a positive TTL, a cold leader claims
    /// lease-<fp>.json (harness/lease.h) before simulating: a second
    /// daemon on the same cache dir polls the disk cache instead of
    /// duplicating the run, and a daemon SIGKILLed mid-sweep has its
    /// stale lease stolen and its resume shards adopted by a peer.
    long lease_ttl_ms = 0;
  };

  explicit SweepBroker(Options opts);
  ~SweepBroker();  ///< drains: blocks until every in-flight leader resolved

  SweepBroker(const SweepBroker&) = delete;
  SweepBroker& operator=(const SweepBroker&) = delete;

  /// Synchronous resolution for the CLI: memo -> disk -> inline run_sweep
  /// on the calling thread.  If an identical request is already in flight
  /// (only possible with concurrent submitters), waits for it and returns
  /// its result with status Coalesced.
  SweepResponse request(const harness::SweepConfig& config);

  /// Asynchronous resolution for the server: memo hits complete
  /// immediately (never enqueued), identical in-flight requests coalesce,
  /// cold misses enqueue on the priority pool.  Higher `priority` runs
  /// first; equal priorities FIFO.  A request still queued past `deadline`
  /// resolves to Expired without simulating; a deadline never cancels a
  /// simulation already running (followers extend the leader's deadline to
  /// the max over all attached requests).
  Ticket submit(const harness::SweepConfig& config, int priority = 0,
                std::optional<std::chrono::steady_clock::time_point> deadline =
                    std::nullopt);

  /// Memo-only probe (no counters, no disk, no simulation): the
  /// SweepProvider rooflines fast path uses these to preserve its exact
  /// legacy counter ordering (memo -> rooflines memo -> disk -> compute).
  std::shared_ptr<const harness::Sweep> peek_memo(
      const harness::SweepConfig& config);

  /// Disk-only probe: loads + memoizes the persisted entry, or null on a
  /// miss.  Never simulates; no counters.
  std::shared_ptr<const harness::Sweep> load_disk(
      const harness::SweepConfig& config);

  /// Stops admitting (further requests are Rejected) and blocks until
  /// every in-flight leader has resolved.  In-flight sweeps COMPLETE --
  /// drain never cancels work, so a served client always gets a terminal
  /// answer.  Idempotent.
  void drain();

  /// Counter snapshot (consistent under one lock).
  BrokerCounters counters() const;

  const std::string& cache_dir() const { return opts_.cache_dir; }
  bool resume() const { return opts_.resume; }

  /// Test hook: runs on the leader thread immediately before run_sweep,
  /// with the fingerprint about to be simulated.  Lets tests count real
  /// simulations and park leaders to provoke coalescing/priority/deadline
  /// windows.  Not for production use.
  void set_pre_run_hook(std::function<void(const std::string&)> hook);

 private:
  struct InFlight {
    std::promise<SweepResponse> promise;
    std::shared_future<SweepResponse> future;
    /// Latest deadline over every attached request; unset = unbounded.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// When the leader was admitted; finish() records the span as one
    /// latency sample and (for simulated leaders) a cold-duration sample.
    std::chrono::steady_clock::time_point arrival;
  };

  struct MemoEntry {
    std::shared_ptr<const harness::Sweep> sweep;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;  ///< position in lru_
  };

  /// The leader's cold-miss body: disk -> lease -> run_sweep -> persist ->
  /// memo.  Runs with mu_ NOT held; publishes the response and erases the
  /// in-flight entry.
  void run_leader(const std::string& fp, const harness::SweepConfig& config,
                  const std::shared_ptr<InFlight>& fl);

  /// Publishes `resp` as fp's terminal answer: memoizes (unless the sweep
  /// was cut short by cancellation), erases the in-flight entry, bumps the
  /// terminal counter, records latency, fulfils the promise.
  void finish(const std::string& fp, const std::shared_ptr<InFlight>& fl,
              SweepResponse resp);

  /// Memoizes under mu_ (LRU head), then evicts from the tail until the
  /// byte budget holds.  `bytes` is the entry's serialized size, computed
  /// by the caller OUTSIDE the lock.  Returns the memoized sweep (the
  /// incumbent when fp was already present).
  std::shared_ptr<const harness::Sweep> memo_insert_locked(
      const std::string& fp, std::shared_ptr<const harness::Sweep> sweep,
      std::size_t bytes);

  /// Moves fp to the LRU head (warm hits keep hot entries resident).
  void memo_touch_locked(const std::string& fp);

  /// One latency sample into the sliding window (under mu_).
  void record_latency_locked(std::chrono::steady_clock::time_point start);

  /// Estimated ms until a new leader would reach a worker, from queue
  /// depth x average cold duration / pool width (under mu_).  0 before
  /// any cold leader has resolved.
  long estimated_queue_wait_locked() const;

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable idle_;  ///< signalled when an in-flight resolves
  std::map<std::string, MemoEntry> memo_;
  std::list<std::string> lru_;  ///< front = most recently used fingerprint
  std::size_t memo_bytes_ = 0;  ///< sum of memo_ entry costs
  std::set<std::string> evicted_fps_;  ///< for the readmission counter
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  int queued_ = 0;  ///< leaders handed to the pool, not yet running
  BrokerCounters counters_;
  std::vector<double> latencies_ms_;  ///< sliding window (ring buffer)
  std::size_t latency_next_ = 0;
  double cold_ms_total_ = 0;  ///< sum of simulated-leader spans
  long cold_runs_ = 0;
  bool draining_ = false;
  std::unique_ptr<ThreadPool> pool_;  ///< lazily created on first enqueue
  std::function<void(const std::string&)> pre_run_hook_;
};

}  // namespace bricksim::serve
