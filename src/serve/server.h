// `bricksim serve`: the SweepBroker behind a local socket.
//
// A long-running daemon speaking a minimal framed-JSON protocol over an
// AF_UNIX stream socket: every message is a 4-byte big-endian length
// prefix followed by one JSON document (common/json).  One request frame
// yields exactly one reply frame; a connection carries any number of
// request/reply pairs sequentially.
//
// Requests are objects with an "op" key:
//
//   {"op":"healthz"}                 -> {"ok":true,"status":"serving",
//                                        "inflight":0}
//   {"op":"counters"}                -> {"ok":true,"counters":{...}}
//                                       (BrokerCounters, serve/broker.h)
//   {"op":"list"}                    -> {"ok":true,"experiments":[...]}
//                                       (same content as
//                                        `bricksim list --json`)
//   {"op":"sweep","kind":"main",     -> {"ok":true,"status":"simulated",
//    "n":256,"priority":0,               "admission":"queued",
//    "deadline_ms":5000}                 "fingerprint":"...",
//                                        "measurements":90,"failures":0}
//   {"op":"experiment","name":"fig3",-> {"ok":true,"status":"ok",
//    "n":256}                            "output":"...","failures":0}
//   {"op":"shutdown"}                -> {"ok":true,"draining":true}
//
// Errors reply {"ok":false,"error":"..."} and keep the connection open.
//
// Shutdown -- the op, SIGINT or SIGTERM (common/shutdown.h) -- drains
// gracefully: the listener closes, every in-flight sweep COMPLETES and its
// clients get their replies (sweeps are never cancelled server-side), then
// run() returns.  New requests racing the drain are rejected.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/broker.h"

namespace bricksim::serve {

struct ServerOptions {
  std::string socket_path;  ///< AF_UNIX path (unlinked on clean exit)
  std::string cache_dir;    ///< "" disables sweep persistence
  bool resume = false;      ///< replay checkpoint shards on cold misses
  int workers = 0;          ///< broker pool width (0 = hardware)
};

/// The embeddable server: `bricksim serve` wraps it in serve_main, tests
/// run it on a thread and speak the protocol through client_call.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (throws bricksim::Error on failure).  Separate
  /// from run() so a test can start a client the moment the socket exists.
  void start();

  /// Serves until a shutdown is requested (the op, a signal, or stop()),
  /// then drains and returns.  Call start() first.
  void run();

  /// Requests a drain from another thread, exactly like the shutdown op.
  void stop();

  const std::string& socket_path() const { return opts_.socket_path; }
  SweepBroker& broker() { return *broker_; }

 private:
  void handle_connection(int fd);
  json::Value handle_request(const json::Value& req);

  ServerOptions opts_;
  std::shared_ptr<SweepBroker> broker_;
  int listen_fd_ = -1;
  std::vector<std::thread> connections_;
};

// --- Framing + client helpers (shared by server, clients, and tests) --------

/// Writes one frame (4-byte big-endian length + payload).  Throws
/// bricksim::Error on a short write or closed peer.
void write_frame(int fd, const std::string& payload);

/// Reads one frame; nullopt on clean EOF before a prefix byte, or when
/// `abort_fd` (e.g. shutdown_fd()) becomes readable while idle.  Throws on
/// truncated frames and oversized prefixes.
std::optional<std::string> read_frame(int fd, int abort_fd = -1);

/// Connects to `socket_path`, sends `request`, returns the reply.  One
/// round trip per call; throws bricksim::Error on connect/protocol errors.
json::Value client_call(const std::string& socket_path,
                        const json::Value& request);

/// Default socket path: $BRICKSIM_SOCKET or "results/bricksim.sock".
std::string default_socket_path(const std::string& flag_value = "");

/// `bricksim serve [--socket P] [--cache-dir D] [--no-cache] [--resume]
/// [--workers N]`: runs a Server until SIGINT/SIGTERM or a shutdown op;
/// exits 0 after a clean drain.
int serve_main(int argc, const char* const* argv);

/// `bricksim query [--socket P] <op> [--n N] [--kind K] [--name E]
/// [--priority P] [--deadline-ms MS]`: one protocol round trip, reply JSON
/// on stdout; exits 0 when the reply carries "ok": true.
int query_main(int argc, const char* const* argv);

/// `bricksim loadtest [--socket P] [--requests N] [--threads T] [--kind K]
/// [--hot-n N] [--cold-ns CSV] [--cold-every K] [--priority-spread]
/// [--deadline-ms MS]`: drives a mixed hot/cold request storm and prints a
/// JSON tally; exits 0 when every reply was ok and nothing failed or was
/// rejected.
int loadtest_main(int argc, const char* const* argv);

}  // namespace bricksim::serve
