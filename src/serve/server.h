// `bricksim serve`: the SweepBroker behind a local socket.
//
// A long-running daemon speaking a minimal framed-JSON protocol over an
// AF_UNIX stream socket: every message is a 4-byte big-endian length
// prefix followed by one JSON document (common/json).  One request frame
// yields exactly one reply frame; a connection carries any number of
// request/reply pairs sequentially.
//
// Requests are objects with an "op" key:
//
//   {"op":"healthz"}                 -> {"ok":true,"status":"serving",
//                                        "inflight":0}
//   {"op":"counters"}                -> {"ok":true,"counters":{...}}
//                                       (BrokerCounters, serve/broker.h)
//   {"op":"list"}                    -> {"ok":true,"experiments":[...]}
//                                       (same content as
//                                        `bricksim list --json`)
//   {"op":"sweep","kind":"main",     -> {"ok":true,"status":"simulated",
//    "n":256,"priority":0,               "admission":"queued",
//    "deadline_ms":5000}                 "fingerprint":"...",
//                                        "measurements":90,"failures":0}
//   {"op":"experiment","name":"fig3",-> {"ok":true,"status":"ok",
//    "n":256}                            "output":"...","failures":0}
//   {"op":"shutdown"}                -> {"ok":true,"draining":true}
//
// Errors reply {"ok":false,"error":"..."} and keep the connection open --
// with two exceptions that close it after the reply, because the byte
// stream cannot be resynchronized: an oversized length prefix (which is
// also what garbage bytes decode to) and a read/idle timeout.  A malformed
// frame NEVER crashes or hangs the server; at worst it costs the client
// its connection.  An overloaded broker (serve/broker.h admission control)
// replies {"ok":true,"status":"overloaded","retry_after_ms":...} -- the
// client should back off and retry (bricksim query/loadtest do).
//
// Shutdown -- the op, SIGINT or SIGTERM (common/shutdown.h) -- drains
// gracefully: the listener closes, every in-flight sweep COMPLETES and its
// clients get their replies (sweeps are never cancelled server-side), then
// run() returns.  New requests racing the drain are rejected.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "serve/broker.h"

namespace bricksim::serve {

struct ServerOptions {
  std::string socket_path;  ///< AF_UNIX path (unlinked on clean exit)
  std::string cache_dir;    ///< "" disables sweep persistence
  bool resume = false;      ///< replay checkpoint shards on cold misses
  int workers = 0;          ///< broker pool width (0 = hardware)
  /// Broker memo byte budget (0 = unlimited; see SweepBroker::Options).
  std::size_t memo_bytes = 0;
  /// Broker admission bound on queued cold misses (0 = unlimited); past
  /// it, sweep ops reply status "overloaded" with a retry_after_ms hint.
  int max_queue = 0;
  /// Cross-process sweep lease TTL in ms (0 = leases disabled).
  long lease_ttl_ms = 0;
  /// Per-connection socket read/write timeout in ms (0 = none).  A peer
  /// that stalls mid-frame for longer loses the connection, never hangs a
  /// server thread forever.
  long io_timeout_ms = 0;
  /// Idle reaper: a connection with no request for this long is closed
  /// (0 = never).  Keeps abandoned clients from pinning threads.
  long idle_timeout_ms = 0;
  /// Concurrent connection cap (0 = unlimited).  Connections past the cap
  /// get one {"ok":false,"error":...} reply and are closed.
  int max_conns = 0;
  /// Per-frame byte cap (0 = the 64 MiB default).  An oversized prefix
  /// gets a clean error reply, then the connection closes.
  std::size_t max_frame_bytes = 0;
};

/// Thrown by read_frame when a length prefix exceeds the frame cap: the
/// stream cannot be resynchronized, but the server can still send one
/// clean error reply before closing (tests/test_fuzz_protocol.cpp).
struct FrameTooLarge : Error {
  using Error::Error;
};

/// The embeddable server: `bricksim serve` wraps it in serve_main, tests
/// run it on a thread and speak the protocol through client_call.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (throws bricksim::Error on failure).  Separate
  /// from run() so a test can start a client the moment the socket exists.
  void start();

  /// Serves until a shutdown is requested (the op, a signal, or stop()),
  /// then drains and returns.  Call start() first.
  void run();

  /// Requests a drain from another thread, exactly like the shutdown op.
  void stop();

  const std::string& socket_path() const { return opts_.socket_path; }
  SweepBroker& broker() { return *broker_; }

 private:
  void handle_connection(int fd, unsigned long id);
  json::Value handle_request(const json::Value& req);
  void reap_finished();  ///< joins connection threads that have exited

  ServerOptions opts_;
  std::shared_ptr<SweepBroker> broker_;
  int listen_fd_ = -1;
  /// Live connection threads by id; finished ones are reaped (joined and
  /// erased) from the accept loop, so a long-lived server's thread count
  /// tracks LIVE connections instead of growing monotonically.
  std::map<unsigned long, std::thread> connections_;
  unsigned long next_conn_id_ = 0;
};

// --- Framing + client helpers (shared by server, clients, and tests) --------

/// Writes one frame (4-byte big-endian length + payload).  Handles EINTR
/// and partial writes (a full-buffer send() that accepts fewer bytes than
/// asked resumes where it left off).  Throws bricksim::Error on a closed
/// peer or write timeout.
void write_frame(int fd, const std::string& payload);

/// Reads one frame; nullopt on clean EOF before a prefix byte, when
/// `abort_fd` (e.g. shutdown_fd()) becomes readable while idle, or when no
/// prefix byte arrives within `idle_timeout_ms` (0 = wait forever).
/// Handles EINTR and partial reads.  Throws bricksim::Error on truncated
/// frames and FrameTooLarge when the prefix exceeds `max_frame` (0 = the
/// 64 MiB default).
std::optional<std::string> read_frame(int fd, int abort_fd = -1,
                                      long idle_timeout_ms = 0,
                                      std::size_t max_frame = 0);

/// Connects an AF_UNIX stream client to `socket_path` and returns the fd
/// (caller closes).  Throws bricksim::Error when nobody is listening.
int connect_client(const std::string& socket_path);

/// Connects to `socket_path`, sends `request`, returns the reply.  One
/// round trip per call; throws bricksim::Error on connect/protocol errors.
json::Value client_call(const std::string& socket_path,
                        const json::Value& request);

/// Default socket path: $BRICKSIM_SOCKET or "results/bricksim.sock".
std::string default_socket_path(const std::string& flag_value = "");

/// `bricksim serve [--socket P] [--cache-dir D] [--no-cache] [--resume]
/// [--workers N] [--memo-bytes B] [--max-queue N] [--lease-ttl-ms MS]
/// [--io-timeout-ms MS] [--idle-timeout-ms MS] [--max-conns N]
/// [--max-frame-bytes B]`: runs a Server until SIGINT/SIGTERM or a
/// shutdown op; exits 0 after a clean drain.
int serve_main(int argc, const char* const* argv);

/// `bricksim query [--socket P] <op> [--n N] [--kind K] [--name E]
/// [--priority P] [--deadline-ms MS] [--retries N]`: one protocol round
/// trip (retrying overloaded replies with capped jittered exponential
/// backoff honouring retry_after_ms), reply JSON on stdout; exits 0 when
/// the reply carries "ok": true.
int query_main(int argc, const char* const* argv);

/// `bricksim loadtest [--socket P] [--requests N] [--threads T] [--kind K]
/// [--hot-n N] [--cold-ns CSV] [--cold-every K] [--priority-spread]
/// [--deadline-ms MS] [--retries N]`: drives a mixed hot/cold request
/// storm -- overloaded replies are retried with capped jittered
/// exponential backoff honouring retry_after_ms -- and prints a JSON tally
/// with shed/retried/succeeded counts and client-side p50/p95/p99 latency;
/// exits 0 when every request eventually succeeded.
int loadtest_main(int argc, const char* const* argv);

}  // namespace bricksim::serve
