// `bricksim doctor`: cache health scan and repair.
//
// Walks a cache directory (sweep entries, experiment artifacts, resume
// shards), verifies every entry's checksum framing and payload header,
// and classifies each file as ok / stale (pre-checksum or old-schema --
// harmless, never read) / corrupt (framed but damaged) / quarantined
// (an earlier run's `.corrupt` file) / ignored (not a cache file).
// With prune it quarantines the corrupt entries and deletes the stale
// and quarantined ones, leaving a cache where every remaining file is
// either healthy or foreign.
//
// Sweep lease files (lease-<fp>.json, harness/lease.h) are plain JSON
// rather than checksum-framed: a LIVE lease reports ok (held by its
// owner) and is never touched, even under prune; a stale or unreadable
// one -- a dead daemon's litter -- reports stale and is pruned.  Leases
// never contribute to the corrupt count, so doctor still exits 3 only on
// real cache corruption.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bricksim::harness {

struct DoctorEntry {
  std::string path;    ///< relative to the scanned directory
  std::string kind;    ///< sweep | artifact | shard | roofline | lease | tmp | other
  std::string status;  ///< ok | stale | corrupt | quarantined | ignored
  std::string detail;  ///< damage description, "" when healthy
};

struct DoctorReport {
  std::vector<DoctorEntry> entries;  ///< sorted by path
  int ok = 0;
  int stale = 0;
  int corrupt = 0;
  int quarantined = 0;  ///< pre-existing `.corrupt` files found
  int pruned = 0;       ///< files removed/quarantined (prune runs only)
};

/// Scans `dir` (recursively, so resume shards are covered); with `prune`
/// also repairs as described above.  A missing directory yields an empty
/// report, not an error -- an empty cache is healthy.
DoctorReport doctor_scan(const std::string& dir, bool prune);

/// Runs doctor_scan and prints the per-file table plus a summary line to
/// `os`.  Returns 3 when corruption was found (matching the driver's
/// completed-with-failures exit code), else 0.
int run_doctor(const std::string& dir, bool prune, std::ostream& os);

}  // namespace bricksim::harness
