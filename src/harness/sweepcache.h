// Content-addressed sweep cache.
//
// A Sweep is a pure function of its SweepConfig: the simulator draws no
// randomness, accumulates nothing across configs, and both execution
// engines are bit-identical, so two sweeps with the same inputs produce the
// same measurements bit for bit.  This module exploits that: a Sweep is
// keyed by a fingerprint of everything that can reach a result -- the
// domain, every architecture and programming-model parameter of every
// platform, the full stencil catalog (offsets and coefficient values
// included), the codegen options, the variant list, the brickcheck mode,
// the execution engine, and a schema version -- and persisted as JSON.
// `bricksim all` runs the sweep once; every experiment, and every later
// invocation with an unchanged fingerprint, replays it from cache
// bit-identically (tests/test_serialize.cpp holds the cold-vs-warm
// equality proof).
//
// Deliberately NOT in the fingerprint: --jobs, --progress and --csv, which
// cannot affect measurement content (DESIGN.md "Threading model"), and the
// output/cache paths themselves.
#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "harness/harness.h"

namespace bricksim::harness {

/// Bump when the Measurement/Roofline schema or the sweep semantics change;
/// stale cache entries then miss instead of deserializing garbage.
inline constexpr int kSweepCacheSchema = 1;

/// 16-hex-digit FNV-1a fingerprint of every result-reaching field of
/// `config` (plus kSweepCacheSchema).
std::string fingerprint(const SweepConfig& config);

/// The config's identity as JSON -- the exact tree the fingerprint hashes.
/// Stored inside cache files so an entry is self-describing.
json::Value config_identity(const SweepConfig& config);

/// Serializes fingerprint + measurements + rooflines.  The config itself
/// travels as its identity tree; sweep_from_json re-attaches the caller's
/// in-memory config (which the fingerprint proves equivalent).
json::Value sweep_to_json(const Sweep& sweep);

/// Rebuilds a Sweep (measurements, rooflines, find-index) from
/// sweep_to_json output; throws bricksim::Error when `v` does not carry
/// the fingerprint of `config` at the current schema.
Sweep sweep_from_json(const json::Value& v, const SweepConfig& config);

/// Cache directory resolution: `flag_value` if non-empty, else
/// $BRICKSIM_CACHE_DIR, else "results/cache".
std::string default_cache_dir(const std::string& flag_value = "");

/// Path of the cache entry for `config` under `dir`.
std::string cache_entry_path(const std::string& dir,
                             const SweepConfig& config);

/// Loads the cached sweep for `config`, or nullopt when absent/stale
/// (fingerprint or schema mismatch -- a corrupt entry also reads as a
/// miss, never as wrong data).
std::optional<Sweep> load_cached_sweep(const std::string& dir,
                                       const SweepConfig& config);

/// Persists `sweep` under its fingerprint (creates `dir` as needed).
void store_cached_sweep(const std::string& dir, const Sweep& sweep);

}  // namespace bricksim::harness
