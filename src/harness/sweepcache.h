// Content-addressed sweep cache.
//
// A Sweep is a pure function of its SweepConfig: the simulator draws no
// randomness, accumulates nothing across configs, and both execution
// engines are bit-identical, so two sweeps with the same inputs produce the
// same measurements bit for bit.  This module exploits that: a Sweep is
// keyed by a fingerprint of everything that can reach a result -- the
// domain, every architecture and programming-model parameter of every
// platform, the full stencil catalog (offsets and coefficient values
// included), the codegen options, the variant list, the brickcheck mode,
// the execution engine, and a schema version -- and persisted as JSON.
// `bricksim all` runs the sweep once; every experiment, and every later
// invocation with an unchanged fingerprint, replays it from cache
// bit-identically (tests/test_serialize.cpp holds the cold-vs-warm
// equality proof).
//
// Deliberately NOT in the fingerprint: --jobs, --progress and --csv, which
// cannot affect measurement content (DESIGN.md "Threading model"), the
// output/cache paths themselves, and the checkpoint/resume knobs.
//
// Every entry is framed with a checksum line (harness/cachefile.h), so
// corruption is detected and quarantined instead of silently re-simulated.
// Alongside the whole-sweep entries, this module persists per-config
// *shard checkpoints* (`shards-<fingerprint>/`) -- one checksummed file
// per completed (platform, stencil, variant) measurement and per derived
// roofline -- which is what makes an interrupted sweep resumable at the
// cost of one data point instead of the whole run (DESIGN.md "Fault
// tolerance").
#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "harness/harness.h"

namespace bricksim::harness {

/// Bump when the Measurement/Roofline schema or the sweep semantics change;
/// stale cache entries then miss instead of deserializing garbage.
/// Schema history: 1 = raw JSON entries (PR 4); 2 = checksum-framed
/// entries + shard checkpoints.
inline constexpr int kSweepCacheSchema = 2;

/// 16-hex-digit FNV-1a fingerprint of every result-reaching field of
/// `config` (plus kSweepCacheSchema).
std::string fingerprint(const SweepConfig& config);

/// The config's identity as JSON -- the exact tree the fingerprint hashes.
/// Stored inside cache files so an entry is self-describing.
json::Value config_identity(const SweepConfig& config);

/// Serializes fingerprint + measurements + rooflines.  The config itself
/// travels as its identity tree; sweep_from_json re-attaches the caller's
/// in-memory config (which the fingerprint proves equivalent).
json::Value sweep_to_json(const Sweep& sweep);

/// Rebuilds a Sweep (measurements, rooflines, find-index) from
/// sweep_to_json output; throws bricksim::Error when `v` does not carry
/// the fingerprint of `config` at the current schema.
Sweep sweep_from_json(const json::Value& v, const SweepConfig& config);

/// Cache directory resolution: `flag_value` if non-empty, else
/// $BRICKSIM_CACHE_DIR, else "results/cache".
std::string default_cache_dir(const std::string& flag_value = "");

/// Path of the cache entry for `config` under `dir`.
std::string cache_entry_path(const std::string& dir,
                             const SweepConfig& config);

/// Loads the cached sweep for `config`, or nullopt when absent or stale
/// (foreign/pre-checksum file, schema or fingerprint mismatch).  A
/// *corrupt* entry -- framed but truncated, bit-flipped, or carrying
/// undecodable content -- is never silent: it is quarantined to
/// `<path>.corrupt` with a one-line stderr warning, then reads as a miss.
std::optional<Sweep> load_cached_sweep(const std::string& dir,
                                       const SweepConfig& config);

/// Persists `sweep` under its fingerprint (creates `dir` as needed).
/// Callers must not persist degraded sweeps (failures would become
/// permanent); run_sweep failures are checked by the SweepProvider.
/// A write failure warns and returns; it never throws.
void store_cached_sweep(const std::string& dir, const Sweep& sweep);

// --- Shard checkpoints (crash-safe resume) ----------------------------------

/// The shard checkpoint directory of `config` under cache `dir`.
std::string shard_dir(const std::string& dir, const SweepConfig& config);

/// Checkpoints measurement slot `index` of `config`'s flattened
/// (platform, stencil, variant) cross product (atomic tmp+rename,
/// checksummed; a failure warns and drops the checkpoint, never throws).
void store_shard(const std::string& dir, const SweepConfig& config,
                 long index, const profiler::Measurement& m);

/// Replays shard `index`, or nullopt when absent/stale; corrupt shards
/// are quarantined (stderr warning) and read as a miss so the config is
/// simply re-simulated.
std::optional<profiler::Measurement> load_shard(const std::string& dir,
                                                const SweepConfig& config,
                                                long index);

/// Checkpoints the derived empirical roofline of one platform label.
void store_roofline_shard(const std::string& dir, const SweepConfig& config,
                          const std::string& label,
                          const roofline::EmpiricalRoofline& rl);

/// Replays a roofline shard; same miss/quarantine semantics as load_shard.
std::optional<roofline::EmpiricalRoofline> load_roofline_shard(
    const std::string& dir, const SweepConfig& config,
    const std::string& label);

/// Removes `config`'s shard directory (called once the complete sweep
/// entry has been persisted, which supersedes the shards).
void clear_shards(const std::string& dir, const SweepConfig& config);

}  // namespace bricksim::harness
