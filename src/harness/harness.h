// The experiment harness: runs the full study sweep and regenerates every
// table and figure of the paper's evaluation as printable tables.
//
// One Sweep = { every (stencil, variant, platform) measurement at one
// domain size } + { the mixbench-derived empirical Roofline per platform }.
// Each bench binary builds a Sweep (or a subset) and prints the table(s)
// for its experiment; see DESIGN.md's per-experiment index.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/brickcheck.h"
#include "codegen/codegen.h"
#include "common/cli.h"
#include "common/table.h"
#include "dsl/stencil.h"
#include "metrics/metrics.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"
#include "roofline/roofline.h"

namespace bricksim::harness {

struct SweepConfig {
  Vec3 domain{256, 256, 256};
  std::vector<model::Platform> platforms = model::paper_platforms();
  std::vector<dsl::Stencil> stencils = dsl::Stencil::paper_catalog();
  std::vector<codegen::Variant> variants = {codegen::Variant::Array,
                                            codegen::Variant::ArrayCodegen,
                                            codegen::Variant::BricksCodegen};
  codegen::Options cg_opts{};
  bool progress = false;  ///< progress lines on stderr
  bool csv = false;       ///< emit CSV instead of aligned tables
  /// Pre-launch brickcheck policy (the --check=strict|warn|off flag).
  analysis::CheckMode check_mode = analysis::CheckMode::Warn;
  /// Worker threads for the sweep (the --jobs=N flag); 0 means
  /// hardware_concurrency.  Every (stencil, variant, platform) config is
  /// simulated independently, so the Sweep is bit-identical and ordered
  /// identically for every job count (see DESIGN.md "Threading model").
  int jobs = 0;
  /// SIMT execution engine (the --engine=plan|interp flag).  Both engines
  /// produce bit-identical measurements; interp is the legacy A/B baseline
  /// kept for one release (see DESIGN.md "Execution engine").
  simt::Engine engine = simt::Engine::Plan;
};

/// Prints `t` aligned or as CSV depending on the sweep config.
void print_table(std::ostream& os, const Table& t, bool csv);

struct Sweep {
  SweepConfig config;
  std::vector<profiler::Measurement> measurements;
  /// Empirical Roofline per platform label.
  std::map<std::string, roofline::EmpiricalRoofline> rooflines;

  /// Lookup by names; null when the combination was not swept.  O(log n)
  /// through the index when built (the correlation and potential-speedup
  /// emitters call this in nested loops); falls back to a linear scan on
  /// hand-assembled sweeps that never called build_index().
  const profiler::Measurement* find(const std::string& stencil,
                                    const std::string& variant,
                                    const std::string& platform_label) const;

  /// Builds the (stencil, variant, platform) -> measurement index.
  /// run_sweep and the sweep-cache loader call this; call it again after
  /// mutating `measurements` by hand.
  void build_index();

  /// All measurements of one platform (optionally one variant).
  std::vector<profiler::Measurement> select(
      const std::string& platform_label,
      const std::string& variant = "") const;

 private:
  /// (stencil, variant, platform label) -> index into `measurements`.
  std::map<std::string, std::size_t> index_;
};

/// Runs every (stencil, variant, platform) combination counters-only and
/// derives the per-platform empirical rooflines.  Configs are dispatched
/// to `config.jobs` worker threads; measurements land in the same nested
/// (platform, stencil, variant) order as a serial walk.
Sweep run_sweep(const SweepConfig& config);

/// Just the mixbench-derived empirical rooflines of `config` (one per
/// distinct platform label), exactly as run_sweep would compute them --
/// run_sweep delegates here, and the registry's SweepProvider uses it when
/// an experiment needs ceilings but no measurements.
std::map<std::string, roofline::EmpiricalRoofline> sweep_rooflines(
    const SweepConfig& config);

/// The standard sweep flags (--n, --jobs, --progress, --csv, --check,
/// --engine) as a Cli-known map; the bricksim driver extends it with its
/// own flags.
std::map<std::string, std::string> sweep_cli_flags(int default_n);

/// Parses a standard bench command line into a SweepConfig; prints help
/// and exits when requested.
SweepConfig sweep_config_from_cli(int argc, const char* const* argv,
                                  int default_n = 256);

/// The same over an already-parsed Cli (which may know extra flags).
SweepConfig sweep_config_from_cli(const Cli& cli, int default_n);

// --- Emitters: one per paper table/figure -----------------------------------

/// Table 1: programming models and toolchains per system (in BrickSim:
/// the lowering-profile summary per platform).
Table make_table1();

/// Table 2: stencil shapes, radii, points, unique coefficients.
Table make_table2();

/// Table 4: theoretical arithmetic intensity per stencil.
Table make_table4();

/// Figure 3 (long form): per platform/stencil/variant -- AI, GFLOP/s and
/// fraction of the platform's empirical Roofline; includes ceiling rows.
Table make_fig3(const Sweep& sweep);

/// Figure 4: L1 data movement (GB) per platform/stencil/variant.
Table make_fig4(const Sweep& sweep);

struct CorrTables {
  Table perf;
  Table bytes;
};

/// Figure 5: CUDA (y) vs SYCL (x) correlation on A100.
CorrTables make_fig5(const Sweep& sweep);

/// Figure 6: HIP (y) vs SYCL (x) correlation on one MI250X GCD.
CorrTables make_fig6(const Sweep& sweep);

/// Table 3: performance portability from fraction of the Roofline
/// (bricks codegen).
Table make_table3(const Sweep& sweep);

/// Table 5: performance portability from fraction of theoretical AI
/// (bricks codegen).
Table make_table5(const Sweep& sweep);

/// Figure 7: potential-speedup coordinates per platform/stencil
/// (bricks codegen).
Table make_fig7(const Sweep& sweep);

/// brickcheck rollup for every kernel of the sweep: kernels checked,
/// instructions verified, diagnostics, clean fraction (extension; no paper
/// counterpart -- the audit trail for every number the sweep produced).
Table make_check_summary(const Sweep& sweep);

}  // namespace bricksim::harness
