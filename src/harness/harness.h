// The experiment harness: runs the full study sweep and regenerates every
// table and figure of the paper's evaluation as printable tables.
//
// One Sweep = { every (stencil, variant, platform) measurement at one
// domain size } + { the mixbench-derived empirical Roofline per platform }.
// Each bench binary builds a Sweep (or a subset) and prints the table(s)
// for its experiment; see DESIGN.md's per-experiment index.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/brickcheck.h"
#include "codegen/codegen.h"
#include "common/cli.h"
#include "common/table.h"
#include "dsl/stencil.h"
#include "metrics/metrics.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"
#include "roofline/roofline.h"

namespace bricksim::harness {

struct SweepConfig {
  Vec3 domain{256, 256, 256};
  std::vector<model::Platform> platforms = model::paper_platforms();
  std::vector<dsl::Stencil> stencils = dsl::Stencil::paper_catalog();
  std::vector<codegen::Variant> variants = {codegen::Variant::Array,
                                            codegen::Variant::ArrayCodegen,
                                            codegen::Variant::BricksCodegen};
  codegen::Options cg_opts{};
  bool progress = false;  ///< progress lines on stderr
  bool csv = false;       ///< emit CSV instead of aligned tables
  /// Pre-launch brickcheck policy (the --check=strict|warn|off flag).
  analysis::CheckMode check_mode = analysis::CheckMode::Warn;
  /// Worker threads for the sweep (the --jobs=N flag); 0 means
  /// hardware_concurrency, and requests beyond the hardware are clamped
  /// (effective_jobs) so oversubscription can never make a sweep slower.
  /// Every (stencil, variant, platform) config is simulated independently,
  /// so the Sweep is bit-identical and ordered identically for every job
  /// count (see DESIGN.md "Threading model").
  int jobs = 0;
  /// Worker threads per kernel replay (the --shards=N flag), the inner
  /// level of the two-level scheduler: run_sweep splits --jobs into
  /// `outer` concurrent configs x `shards` threads inside each config's
  /// kernel (ExecPlan::replay_sharded; bit-identical at any value).  0
  /// derives the split from --jobs and the pending config count -- wide
  /// sweeps get outer parallelism, a last straggler or a single huge
  /// config gets intra-kernel parallelism -- without oversubscribing
  /// beyond jobs total threads.  Explicit values are clamped to the
  /// hardware like --jobs (effective_jobs): shard threads beyond the
  /// physical cores only time-slice and pay the k-way merge overhead,
  /// so sharded replay would be strictly slower than serial.
  int shards = 0;
  /// SIMT execution engine (the --engine=plan|interp flag).  Both engines
  /// produce bit-identical measurements; interp is the legacy A/B baseline
  /// kept for one release (see DESIGN.md "Execution engine").
  simt::Engine engine = simt::Engine::Plan;
  /// When non-empty, run_sweep checkpoints every completed config (and
  /// every derived roofline) as a shard under this directory, keyed by the
  /// sweep fingerprint.  Presentation-side like --jobs: NOT part of the
  /// cache identity, cannot affect measurement content.
  std::string checkpoint_dir;
  /// Replay valid shards from checkpoint_dir instead of re-simulating
  /// them (the --resume flag).  Off by default so a stale checkpoint
  /// directory can never surprise a fresh run.
  bool resume = false;
  /// Differentially verify every decoded ExecPlan against its source
  /// program before replaying it (the --verify-plan flag; see
  /// analysis/planverify.h).  A verification gate like --check: it cannot
  /// affect measurement content, so it is NOT part of the cache identity
  /// -- cached sweeps replay without re-verifying (CI passes --no-cache).
  bool verify_plan = false;
  /// Cooperative cancellation token (common/shutdown.h): when set and
  /// tripped, workers finish the config they are on (which checkpoints it
  /// as a resume shard) and stop claiming new ones; the skipped count
  /// lands in run_stats.skipped.  A plain observation knob like
  /// checkpoint_dir: NOT part of the cache identity -- an interrupted
  /// sweep is never stored as a full entry in the first place.
  const std::atomic<bool>* cancel = nullptr;
};

/// One isolated per-config failure inside a sweep: the config's identity,
/// the site that threw ("launch" or "roofline"), and the error text.
/// Roofline failures carry an empty stencil/variant (they are
/// per-platform).  The failed slot stays a default Measurement -- a hole
/// the emitters render explicitly -- and the sweep carries on.
struct FailureRecord {
  std::string platform;  ///< platform label, e.g. "A100/CUDA"
  std::string stencil;
  std::string variant;
  std::string site;  ///< "launch" or "roofline"
  std::string what;  ///< the exception text
  friend bool operator==(const FailureRecord&, const FailureRecord&) =
      default;
};

/// What run_sweep actually did, for observability: resumed + simulated +
/// skipped == total configs (failures count as simulated attempts).
struct SweepRunStats {
  int simulated = 0;     ///< configs actually executed this run
  int resumed = 0;       ///< configs replayed from checkpoint shards
  int checkpointed = 0;  ///< shards written this run
  int skipped = 0;       ///< configs abandoned by a cancellation request
};

/// Prints `t` aligned or as CSV depending on the sweep config.
void print_table(std::ostream& os, const Table& t, bool csv);

struct Sweep {
  SweepConfig config;
  std::vector<profiler::Measurement> measurements;
  /// Empirical Roofline per platform label.
  std::map<std::string, roofline::EmpiricalRoofline> rooflines;
  /// Per-config failures isolated by run_sweep, in canonical sweep order
  /// (rooflines first).  Empty on a clean sweep; a degraded sweep is
  /// never persisted as a full cache entry.
  std::vector<FailureRecord> failures;
  /// Resume/checkpoint accounting for this run (not serialized: a cached
  /// replay is neither simulated nor resumed).
  SweepRunStats run_stats;

  /// Lookup by names; null when the combination was not swept.  O(log n)
  /// through the index when built (the correlation and potential-speedup
  /// emitters call this in nested loops); falls back to a linear scan on
  /// hand-assembled sweeps that never called build_index().
  const profiler::Measurement* find(const std::string& stencil,
                                    const std::string& variant,
                                    const std::string& platform_label) const;

  /// Builds the (stencil, variant, platform) -> measurement index.
  /// run_sweep and the sweep-cache loader call this; call it again after
  /// mutating `measurements` by hand.
  void build_index();

  /// All measurements of one platform (optionally one variant).  Hole
  /// slots (failed configs) never match a platform label, so selections
  /// contain only real measurements.
  std::vector<profiler::Measurement> select(
      const std::string& platform_label,
      const std::string& variant = "") const;

  /// The failure record of one config (empty stencil+variant looks up a
  /// roofline failure), or null when that config succeeded.
  const FailureRecord* find_failure(const std::string& stencil,
                                    const std::string& variant,
                                    const std::string& platform_label) const;

 private:
  /// (stencil, variant, platform label) -> index into `measurements`.
  std::map<std::string, std::size_t> index_;
};

/// Runs every (stencil, variant, platform) combination counters-only and
/// derives the per-platform empirical rooflines.  Configs are dispatched
/// to `config.jobs` worker threads; measurements land in the same nested
/// (platform, stencil, variant) order as a serial walk.
///
/// A config that throws does not abort the sweep: its slot stays a hole,
/// a FailureRecord lands in `sweep.failures`, and every other config
/// still runs and is bit-identical to a clean sweep.  With
/// `config.checkpoint_dir` set, every completed config is checkpointed
/// as a shard; with `config.resume` also set, valid shards from an
/// earlier interrupted run are replayed bit-identically and only the
/// remainder is simulated (`sweep.run_stats` carries the counts).
Sweep run_sweep(const SweepConfig& config);

/// Just the mixbench-derived empirical rooflines of `config` (one per
/// distinct platform label), exactly as run_sweep would compute them --
/// run_sweep delegates here, and the registry's SweepProvider uses it when
/// an experiment needs ceilings but no measurements.
///
/// With `failures`, a platform whose derivation throws is isolated as a
/// FailureRecord (empty stencil/variant) and simply absent from the map;
/// without it the first failure rethrows.  `stats`, when given, picks up
/// resume/checkpoint counts (checkpointing follows config.checkpoint_dir
/// and config.resume exactly as in run_sweep).
std::map<std::string, roofline::EmpiricalRoofline> sweep_rooflines(
    const SweepConfig& config, std::vector<FailureRecord>* failures = nullptr,
    SweepRunStats* stats = nullptr);

/// The standard sweep flags (--n, --jobs, --progress, --csv, --check,
/// --engine) as a Cli-known map; the bricksim driver extends it with its
/// own flags.
std::map<std::string, std::string> sweep_cli_flags(int default_n);

/// Parses a standard bench command line into a SweepConfig.  When --help
/// was requested it prints the help text and returns nullopt ("handled,
/// nothing to run") -- callers own their exit; library code never calls
/// std::exit.
std::optional<SweepConfig> sweep_config_from_cli(int argc,
                                                 const char* const* argv,
                                                 int default_n = 256);

/// The same over an already-parsed Cli (which may know extra flags).
SweepConfig sweep_config_from_cli(const Cli& cli, int default_n);

// --- Emitters: one per paper table/figure -----------------------------------
//
// Every sweep-consuming emitter renders a degraded sweep as a partial
// table with explicit holes -- "FAILED" cells for configs named in
// sweep.failures -- instead of silently dropping rows or aborting.  On a
// clean sweep the output is byte-identical to the pre-fault-tolerance
// emitters.

/// Table 1: programming models and toolchains per system (in BrickSim:
/// the lowering-profile summary per platform).
Table make_table1();

/// Table 2: stencil shapes, radii, points, unique coefficients.
Table make_table2();

/// Table 4: theoretical arithmetic intensity per stencil.
Table make_table4();

/// Figure 3 (long form): per platform/stencil/variant -- AI, GFLOP/s and
/// fraction of the platform's empirical Roofline; includes ceiling rows.
Table make_fig3(const Sweep& sweep);

/// Figure 4: L1 data movement (GB) per platform/stencil/variant.
Table make_fig4(const Sweep& sweep);

struct CorrTables {
  Table perf;
  Table bytes;
};

/// Figure 5: CUDA (y) vs SYCL (x) correlation on A100.
CorrTables make_fig5(const Sweep& sweep);

/// Figure 6: HIP (y) vs SYCL (x) correlation on one MI250X GCD.
CorrTables make_fig6(const Sweep& sweep);

/// Table 3: performance portability from fraction of the Roofline
/// (bricks codegen).
Table make_table3(const Sweep& sweep);

/// Table 5: performance portability from fraction of theoretical AI
/// (bricks codegen).
Table make_table5(const Sweep& sweep);

/// Figure 7: potential-speedup coordinates per platform/stencil
/// (bricks codegen).
Table make_fig7(const Sweep& sweep);

/// brickcheck rollup for every kernel of the sweep: kernels checked,
/// instructions verified, diagnostics, clean fraction (extension; no paper
/// counterpart -- the audit trail for every number the sweep produced).
Table make_check_summary(const Sweep& sweep);

}  // namespace bricksim::harness
