// Checksummed, crash-evident file framing for every on-disk cache artifact
// (sweep entries, experiment artifacts, resume shards).
//
// Layout:
//
//   bricksim-cache 1 fnv1a <hex16-checksum> <body-bytes>\n
//   <body>
//
// The checksum is FNV-1a over the body, so truncation, torn writes and
// bit flips are *detected* rather than silently re-simulated: the loader
// distinguishes a missing entry, a foreign/pre-checksum file (silent
// miss -- not ours to judge), and a corrupt entry (quarantined to
// `<path>.corrupt` with a one-line stderr warning so it stays
// inspectable).  Writes go through tmp + rename and never throw: a
// persistence failure costs the cache entry, not the sweep.
//
// All four cache fault-injection sites (common/fault.h) live here, which
// is what lets one seeded plan exercise every corruption path end to end.
#pragma once

#include <cstdint>
#include <string>

namespace bricksim::harness {

/// FNV-1a over `s` (the cache fingerprint/checksum hash).
std::uint64_t fnv1a(const std::string& s);

/// 16-hex-digit lowercase rendering of `h`.
std::string hex16(std::uint64_t h);

struct CacheFileRead {
  enum class Status {
    Ok,       ///< framed, checksum verified; `body` is valid
    Missing,  ///< no file at the path
    Foreign,  ///< exists but carries no bricksim-cache header (a
              ///< pre-checksum entry or an unrelated file): a silent miss
    Corrupt,  ///< framed but damaged (truncated / checksum mismatch):
              ///< the caller should quarantine it
  };
  Status status = Status::Missing;
  std::string body;   ///< valid only when status == Ok
  std::string error;  ///< damage description when status == Corrupt
};

/// Reads and verifies one framed cache file.
CacheFileRead read_cache_file(const std::string& path);

/// Frames `body` and writes it atomically (tmp + rename, parent dirs
/// created).  Returns false -- after a one-line stderr warning -- when
/// persisting failed; never throws: the cache is an optimisation and a
/// write failure must not abort the computation that produced `body`.
bool write_cache_file(const std::string& path, const std::string& body);

/// Moves a damaged entry aside to `<path>.corrupt` (falling back to
/// deletion when even the rename fails) and prints a one-line stderr
/// warning naming the path and `why`.
void quarantine_cache_file(const std::string& path, const std::string& why);

/// Process-wide count of quarantine_cache_file calls; the driver reports
/// the per-run delta as `entries_quarantined` in run_summary.json.
long quarantine_count();

}  // namespace bricksim::harness
