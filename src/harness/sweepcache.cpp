#include "harness/sweepcache.h"

#include <cstdlib>
#include <filesystem>

#include "common/error.h"
#include "harness/cachefile.h"

namespace bricksim::harness {

namespace {

json::Value to_json(const Vec3& v) {
  json::Value a = json::Value::array();
  a.push_back(v.i);
  a.push_back(v.j);
  a.push_back(v.k);
  return a;
}

json::Value to_json(const arch::CacheParams& c) {
  json::Value v = json::Value::object();
  v["capacity_bytes"] = c.capacity_bytes;
  v["line_bytes"] = c.line_bytes;
  v["sector_bytes"] = c.sector_bytes;
  v["associativity"] = c.associativity;
  return v;
}

// Every GpuArch field: any of them reaches simulated counters or timing.
json::Value to_json(const arch::GpuArch& g) {
  json::Value v = json::Value::object();
  v["name"] = g.name;
  v["vendor"] = g.vendor;
  v["num_cores"] = g.num_cores;
  v["simd_width"] = g.simd_width;
  v["clock_ghz"] = g.clock_ghz;
  v["fp64_lanes_per_cycle"] = g.fp64_lanes_per_cycle;
  v["int_lanes_per_cycle"] = g.int_lanes_per_cycle;
  v["shuffle_lanes_per_cycle"] = g.shuffle_lanes_per_cycle;
  v["l1_bytes_per_cycle"] = g.l1_bytes_per_cycle;
  v["mem_issue_per_cycle"] = g.mem_issue_per_cycle;
  v["l1"] = to_json(g.l1);
  v["l2"] = to_json(g.l2);
  v["hbm_gbytes_per_sec"] = g.hbm_gbytes_per_sec;
  v["l2_gbytes_per_sec"] = g.l2_gbytes_per_sec;
  v["mem_latency_cycles"] = g.mem_latency_cycles;
  v["max_resident_blocks_per_core"] = g.max_resident_blocks_per_core;
  v["regs_per_lane"] = g.regs_per_lane;
  v["requires_aligned_vloads"] = g.requires_aligned_vloads;
  v["stream_base_eff"] = g.stream_base_eff;
  v["stencil_bw_eff"] = g.stencil_bw_eff;
  v["stream_penalty"] = g.stream_penalty;
  v["free_streams"] = g.free_streams;
  v["page_open_bytes"] = g.page_open_bytes;
  return v;
}

json::Value to_json(const model::ProgModel& pm) {
  json::Value v = json::Value::object();
  v["kind"] = static_cast<int>(pm.kind);
  v["name"] = pm.name;
  v["addr_ops_per_load_naive"] = pm.addr_ops_per_load_naive;
  v["addr_ops_per_store_naive"] = pm.addr_ops_per_store_naive;
  v["addr_ops_per_load_codegen"] = pm.addr_ops_per_load_codegen;
  v["addr_ops_per_store_codegen"] = pm.addr_ops_per_store_codegen;
  v["naive_extra_cycles_per_load"] = pm.naive_extra_cycles_per_load;
  v["bw_derate"] = pm.bw_derate;
  v["shuffle_cost_mult"] = pm.shuffle_cost_mult;
  v["reg_budget_fraction"] = pm.reg_budget_fraction;
  v["streaming_stores"] = pm.streaming_stores;
  v["bypass_l2_unaligned_vloads"] = pm.bypass_l2_unaligned_vloads;
  return v;
}

// Shape, offsets and coefficient values: a retuned coefficient or a custom
// stencil must miss the cache even when the display name collides.
json::Value to_json(const dsl::Stencil& st) {
  json::Value v = json::Value::object();
  v["name"] = st.name();
  v["shape"] = dsl::shape_name(st.shape());
  v["radius"] = st.radius();
  json::Value groups = json::Value::array();
  for (const auto& g : st.groups()) {
    json::Value gv = json::Value::object();
    gv["coeff"] = g.coeff;
    gv["value"] = g.value;
    json::Value offs = json::Value::array();
    for (const auto& o : g.offsets) offs.push_back(to_json(o));
    gv["offsets"] = offs;
    groups.push_back(gv);
  }
  v["groups"] = groups;
  return v;
}

json::Value to_json(const codegen::Options& o) {
  json::Value v = json::Value::object();
  v["enable_cse"] = o.enable_cse;
  v["scatter_threshold_points"] = o.scatter_threshold_points;
  v["force_scatter"] = o.force_scatter;
  v["force_gather"] = o.force_gather;
  v["reorder_for_pressure"] = o.reorder_for_pressure;
  v["tile_j"] = o.tile_j;
  v["tile_k"] = o.tile_k;
  v["tile_i_vectors"] = o.tile_i_vectors;
  v["shuffled_brick_order"] = o.shuffled_brick_order;
  v["brick_order_seed"] = o.brick_order_seed;
  return v;
}

// Parses a framed cache-file read as JSON carrying `kind` data at the
// current schema + fingerprint; quarantines on damage, stays silent on
// miss/foreign/stale.  Returns nullopt unless everything checks out.
std::optional<json::Value> load_verified(const std::string& path,
                                         const SweepConfig& config,
                                         const char* kind) {
  CacheFileRead r = read_cache_file(path);
  switch (r.status) {
    case CacheFileRead::Status::Missing:
    case CacheFileRead::Status::Foreign:  // pre-checksum or unrelated file
      return std::nullopt;
    case CacheFileRead::Status::Corrupt:
      quarantine_cache_file(path, r.error);
      return std::nullopt;
    case CacheFileRead::Status::Ok:
      break;
  }
  json::Value v;
  try {
    v = json::Value::parse(r.body);
  } catch (const Error& e) {
    // The checksum passed, so the process that wrote it stored garbage --
    // as loud as a bit flip.
    quarantine_cache_file(path, std::string(kind) + " body is not JSON: " +
                                    e.what());
    return std::nullopt;
  }
  try {
    if (v.at("schema").as_long() != kSweepCacheSchema ||
        v.at("fingerprint").as_string() != fingerprint(config))
      return std::nullopt;  // stale entry: a silent miss, not corruption
  } catch (const Error& e) {
    quarantine_cache_file(path,
                          std::string(kind) + " header fields: " + e.what());
    return std::nullopt;
  }
  return v;
}

std::string shard_path(const std::string& dir, const SweepConfig& config,
                       long index) {
  return shard_dir(dir, config) + "/shard-" + std::to_string(index) +
         ".json";
}

std::string roofline_shard_path(const std::string& dir,
                                const SweepConfig& config,
                                const std::string& label) {
  std::string safe = label;
  for (char& c : safe)
    if (c == '/') c = '-';
  return shard_dir(dir, config) + "/roofline-" + safe + ".json";
}

}  // namespace

json::Value config_identity(const SweepConfig& config) {
  json::Value v = json::Value::object();
  v["schema"] = kSweepCacheSchema;
  v["domain"] = to_json(config.domain);
  json::Value platforms = json::Value::array();
  for (const auto& pf : config.platforms) {
    json::Value p = json::Value::object();
    p["gpu"] = to_json(pf.gpu);
    p["pm"] = to_json(pf.pm);
    platforms.push_back(p);
  }
  v["platforms"] = platforms;
  json::Value stencils = json::Value::array();
  for (const auto& st : config.stencils) stencils.push_back(to_json(st));
  v["stencils"] = stencils;
  json::Value variants = json::Value::array();
  for (const auto var : config.variants)
    variants.push_back(codegen::variant_name(var));
  v["variants"] = variants;
  v["cg_opts"] = to_json(config.cg_opts);
  v["check_mode"] = analysis::check_mode_name(config.check_mode);
  // Engines are bit-identical by contract, but an A/B discrepancy hiding
  // behind a shared cache entry would be undebuggable -- key on it.
  v["engine"] = config.engine == simt::Engine::Interp ? "interp" : "plan";
  return v;
}

std::string fingerprint(const SweepConfig& config) {
  return hex16(fnv1a(config_identity(config).dump()));
}

json::Value sweep_to_json(const Sweep& sweep) {
  json::Value v = json::Value::object();
  v["schema"] = kSweepCacheSchema;
  v["fingerprint"] = fingerprint(sweep.config);
  v["config"] = config_identity(sweep.config);
  json::Value ms = json::Value::array();
  for (const auto& m : sweep.measurements)
    ms.push_back(profiler::to_json(m));
  v["measurements"] = ms;
  json::Value rls = json::Value::object();
  for (const auto& [label, rl] : sweep.rooflines)
    rls[label] = roofline::to_json(rl);
  v["rooflines"] = rls;
  return v;
}

Sweep sweep_from_json(const json::Value& v, const SweepConfig& config) {
  BRICKSIM_REQUIRE(v.at("schema").as_long() == kSweepCacheSchema,
                   "sweep cache schema mismatch");
  BRICKSIM_REQUIRE(v.at("fingerprint").as_string() == fingerprint(config),
                   "sweep cache fingerprint does not match the config");
  Sweep sweep;
  sweep.config = config;
  const json::Value& ms = v.at("measurements");
  sweep.measurements.reserve(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i)
    sweep.measurements.push_back(profiler::measurement_from_json(ms[i]));
  for (const auto& [label, rl] : v.at("rooflines").items())
    sweep.rooflines.emplace(label,
                            roofline::empirical_roofline_from_json(rl));
  sweep.build_index();
  return sweep;
}

std::string default_cache_dir(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("BRICKSIM_CACHE_DIR");
      env != nullptr && env[0] != '\0')
    return env;
  return "results/cache";
}

std::string cache_entry_path(const std::string& dir,
                             const SweepConfig& config) {
  return dir + "/sweep-" + fingerprint(config) + ".json";
}

std::optional<Sweep> load_cached_sweep(const std::string& dir,
                                       const SweepConfig& config) {
  const std::string path = cache_entry_path(dir, config);
  std::optional<json::Value> v = load_verified(path, config, "sweep entry");
  if (!v) return std::nullopt;
  try {
    return sweep_from_json(*v, config);
  } catch (const Error& e) {
    // Framed, checksummed, schema- and fingerprint-matched, yet the
    // payload will not decode: that is corruption, not staleness.
    quarantine_cache_file(path, std::string("undecodable sweep entry: ") +
                                    e.what());
    return std::nullopt;
  }
}

void store_cached_sweep(const std::string& dir, const Sweep& sweep) {
  write_cache_file(cache_entry_path(dir, sweep.config),
                   sweep_to_json(sweep).dump(1) + "\n");
}

std::string shard_dir(const std::string& dir, const SweepConfig& config) {
  return dir + "/shards-" + fingerprint(config);
}

void store_shard(const std::string& dir, const SweepConfig& config,
                 long index, const profiler::Measurement& m) {
  json::Value v = json::Value::object();
  v["schema"] = kSweepCacheSchema;
  v["fingerprint"] = fingerprint(config);
  v["index"] = index;
  v["measurement"] = profiler::to_json(m);
  write_cache_file(shard_path(dir, config, index), v.dump(1) + "\n");
}

std::optional<profiler::Measurement> load_shard(const std::string& dir,
                                                const SweepConfig& config,
                                                long index) {
  const std::string path = shard_path(dir, config, index);
  std::optional<json::Value> v = load_verified(path, config, "shard");
  if (!v) return std::nullopt;
  try {
    BRICKSIM_REQUIRE(v->at("index").as_long() == index,
                     "shard index does not match its filename");
    return profiler::measurement_from_json(v->at("measurement"));
  } catch (const Error& e) {
    quarantine_cache_file(path,
                          std::string("undecodable shard: ") + e.what());
    return std::nullopt;
  }
}

void store_roofline_shard(const std::string& dir, const SweepConfig& config,
                          const std::string& label,
                          const roofline::EmpiricalRoofline& rl) {
  json::Value v = json::Value::object();
  v["schema"] = kSweepCacheSchema;
  v["fingerprint"] = fingerprint(config);
  v["label"] = label;
  v["roofline"] = roofline::to_json(rl);
  write_cache_file(roofline_shard_path(dir, config, label),
                   v.dump(1) + "\n");
}

std::optional<roofline::EmpiricalRoofline> load_roofline_shard(
    const std::string& dir, const SweepConfig& config,
    const std::string& label) {
  const std::string path = roofline_shard_path(dir, config, label);
  std::optional<json::Value> v =
      load_verified(path, config, "roofline shard");
  if (!v) return std::nullopt;
  try {
    BRICKSIM_REQUIRE(v->at("label").as_string() == label,
                     "roofline shard label does not match its filename");
    return roofline::empirical_roofline_from_json(v->at("roofline"));
  } catch (const Error& e) {
    quarantine_cache_file(
        path, std::string("undecodable roofline shard: ") + e.what());
    return std::nullopt;
  }
}

void clear_shards(const std::string& dir, const SweepConfig& config) {
  std::error_code ec;
  std::filesystem::remove_all(shard_dir(dir, config), ec);
}

}  // namespace bricksim::harness
