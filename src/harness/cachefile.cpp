#include "harness/cachefile.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/fault.h"

namespace bricksim::harness {

namespace {

constexpr const char* kMagic = "bricksim-cache ";
constexpr int kFramingVersion = 1;

std::atomic<long> g_quarantined{0};

std::string frame_header(const std::string& body) {
  return std::string(kMagic) + std::to_string(kFramingVersion) + " fnv1a " +
         hex16(fnv1a(body)) + " " + std::to_string(body.size()) + "\n";
}

}  // namespace

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return s;
}

CacheFileRead read_cache_file(const std::string& path) {
  CacheFileRead r;
  std::ifstream in(path, std::ios::binary);
  if (!in) return r;  // Missing

  std::ostringstream slurp;
  slurp << in.rdbuf();
  std::string text = slurp.str();
  if (fault::armed()) {
    if (fault::fire(fault::Site::CacheReadShort, path))
      text = fault::mutate(fault::Site::CacheReadShort, text);
    if (fault::fire(fault::Site::CacheReadCorrupt, path))
      text = fault::mutate(fault::Site::CacheReadCorrupt, text);
  }

  const std::string magic = kMagic;
  if (text.rfind(magic, 0) != 0) {
    // A short file that is a prefix of the magic is a truncated entry of
    // ours; anything else is a foreign/pre-checksum file we leave alone.
    if (!text.empty() && magic.rfind(text, 0) == 0) {
      r.status = CacheFileRead::Status::Corrupt;
      r.error = "truncated inside the checksum header";
    } else {
      r.status = CacheFileRead::Status::Foreign;
    }
    return r;
  }

  r.status = CacheFileRead::Status::Corrupt;  // until fully verified
  const std::size_t eol = text.find('\n');
  if (eol == std::string::npos) {
    r.error = "checksum header has no terminating newline";
    return r;
  }
  std::istringstream header(text.substr(magic.size(), eol - magic.size()));
  int version = 0;
  std::string algo, checksum;
  std::size_t length = 0;
  if (!(header >> version >> algo >> checksum >> length) ||
      algo != "fnv1a" || checksum.size() != 16) {
    r.error = "malformed checksum header";
    return r;
  }
  if (version != kFramingVersion) {
    r.error = "unsupported framing version " + std::to_string(version);
    return r;
  }
  std::string body = text.substr(eol + 1);
  if (body.size() != length) {
    r.error = "truncated: header promises " + std::to_string(length) +
              " body bytes, file has " + std::to_string(body.size());
    return r;
  }
  if (hex16(fnv1a(body)) != checksum) {
    r.error = "checksum mismatch (stored " + checksum + ", computed " +
              hex16(fnv1a(body)) + ")";
    return r;
  }
  r.status = CacheFileRead::Status::Ok;
  r.body = std::move(body);
  r.error.clear();
  return r;
}

bool write_cache_file(const std::string& path, const std::string& body) {
  // The tmp name is unique per process AND per call: two threads (broker
  // workers racing a CLI run) or two processes simulating the same
  // fingerprint concurrently must both succeed -- each writes its own tmp
  // image and the renames serialize on the final path, the loser's
  // (identical, content-addressed) result atomically replacing the
  // winner's.  A shared "<path>.tmp" would interleave the two writers'
  // bytes and quarantine a perfectly healthy store as corrupt.
  static std::atomic<unsigned long> tmp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                          "." + std::to_string(tmp_seq.fetch_add(1));
  try {
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);

    const std::string framed = frame_header(body) + body;
    if (fault::armed() &&
        fault::fire(fault::Site::CacheWriteTorn, path)) {
      // Simulate a crash mid-persist: a truncated image lands at the
      // *final* path and the process carries on believing the store
      // succeeded.  The checksum line is what makes this detectable.
      std::ofstream out(path, std::ios::binary);
      out << fault::mutate(fault::Site::CacheWriteTorn, framed);
      return true;
    }
    {
      std::ofstream out(tmp, std::ios::binary);
      BRICKSIM_REQUIRE(out.good(), "cannot open " + tmp);
      out << framed;
      out.flush();
      BRICKSIM_REQUIRE(out.good(), "short write to " + tmp);
    }
    if (fault::armed())
      fault::throw_if(fault::Site::CacheWriteRename, path);
    // Rename last so a crash never leaves a half-written entry under the
    // final name (the torn-write fault above deliberately bypasses this).
    std::filesystem::rename(tmp, path);
    return true;
  } catch (const std::exception& e) {
    std::cerr << "bricksim: warning: failed to persist cache entry " << path
              << " (" << e.what() << "); continuing without it\n";
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
}

void quarantine_cache_file(const std::string& path, const std::string& why) {
  const std::string dest = path + ".corrupt";
  std::error_code ec;
  std::filesystem::rename(path, dest, ec);
  if (ec) std::filesystem::remove(path, ec);
  ++g_quarantined;
  std::cerr << "bricksim: warning: corrupt cache entry " << path << " ("
            << why << "); quarantined to " << dest
            << " and treating as a miss\n";
}

long quarantine_count() { return g_quarantined.load(); }

}  // namespace bricksim::harness
