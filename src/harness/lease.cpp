#include "harness/lease.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>

#include "common/fault.h"
#include "common/json.h"

namespace bricksim::harness {

namespace {

namespace fs = std::filesystem;

long wall_ms() {
  return static_cast<long>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// "host:pid:token" -- unique per SweepLease instance, so two leases in
/// one process (or one test) never mistake each other for themselves.
std::string make_owner_id() {
  static std::atomic<unsigned long> seq{0};
  char host[256] = "unknown";
  if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  std::random_device rd;
  const unsigned long token =
      (static_cast<unsigned long>(rd()) << 20) ^ seq.fetch_add(1);
  return std::string(host[0] ? host : "unknown") + ":" +
         std::to_string(::getpid()) + ":" + std::to_string(token);
}

}  // namespace

std::string lease_path(const std::string& dir, const std::string& fp) {
  return dir + "/lease-" + fp + ".json";
}

std::optional<LeaseInfo> read_lease(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  LeaseInfo info;
  try {
    const json::Value v = json::Value::parse(text);
    if (v.at("schema").as_long() != kLeaseSchema) return std::nullopt;
    info.owner = v.at("owner").as_string();
    info.fingerprint = v.at("fingerprint").as_string();
    info.ttl_ms = v.at("ttl_ms").as_long();
    info.age_ms = wall_ms() - v.at("heartbeat_ms").as_long();
  } catch (const std::exception&) {
    return std::nullopt;  // mid-write or damaged: callers treat as stale
  }
  if (info.age_ms < 0) info.age_ms = 0;  // peer's clock marginally ahead
  info.stale = info.age_ms > info.ttl_ms;
  return info;
}

SweepLease::SweepLease(std::string dir, std::string fp, long ttl_ms)
    : dir_(std::move(dir)),
      fp_(std::move(fp)),
      path_(lease_path(dir_, fp_)),
      owner_(make_owner_id()),
      ttl_ms_(ttl_ms) {}

SweepLease::~SweepLease() { release(); }

bool SweepLease::write_record() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  json::Value v = json::Value::object();
  v["schema"] = kLeaseSchema;
  v["owner"] = owner_;
  v["fingerprint"] = fp_;
  v["ttl_ms"] = ttl_ms_;
  v["heartbeat_ms"] = wall_ms();
  // The ".tmp.<pid>.<token>" image is never observed as a lease; doctor
  // classifies strays from a crash here as prunable tmp files.
  const std::string tmp =
      path_ + ".tmp." + std::to_string(::getpid()) + "." + owner_;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << v.dump() << "\n";
    if (!out.flush()) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path_, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

SweepLease::Outcome SweepLease::try_acquire() {
  if (owned_) return Outcome::Acquired;
  bool steal = false;
  if (const auto info = read_lease(path_)) {
    steal = info->stale;
    if (!steal && fault::armed() &&
        fault::fire(fault::Site::LeaseSteal, fp_))
      steal = true;  // deterministic takeover for tests/CI
    if (!steal) return Outcome::Held;
  } else {
    // Absent (or unreadable -- a healthy owner re-stamps a readable
    // record within one heartbeat, so give it one ttl via the file's
    // existence check): absent means claimable; present-but-unreadable
    // is claimed like a stale lease.
    std::error_code ec;
    steal = fs::exists(path_, ec);
  }
  // Claim: rename our record onto the path, then read back.  Whoever the
  // file names owns the lease; a concurrent claimant that renamed after
  // us wins and we report Held.
  if (!write_record()) return Outcome::Held;
  const auto now_holds = read_lease(path_);
  if (!now_holds || now_holds->owner != owner_) return Outcome::Held;
  owned_ = true;
  return steal ? Outcome::Stolen : Outcome::Acquired;
}

bool SweepLease::heartbeat() {
  if (!owned_) return false;
  const auto info = read_lease(path_);
  if (!info || info->owner != owner_) {
    owned_ = false;  // stolen from under us; never cancel the sweep
    return false;
  }
  return write_record();
}

void SweepLease::release() {
  if (!owned_) return;
  owned_ = false;
  const auto info = read_lease(path_);
  if (info && info->owner == owner_) {
    std::error_code ec;
    fs::remove(path_, ec);
  }
}

LeaseHeartbeat::LeaseHeartbeat(SweepLease& lease) : lease_(lease) {
  // ttl/3 leaves two missed beats of margin before a peer may steal.
  const auto beat =
      std::chrono::milliseconds(std::max<long>(10, lease_.ttl_ms() / 3));
  thread_ = std::thread([this, beat] {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, beat, [this] { return stop_; })) return;
      lock.unlock();
      const bool ok = lease_.heartbeat();
      lock.lock();
      if (!ok) {
        ousted_ = true;
        return;
      }
    }
  });
}

LeaseHeartbeat::~LeaseHeartbeat() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool LeaseHeartbeat::ousted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ousted_;
}

}  // namespace bricksim::harness
