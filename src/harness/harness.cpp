#include "harness/harness.h"

#include <atomic>
#include <iostream>
#include <mutex>

#include "common/cli.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "harness/sweepcache.h"

namespace bricksim::harness {

namespace {

std::string find_key(const std::string& stencil, const std::string& variant,
                     const std::string& platform_label) {
  // \x1f never occurs in the names, so the concatenation is unambiguous.
  return stencil + '\x1f' + variant + '\x1f' + platform_label;
}

}  // namespace

const profiler::Measurement* Sweep::find(
    const std::string& stencil, const std::string& variant,
    const std::string& platform_label) const {
  if (!index_.empty()) {
    const auto it = index_.find(find_key(stencil, variant, platform_label));
    return it != index_.end() ? &measurements[it->second] : nullptr;
  }
  for (const auto& m : measurements)
    if (m.stencil == stencil && m.variant == variant &&
        (m.arch + "/" + m.pm) == platform_label)
      return &m;
  return nullptr;
}

void Sweep::build_index() {
  index_.clear();
  // On duplicate keys keep the FIRST occurrence, matching the linear scan.
  // Hole slots (failed configs) have no names and stay out of the index.
  for (std::size_t n = 0; n < measurements.size(); ++n) {
    const auto& m = measurements[n];
    if (m.stencil.empty()) continue;
    index_.emplace(find_key(m.stencil, m.variant, m.arch + "/" + m.pm), n);
  }
}

const FailureRecord* Sweep::find_failure(
    const std::string& stencil, const std::string& variant,
    const std::string& platform_label) const {
  for (const auto& f : failures)
    if (f.stencil == stencil && f.variant == variant &&
        f.platform == platform_label)
      return &f;
  return nullptr;
}

std::vector<profiler::Measurement> Sweep::select(
    const std::string& platform_label, const std::string& variant) const {
  std::vector<profiler::Measurement> out;
  for (const auto& m : measurements)
    if ((m.arch + "/" + m.pm) == platform_label &&
        (variant.empty() || m.variant == variant))
      out.push_back(m);
  return out;
}

std::map<std::string, roofline::EmpiricalRoofline> sweep_rooflines(
    const SweepConfig& config, std::vector<FailureRecord>* failures,
    SweepRunStats* stats) {
  const int jobs = effective_jobs(config.jobs);
  std::mutex progress_mu;
  // Mixbench works on a fixed mid-size streaming domain: its counters are
  // linear in the domain, so the derived ceilings are size-independent.
  // One sweep per distinct platform label, each in its own slot; the map
  // insertion happens serially afterwards so the result is identical for
  // every job count.
  const Vec3 mix_domain{128, 128, 128};
  std::vector<const model::Platform*> rl_platforms;
  for (const auto& pf : config.platforms) {
    bool seen = false;
    for (const auto* got : rl_platforms)
      if (got->label() == pf.label()) { seen = true; break; }
    if (!seen) rl_platforms.push_back(&pf);
  }
  const bool checkpoint = !config.checkpoint_dir.empty();
  std::vector<std::optional<roofline::EmpiricalRoofline>> rl_slots(
      rl_platforms.size());
  std::vector<long> pending;
  pending.reserve(rl_platforms.size());
  for (long n = 0; n < static_cast<long>(rl_platforms.size()); ++n) {
    if (checkpoint && config.resume) {
      if (auto got = load_roofline_shard(config.checkpoint_dir, config,
                                         rl_platforms[n]->label())) {
        rl_slots[static_cast<std::size_t>(n)] = std::move(*got);
        if (stats) ++stats->resumed;
        continue;
      }
    }
    pending.push_back(n);
  }
  // Progress is a completion counter: "k/N" lines where k is incremented
  // exactly once per task, succeed or fail, so the last line always reads
  // N/N even on a degraded sweep (the regression test arms fault injection
  // against exactly this invariant).
  std::atomic<long> rl_done{0};
  const long rl_total = static_cast<long>(pending.size());
  auto rl_progress = [&](const model::Platform& pf, bool ok) {
    if (!config.progress) return;
    const long k = rl_done.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(progress_mu);
    std::cerr << "[sweep] " << k << "/" << rl_total << " mixbench "
              << pf.label() << (ok ? "" : " FAILED") << "\n";
  };
  // Cancellation is cooperative and config-granular: a tripped token stops
  // workers from *claiming* new platforms (each skip is a hole with no
  // FailureRecord -- the run was cut short, nothing failed), while the
  // platform a worker is on completes and checkpoints normally.
  std::atomic<int> rl_skipped{0};
  const std::vector<TaskFailure> failed = parallel_for_collect(
      jobs, static_cast<long>(pending.size()), [&](long p) {
        if (config.cancel &&
            config.cancel->load(std::memory_order_relaxed)) {
          rl_skipped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const long n = pending[static_cast<std::size_t>(p)];
        const model::Platform& pf = *rl_platforms[static_cast<std::size_t>(n)];
        try {
          if (fault::armed())
            fault::throw_if(fault::Site::Roofline, pf.label());
          rl_slots[static_cast<std::size_t>(n)] =
              roofline::mixbench(pf, mix_domain);
          if (checkpoint)
            store_roofline_shard(config.checkpoint_dir, config, pf.label(),
                                 *rl_slots[static_cast<std::size_t>(n)]);
        } catch (...) {
          rl_progress(pf, /*ok=*/false);
          throw;  // parallel_for_collect records the failure
        }
        rl_progress(pf, /*ok=*/true);
      });
  if (stats) {
    const int skipped = rl_skipped.load();
    stats->simulated += static_cast<int>(pending.size()) - skipped;
    stats->skipped += skipped;
    if (checkpoint)
      stats->checkpointed += static_cast<int>(pending.size()) - skipped -
                             static_cast<int>(failed.size());
  }
  if (!failed.empty() && failures == nullptr)
    throw Error("roofline derivation failed for " +
                rl_platforms[static_cast<std::size_t>(
                                 pending[static_cast<std::size_t>(
                                     failed.front().index)])]
                    ->label() +
                ": " + failed.front().what);
  for (const TaskFailure& f : failed) {
    const model::Platform& pf =
        *rl_platforms[static_cast<std::size_t>(
            pending[static_cast<std::size_t>(f.index)])];
    failures->push_back({pf.label(), "", "", "roofline", f.what});
  }
  std::map<std::string, roofline::EmpiricalRoofline> out;
  for (std::size_t n = 0; n < rl_platforms.size(); ++n)
    if (rl_slots[n])
      out.emplace(rl_platforms[n]->label(), std::move(*rl_slots[n]));
  return out;
}

Sweep run_sweep(const SweepConfig& config) {
  Sweep sweep;
  sweep.config = config;
  // The launcher is shared const across workers: its only state is the
  // sweep-wide configuration, and run() builds everything per call
  // (lowering, register allocation, data binding) except the simt::Machine,
  // which is reused thread-locally -- so concurrent runs never share
  // mutable state.
  model::Launcher launcher(config.domain);
  launcher.set_check_mode(config.check_mode);
  launcher.set_engine(config.engine);
  launcher.set_verify_plan(config.verify_plan);
  const int jobs = effective_jobs(config.jobs);
  std::mutex progress_mu;  // progress lines are the only shared sink

  sweep.rooflines =
      sweep_rooflines(config, &sweep.failures, &sweep.run_stats);

  // Flatten the cross product in the canonical nested order, then let each
  // worker fill the slot of the config it claimed: measurement order (and
  // content -- no RNG, no accumulation across configs) is independent of
  // the job count and the scheduling interleave.
  struct Item {
    const model::Platform* pf;
    const dsl::Stencil* st;
    codegen::Variant variant;
  };
  std::vector<Item> items;
  for (const auto& pf : config.platforms)
    for (const auto& st : config.stencils)
      for (const auto variant : config.variants)
        items.push_back({&pf, &st, variant});

  sweep.measurements.resize(items.size());
  const bool checkpoint = !config.checkpoint_dir.empty();
  // Resume replays valid shards bit-identically; everything else (and
  // everything on a non-resume run) lands on the pending list.
  std::vector<long> pending;
  pending.reserve(items.size());
  for (long n = 0; n < static_cast<long>(items.size()); ++n) {
    if (checkpoint && config.resume) {
      if (auto got = load_shard(config.checkpoint_dir, config, n)) {
        sweep.measurements[static_cast<std::size_t>(n)] = std::move(*got);
        ++sweep.run_stats.resumed;
        continue;
      }
    }
    pending.push_back(n);
  }

  // Two-level scheduling: split the clamped --jobs budget into `outer`
  // concurrent configs x `inner` replay shards inside each kernel
  // (bit-identical either way).  With more pending configs than jobs, all
  // parallelism goes outer (inner == 1, the classic sweep); with fewer --
  // a straggler tail, a resumed run with one missing config, a
  // single-experiment 512^3 launch -- the idle budget moves inside the
  // kernel instead of oversubscribing.  An explicit --shards pins the
  // inner width and derives the outer level, never exceeding jobs total
  // threads when jobs >= shards.  The pinned width is still subject to
  // the same oversubscription clamp as --jobs: shard threads beyond the
  // hardware budget only time-slice, so the k-way merge overhead makes
  // sharded replay strictly slower than serial (BRICKSIM_OVERSUBSCRIBE=1
  // lifts the clamp here too, as the invariance tests rely on).
  int inner = config.shards;
  if (inner <= 0) {
    const long npending = static_cast<long>(pending.size());
    inner = npending > 0
                ? static_cast<int>(std::max<long>(
                      1, jobs / std::min<long>(jobs, npending)))
                : 1;
  } else {
    inner = effective_jobs(inner);
  }
  const int outer = std::max(1, jobs / std::max(1, inner));
  launcher.set_shards(inner);

  // Completion-counter progress, as in sweep_rooflines: the counter hits
  // N/N even when configs fail and leave holes.
  std::atomic<long> done{0};
  const long total = static_cast<long>(pending.size());
  auto progress = [&](const Item& it, bool ok) {
    if (!config.progress) return;
    const long k = done.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(progress_mu);
    std::cerr << "[sweep] " << k << "/" << total << " " << it.pf->label()
              << " " << it.st->name() << " "
              << codegen::variant_name(it.variant) << (ok ? "" : " FAILED")
              << "\n";
  };

  // A throwing config must cost one hole, not the sweep: collect failures
  // instead of failing fast, and checkpoint each completed config so a
  // crashed or degraded run can resume from its shards.
  // As in sweep_rooflines: a tripped cancellation token makes workers stop
  // claiming new configs (skips leave holes, not FailureRecords), while
  // in-flight configs complete and checkpoint -- so an interrupted run is
  // always resumable from its shards.
  std::atomic<int> skipped{0};
  const std::vector<TaskFailure> failed = parallel_for_collect(
      outer, static_cast<long>(pending.size()), [&](long p) {
        if (config.cancel &&
            config.cancel->load(std::memory_order_relaxed)) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const long n = pending[static_cast<std::size_t>(p)];
        const Item& it = items[static_cast<std::size_t>(n)];
        try {
          sweep.measurements[static_cast<std::size_t>(n)] =
              profiler::run_and_measure(launcher, *it.st, it.variant, *it.pf,
                                        config.cg_opts);
          if (checkpoint)
            store_shard(config.checkpoint_dir, config, n,
                        sweep.measurements[static_cast<std::size_t>(n)]);
        } catch (...) {
          progress(it, /*ok=*/false);
          throw;  // parallel_for_collect records the failure
        }
        progress(it, /*ok=*/true);
      });
  for (const TaskFailure& f : failed) {
    const Item& it =
        items[static_cast<std::size_t>(
            pending[static_cast<std::size_t>(f.index)])];
    sweep.failures.push_back({it.pf->label(), it.st->name(),
                              codegen::variant_name(it.variant), "launch",
                              f.what});
  }
  const int nskipped = skipped.load();
  sweep.run_stats.simulated +=
      static_cast<int>(pending.size()) - nskipped;
  sweep.run_stats.skipped += nskipped;
  if (checkpoint)
    sweep.run_stats.checkpointed += static_cast<int>(pending.size()) -
                                    nskipped -
                                    static_cast<int>(failed.size());
  sweep.build_index();
  return sweep;
}

std::map<std::string, std::string> sweep_cli_flags(int default_n) {
  return {{"n", "cubic domain extent (default " + std::to_string(default_n) +
                    "; the paper uses 512)"},
          {"jobs",
           "parallel sweep workers (default: hardware concurrency; "
           "results are identical for every value)"},
          {"shards",
           "worker threads per kernel replay (default: derived from --jobs "
           "and the config count; results are identical for every value)"},
          {"progress", "print sweep progress to stderr"},
          {"csv", "emit CSV instead of aligned tables"},
          {"check",
           "brickcheck policy before every launch: strict (error out), "
           "warn (default; print diagnostics), off"},
          {"engine",
           "SIMT execution engine: plan (default; pre-decoded replay), "
           "interp (legacy interpreter; bit-identical results)"},
          {"verify-plan",
           "differentially verify every decoded ExecPlan against its "
           "source program before replay (plan engine only)"}};
}

std::optional<SweepConfig> sweep_config_from_cli(int argc,
                                                 const char* const* argv,
                                                 int default_n) {
  Cli cli(argc, argv, sweep_cli_flags(default_n));
  if (cli.help_requested()) {
    // "Handled, nothing to run": the caller owns process exit -- library
    // code calling std::exit would skip destructors and make this path
    // untestable in-process.
    std::cout << cli.help(argv[0]);
    return std::nullopt;
  }
  return sweep_config_from_cli(cli, default_n);
}

SweepConfig sweep_config_from_cli(const Cli& cli, int default_n) {
  SweepConfig config;
  const long n = cli.get_long("n", default_n);
  if (n <= 0 || n % 64 != 0)
    throw UsageError(
        "--n must be a positive multiple of 64 (tile shapes of all three "
        "architectures), got: " +
        std::to_string(n));
  config.domain = {static_cast<int>(n), static_cast<int>(n),
                   static_cast<int>(n)};
  // Sentinel defaults (0 = auto) are fine; explicit zero/negative values
  // are usage errors (exit 2), not silently-clamped worker counts.
  config.jobs = static_cast<int>(cli.get_long_min("jobs", 0, 1));
  config.shards = static_cast<int>(cli.get_long_min("shards", 0, 1));
  config.progress = cli.has("progress");
  config.csv = cli.has("csv");
  config.check_mode = analysis::parse_check_mode(
      cli.get_choice("check", {"strict", "warn", "off"}, "warn"));
  config.engine =
      cli.get_choice("engine", {"plan", "interp"}, "plan") == "interp"
          ? simt::Engine::Interp
          : simt::Engine::Plan;
  config.verify_plan = cli.has("verify-plan");
  return config;
}

void print_table(std::ostream& os, const Table& t, bool csv) {
  if (csv)
    t.print_csv(os);
  else
    t.print(os);
}

// --- Emitters ----------------------------------------------------------------

Table make_table1() {
  Table t({"Platform", "Model", "Lowering profile"});
  for (const auto& pf : model::paper_platforms()) {
    const auto& pm = pf.pm;
    std::string prof =
        "addr-ops naive/codegen " +
        std::to_string(pm.addr_ops_per_load_naive) + "/" +
        std::to_string(pm.addr_ops_per_load_codegen) +
        ", exposed-latency " + Table::fmt(pm.naive_extra_cycles_per_load, 0) +
        "cyc, regs " + Table::pct(pm.reg_budget_fraction) +
        (pm.streaming_stores ? "" : ", no streaming stores") +
        (pm.bypass_l2_unaligned_vloads ? ", unaligned vloads bypass L2" : "");
    t.add_row({pf.gpu.name, pm.name, prof});
  }
  return t;
}

Table make_table2() {
  Table t({"Stencil Shape", "Radius", "Points", "Unique Coefficients"});
  for (const auto& st : dsl::Stencil::paper_catalog())
    t.add_row({shape_name(st.shape()), std::to_string(st.radius()),
               std::to_string(st.num_points()),
               std::to_string(st.num_unique_coefficients())});
  return t;
}

Table make_table4() {
  Table t({"Stencil Shape", "Number of points", "Theoretical AI"});
  for (const auto& st : dsl::Stencil::paper_catalog())
    t.add_row({shape_name(st.shape()), std::to_string(st.num_points()),
               Table::fmt(st.theoretical_ai(), 4)});
  return t;
}

Table make_fig3(const Sweep& sweep) {
  Table t({"Platform", "Stencil", "Variant", "AI (F/B)", "GFLOP/s",
           "Frac. Roofline"});
  for (const auto& pf : sweep.config.platforms) {
    const auto rl_it = sweep.rooflines.find(pf.label());
    const roofline::Roofline* rl =
        rl_it != sweep.rooflines.end() ? &rl_it->second.roofline : nullptr;
    if (rl)
      t.add_row({pf.label(), "(ceilings)", "-",
                 Table::fmt(rl->ridge(), 2) + " ridge",
                 Table::fmt(rl->peak_bw / 1e9, 0) + " GB/s | " +
                     Table::fmt(rl->peak_flops / 1e9, 0),
                 "-"});
    else
      t.add_row({pf.label(), "(ceilings)", "-", "FAILED", "FAILED", "-"});
    // Walk the config cross product (== measurement order) rather than
    // select(): a failed config then renders as an explicit hole in its
    // canonical position instead of silently shortening the table.
    for (const auto& st : sweep.config.stencils)
      for (const auto variant : sweep.config.variants) {
        const std::string vname = codegen::variant_name(variant);
        const auto* m = sweep.find(st.name(), vname, pf.label());
        if (m)
          t.add_row({pf.label(), m->stencil, m->variant, Table::fmt(m->ai, 3),
                     Table::fmt(m->gflops, 1),
                     rl ? Table::pct(metrics::fraction_of_roofline(*rl, *m))
                        : "-"});
        else if (sweep.find_failure(st.name(), vname, pf.label()))
          t.add_row({pf.label(), st.name(), vname, "-", "FAILED", "-"});
      }
  }
  return t;
}

Table make_fig4(const Sweep& sweep) {
  Table t({"Platform", "Stencil", "Variant", "L1 moved (GB)",
           "vs bricks codegen"});
  for (const auto& pf : sweep.config.platforms)
    for (const auto& st : sweep.config.stencils) {
      const auto* bricks =
          sweep.find(st.name(), "bricks codegen", pf.label());
      for (const auto variant : sweep.config.variants) {
        const std::string vname = codegen::variant_name(variant);
        const auto* m = sweep.find(st.name(), vname, pf.label());
        if (!m) {
          if (sweep.find_failure(st.name(), vname, pf.label()))
            t.add_row({pf.label(), st.name(), vname, "FAILED", "-"});
          continue;
        }
        const double gb = static_cast<double>(m->l1_bytes) / 1e9;
        const double rel =
            bricks && bricks->l1_bytes > 0
                ? static_cast<double>(m->l1_bytes) /
                      static_cast<double>(bricks->l1_bytes)
                : 0;
        t.add_row({pf.label(), m->stencil, m->variant, Table::fmt(gb, 2),
                   // The baseline itself failed: a ratio against a hole
                   // would be meaningless, not 0.0x.
                   bricks ? Table::fmt(rel, 1) + "x" : "-"});
      }
    }
  return t;
}

namespace {

CorrTables make_corr(const Sweep& sweep, const std::string& y_platform,
                     const std::string& x_platform) {
  const auto ys = sweep.select(y_platform);
  const auto xs = sweep.select(x_platform);
  const std::string ylab = y_platform.substr(y_platform.find('/') + 1);
  const std::string xlab = x_platform.substr(x_platform.find('/') + 1);

  CorrTables out{
      Table({"Stencil", "Variant", xlab + " GFLOP/s", ylab + " GFLOP/s",
             "winner"}),
      Table({"Stencil", "Variant", xlab + " GB", ylab + " GB",
             "lower bound GB"})};

  const double bound =
      static_cast<double>(metrics::compulsory_bytes(sweep.config.domain)) /
      1e9;

  for (const auto& p : metrics::correlate(ys, xs, metrics::CorrMetric::Gflops))
    out.perf.add_row({p.stencil, p.variant, Table::fmt(p.x, 1),
                      Table::fmt(p.y, 1),
                      p.y > p.x * 1.05 ? ylab
                                       : (p.x > p.y * 1.05 ? xlab : "tie")});
  for (const auto& p :
       metrics::correlate(ys, xs, metrics::CorrMetric::HbmGbytes))
    out.bytes.add_row({p.stencil, p.variant, Table::fmt(p.x, 2),
                       Table::fmt(p.y, 2), Table::fmt(bound, 2)});

  // Pairs correlate() had to skip because a side failed render as
  // explicit holes after the matched points (clean sweeps add nothing).
  for (const auto& st : sweep.config.stencils)
    for (const auto variant : sweep.config.variants) {
      const std::string vn = codegen::variant_name(variant);
      if (!sweep.find_failure(st.name(), vn, y_platform) &&
          !sweep.find_failure(st.name(), vn, x_platform))
        continue;
      const auto* my = sweep.find(st.name(), vn, y_platform);
      const auto* mx = sweep.find(st.name(), vn, x_platform);
      out.perf.add_row({st.name(), vn,
                        mx ? Table::fmt(mx->gflops, 1) : "FAILED",
                        my ? Table::fmt(my->gflops, 1) : "FAILED", "-"});
      out.bytes.add_row(
          {st.name(), vn,
           mx ? Table::fmt(static_cast<double>(mx->hbm_bytes) / 1e9, 2)
              : "FAILED",
           my ? Table::fmt(static_cast<double>(my->hbm_bytes) / 1e9, 2)
              : "FAILED",
           Table::fmt(bound, 2)});
    }
  return out;
}

/// The five metric-platform columns (paper Tables 3/5), restricted to the
/// platforms present in this sweep.
std::vector<std::string> metric_labels(const Sweep& sweep) {
  std::vector<std::string> out;
  for (const auto& pf : model::metric_platforms())
    for (const auto& got : sweep.config.platforms)
      if (got.label() == pf.label()) {
        out.push_back(pf.label());
        break;
      }
  return out;
}

}  // namespace

CorrTables make_fig5(const Sweep& sweep) {
  return make_corr(sweep, "A100/CUDA", "A100/SYCL");
}

CorrTables make_fig6(const Sweep& sweep) {
  return make_corr(sweep, "MI250X-GCD/HIP", "MI250X-GCD/SYCL");
}

Table make_table3(const Sweep& sweep) {
  const auto labels = metric_labels(sweep);
  std::vector<std::string> header{"Stencil"};
  header.insert(header.end(), labels.begin(), labels.end());
  header.push_back("P");
  Table t(header);

  std::vector<double> all_p;
  for (const auto& st : sweep.config.stencils) {
    std::vector<std::string> row{st.name()};
    std::vector<double> effs;
    for (const auto& lab : labels) {
      const auto* m = sweep.find(st.name(), "bricks codegen", lab);
      const auto rl_it = sweep.rooflines.find(lab);
      const bool failed =
          (!m && sweep.find_failure(st.name(), "bricks codegen", lab)) ||
          rl_it == sweep.rooflines.end();
      const double e = m && rl_it != sweep.rooflines.end()
                           ? metrics::fraction_of_roofline(
                                 rl_it->second.roofline, *m)
                           : 0;
      effs.push_back(e);
      // A hole scores 0 in P (honest: the config produced nothing) but
      // renders as FAILED so the table never passes 0% off as measured.
      row.push_back(failed ? "FAILED" : Table::pct(e));
    }
    const double p = metrics::pennycook_p(effs);
    all_p.push_back(p);
    row.push_back(Table::pct(p));
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (std::size_t c = 0; c < labels.size(); ++c) avg.push_back("");
  avg.push_back(Table::pct(mean(all_p)));
  t.add_row(std::move(avg));
  return t;
}

Table make_table5(const Sweep& sweep) {
  const auto labels = metric_labels(sweep);
  std::vector<std::string> header{"Stencil"};
  header.insert(header.end(), labels.begin(), labels.end());
  header.push_back("P");
  Table t(header);

  std::vector<double> all_p;
  for (const auto& st : sweep.config.stencils) {
    std::vector<std::string> row{st.name()};
    std::vector<double> effs;
    for (const auto& lab : labels) {
      const auto* m = sweep.find(st.name(), "bricks codegen", lab);
      const double e = m ? metrics::fraction_of_theoretical_ai(st, *m) : 0;
      effs.push_back(e);
      row.push_back(!m && sweep.find_failure(st.name(), "bricks codegen", lab)
                        ? "FAILED"
                        : Table::pct(e));
    }
    const double p = metrics::pennycook_p(effs);
    all_p.push_back(p);
    row.push_back(Table::pct(p));
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (std::size_t c = 0; c < labels.size(); ++c) avg.push_back("");
  avg.push_back(Table::pct(mean(all_p)));
  t.add_row(std::move(avg));
  return t;
}

Table make_fig7(const Sweep& sweep) {
  Table t({"Platform", "Stencil", "Frac. theoretical AI", "Frac. Roofline",
           "Potential speedup"});
  for (const auto& pf : sweep.config.platforms) {
    for (const auto& st : sweep.config.stencils) {
      const auto* m = sweep.find(st.name(), "bricks codegen", pf.label());
      if (!m) {
        if (sweep.find_failure(st.name(), "bricks codegen", pf.label()))
          t.add_row({pf.label(), st.name(), "FAILED", "FAILED", "-"});
        continue;
      }
      const double fa = metrics::fraction_of_theoretical_ai(st, *m);
      const auto rl_it = sweep.rooflines.find(pf.label());
      if (rl_it == sweep.rooflines.end()) {
        t.add_row({pf.label(), st.name(), Table::pct(fa), "FAILED", "-"});
        continue;
      }
      const double fr =
          metrics::fraction_of_roofline(rl_it->second.roofline, *m);
      t.add_row({pf.label(), st.name(), Table::pct(fa), Table::pct(fr),
                 Table::fmt(metrics::potential_speedup(fa, fr), 2) + "x"});
    }
  }
  return t;
}

Table make_check_summary(const Sweep& sweep) {
  Table t({"Platform", "Kernels checked", "Insts verified", "Errors",
           "Warnings", "Clean"});
  metrics::CheckRollup total;
  for (const auto& pf : sweep.config.platforms) {
    const auto ms = sweep.select(pf.label());
    const metrics::CheckRollup r = metrics::rollup_checks(ms);
    t.add_row({pf.label(), std::to_string(r.kernels),
               std::to_string(r.insts), std::to_string(r.errors),
               std::to_string(r.warnings), Table::pct(r.clean_fraction())});
    total.kernels += r.kernels;
    total.insts += r.insts;
    total.errors += r.errors;
    total.warnings += r.warnings;
    total.clean += r.clean;
  }
  t.add_row({"all", std::to_string(total.kernels),
             std::to_string(total.insts), std::to_string(total.errors),
             std::to_string(total.warnings),
             Table::pct(total.clean_fraction())});
  return t;
}

}  // namespace bricksim::harness
