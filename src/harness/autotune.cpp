#include "harness/autotune.h"

#include <algorithm>

#include "common/error.h"

namespace bricksim::harness {

std::vector<std::pair<int, int>> candidate_shapes(int radius, int simd_width) {
  BRICKSIM_REQUIRE(radius >= 0 && radius <= 8, "radius out of range");
  std::vector<std::pair<int, int>> shapes;
  const int lo = std::max(1, radius);
  for (int tj = 1; tj <= 8; tj *= 2) {
    if (tj < lo) continue;
    for (int tk = 1; tk <= 8; tk *= 2) {
      if (tk < lo) continue;
      if (simd_width * tj * tk > 1024) continue;  // thread-block limit
      shapes.push_back({tj, tk});
    }
  }
  BRICKSIM_REQUIRE(!shapes.empty(), "no feasible brick shape");
  return shapes;
}

TuneResult autotune_brick_shape(const dsl::Stencil& stencil,
                                codegen::Variant variant,
                                const model::Platform& platform, Vec3 domain) {
  const model::Launcher launcher(domain);
  const int w = platform.gpu.simd_width;
  TuneResult result;
  for (const auto& [tj, tk] : candidate_shapes(stencil.radius(), w)) {
    BRICKSIM_REQUIRE(domain.j % tj == 0 && domain.k % tk == 0,
                     "domain must be divisible by every candidate shape");
    for (int f = 1; f <= 2; ++f) {
      if (w * f * tj * tk > 1024) continue;  // thread-block limit
      if (domain.i % (w * f) != 0) continue;
      codegen::Options opts;
      opts.tile_i_vectors = f;
      opts.tile_j = tj;
      opts.tile_k = tk;
      const model::LaunchResult r =
          launcher.run(stencil, variant, platform, opts);
      TuneEntry e;
      e.tile_i_vectors = f;
      e.tile_j = tj;
      e.tile_k = tk;
      e.seconds = r.report.seconds;
      e.gflops = r.normalized_gflops();
      e.ai = r.normalized_ai();
      e.spill_slots = r.spill_slots;
      e.aligns = r.inst_stats.aligns;
      result.entries.push_back(e);
    }
  }
  result.best = *std::min_element(
      result.entries.begin(), result.entries.end(),
      [](const TuneEntry& a, const TuneEntry& b) {
        return a.seconds < b.seconds;
      });
  return result;
}

}  // namespace bricksim::harness
