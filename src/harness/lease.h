// Cross-process sweep leases: at most one daemon simulates a cold sweep.
//
// Single-flight (serve/broker.h) dedupes identical cold requests across
// threads of ONE process; this module extends that to a fleet of daemons
// sharing a cache directory.  Before a leader simulates fingerprint <fp>
// it claims `lease-<fp>.json` in the cache dir -- right beside the
// `shards-<fp>/` checkpoint directory the run writes.  A second daemon
// hitting the same cold miss finds the lease held, and polls the disk
// cache until the owner's completed sweep lands (or the lease frees).
//
// Crash tolerance is heartbeat-based: the owner refreshes the lease's
// timestamp every ttl/3 (LeaseHeartbeat).  A daemon SIGKILLed mid-sweep
// stops heartbeating, its lease goes stale after `ttl_ms`, and the next
// contender STEALS it -- adopting the dead owner's resume shards, so the
// fleet completes the sweep instead of restarting it (PR 5's single-
// process crash safety, extended across processes).
//
// The claim protocol needs no file locks: acquisition atomically renames
// a privately written record onto the lease path, then reads it back --
// whoever the file names after the dust settles owns the lease; everyone
// else lost the race and re-polls.  A live owner that IS ousted this way
// (only possible through the `lease.steal` fault site or a wildly
// mis-set ttl) discovers it on its next heartbeat; it never cancels its
// running sweep -- results are bit-identical and the store is
// concurrent-safe, so the worst case of a wrong steal is one duplicated
// simulation, never corruption.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace bricksim::harness {

/// Bump when the lease record layout changes; foreign-schema leases read
/// as stale (safe: worst case is one duplicated simulation).
inline constexpr int kLeaseSchema = 1;

/// A decoded lease record, classified against the reader's clock.
struct LeaseInfo {
  std::string owner;   ///< "host:pid:token" of the claimant
  std::string fingerprint;
  long ttl_ms = 0;     ///< staleness horizon the owner promised to beat
  long age_ms = 0;     ///< now - last heartbeat (clamped to >= 0)
  bool stale = false;  ///< age_ms > ttl_ms: the owner is presumed dead
};

/// `dir`/lease-`fp`.json -- beside the `shards-<fp>/` checkpoint dir.
std::string lease_path(const std::string& dir, const std::string& fp);

/// Reads and classifies the lease at `path`; nullopt when absent or
/// unreadable (mid-write or damaged -- callers treat that as stale, since
/// a healthy owner re-renames a complete record within one heartbeat).
std::optional<LeaseInfo> read_lease(const std::string& path);

class SweepLease {
 public:
  enum class Outcome {
    Acquired,  ///< no lease (or a released one): we own it now
    Stolen,    ///< a stale lease was expired and taken over
    Held,      ///< a live peer owns it; poll the disk cache and retry
  };

  /// `ttl_ms` must comfortably exceed the heartbeat interval (ttl/3).
  SweepLease(std::string dir, std::string fp, long ttl_ms);
  ~SweepLease();  ///< releases if still owned

  SweepLease(const SweepLease&) = delete;
  SweepLease& operator=(const SweepLease&) = delete;

  /// One non-blocking claim attempt (see the protocol note above).  The
  /// `lease.steal` fault site deterministically treats a live peer's
  /// lease as stale (context: the fingerprint).
  Outcome try_acquire();

  /// Re-stamps the record with a fresh timestamp.  Returns false when the
  /// lease no longer names us (stolen): the caller keeps running -- a
  /// steal never cancels work -- but stops heartbeating.
  bool heartbeat();

  /// Unlinks the lease if it still names us.  Idempotent.
  void release();

  bool owned() const { return owned_; }
  long ttl_ms() const { return ttl_ms_; }
  const std::string& owner_id() const { return owner_; }
  const std::string& path() const { return path_; }

 private:
  bool write_record();  ///< atomic tmp+rename of our record; false on I/O error

  std::string dir_;
  std::string fp_;
  std::string path_;
  std::string owner_;
  long ttl_ms_;
  bool owned_ = false;
};

/// RAII heartbeat: refreshes `lease` every ttl/3 on a background thread
/// until destroyed (or until a heartbeat discovers the lease was stolen).
class LeaseHeartbeat {
 public:
  explicit LeaseHeartbeat(SweepLease& lease);
  ~LeaseHeartbeat();

  LeaseHeartbeat(const LeaseHeartbeat&) = delete;
  LeaseHeartbeat& operator=(const LeaseHeartbeat&) = delete;

  /// True when a heartbeat found the lease no longer ours.
  bool ousted() const;

 private:
  SweepLease& lease_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool ousted_ = false;
  std::thread thread_;
};

}  // namespace bricksim::harness
