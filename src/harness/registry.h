// The experiment registry behind the one `bricksim` driver binary.
//
// Every paper artifact (tables 1-5, figures 3-7, the mixbench rooflines,
// the ablations, the PVC sub-group study, the CPU extension, the brickcheck
// summary) is a registered Experiment declaring its name, the sweep slice
// it needs, and an emitter.  The driver (`bricksim list | run <name...> |
// all`) resolves sweeps through a SweepProvider that memoizes in process
// and persists through the content-addressed sweep cache
// (harness/sweepcache.h), so `bricksim all` simulates the full
// (platform, stencil, variant) cross product exactly once -- and a rerun
// with an unchanged fingerprint simulates nothing at all.  Each experiment
// additionally writes structured artifacts (output.txt + tables.json)
// under the results directory, plus a run_summary.json carrying the cache
// counters CI asserts on.
//
// The 16 legacy bench_* binaries are thin shims over this registry
// (run_legacy_shim), kept as deprecated aliases for one release; their
// stdout is byte-identical to `bricksim run <name>` because both paths are
// the same emitter.
//
// The driver is fault tolerant (DESIGN.md "Fault tolerance"): a config or
// emitter that throws costs one hole, not the run -- every artifact that
// can be written is written, run_summary.json names each failure, and the
// exit code is 3 (completed with failures) rather than 1 (hard error).
// `bricksim doctor` audits the cache; `--resume` replays the checkpoint
// shards of an interrupted sweep; `--fault-inject` arms the deterministic
// fault framework (common/fault.h) that CI soaks all of this with.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "harness/harness.h"

namespace bricksim::serve {
class SweepBroker;
}

namespace bricksim::harness {

/// Which sweep an experiment consumes (its cache/memo granularity).
enum class SweepKind {
  None,       ///< self-driving (launcher/autotuner); no shared sweep
  Main,       ///< the full paper sweep: paper_platforms x catalog x variants
  Rooflines,  ///< only the per-platform mixbench rooflines of the main sweep
  Cpu,        ///< the CPU-extension sweep (SKX, KNL, A100/CUDA; bricks only)
};

/// Stable machine-readable name ("none", "main", "rooflines", "cpu"), as
/// used by `bricksim list --json` and the serve protocol.
const char* sweep_kind_name(SweepKind kind);

struct CacheStats {
  int sweeps_simulated = 0;    ///< full sweeps that ran the simulator
  int sweep_disk_hits = 0;     ///< sweeps replayed from the persisted cache
  int sweep_memo_hits = 0;     ///< sweeps reused in-process within one run
  int rooflines_computed = 0;  ///< standalone mixbench runs (no main sweep)
  int artifact_hits = 0;       ///< experiments replayed from artifact cache
  int experiments_emitted = 0; ///< experiments that executed their emitter
  int configs_simulated = 0;   ///< individual configs actually executed
  int shards_written = 0;      ///< resume checkpoints persisted this run
  int shards_resumed = 0;      ///< configs replayed from checkpoint shards
};

/// Wall-clock timing of one experiment within a driver run, recorded under
/// run_summary.json's "timings" key.  `seconds` covers emitting (including
/// any sweep the emitter materialized) or, for `replayed`, the
/// artifact-cache load -- which is how the cache's speedup is observable
/// from the summary alone.
struct ExperimentTiming {
  std::string experiment;
  double seconds = 0;
  bool replayed = false;  ///< served from the artifact cache; no emitter ran
  friend bool operator==(const ExperimentTiming&, const ExperimentTiming&) =
      default;
};

/// Lossless JSON round trip (doubles via shortest-round-trip formatting).
json::Value to_json(const ExperimentTiming& t);
ExperimentTiming experiment_timing_from_json(const json::Value& v);

/// Lazily materializes sweeps for experiments through a SweepBroker
/// (serve/broker.h): broker memo first, then the content-addressed disk
/// cache, then a real run_sweep (persisted for next time).  The provider
/// is a thin per-invocation client that keeps the driver-facing CacheStats
/// and failure bookkeeping; the broker owns the sweeps.  One provider
/// serves a whole driver invocation, so every experiment of `bricksim all`
/// shares one main sweep -- and providers sharing one broker (the serve
/// daemon creates one per request) share every materialized sweep.
class SweepProvider {
 public:
  /// Convenience: owns a private broker.  `cache_dir` empty disables
  /// persistence (legacy shims, --no-cache).  With `resume`, sweeps replay
  /// valid checkpoint shards from an earlier interrupted run before
  /// simulating the remainder (--resume).
  explicit SweepProvider(std::string cache_dir, bool resume = false);

  /// Client of a shared broker (the serve daemon's mode).
  explicit SweepProvider(std::shared_ptr<serve::SweepBroker> broker);

  /// The full paper sweep at `config`'s domain/engine/check settings
  /// (platforms/stencils/variants forced to the paper defaults).
  const Sweep& main(const SweepConfig& config);

  /// The CPU-extension sweep (cpu_platforms + A100/CUDA, bricks codegen).
  const Sweep& cpu(const SweepConfig& config);

  /// Per-platform-label mixbench rooflines.  Reuses the main sweep when it
  /// is already materialized (memo or disk); otherwise computes just the
  /// rooflines, which is far cheaper than the cross product.
  const std::map<std::string, roofline::EmpiricalRoofline>& rooflines(
      const SweepConfig& config);

  CacheStats& stats() { return stats_; }
  const std::string& cache_dir() const { return cache_dir_; }
  const std::shared_ptr<serve::SweepBroker>& broker() const {
    return broker_;
  }

  /// Every per-config failure isolated by sweeps this provider ran, in
  /// run order.  Non-empty means the run is degraded: the driver exits 3
  /// and no degraded sweep was stored as a full cache entry (its good
  /// shards persist for --resume).
  const std::vector<FailureRecord>& all_failures() const {
    return failures_;
  }

  /// Whether the sweep identified by `config` ran degraded under this
  /// provider (drives the per-experiment "degraded" status).
  bool has_failures(const SweepConfig& config) const;

  /// The main-sweep config derived from driver-level settings.
  static SweepConfig main_config(const SweepConfig& base);
  static SweepConfig cpu_config(const SweepConfig& base);

 private:
  const Sweep& get(const SweepConfig& config);

  /// Folds `sweep`'s isolated failures into this provider's record, once
  /// per fingerprint -- so a degraded sweep served warm (by this provider
  /// or any other broker client) is reported exactly once per provider.
  void record_failures(const Sweep& sweep, const std::string& fp);

  std::shared_ptr<serve::SweepBroker> broker_;
  std::string cache_dir_;
  bool resume_ = false;
  std::map<std::string, std::map<std::string, roofline::EmpiricalRoofline>>
      rooflines_memo_;  ///< main fingerprint -> rooflines only
  CacheStats stats_;
  std::vector<FailureRecord> failures_;   ///< all isolated failures
  std::vector<std::string> degraded_fps_; ///< fingerprints that failed
};

/// Execution context handed to an experiment emitter.
class ExperimentContext {
 public:
  ExperimentContext(SweepConfig config, SweepProvider* sweeps,
                    std::ostream* os)
      : config_(std::move(config)), sweeps_(sweeps), os_(os) {}

  const SweepConfig& config() const { return config_; }
  SweepProvider& sweeps() { return *sweeps_; }

  /// Free-text output (headers, summary lines).
  std::ostream& out() { return *os_; }

  /// Emits a table: prints it (aligned or CSV per --csv; `force_aligned`
  /// pins the historical always-aligned tables) and records it under `id`
  /// for the JSON artifact.
  void table(const std::string& id, const Table& t,
             bool force_aligned = false);

  /// Tables recorded so far, in emission order.
  const std::vector<std::pair<std::string, Table>>& tables() const {
    return tables_;
  }

 private:
  SweepConfig config_;
  SweepProvider* sweeps_;
  std::ostream* os_;
  std::vector<std::pair<std::string, Table>> tables_;
};

struct Experiment {
  std::string name;           ///< registry key, e.g. "fig3"
  std::string title;          ///< one-liner for `bricksim list`
  std::string legacy_binary;  ///< deprecated alias, "" when none
  int default_n = 256;        ///< the legacy binary's default domain
  SweepKind sweep = SweepKind::None;
  std::function<void(ExperimentContext&)> emit;
};

/// All experiments in emission order (paper order, then extensions).
const std::vector<Experiment>& experiment_registry();

/// Lookup by name; nullptr when unknown.
const Experiment* find_experiment(const std::string& name);

/// Entry point of the deprecated bench_* alias binaries: parses the legacy
/// CLI (sweep flags only), prints a deprecation note to stderr, and runs
/// the named experiment against stdout with caching disabled.
int run_legacy_shim(const std::string& name, int argc,
                    const char* const* argv);

/// Entry point of the `bricksim` driver binary.
int driver_main(int argc, const char* const* argv);

}  // namespace bricksim::harness
