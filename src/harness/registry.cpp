#include "harness/registry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "analysis/brickperf.h"
#include "arch/arch.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/threadpool.h"
#include "common/shutdown.h"
#include "harness/autotune.h"
#include "harness/cachefile.h"
#include "harness/doctor.h"
#include "harness/sweepcache.h"
#include "serve/broker.h"

namespace bricksim::harness {

const char* sweep_kind_name(SweepKind kind) {
  switch (kind) {
    case SweepKind::None: return "none";
    case SweepKind::Main: return "main";
    case SweepKind::Rooflines: return "rooflines";
    case SweepKind::Cpu: return "cpu";
  }
  return "unknown";
}

// --- SweepProvider -----------------------------------------------------------

SweepProvider::SweepProvider(std::string cache_dir, bool resume)
    : SweepProvider(std::make_shared<serve::SweepBroker>(
          serve::SweepBroker::Options{std::move(cache_dir), resume, 0})) {}

SweepProvider::SweepProvider(std::shared_ptr<serve::SweepBroker> broker)
    : broker_(std::move(broker)),
      cache_dir_(broker_->cache_dir()),
      resume_(broker_->resume()) {}

bool SweepProvider::has_failures(const SweepConfig& config) const {
  return std::find(degraded_fps_.begin(), degraded_fps_.end(),
                   fingerprint(config)) != degraded_fps_.end();
}

SweepConfig SweepProvider::main_config(const SweepConfig& base) {
  SweepConfig config = base;
  config.platforms = model::paper_platforms();
  config.stencils = dsl::Stencil::paper_catalog();
  config.variants = {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
                     codegen::Variant::BricksCodegen};
  config.cg_opts = {};
  return config;
}

SweepConfig SweepProvider::cpu_config(const SweepConfig& base) {
  SweepConfig config = base;
  config.platforms = model::cpu_platforms();
  config.platforms.push_back(model::paper_platforms().front());  // A100/CUDA
  config.stencils = dsl::Stencil::paper_catalog();
  config.variants = {codegen::Variant::BricksCodegen};
  config.cg_opts = {};
  return config;
}

void SweepProvider::record_failures(const Sweep& sweep,
                                    const std::string& fp) {
  if (sweep.failures.empty()) return;
  if (std::find(degraded_fps_.begin(), degraded_fps_.end(), fp) !=
      degraded_fps_.end())
    return;
  degraded_fps_.push_back(fp);
  failures_.insert(failures_.end(), sweep.failures.begin(),
                   sweep.failures.end());
}

const Sweep& SweepProvider::get(const SweepConfig& config) {
  // The broker resolves memo -> disk -> inline run_sweep on this thread
  // (serve/broker.h); the provider's job is translating the response into
  // the driver-facing CacheStats and failure record.
  const serve::SweepResponse resp = broker_->request(config);
  switch (resp.status) {
    case serve::RequestStatus::WarmMemo:
    case serve::RequestStatus::Coalesced:
      ++stats_.sweep_memo_hits;
      break;
    case serve::RequestStatus::WarmDisk:
      ++stats_.sweep_disk_hits;
      break;
    case serve::RequestStatus::Simulated: {
      ++stats_.sweeps_simulated;
      const SweepRunStats& rs = resp.sweep->run_stats;
      stats_.configs_simulated += rs.simulated;
      stats_.shards_written += rs.checkpointed;
      stats_.shards_resumed += rs.resumed;
      if (rs.skipped > 0)
        throw Interrupted(
            "sweep " + resp.fingerprint + " interrupted by shutdown (" +
            std::to_string(rs.skipped) +
            " configs skipped; completed work is checkpointed, rerun with "
            "--resume)");
      break;
    }
    default:
      throw Error("sweep request " + resp.fingerprint + " " +
                  serve::request_status_name(resp.status) +
                  (resp.error.empty() ? "" : ": " + resp.error));
  }
  record_failures(*resp.sweep, resp.fingerprint);
  return *resp.sweep;
}

const Sweep& SweepProvider::main(const SweepConfig& config) {
  return get(main_config(config));
}

const Sweep& SweepProvider::cpu(const SweepConfig& config) {
  return get(cpu_config(config));
}

const std::map<std::string, roofline::EmpiricalRoofline>&
SweepProvider::rooflines(const SweepConfig& config) {
  // Rooflines stay provider-local (the broker's unit of work is a whole
  // sweep): probe the broker's memo and disk cache first -- preserving the
  // legacy counter ordering memo -> rooflines memo -> disk -> compute --
  // and only compute the (comparatively cheap) rooflines when the full
  // sweep is nowhere to be found.
  const SweepConfig main = main_config(config);
  const std::string fp = fingerprint(main);
  if (auto sweep = broker_->peek_memo(main)) {
    ++stats_.sweep_memo_hits;
    record_failures(*sweep, fp);
    return sweep->rooflines;
  }
  if (const auto it = rooflines_memo_.find(fp); it != rooflines_memo_.end())
    return it->second;
  if (!cache_dir_.empty()) {
    if (auto sweep = broker_->load_disk(main)) {
      ++stats_.sweep_disk_hits;
      return sweep->rooflines;
    }
  }
  ++stats_.rooflines_computed;
  SweepConfig run_cfg = main;
  if (!cache_dir_.empty()) {
    run_cfg.checkpoint_dir = cache_dir_;
    run_cfg.resume = resume_;
  }
  std::vector<FailureRecord> fails;
  SweepRunStats rstats;
  auto rls = sweep_rooflines(run_cfg, &fails, &rstats);
  stats_.configs_simulated += rstats.simulated;
  stats_.shards_written += rstats.checkpointed;
  stats_.shards_resumed += rstats.resumed;
  if (rstats.skipped > 0)
    throw Interrupted(
        "roofline derivation " + fp + " interrupted by shutdown (" +
        std::to_string(rstats.skipped) +
        " platforms skipped; completed work is checkpointed, rerun with "
        "--resume)");
  if (!fails.empty()) {
    degraded_fps_.push_back(fp);
    failures_.insert(failures_.end(), fails.begin(), fails.end());
  }
  return rooflines_memo_.emplace(fp, std::move(rls)).first->second;
}

// --- ExperimentContext -------------------------------------------------------

void ExperimentContext::table(const std::string& id, const Table& t,
                              bool force_aligned) {
  print_table(*os_, t, !force_aligned && config_.csv);
  tables_.emplace_back(id, t);
}

// --- Emitters ----------------------------------------------------------------
//
// Each emitter is the body of one legacy bench_* main, byte for byte on
// stdout; the shims and the driver both run these, which is what makes the
// deprecated binaries and `bricksim run` interchangeable.

namespace {

void emit_table1(ExperimentContext& ctx) {
  ctx.out() << "Table 1: platforms and programming-model lowering profiles "
               "(simulator substitution for compilers/modules).\n\n";
  ctx.table("table1", make_table1());
}

void emit_table2(ExperimentContext& ctx) {
  ctx.out() << "Table 2: Stencils used for performance portability "
               "evaluation.\n\n";
  ctx.table("table2", make_table2());
}

void emit_table4(ExperimentContext& ctx) {
  ctx.out() << "Table 4: Theoretical arithmetic intensity (FLOP:Byte).\n\n";
  ctx.table("table4", make_table4());
}

void emit_fig3(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  ctx.out() << "Figure 3: Roofline for stencil computations per platform "
               "(domain " << config.domain.i << "^3).\n\n";
  const Sweep& sweep = ctx.sweeps().main(config);
  ctx.table("fig3", make_fig3(sweep));
  ctx.out() << "\nbrickcheck (pre-launch static verification, --check="
            << analysis::check_mode_name(config.check_mode) << "):\n";
  ctx.table("check_summary", make_check_summary(sweep));
}

void emit_fig4(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  ctx.out() << "Figure 4: L1 data movement (lower is better; domain "
            << config.domain.i << "^3).\n\n";
  ctx.table("fig4", make_fig4(ctx.sweeps().main(config)));
}

void emit_fig5(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  const auto corr = make_fig5(ctx.sweeps().main(config));
  ctx.out() << "Figure 5 (left): performance correlation, CUDA vs SYCL on "
               "A100 (domain " << config.domain.i << "^3).\n\n";
  ctx.table("fig5_perf", corr.perf);
  ctx.out() << "\nFigure 5 (right): bytes accessed, CUDA vs SYCL on A100.\n\n";
  ctx.table("fig5_bytes", corr.bytes);
}

void emit_fig6(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  const auto corr = make_fig6(ctx.sweeps().main(config));
  ctx.out() << "Figure 6 (left): performance correlation, HIP vs SYCL on "
               "MI250X GCD (domain " << config.domain.i << "^3).\n\n";
  ctx.table("fig6_perf", corr.perf);
  ctx.out() << "\nFigure 6 (right): bytes accessed, HIP vs SYCL on MI250X "
               "GCD.\n\n";
  ctx.table("fig6_bytes", corr.bytes);
}

void emit_table3(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  const Sweep& sweep = ctx.sweeps().main(config);
  ctx.out() << "Table 3: performance portability P from fraction of the "
               "Roofline, bricks codegen (domain " << config.domain.i
            << "^3).\n\n";
  ctx.table("table3", make_table3(sweep));
}

void emit_table5(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  const Sweep& sweep = ctx.sweeps().main(config);
  ctx.out() << "Table 5: performance portability P from fraction of "
               "theoretical AI, bricks codegen (domain " << config.domain.i
            << "^3).\n\n";
  ctx.table("table5", make_table5(sweep));
}

void emit_fig7(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  const Sweep& sweep = ctx.sweeps().main(config);
  ctx.out() << "Figure 7: potential speed-up for bricks codegen (domain "
            << config.domain.i << "^3).\n\n";
  ctx.table("fig7", make_fig7(sweep));
}

void emit_mixbench(ExperimentContext& ctx) {
  ctx.out() << "Mixbench-derived empirical Rooflines per platform.\n\n";
  const auto& rls = ctx.sweeps().rooflines(ctx.config());
  for (const auto& pf : model::paper_platforms()) {
    const auto emp_it = rls.find(pf.label());
    if (emp_it == rls.end()) {
      // Roofline derivation failed for this platform: an explicit hole.
      ctx.out() << pf.label()
                << ": FAILED (roofline derivation failed; see "
                   "run_summary.json)\n\n";
      continue;
    }
    const auto& emp = emp_it->second;
    const auto theo = roofline::theoretical_roofline(pf.gpu);
    ctx.out() << pf.label() << ": empirical "
              << Table::fmt(emp.roofline.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(emp.roofline.peak_flops / 1e12, 2)
              << " TFLOP/s (theoretical "
              << Table::fmt(theo.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(theo.peak_flops / 1e12, 2) << " TFLOP/s)\n";
    Table t({"nominal AI", "measured AI", "GFLOP/s", "GB/s"});
    for (const auto& p : emp.points)
      t.add_row({Table::fmt(p.nominal_ai, 2), Table::fmt(p.measured_ai, 2),
                 Table::fmt(p.gflops, 1), Table::fmt(p.gbytes_per_sec, 0)});
    ctx.table("mixbench_" + pf.label(), t);
    ctx.out() << "\n";
  }
}

void emit_check(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  ctx.out() << "brickcheck summary: pre-launch static verification over the "
               "full sweep (domain " << config.domain.i << "^3, --check="
            << analysis::check_mode_name(config.check_mode) << ").\n\n";
  ctx.table("check_summary", make_check_summary(ctx.sweeps().main(config)));
}

void emit_lint(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  ctx.out() << "brickperf lint: static performance analysis joined against "
               "measured counters (domain " << config.domain.i << "^3).\n\n";
  const Sweep& sweep = ctx.sweeps().main(config);
  const SweepConfig main = SweepProvider::main_config(config);

  // Re-derive each configuration's post-regalloc program and geometry
  // without executing anything; correctness checking is the sweep's (and
  // the `check` experiment's) job, lint only wants the perf pass.
  model::Launcher launcher(main.domain);
  launcher.set_check_mode(analysis::CheckMode::Off);

  const analysis::DriftTolerance tol;
  analysis::PerfStats stats;
  std::vector<std::string> violations;
  int joined = 0, holes = 0;
  Table t({"Platform", "Stencil", "Variant", "L1 est GB", "L1 meas GB",
           "L1 drift", "HBM est GB", "HBM meas GB", "HBM drift", "Spills",
           "Diags", "Agree"});
  for (const auto& pf : main.platforms) {
    for (const auto& st : main.stencils) {
      for (const auto variant : main.variants) {
        const std::string vn = codegen::variant_name(variant);
        const profiler::Measurement* m =
            sweep.find(st.name(), vn, pf.label());
        if (m == nullptr) {
          // A sweep hole: no measured counters to join against.  Render it
          // explicitly and leave the drift gate to the configs that ran.
          ++holes;
          t.add_row({pf.label(), st.name(), vn, "-", "FAILED", "-", "-",
                     "FAILED", "-", "-", "-", "-"});
          continue;
        }
        model::PreparedLaunch prep =
            launcher.prepare(st, variant, pf, main.cg_opts);
        analysis::KernelAttrs attrs;
        attrs.domain = main.domain;
        attrs.read_streams = prep.read_streams;
        attrs.bw_derate = pf.pm.bw_derate;
        attrs.streaming_stores = pf.pm.streaming_stores;
        attrs.bypass_l2_unaligned_vloads = pf.pm.bypass_l2_unaligned_vloads;
        attrs.regs_used = prep.regs_used;
        attrs.reg_budget =
            std::max(8, static_cast<int>(pf.gpu.regs_per_lane *
                                         pf.pm.reg_budget_fraction));
        const analysis::PerfReport rep =
            analysis::analyze(*prep.program, prep.geom, pf.gpu, attrs);
        stats += rep.stats;
        const analysis::Drift d = analysis::compare_measured(
            rep.est, static_cast<double>(m->l1_bytes),
            static_cast<double>(m->hbm_bytes), m->spill_slots);
        const bool agree = d.within(tol);
        ++joined;
        if (!agree) {
          std::ostringstream why;
          why << pf.label() << " " << st.name() << " " << vn << ": L1 "
              << Table::fmt(d.l1_rel * 100, 2) << "% ("
              << (d.exact_sectors ? "exact" : "modelled") << ", tol "
              << Table::fmt((d.exact_sectors ? tol.l1_exact
                                             : tol.l1_inexact) * 100, 2)
              << "%), HBM " << Table::fmt(d.hbm_rel * 100, 2) << "% (tol "
              << Table::fmt(tol.hbm * 100, 2) << "%), spills "
              << rep.est.spill_slots << "/" << m->spill_slots;
          violations.push_back(why.str());
        }
        t.add_row({pf.label(), st.name(), vn,
                   Table::fmt(rep.est.l1_bytes / 1e9, 3),
                   Table::fmt(static_cast<double>(m->l1_bytes) / 1e9, 3),
                   Table::fmt(d.l1_rel * 100, 2) + "%",
                   Table::fmt(rep.est.hbm_bytes / 1e9, 3),
                   Table::fmt(static_cast<double>(m->hbm_bytes) / 1e9, 3),
                   Table::fmt(d.hbm_rel * 100, 2) + "%",
                   std::to_string(rep.est.spill_slots) + "/" +
                       std::to_string(m->spill_slots),
                   std::to_string(rep.stats.warnings),
                   agree ? "yes" : "NO"});
      }
    }
  }
  ctx.table("lint", t);

  ctx.out() << "\nbrickperf: " << stats.programs << " programs, "
            << stats.insts << " instructions, " << stats.warnings
            << " warnings (";
  for (int c = 0; c < analysis::kNumPerfChecks; ++c)
    ctx.out() << (c > 0 ? ", " : "")
              << analysis::perf_check_name(static_cast<analysis::PerfCheck>(c))
              << " " << stats.by_check[c];
  ctx.out() << ").\n";
  ctx.out() << joined << " configuration(s) joined against measured "
               "counters";
  if (holes > 0) ctx.out() << ", " << holes << " FAILED (sweep holes)";
  ctx.out() << "; " << (joined - static_cast<int>(violations.size()))
            << " within declared tolerance.\n";

  // The gate: static model and simulator must agree.  Throwing here makes
  // the driver mark the experiment failed and exit 3 -- drift is a bug in
  // one of the two, not a rendering detail.
  if (!violations.empty()) {
    std::ostringstream os;
    os << violations.size()
       << " configuration(s) drifted outside DriftTolerance:";
    for (const auto& v : violations) os << "\n  " << v;
    throw Error(os.str());
  }
}

void emit_ablation_codegen(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();

  struct Config {
    const char* name;
    codegen::Variant variant;
    codegen::Options opts;
  };
  codegen::Options no_cse;
  no_cse.enable_cse = false;
  codegen::Options gather;
  gather.force_gather = true;
  codegen::Options scatter;
  scatter.force_scatter = true;
  codegen::Options gather_sched;
  gather_sched.force_gather = true;
  gather_sched.reorder_for_pressure = true;
  const Config configs[] = {
      {"array (naive baseline)", codegen::Variant::Array, {}},
      {"bricks codegen", codegen::Variant::BricksCodegen, {}},
      {"bricks codegen, no CSE", codegen::Variant::BricksCodegen, no_cse},
      {"bricks codegen, force gather", codegen::Variant::BricksCodegen,
       gather},
      {"bricks codegen, gather + reorder [44]",
       codegen::Variant::BricksCodegen, gather_sched},
      {"bricks codegen, force scatter", codegen::Variant::BricksCodegen,
       scatter},
  };

  const model::Launcher launcher(config.domain);
  const auto platforms = model::metric_platforms();

  ctx.out() << "Codegen ablation (domain " << config.domain.i << "^3).\n\n";

  // Flatten (platform, stencil, config), launch in parallel into one row
  // slot each, then assemble the per-platform tables in canonical order.
  const std::vector<model::Platform> pfs = {platforms[0], platforms[2],
                                            platforms[4]};
  const std::vector<dsl::Stencil> sts = {dsl::Stencil::star(2),
                                         dsl::Stencil::cube(2)};
  struct Item {
    std::size_t pf;
    const dsl::Stencil* st;
    const Config* c;
  };
  std::vector<Item> items;
  for (std::size_t p = 0; p < pfs.size(); ++p)
    for (const auto& st : sts)
      for (const Config& c : configs) items.push_back({p, &st, &c});

  std::vector<std::vector<std::string>> rows(items.size());
  std::mutex progress_mu;
  const int jobs = effective_jobs(config.jobs);
  parallel_for(jobs, static_cast<long>(items.size()), [&](long n) {
    const Item& it = items[static_cast<std::size_t>(n)];
    if (config.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      std::cerr << "[ablation] " << pfs[it.pf].label() << " "
                << it.st->name() << " " << it.c->name << "\n";
    }
    const model::LaunchResult r =
        launcher.run(*it.st, it.c->variant, pfs[it.pf], it.c->opts);
    rows[static_cast<std::size_t>(n)] = {
        it.st->name(), it.c->name, Table::fmt(r.normalized_gflops(), 1),
        Table::fmt(r.normalized_ai(), 3),
        Table::fmt(r.report.traffic.l1_total() / 1e9, 2),
        std::to_string(r.spill_slots),
        r.used_scatter ? "scatter" : "gather"};
  });

  std::size_t n = 0;
  for (std::size_t p = 0; p < pfs.size(); ++p) {
    Table t({"Stencil", "Configuration", "GFLOP/s", "AI (F/B)", "L1 GB",
             "spills", "mode"});
    for (std::size_t r = 0; r < sts.size() * std::size(configs); ++r)
      t.add_row(std::move(rows[n++]));
    ctx.out() << pfs[p].label() << ":\n";
    ctx.table(pfs[p].label(), t);
    ctx.out() << "\n";
  }
}

void emit_ablation_brickshape(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  ctx.out() << "Brick-shape autotuning, bricks codegen (domain "
            << config.domain.i << "^3).\n\n";

  // Each (platform, stencil) tuning run is independent; workers fill the
  // row slot of the pair they claimed, so the table order never changes.
  const auto platforms = model::metric_platforms();
  const auto stencils = dsl::Stencil::paper_catalog();
  struct Pair {
    const model::Platform* pf;
    const dsl::Stencil* st;
  };
  std::vector<Pair> pairs;
  for (const auto& pf : platforms)
    for (const auto& st : stencils) pairs.push_back({&pf, &st});

  std::vector<std::vector<std::string>> rows(pairs.size());
  std::mutex progress_mu;
  const int jobs = effective_jobs(config.jobs);
  parallel_for(jobs, static_cast<long>(pairs.size()), [&](long n) {
    const auto& [pf, st] = pairs[static_cast<std::size_t>(n)];
    if (config.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      std::cerr << "[tune] " << pf->label() << " " << st->name() << "\n";
    }
    const auto tuned = autotune_brick_shape(
        *st, codegen::Variant::BricksCodegen, *pf, config.domain);
    double base_gflops = 0;
    for (const auto& e : tuned.entries)
      if (e.tile_j == 4 && e.tile_k == 4 && e.tile_i_vectors == 1)
        base_gflops = e.gflops;
    rows[static_cast<std::size_t>(n)] = {
        pf->label(), st->name(),
        std::to_string(tuned.best.tile_j) + "x" +
            std::to_string(tuned.best.tile_k) + "x" +
            std::to_string(tuned.best.tile_i_vectors * pf->gpu.simd_width),
        Table::fmt(tuned.best.gflops, 1), Table::fmt(base_gflops, 1),
        Table::fmt(base_gflops > 0 ? tuned.best.gflops / base_gflops : 0,
                   2) +
            "x"};
  });

  Table summary({"Platform", "Stencil", "best shape", "best GFLOP/s",
                 "4x4 GFLOP/s", "speedup vs 4x4"});
  for (auto& row : rows) summary.add_row(std::move(row));
  ctx.table("summary", summary);

  // Detail for one representative case: the 125pt stencil on the A100.
  const auto pf = model::metric_platforms().front();
  const auto detail = autotune_brick_shape(
      dsl::Stencil::cube(2), codegen::Variant::BricksCodegen, pf,
      config.domain);
  ctx.out() << "\nDetail: 125pt on " << pf.label() << "\n";
  Table t({"shape", "GFLOP/s", "AI (F/B)", "spill slots", "aligns/block"});
  for (const auto& e : detail.entries)
    t.add_row({std::to_string(e.tile_j) + "x" + std::to_string(e.tile_k) +
                   "x" + std::to_string(e.tile_i_vectors * 32),
               Table::fmt(e.gflops, 1), Table::fmt(e.ai, 3),
               std::to_string(e.spill_slots), std::to_string(e.aligns)});
  ctx.table("detail_125pt", t);
}

void emit_cpu_crossplatform(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();
  ctx.out() << "CPU+GPU cross-platform portability, bricks codegen (domain "
            << config.domain.i << "^3).\n\n";
  const Sweep& sweep = ctx.sweeps().cpu(config);
  const auto& platforms = sweep.config.platforms;

  std::vector<std::string> header{"Stencil"};
  for (const auto& pf : platforms) header.push_back(pf.label());
  header.push_back("P");
  Table t(header);

  std::vector<double> all_p;
  for (const auto& st : sweep.config.stencils) {
    std::vector<std::string> row{st.name()};
    std::vector<double> effs;
    for (const auto& pf : platforms) {
      const auto* m = sweep.find(st.name(), "bricks codegen", pf.label());
      const auto rl_it = sweep.rooflines.find(pf.label());
      const bool failed =
          (!m &&
           sweep.find_failure(st.name(), "bricks codegen", pf.label())) ||
          rl_it == sweep.rooflines.end();
      const double e = m && rl_it != sweep.rooflines.end()
                           ? metrics::fraction_of_roofline(
                                 rl_it->second.roofline, *m)
                           : 0;
      effs.push_back(e);
      row.push_back(failed ? "FAILED" : Table::pct(e));
    }
    const double p = metrics::pennycook_p(effs);
    all_p.push_back(p);
    row.push_back(Table::pct(p));
    t.add_row(std::move(row));
  }
  // The legacy binary always printed these two tables aligned (never CSV).
  ctx.table("pennycook", t, /*force_aligned=*/true);
  ctx.out() << "\nGFLOP/s for scale (bricks codegen):\n";
  Table g({"Stencil", "SKX", "KNL", "A100"});
  for (const auto& st : sweep.config.stencils) {
    std::vector<std::string> row{st.name()};
    for (const auto& pf : platforms) {
      const auto* m = sweep.find(st.name(), "bricks codegen", pf.label());
      row.push_back(
          !m && sweep.find_failure(st.name(), "bricks codegen", pf.label())
              ? "FAILED"
              : Table::fmt(m ? m->gflops : 0, 1));
    }
    g.add_row(std::move(row));
  }
  ctx.table("gflops", g, /*force_aligned=*/true);
}

void emit_pvc_subgroup(ExperimentContext& ctx) {
  const SweepConfig& config = ctx.config();

  arch::GpuArch pvc16 = arch::make_pvc_stack();
  arch::GpuArch pvc32 = arch::make_pvc_stack();
  pvc32.simd_width = 32;
  pvc32.name = "PVC-Stack-SG32";
  const model::Platform p16{pvc16, model::model_for(model::PmKind::SYCL,
                                                    pvc16)};
  const model::Platform p32{pvc32, model::model_for(model::PmKind::SYCL,
                                                    pvc32)};

  const model::Launcher launcher(config.domain);
  ctx.out() << "PVC sub-group width: 16 vs 32, bricks codegen (domain "
            << config.domain.i << "^3).\n\n";
  Table t({"Stencil", "SG16 GFLOP/s", "SG32 GFLOP/s", "SG16/SG32",
           "SG16 AI", "SG32 AI"});
  const auto stencils = dsl::Stencil::paper_catalog();
  struct Slot {
    model::LaunchResult a, b;
  };
  std::vector<Slot> slots(stencils.size());
  const int jobs = effective_jobs(config.jobs);
  parallel_for(jobs, static_cast<long>(stencils.size()), [&](long n) {
    auto& s = slots[static_cast<std::size_t>(n)];
    s.a = launcher.run(stencils[static_cast<std::size_t>(n)],
                       codegen::Variant::BricksCodegen, p16);
    s.b = launcher.run(stencils[static_cast<std::size_t>(n)],
                       codegen::Variant::BricksCodegen, p32);
  });
  double better16 = 0, total = 0;
  for (std::size_t n = 0; n < stencils.size(); ++n) {
    const auto& st = stencils[n];
    const double g16 = slots[n].a.normalized_gflops();
    const double g32 = slots[n].b.normalized_gflops();
    if (g16 > g32) ++better16;
    ++total;
    t.add_row({st.name(), Table::fmt(g16, 1), Table::fmt(g32, 1),
               Table::fmt(g16 / g32, 2) + "x",
               Table::fmt(slots[n].a.normalized_ai(), 3),
               Table::fmt(slots[n].b.normalized_ai(), 3)});
  }
  ctx.table("sg16_vs_sg32", t);
  ctx.out() << "\nSG16 wins " << better16 << "/" << total
            << " stencils (the paper chose 16).\n";
}

}  // namespace

// --- Experiment timings ------------------------------------------------------

json::Value to_json(const ExperimentTiming& t) {
  json::Value v = json::Value::object();
  v["experiment"] = t.experiment;
  v["seconds"] = t.seconds;
  v["replayed"] = t.replayed;
  return v;
}

ExperimentTiming experiment_timing_from_json(const json::Value& v) {
  ExperimentTiming t;
  t.experiment = v.at("experiment").as_string();
  t.seconds = v.at("seconds").as_double();
  t.replayed = v.at("replayed").as_bool();
  return t;
}

// --- Registry ----------------------------------------------------------------

const std::vector<Experiment>& experiment_registry() {
  static const std::vector<Experiment> registry = {
      {"table1", "platforms and programming-model lowering profiles",
       "bench_table1_platforms", 256, SweepKind::None, emit_table1},
      {"table2", "stencil catalog: shape, radius, points, coefficients",
       "bench_table2_stencils", 256, SweepKind::None, emit_table2},
      {"table4", "theoretical arithmetic intensity per stencil",
       "bench_table4_theoretical_ai", 256, SweepKind::None, emit_table4},
      {"fig3", "Roofline position of every stencil/variant/platform",
       "bench_fig3_roofline", 256, SweepKind::Main, emit_fig3},
      {"fig4", "L1 data movement per stencil/variant/platform",
       "bench_fig4_l1_movement", 256, SweepKind::Main, emit_fig4},
      {"fig5", "CUDA vs SYCL correlation on A100",
       "bench_fig5_corr_a100", 256, SweepKind::Main, emit_fig5},
      {"fig6", "HIP vs SYCL correlation on MI250X GCD",
       "bench_fig6_corr_mi250x", 256, SweepKind::Main, emit_fig6},
      {"table3", "Pennycook P from fraction of the Roofline",
       "bench_table3_pp_roofline", 256, SweepKind::Main, emit_table3},
      {"table5", "Pennycook P from fraction of theoretical AI",
       "bench_table5_pp_theoretical_ai", 256, SweepKind::Main, emit_table5},
      {"fig7", "potential-speedup coordinates, bricks codegen",
       "bench_fig7_potential_speedup", 256, SweepKind::Main, emit_fig7},
      {"mixbench", "mixbench-derived empirical Rooflines per platform",
       "bench_mixbench_roofline", 256, SweepKind::Rooflines, emit_mixbench},
      {"check", "brickcheck rollup over the full sweep",
       "", 256, SweepKind::Main, emit_check},
      {"lint", "brickperf static cost model vs measured counters",
       "", 256, SweepKind::Main, emit_lint},
      {"ablation_codegen", "codegen optimisation ablation",
       "bench_ablation_codegen", 256, SweepKind::None, emit_ablation_codegen},
      {"ablation_brickshape", "brick-shape autotuning sweep",
       "bench_ablation_brickshape", 128, SweepKind::None,
       emit_ablation_brickshape},
      {"cpu_crossplatform", "CPU+GPU portability (SKX, KNL, A100)",
       "bench_cpu_crossplatform", 128, SweepKind::Cpu,
       emit_cpu_crossplatform},
      {"pvc_subgroup", "PVC sub-group width study: 16 vs 32",
       "bench_pvc_subgroup", 192, SweepKind::None, emit_pvc_subgroup},
  };
  return registry;
}

const Experiment* find_experiment(const std::string& name) {
  for (const auto& exp : experiment_registry())
    if (exp.name == name) return &exp;
  return nullptr;
}

// --- Legacy shim -------------------------------------------------------------

int run_legacy_shim(const std::string& name, int argc,
                    const char* const* argv) {
  const Experiment* exp = find_experiment(name);
  BRICKSIM_ASSERT(exp != nullptr, "unregistered experiment: " + name);
  const std::optional<SweepConfig> config =
      sweep_config_from_cli(argc, argv, exp->default_n);
  if (!config) return 0;  // --help: printed and handled
  std::cerr << "note: " << exp->legacy_binary
            << " is a deprecated alias for `bricksim run " << name
            << "` and will be removed next release (the driver shares one "
               "cached sweep across experiments).\n";
  SweepProvider provider("");  // shims never touch the persistent cache
  ExperimentContext ctx(*config, &provider, &std::cout);
  try {
    exp->emit(ctx);
  } catch (const std::exception& e) {
    std::cerr << "bricksim: error: experiment " << name << " failed: "
              << e.what() << "\n";
    return 1;
  }
  // Isolated per-config failures render as holes; signal them like the
  // driver does (exit 3 = completed with failures).
  return provider.all_failures().empty() ? 0 : 3;
}

// --- Driver ------------------------------------------------------------------

namespace {

std::string usage_text() {
  std::ostringstream os;
  os << "bricksim: every paper artifact from one cached sweep.\n"
     << "\n"
     << "usage: bricksim <command> [experiment...] [--flag value]...\n"
     << "\n"
     << "commands:\n"
     << "  list [--json]  list the registered experiments (--json emits a\n"
     << "                 machine-readable array)\n"
     << "  run <name...>  run the named experiments\n"
     << "  all            run every registered experiment\n"
     << "  serve          long-running sweep service over a local socket\n"
     << "                 (see `bricksim serve --help`; query/loadtest are\n"
     << "                 its client commands)\n"
     << "  doctor         scan the cache for stale/corrupt entries\n"
     << "                 (--prune repairs: quarantines corrupt entries,\n"
     << "                 deletes stale and quarantined ones)\n"
     << "\n"
     << "run/all accept the sweep flags (--n, --jobs, --progress, --csv,\n"
     << "--check, --engine) plus:\n"
     << "  --out DIR       results directory (default results/run); each\n"
     << "                  experiment writes output.txt + tables.json, and\n"
     << "                  the run writes run_summary.json\n"
     << "  --cache-dir DIR sweep/artifact cache (default $BRICKSIM_CACHE_DIR\n"
     << "                  or results/cache)\n"
     << "  --no-cache      disable reading and writing the cache\n"
     << "  --resume        replay checkpoint shards an interrupted or\n"
     << "                  degraded sweep left behind, bit-identically;\n"
     << "                  only the remainder is simulated\n"
     << "  --fault-inject SPEC  arm deterministic fault injection (also:\n"
     << "                  $BRICKSIM_FAULT_INJECT), e.g.\n"
     << "                  'seed=7,launch[A100/CUDA 7pt bricks codegen]@1';\n"
     << "                  see DESIGN.md \"Fault tolerance\"\n"
     << "\n"
     << "A run whose sweep had isolated per-config failures still writes\n"
     << "every artifact it can (failed cells render as FAILED) and exits 3;\n"
     << "run_summary.json names each failure.  SIGINT/SIGTERM during a run\n"
     << "drains cooperatively: in-progress configs finish and checkpoint,\n"
     << "the rest are skipped, and the driver exits 128+signo with resume\n"
     << "shards intact (`--resume` picks up where it stopped).\n"
     << "\n"
     << "Without --n each experiment uses its own default domain (see\n"
     << "`bricksim list`).  Experiment stdout is byte-identical to the\n"
     << "deprecated bench_* binaries.\n";
  return os.str();
}

void run_list(std::ostream& os) {
  Table t({"Experiment", "Sweep", "Default n", "Deprecated alias", "Title"});
  for (const auto& exp : experiment_registry()) {
    // The aligned table renders SweepKind::None as "-" (historical); the
    // JSON listing uses the stable sweep_kind_name spelling.
    const char* kind =
        exp.sweep == SweepKind::None ? "-" : sweep_kind_name(exp.sweep);
    t.add_row({exp.name, kind, std::to_string(exp.default_n),
               exp.legacy_binary.empty() ? "-" : exp.legacy_binary,
               exp.title});
  }
  t.print(os);
}

/// `bricksim list --json`: the machine-readable registry listing the serve
/// clients and scripts consume -- one object per experiment, in emission
/// order, mirroring the aligned table's content.
void run_list_json(std::ostream& os) {
  json::Value arr = json::Value::array();
  for (const auto& exp : experiment_registry()) {
    json::Value v = json::Value::object();
    v["name"] = exp.name;
    v["sweep"] = sweep_kind_name(exp.sweep);
    v["default_n"] = exp.default_n;
    v["legacy_alias"] = exp.legacy_binary;
    v["title"] = exp.title;
    arr.push_back(v);
  }
  os << arr.dump(1) << "\n";
}

void write_text_file(const std::filesystem::path& path,
                     const std::string& content) {
  std::ofstream out(path);
  BRICKSIM_REQUIRE(out.good(), "cannot write " + path.string());
  out << content;
  out.flush();
  BRICKSIM_REQUIRE(out.good(), "short write to " + path.string());
}

std::string artifact_path(const std::string& dir, const std::string& name,
                          const std::string& cfg_fp, bool csv) {
  return dir + "/artifact-" + name + (csv ? "-csv-" : "-") + cfg_fp +
         ".json";
}

/// The tables.json document of one experiment run.
json::Value tables_document(
    const std::string& name, const std::string& cfg_fp, bool csv,
    const std::vector<std::pair<std::string, Table>>& tables) {
  json::Value v = json::Value::object();
  v["schema"] = kSweepCacheSchema;
  v["experiment"] = name;
  v["config_fingerprint"] = cfg_fp;
  v["csv"] = csv;
  json::Value arr = json::Value::array();
  for (const auto& [id, t] : tables) {
    json::Value tv = json::Value::object();
    tv["id"] = id;
    const json::Value body = t.to_json();
    tv["header"] = body.at("header");
    tv["rows"] = body.at("rows");
    arr.push_back(tv);
  }
  v["tables"] = arr;
  return v;
}

/// Loads a matching artifact-cache entry.  Stale entries (foreign format,
/// wrong schema/fingerprint/mode) miss silently; corrupt ones are
/// quarantined with a warning like every other cache file.
std::optional<json::Value> load_artifact(const std::string& path,
                                         const std::string& name,
                                         const std::string& cfg_fp,
                                         bool csv) {
  CacheFileRead r = read_cache_file(path);
  switch (r.status) {
    case CacheFileRead::Status::Missing:
    case CacheFileRead::Status::Foreign:
      return std::nullopt;
    case CacheFileRead::Status::Corrupt:
      quarantine_cache_file(path, r.error);
      return std::nullopt;
    case CacheFileRead::Status::Ok:
      break;
  }
  try {
    json::Value v = json::Value::parse(r.body);
    if (v.at("schema").as_long() != kSweepCacheSchema ||
        v.at("experiment").as_string() != name ||
        v.at("config_fingerprint").as_string() != cfg_fp ||
        v.at("csv").as_bool() != csv || !v.contains("output"))
      return std::nullopt;
    return v;
  } catch (const Error& e) {
    quarantine_cache_file(path, std::string("undecodable artifact: ") +
                                    e.what());
    return std::nullopt;
  }
}

void store_artifact(const std::string& path, const json::Value& doc,
                    const std::string& output) {
  json::Value v = doc;
  v["output"] = output;
  write_cache_file(path, v.dump(1) + "\n");
}

}  // namespace

int driver_main(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int a = 1; a < argc; ++a) args.emplace_back(argv[a]);
  if (args.empty()) {
    std::cerr << usage_text();
    return 2;
  }
  const std::string command = args[0];
  if (command == "help" || command == "--help" || command == "-h") {
    std::cout << usage_text();
    return 0;
  }
  if (command == "list") {
    bool json_out = false;
    for (std::size_t a = 1; a < args.size(); ++a) {
      if (args[a] == "--json") {
        json_out = true;
      } else {
        std::cerr << "bricksim: list takes only --json, got '" << args[a]
                  << "'\n";
        return 2;
      }
    }
    if (json_out)
      run_list_json(std::cout);
    else
      run_list(std::cout);
    return 0;
  }
  if (command == "doctor") {
    std::vector<const char*> dargv{argv[0]};
    for (std::size_t a = 1; a < args.size(); ++a)
      dargv.push_back(argv[a + 1]);
    const Cli dcli(
        static_cast<int>(dargv.size()), dargv.data(),
        {{"cache-dir",
          "cache directory to scan (default $BRICKSIM_CACHE_DIR or "
          "results/cache)"},
         {"prune",
          "repair: quarantine corrupt entries, delete stale and "
          "quarantined ones"}});
    if (dcli.help_requested()) {
      std::cout << dcli.help("bricksim doctor");
      return 0;
    }
    return run_doctor(default_cache_dir(dcli.get("cache-dir", "")),
                      dcli.has("prune"), std::cout);
  }
  if (command != "run" && command != "all") {
    std::cerr << "bricksim: unknown command '" << command << "'\n\n"
              << usage_text();
    return 2;
  }

  // Experiment names are the leading non-flag tokens after the command;
  // everything from the first "--" token on is flags (so a flag value like
  // "--jobs 4" is never mistaken for a name).
  std::vector<std::string> names;
  std::size_t i = 1;
  for (; i < args.size() && args[i].rfind("--", 0) != 0; ++i)
    names.push_back(args[i]);
  std::vector<const char*> flag_argv{argv[0]};
  for (; i < args.size(); ++i) flag_argv.push_back(argv[i + 1]);

  auto known = sweep_cli_flags(256);
  known["n"] =
      "cubic domain extent (default: each experiment's own; the paper "
      "uses 512)";
  known["out"] = "results directory (default results/run)";
  known["cache-dir"] =
      "sweep/artifact cache directory (default $BRICKSIM_CACHE_DIR or "
      "results/cache)";
  known["no-cache"] = "disable reading and writing the cache";
  known["resume"] =
      "replay checkpoint shards from an interrupted run (bit-identical); "
      "simulate only the remainder";
  known["fault-inject"] =
      "deterministic fault-injection spec (also $BRICKSIM_FAULT_INJECT)";
  // Usage errors (unknown flag, malformed or out-of-range value) exit 2,
  // the Unix usage-error convention -- distinct from exit 1 (hard error)
  // and exit 3 (completed with isolated failures).
  std::optional<Cli> cli_opt;
  std::optional<SweepConfig> base_opt;
  try {
    cli_opt.emplace(static_cast<int>(flag_argv.size()), flag_argv.data(),
                    std::move(known));
    if (cli_opt->help_requested()) {
      std::cout << usage_text() << "\n"
                << cli_opt->help(std::string("bricksim ") + command);
      return 0;
    }
    base_opt = sweep_config_from_cli(*cli_opt, 256);
  } catch (const UsageError& e) {
    std::cerr << "bricksim: " << e.what() << "\n";
    return 2;
  }
  const Cli& cli = *cli_opt;
  SweepConfig base = *base_opt;
  // Cooperative shutdown: SIGINT/SIGTERM trip a flag the sweep workers
  // poll between configs (common/shutdown.h).  In-progress configs finish
  // and checkpoint; the driver then writes what it has and exits
  // 128+signo, leaving resume shards for `--resume`.
  install_shutdown_handler();
  base.cancel = &shutdown_flag();
  const bool explicit_n = cli.has("n");
  const std::string cache_dir =
      cli.has("no-cache") ? "" : default_cache_dir(cli.get("cache-dir", ""));
  const std::string out_dir = cli.get("out", "results/run");

  // Fault injection: the flag wins, the environment covers child processes
  // a test harness cannot reach.  ScopedPlan disarms on every exit path.
  std::string fault_spec = cli.get("fault-inject", "");
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("BRICKSIM_FAULT_INJECT");
        env != nullptr && env[0] != '\0') {
      fault_spec = env;
      std::cerr << "bricksim: note: fault injection armed from "
                   "BRICKSIM_FAULT_INJECT (" << fault_spec << ")\n";
    }
  }
  std::optional<fault::ScopedPlan> fault_plan;
  if (!fault_spec.empty())
    fault_plan.emplace(fault::FaultPlan::parse(fault_spec));
  const long quarantined_before = quarantine_count();

  if (command == "all") {
    BRICKSIM_REQUIRE(names.empty(),
                     "`bricksim all` takes no experiment names");
    for (const auto& exp : experiment_registry()) names.push_back(exp.name);
  }
  BRICKSIM_REQUIRE(!names.empty(),
                   "`bricksim run` needs at least one experiment name "
                   "(see `bricksim list`)");
  for (const auto& name : names)
    BRICKSIM_REQUIRE(find_experiment(name) != nullptr,
                     "unknown experiment: " + name +
                         " (see `bricksim list`)");

  SweepProvider provider(cache_dir, cli.has("resume"));
  json::Value fps = json::Value::object();
  json::Value statuses = json::Value::object();
  std::vector<std::pair<std::string, std::string>> emit_failures;
  // Whether the experiment's sweep (if any) ran degraded under this
  // provider -- checked after emitting, when the sweep has materialized.
  const auto sweep_degraded = [&provider](const Experiment& exp,
                                          const SweepConfig& config) {
    switch (exp.sweep) {
      case SweepKind::Main:
      case SweepKind::Rooflines:
        return provider.has_failures(SweepProvider::main_config(config));
      case SweepKind::Cpu:
        return provider.has_failures(SweepProvider::cpu_config(config));
      case SweepKind::None:
        return false;
    }
    return false;
  };
  std::vector<ExperimentTiming> timings;
  bool interrupted = false;
  for (const auto& name : names) {
    const auto t0 = std::chrono::steady_clock::now();
    const Experiment& exp = *find_experiment(name);
    SweepConfig config = base;
    if (!explicit_n)
      config.domain = {exp.default_n, exp.default_n, exp.default_n};
    // The main-config fingerprint identifies every driver-level knob that
    // can reach this experiment's output (domain, engine, check mode,
    // catalog, platform parameters): the artifact-cache key.
    const std::string cfg_fp =
        fingerprint(SweepProvider::main_config(config));
    fps[name] = cfg_fp;

    std::string text;
    json::Value doc;
    bool replayed = false;
    const std::string art_path =
        cache_dir.empty()
            ? std::string()
            : artifact_path(cache_dir, name, cfg_fp, config.csv);
    if (!cache_dir.empty()) {
      if (auto art = load_artifact(art_path, name, cfg_fp, config.csv)) {
        text = art->at("output").as_string();
        doc = json::Value::object();
        for (const auto& [key, val] : art->items())
          if (key != "output") doc[key] = val;
        ++provider.stats().artifact_hits;
        replayed = true;
      }
    }
    std::string status = "ok";
    if (!replayed) {
      std::ostringstream oss;
      ExperimentContext ctx(config, &provider, &oss);
      try {
        if (fault::armed()) fault::throw_if(fault::Site::Emit, name);
        exp.emit(ctx);
        text = oss.str();
      } catch (const Interrupted& e) {
        // Not a failure: the run was deliberately cut short.  Keep the
        // partial text for diagnosis, skip the remaining experiments, and
        // exit 128+signo after the summary lands.
        status = "interrupted";
        interrupted = true;
        text = oss.str() + "\n[experiment " + name + " interrupted: " +
               e.what() + "]\n";
        std::cerr << "bricksim: " << e.what() << "\n";
      } catch (const std::exception& e) {
        // An emitter failure costs this experiment, not the run: keep the
        // partial text, mark it, and carry on to the next experiment.
        status = "failed";
        emit_failures.emplace_back(name, e.what());
        text = oss.str() + "\n[experiment " + name + " failed: " +
               e.what() + "]\n";
        std::cerr << "bricksim: error: experiment " << name << " failed: "
                  << e.what() << "; continuing\n";
      }
      doc = tables_document(name, cfg_fp, config.csv, ctx.tables());
      ++provider.stats().experiments_emitted;
      if (status == "ok" && sweep_degraded(exp, config)) status = "degraded";
      // Only clean output may enter the artifact cache: a cached FAILED
      // hole would replay bit-identically forever.
      if (!cache_dir.empty() && status == "ok")
        store_artifact(art_path, doc, text);
    }
    statuses[name] = status;
    timings.push_back(
        {name,
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count(),
         replayed});
    if (config.progress)
      std::cerr << "[bricksim] " << name << (replayed ? " (cached, " : " (")
                << cfg_fp << ")\n";

    std::cout << text << std::flush;
    const std::filesystem::path exp_dir =
        std::filesystem::path(out_dir) / name;
    std::filesystem::create_directories(exp_dir);
    write_text_file(exp_dir / "output.txt", text);
    write_text_file(exp_dir / "tables.json", doc.dump(1) + "\n");
    if (interrupted) break;
  }

  const CacheStats& stats = provider.stats();
  json::Value summary = json::Value::object();
  summary["schema"] = kSweepCacheSchema;
  summary["command"] = command;
  json::Value names_json = json::Value::array();
  for (const auto& name : names) names_json.push_back(name);
  summary["experiments"] = names_json;
  summary["csv"] = base.csv;
  summary["engine"] =
      base.engine == simt::Engine::Interp ? "interp" : "plan";
  summary["check_mode"] = analysis::check_mode_name(base.check_mode);
  summary["cache_dir"] = cache_dir;  // empty when caching is disabled
  summary["config_fingerprints"] = fps;
  summary["experiment_status"] = statuses;
  summary["interrupted"] = interrupted;
  // Every isolated failure, sweep-level (per-config identity) then
  // emitter-level, so a degraded run is fully diagnosable from the
  // summary alone.
  json::Value failures = json::Value::array();
  for (const auto& f : provider.all_failures()) {
    json::Value fv = json::Value::object();
    fv["experiment"] = "";  // sweep failures are shared across experiments
    fv["platform"] = f.platform;
    fv["stencil"] = f.stencil;
    fv["variant"] = f.variant;
    fv["site"] = f.site;
    fv["error"] = f.what;
    failures.push_back(fv);
  }
  for (const auto& [exp_name, what] : emit_failures) {
    json::Value fv = json::Value::object();
    fv["experiment"] = exp_name;
    fv["platform"] = "";
    fv["stencil"] = "";
    fv["variant"] = "";
    fv["site"] = "emit";
    fv["error"] = what;
    failures.push_back(fv);
  }
  summary["failures"] = failures;
  // Per-experiment wall clock (emit or artifact replay, including any
  // sweep the emitter materialized) -- how the cache's speedup and any
  // slow experiment are observable from the summary alone.
  json::Value timings_json = json::Value::array();
  double wall_seconds = 0;
  for (const auto& t : timings) {
    timings_json.push_back(to_json(t));
    wall_seconds += t.seconds;
  }
  summary["timings"] = timings_json;
  summary["wall_seconds"] = wall_seconds;
  json::Value cache = json::Value::object();
  cache["sweeps_simulated"] = stats.sweeps_simulated;
  cache["sweep_disk_hits"] = stats.sweep_disk_hits;
  cache["sweep_memo_hits"] = stats.sweep_memo_hits;
  cache["rooflines_computed"] = stats.rooflines_computed;
  cache["artifact_hits"] = stats.artifact_hits;
  cache["experiments_emitted"] = stats.experiments_emitted;
  cache["configs_simulated"] = stats.configs_simulated;
  cache["shards_written"] = stats.shards_written;
  cache["shards_resumed"] = stats.shards_resumed;
  cache["entries_quarantined"] =
      static_cast<long>(quarantine_count() - quarantined_before);
  // Broker-side service gauges: memo-pressure counters and request-latency
  // percentiles (serve/broker.h).  Zero under the CLI's default unlimited
  // memo, but populated the same way `bricksim serve`'s counters op is.
  {
    const serve::BrokerCounters bc = provider.broker()->counters();
    cache["memo_evictions"] = bc.memo_evictions;
    cache["memo_readmissions"] = bc.memo_readmissions;
    cache["p50_ms"] = bc.p50_ms;
    cache["p95_ms"] = bc.p95_ms;
    cache["p99_ms"] = bc.p99_ms;
  }
  summary["cache"] = cache;
  std::filesystem::create_directories(out_dir);
  write_text_file(std::filesystem::path(out_dir) / "run_summary.json",
                  summary.dump(1) + "\n");
  // 0 = clean; 3 = completed with isolated failures (artifacts written,
  // summary names each one); 128+signo = interrupted by SIGINT/SIGTERM
  // with resume shards intact.  Hard errors still throw out of main as 1.
  if (interrupted)
    return shutdown_exit_code() != 0 ? shutdown_exit_code() : 130;
  return failures.size() == 0 ? 0 : 3;
}

}  // namespace bricksim::harness
