#include "harness/doctor.h"

#include <algorithm>
#include <filesystem>
#include <ostream>

#include "common/error.h"
#include "common/json.h"
#include "common/table.h"
#include "harness/cachefile.h"
#include "harness/lease.h"
#include "harness/sweepcache.h"

namespace bricksim::harness {

namespace {

namespace fs = std::filesystem;

/// The cache-file kind from the filename, "" for files that are not ours.
std::string classify_kind(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name.size() > 8 && name.rfind(".corrupt") == name.size() - 8)
    return "quarantined";
  // Tmp images carry a unique ".tmp.<pid>.<seq>" suffix (cachefile.cpp);
  // the bare ".tmp" form is what pre-fix writers left behind.
  if ((name.size() > 4 && name.rfind(".tmp") == name.size() - 4) ||
      name.find(".tmp.") != std::string::npos)
    return "tmp";
  if (p.extension() != ".json") return "";
  if (name.rfind("sweep-", 0) == 0) return "sweep";
  if (name.rfind("artifact-", 0) == 0) return "artifact";
  if (name.rfind("shard-", 0) == 0) return "shard";
  if (name.rfind("roofline-", 0) == 0) return "roofline";
  if (name.rfind("lease-", 0) == 0) return "lease";
  return "";
}

/// The fingerprint a well-formed entry at `p` must carry: from the
/// filename for sweep entries, from the `shards-<fp>` parent directory
/// for shards; "" when the kind carries none we can cross-check cheaply.
std::string expected_fingerprint(const fs::path& p, const std::string& kind) {
  if (kind == "sweep") {
    const std::string stem = p.stem().string();  // sweep-<16hex>
    return stem.size() > 6 ? stem.substr(6) : "";
  }
  if (kind == "shard" || kind == "roofline") {
    const std::string parent = p.parent_path().filename().string();
    return parent.rfind("shards-", 0) == 0 ? parent.substr(7) : "";
  }
  return "";
}

/// Verifies one framed entry's body; returns {status, detail}.
std::pair<std::string, std::string> verify_entry(const fs::path& p,
                                                 const std::string& kind) {
  const CacheFileRead r = read_cache_file(p.string());
  switch (r.status) {
    case CacheFileRead::Status::Missing:
      return {"stale", "vanished mid-scan"};
    case CacheFileRead::Status::Foreign:
      return {"stale", "pre-checksum format (never read at this schema)"};
    case CacheFileRead::Status::Corrupt:
      return {"corrupt", r.error};
    case CacheFileRead::Status::Ok:
      break;
  }
  json::Value v;
  try {
    v = json::Value::parse(r.body);
  } catch (const Error& e) {
    return {"corrupt", std::string("body is not JSON: ") + e.what()};
  }
  try {
    if (v.at("schema").as_long() != kSweepCacheSchema)
      return {"stale",
              "schema " + std::to_string(v.at("schema").as_long()) +
                  " (current is " + std::to_string(kSweepCacheSchema) + ")"};
    const std::string want = expected_fingerprint(p, kind);
    if (!want.empty() && v.at("fingerprint").as_string() != want)
      return {"corrupt", "fingerprint " + v.at("fingerprint").as_string() +
                             " does not match the filename (" + want + ")"};
  } catch (const Error& e) {
    return {"corrupt", std::string("missing header field: ") + e.what()};
  }
  return {"ok", ""};
}

}  // namespace

DoctorReport doctor_scan(const std::string& dir, bool prune) {
  DoctorReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return report;  // empty cache is healthy

  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it)
    if (it->is_regular_file()) files.push_back(it->path());
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    DoctorEntry e;
    e.path = fs::relative(p, dir, ec).string();
    e.kind = classify_kind(p);
    if (e.kind.empty()) {
      e.kind = "other";
      e.status = "ignored";
      e.detail = "not a bricksim cache file; left untouched";
    } else if (e.kind == "quarantined") {
      ++report.quarantined;
      e.status = "quarantined";
      e.detail = "kept for inspection; prune deletes it";
      if (prune) {
        fs::remove(p, ec);
        ++report.pruned;
        e.detail = "deleted";
      }
    } else if (e.kind == "tmp") {
      e.status = "stale";
      e.detail = "interrupted write, never renamed into place";
    } else if (e.kind == "lease") {
      // Leases are plain JSON (harness/lease.h), not checksum-framed, so
      // never feed them to verify_entry.  A live lease is a healthy
      // daemon's claim -- report it and leave it alone even under
      // --prune; a stale or unreadable one is a dead daemon's litter.
      const auto info = read_lease(p.string());
      if (info && !info->stale) {
        e.status = "ok";
        e.detail = "live sweep lease held by " + info->owner;
      } else {
        e.status = "stale";
        e.detail = info ? "lease expired " +
                              std::to_string(info->age_ms - info->ttl_ms) +
                              "ms ago (owner " + info->owner + " presumed dead)"
                        : "unreadable lease record";
      }
    } else {
      std::tie(e.status, e.detail) = verify_entry(p, e.kind);
    }

    if (e.status == "ok") ++report.ok;
    if (e.status == "stale") {
      ++report.stale;
      if (prune) {
        fs::remove(p, ec);
        ++report.pruned;
        e.detail += " -- deleted";
      }
    }
    if (e.status == "corrupt") {
      ++report.corrupt;
      if (prune) {
        quarantine_cache_file(p.string(), e.detail);
        ++report.pruned;
        e.detail += " -- quarantined";
      }
    }
    report.entries.push_back(std::move(e));
  }
  return report;
}

int run_doctor(const std::string& dir, bool prune, std::ostream& os) {
  const DoctorReport report = doctor_scan(dir, prune);
  os << "bricksim doctor: " << dir
     << (prune ? " (prune)" : " (report only; --prune repairs)") << "\n\n";
  if (report.entries.empty()) {
    os << "empty cache, nothing to check.\n";
    return 0;
  }
  Table t({"Entry", "Kind", "Status", "Detail"});
  for (const auto& e : report.entries)
    t.add_row({e.path, e.kind, e.status, e.detail});
  t.print(os);
  os << "\n"
     << report.ok << " ok, " << report.stale << " stale, " << report.corrupt
     << " corrupt, " << report.quarantined << " quarantined";
  if (prune) os << "; " << report.pruned << " pruned";
  os << ".\n";
  return report.corrupt > 0 ? 3 : 0;
}

}  // namespace bricksim::harness
