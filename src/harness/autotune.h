// Brick-shape autotuning.
//
// BrickLib "with the addition of autotuning for brick dimension, layout, and
// ordering ... demonstrates performance portability" (paper Section 3), and
// the conclusion names brick-shape tuning as the route to the remaining
// potential speedup ("changing the size of the brick would expose more
// vector parallelism, amortize shuffling, and potentially improve data
// locality").  This module implements that tuner: it sweeps candidate
// (tile_j, tile_k) brick shapes for a stencil on a platform and picks the
// fastest simulated configuration.
#pragma once

#include <string>
#include <vector>

#include "codegen/codegen.h"
#include "dsl/stencil.h"
#include "model/launcher.h"
#include "model/progmodel.h"

namespace bricksim::harness {

struct TuneEntry {
  int tile_i_vectors = 1;  ///< brick i extent = tile_i_vectors * W
  int tile_j = 0;
  int tile_k = 0;
  double seconds = 0;
  double gflops = 0;        ///< normalised
  double ai = 0;            ///< normalised
  int spill_slots = 0;
  std::int64_t aligns = 0;  ///< shuffles per block
};

struct TuneResult {
  std::vector<TuneEntry> entries;  ///< every candidate tried, sweep order
  TuneEntry best;                  ///< minimal simulated time
  codegen::Options best_options() const {
    codegen::Options o;
    o.tile_i_vectors = best.tile_i_vectors;
    o.tile_j = best.tile_j;
    o.tile_k = best.tile_k;
    return o;
  }
};

/// Candidate (tile_j, tile_k) shapes for a stencil of radius r on vector
/// width W: powers of two in [max(r,1), 8] per axis, with the block kept
/// within 1024 work items (the portable thread-block limit).
std::vector<std::pair<int, int>> candidate_shapes(int radius, int simd_width);

/// Sweeps all candidates for (stencil, variant) on `platform` over `domain`
/// (counters-only) and returns every measurement plus the winner.  The
/// sweep covers (tile_j, tile_k) shapes AND the vector-folding factor in i
/// (1 or 2 vectors per brick row, block size permitting).  The domain must
/// be divisible by every candidate shape (multiples of 8 in j and k, and of
/// twice the platform vector width in i).
TuneResult autotune_brick_shape(const dsl::Stencil& stencil,
                                codegen::Variant variant,
                                const model::Platform& platform, Vec3 domain);

}  // namespace bricksim::harness
