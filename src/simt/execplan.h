// ExecPlan: the decode-once / replay-many execution engine.
//
// Every kernel launch runs the SAME straight-line ir::Program for up to
// millions of thread blocks; only the block coordinates (and hence memory
// addresses) differ.  The legacy interpreter re-walks the Program per block,
// re-resolving register offsets, re-folding constants, and re-deriving every
// MemRef's address arithmetic each time.  ExecPlan hoists all of that
// kernel-invariant work into a single decode pass (the structure cycle-level
// simulators use: decode once, replay many):
//
//  * one flat, cache-friendly PlanInst stream (56 bytes/inst) replaces the
//    Program walk -- register operands are pre-scaled element offsets,
//    constants are pre-folded values, per-instruction issue costs are
//    implicit in the opcode;
//  * array MemRefs collapse to an affine address template: the block-
//    invariant element index `idx0` plus a per-(block, grid) offset computed
//    once per block from precomputed strides (base + block_offset at replay
//    time).  Brick MemRefs keep only the adjacency code and in-brick offset;
//    spill MemRefs a pre-scaled slot offset;
//  * array bounds are validated once at decode time over the whole launch
//    extent (the corner blocks), so the replay loop carries no per-access
//    assertions;
//  * functional register/spill scratch is one arena allocated per replay and
//    reused across blocks (ir::Program::verify() rejects use-before-def, so
//    no per-block re-zeroing is needed).
//
// Replay preserves the interpreter's observable behaviour EXACTLY: the same
// resident-block scheduling (kSlice-instruction round-robin slices, so the
// shared L2 sees the identical interleaved access stream), the same counter
// updates, the same functional arithmetic.  Reports are bit-identical to
// Engine::Interp at every --jobs count; tests/test_execplan.cpp enforces
// this across the paper catalog.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "memsim/hierarchy.h"
#include "simt/machine.h"

namespace bricksim::simt {

/// The set of distinct DRAM activation granules one thread block touched
/// with DRAM-reaching accesses (compulsory misses only, so small), for the
/// page-locality model.  A sorted-insert vector: dedup costs O(log n) per
/// probe instead of the O(n) linear scan it replaces, and the storage is a
/// single contiguous buffer reused across blocks.
class PageSet {
 public:
  void insert(std::uint64_t key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) keys_.insert(it, key);
  }
  std::size_t size() const { return keys_.size(); }
  void clear() { keys_.clear(); }

 private:
  std::vector<std::uint64_t> keys_;
};

/// A kernel pre-decoded for replay.  Construction performs every check the
/// interpreter runs (program verification, launch-shape preconditions,
/// whole-launch array bounds); replay() then executes blocks against a
/// memory hierarchy.  The Kernel (and its Program and grid storage) must
/// outlive the plan.
class ExecPlan {
 public:
  ExecPlan(const Kernel& kernel, const arch::GpuArch& arch, ExecMode mode);

  /// Runs every block of the launch against `hier` (cold caches) and
  /// returns the report.  Bit-identical to Machine's legacy interpreter.
  KernelReport replay(memsim::MemoryHierarchy& hier) const;

  /// replay() with the block grid sharded across `shards` worker threads,
  /// returning a report bit-identical to replay() at every shard count.
  ///
  /// The replay schedule is static: resident slot s always executes on core
  /// s % num_cores, so partitioning the cores into contiguous ranges also
  /// partitions the slots (and with them the per-core L1s, issue counters,
  /// and functional arenas) into independent shards.  Each shard runs the
  /// usual replay loop against a private memsim::L1Shard (phase 1),
  /// recording the L2-bound lines it would have sent on as order-tagged
  /// events; the events are then k-way merged by schedule order and applied
  /// serially to `hier`'s shared L2 (phase 2), reproducing the exact access
  /// sequence -- and therefore the exact hit/miss/writeback stream -- of
  /// the serial replay.  Waves are processed in segments to bound the
  /// buffered event volume.  `shards <= 1` (after clamping to the number of
  /// cores the schedule uses) falls back to replay().
  KernelReport replay_sharded(memsim::MemoryHierarchy& hier,
                              int shards) const;

  ExecMode mode() const { return mode_; }
  /// Replay-stream length: all instructions in Functional mode, memory
  /// instructions only in CountersOnly mode (ALU costs are per-block
  /// aggregates there, exactly like the interpreter's fast path).
  std::size_t num_insts() const { return insts_.size(); }

  /// Replay opcode: ir::Op split by address space so the replay switch
  /// dispatches without re-testing MemRef fields.
  enum class PKind : std::uint8_t {
    LoadArray,
    LoadBrick,
    LoadSpill,
    StoreArray,
    StoreBrick,
    StoreSpill,
    Align,
    AddV,
    MulV,
    FmaV,
    MulC,
    FmaC,
    SetC,
    Zero,
    IOp,
  };

  /// One pre-decoded instruction.  Register operands are element offsets
  /// (vreg * W) into the block's register arena; `cv` is the folded
  /// constant; memory templates are resolved down to block-invariant parts.
  struct PlanInst {
    PKind kind = PKind::Zero;
    std::uint8_t grid = 0;       ///< grid slot (memory ops)
    std::uint8_t nbr_code = 13;  ///< brick adjacency code (13 = self)
    bool bypass_candidate = false;  ///< vectorized array load (L2 bypass)
    std::int32_t shift_or_iops = 0;
    std::uint32_t dst = 0, a = 0, b = 0, c = 0;
    double cv = 0;
    std::int64_t idx0 = 0;      ///< array: invariant index; brick: in-brick
                                ///< offset; spill: slot * W
    std::uint64_t row_key0 = 0; ///< array: invariant row-key part
  };

  /// Per-grid launch-invariant binding data, flattened out of GridBinding.
  struct GridPlan {
    std::uint64_t base = 0;
    bElem* data = nullptr;
    // Array layout: element strides of one block step per axis.
    std::int64_t bi = 0, bj = 0, bk = 0;
    // Brick layout.
    const std::uint32_t* adjacency = nullptr;
    const std::uint32_t* block_to_brick = nullptr;
    std::int64_t elems_per_brick = 0;
  };

  /// CountersOnly per-block ALU aggregates (identical for every block);
  /// all zero in Functional mode, where ALU work replays per instruction.
  struct AluAggregates {
    double fp_lanes = 0;
    double int_lanes = 0;
    double shuffle_lanes = 0;
    std::uint64_t flops = 0;
    std::uint64_t warp_insts = 0;

    friend bool operator==(const AluAggregates&, const AluAggregates&) =
        default;
  };

  // Decode-product introspection, consumed by analysis::verify_plan (the
  // --verify-plan differential gate) and the decode-mutation tests.
  int vec_width() const { return W_; }
  std::uint32_t vec_bytes() const { return vec_bytes_; }
  int num_vregs() const { return num_vregs_; }
  int num_spill_slots() const { return num_spill_slots_; }
  const std::vector<PlanInst>& insts() const { return insts_; }
  const std::vector<GridPlan>& grids() const { return grids_; }
  const AluAggregates& alu() const { return alu_; }

  // Test-only mutable views: the decode-mutation suite corrupts a decoded
  // plan in place to prove the differential verifier rejects it.  Nothing
  // in the simulator mutates a plan after construction.
  std::vector<PlanInst>& mutable_insts() { return insts_; }
  std::vector<GridPlan>& mutable_grids() { return grids_; }
  AluAggregates& mutable_alu() { return alu_; }

 private:
  const Kernel* kernel_;
  const arch::GpuArch* arch_;
  ExecMode mode_;
  int W_ = 0;
  std::uint32_t vec_bytes_ = 0;   ///< W * kElemBytes
  std::uint64_t vec_mask_ = 0;    ///< vec_bytes_ - 1 when a power of two
  int num_vregs_ = 0;
  int num_spill_slots_ = 0;
  std::vector<PlanInst> insts_;
  std::vector<GridPlan> grids_;
  AluAggregates alu_;
};

}  // namespace bricksim::simt
