// ExecPlan: the decode-once / replay-many execution engine.
//
// Every kernel launch runs the SAME straight-line ir::Program for up to
// millions of thread blocks; only the block coordinates (and hence memory
// addresses) differ.  The legacy interpreter re-walks the Program per block,
// re-resolving register offsets, re-folding constants, and re-deriving every
// MemRef's address arithmetic each time.  ExecPlan hoists all of that
// kernel-invariant work into a single decode pass (the structure cycle-level
// simulators use: decode once, replay many):
//
//  * one flat, cache-friendly PlanInst stream (56 bytes/inst) replaces the
//    Program walk -- register operands are pre-scaled element offsets,
//    constants are pre-folded values, per-instruction issue costs are
//    implicit in the opcode;
//  * array MemRefs collapse to an affine address template: the block-
//    invariant element index `idx0` plus a per-(block, grid) offset computed
//    once per block from precomputed strides (base + block_offset at replay
//    time).  Brick MemRefs keep only the adjacency code and in-brick offset;
//    spill MemRefs a pre-scaled slot offset;
//  * array bounds are validated once at decode time over the whole launch
//    extent (the corner blocks), so the replay loop carries no per-access
//    assertions;
//  * functional register/spill scratch is one arena allocated per replay and
//    reused across blocks (ir::Program::verify() rejects use-before-def, so
//    no per-block re-zeroing is needed).
//
// Replay preserves the interpreter's observable behaviour EXACTLY: the same
// resident-block scheduling (kSlice-instruction round-robin slices, so the
// shared L2 sees the identical interleaved access stream), the same counter
// updates, the same functional arithmetic.  Reports are bit-identical to
// Engine::Interp at every --jobs count; tests/test_execplan.cpp enforces
// this across the paper catalog.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "memsim/hierarchy.h"
#include "simt/machine.h"

namespace bricksim::simt {

/// The set of distinct DRAM activation granules one thread block touched
/// with DRAM-reaching accesses (compulsory misses only, so small), for the
/// page-locality model.  A sorted-insert vector: dedup costs O(log n) per
/// probe instead of the O(n) linear scan it replaces, and the storage is a
/// single contiguous buffer reused across blocks.
class PageSet {
 public:
  void insert(std::uint64_t key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) keys_.insert(it, key);
  }
  std::size_t size() const { return keys_.size(); }
  void clear() { keys_.clear(); }

 private:
  std::vector<std::uint64_t> keys_;
};

/// A kernel pre-decoded for replay.  Construction performs every check the
/// interpreter runs (program verification, launch-shape preconditions,
/// whole-launch array bounds); replay() then executes blocks against a
/// memory hierarchy.  The Kernel (and its Program and grid storage) must
/// outlive the plan.
class ExecPlan {
 public:
  ExecPlan(const Kernel& kernel, const arch::GpuArch& arch, ExecMode mode);

  /// Runs every block of the launch against `hier` (cold caches) and
  /// returns the report.  Bit-identical to Machine's legacy interpreter.
  /// Dispatches CountersOnly plans to the SoA engine (batched address
  /// generation + congruence-class lumping, see replay notes below) and
  /// Functional plans to the reference AoS engine.
  KernelReport replay(memsim::MemoryHierarchy& hier) const;

  /// The original AoS replay loop, kept as the Functional engine and as the
  /// reference the SoA engine is differentially tested against (the
  /// SoA-vs-AoS bit-equality suite in tests/test_execplan.cpp).  Works in
  /// both modes; report bit-identical to replay() by construction.
  KernelReport replay_reference(memsim::MemoryHierarchy& hier) const;

  /// replay() with the block grid sharded across `shards` worker threads,
  /// returning a report bit-identical to replay() at every shard count.
  ///
  /// The replay schedule is static: resident slot s always executes on core
  /// s % num_cores, so partitioning the cores into contiguous ranges also
  /// partitions the slots (and with them the per-core L1s, issue counters,
  /// and functional arenas) into independent shards.  Each shard runs the
  /// usual replay loop against a private memsim::L1Shard (phase 1),
  /// recording the L2-bound lines it would have sent on as order-tagged
  /// events; the events are then k-way merged by schedule order and applied
  /// serially to `hier`'s shared L2 (phase 2), reproducing the exact access
  /// sequence -- and therefore the exact hit/miss/writeback stream -- of
  /// the serial replay.  Waves are processed in segments to bound the
  /// buffered event volume.  `shards <= 1` (after clamping to the number of
  /// cores the schedule uses) falls back to replay().
  KernelReport replay_sharded(memsim::MemoryHierarchy& hier,
                              int shards) const;

  ExecMode mode() const { return mode_; }
  /// The architecture this plan was decoded for (verify_plan re-derives the
  /// congruence-lump eligibility from it).
  const arch::GpuArch& arch() const { return *arch_; }
  /// Replay-stream length: all instructions in Functional mode, memory
  /// instructions only in CountersOnly mode (ALU costs are per-block
  /// aggregates there, exactly like the interpreter's fast path).
  std::size_t num_insts() const { return insts_.size(); }

  /// Replay opcode: ir::Op split by address space so the replay switch
  /// dispatches without re-testing MemRef fields.
  enum class PKind : std::uint8_t {
    LoadArray,
    LoadBrick,
    LoadSpill,
    StoreArray,
    StoreBrick,
    StoreSpill,
    Align,
    AddV,
    MulV,
    FmaV,
    MulC,
    FmaC,
    SetC,
    Zero,
    IOp,
  };

  /// One pre-decoded instruction.  Register operands are element offsets
  /// (vreg * W) into the block's register arena; `cv` is the folded
  /// constant; memory templates are resolved down to block-invariant parts.
  struct PlanInst {
    PKind kind = PKind::Zero;
    std::uint8_t grid = 0;       ///< grid slot (memory ops)
    std::uint8_t nbr_code = 13;  ///< brick adjacency code (13 = self)
    bool bypass_candidate = false;  ///< vectorized array load (L2 bypass)
    std::int32_t shift_or_iops = 0;
    std::uint32_t dst = 0, a = 0, b = 0, c = 0;
    double cv = 0;
    std::int64_t idx0 = 0;      ///< array: invariant index; brick: in-brick
                                ///< offset; spill: slot * W
    std::uint64_t row_key0 = 0; ///< array: invariant row-key part
  };

  /// Per-grid launch-invariant binding data, flattened out of GridBinding.
  struct GridPlan {
    std::uint64_t base = 0;
    bElem* data = nullptr;
    // Array layout: element strides of one block step per axis.
    std::int64_t bi = 0, bj = 0, bk = 0;
    // Brick layout.
    const std::uint32_t* adjacency = nullptr;
    const std::uint32_t* block_to_brick = nullptr;
    std::int64_t elems_per_brick = 0;
  };

  /// CountersOnly per-block ALU aggregates (identical for every block);
  /// all zero in Functional mode, where ALU work replays per instruction.
  struct AluAggregates {
    double fp_lanes = 0;
    double int_lanes = 0;
    double shuffle_lanes = 0;
    std::uint64_t flops = 0;
    std::uint64_t warp_insts = 0;

    friend bool operator==(const AluAggregates&, const AluAggregates&) =
        default;
  };

  // --- Structure-of-arrays replay lanes -------------------------------
  //
  // The CountersOnly replay hot path runs over these parallel arrays
  // instead of the 56-byte PlanInst records: one u8 lane for dispatch
  // flags, one u32 lane selecting a per-block address addend, and one u64
  // lane holding the block-invariant part of the byte address (grid base +
  // pre-scaled invariant index).  Per block, addresses materialize in one
  // pass: addr[i] = tmpl[i] + addend[sel[i]], where the addend table is
  // rebuilt per block (array grids: block offset in bytes; brick grids:
  // resolved brick base in bytes, one entry per (grid, adjacency code)).

  /// Flag bits of SoaStream::flags.
  static constexpr std::uint8_t kSoaStore = 1;        ///< store semantics
  static constexpr std::uint8_t kSoaBrick = 2;        ///< brick page keys
  static constexpr std::uint8_t kSoaSpill = 4;        ///< scratch access
  static constexpr std::uint8_t kSoaBypassCand = 8;   ///< L2-bypass candidate
  static constexpr std::uint8_t kSoaGlobalLoad = 16;  ///< load latency charge

  /// The SoA mirror of insts_ (same length, index-aligned).  ALU lanes
  /// (Functional-mode plans only) carry zeroed address fields and the
  /// zero addend slot.
  struct SoaStream {
    std::vector<PKind> kind;
    std::vector<std::uint8_t> flags;
    std::vector<std::uint32_t> sel;       ///< per-block addend slot
    std::vector<std::uint64_t> tmpl;      ///< base + idx0 * 8 (bytes)
    std::vector<std::uint64_t> row_key0;  ///< array page-key invariant part
  };

  /// One brick addend-table entry to resolve per block: addend[sel] =
  /// brick_base_bytes(adjacent brick of `grid` via `code`).
  struct BrickSel {
    std::uint8_t grid = 0;
    std::uint8_t code = 13;
    std::uint32_t sel = 0;
  };

  /// Addend-table layout: [0, ngrids) array block offsets, then 27 slots
  /// per grid for brick (grid, code) bases, then one always-zero slot.
  std::uint32_t addend_slots() const {
    return static_cast<std::uint32_t>(grids_.size()) * 28 + 1;
  }
  std::uint32_t addend_zero_slot() const { return addend_slots() - 1; }

  const SoaStream& soa() const { return soa_; }
  const std::vector<BrickSel>& brick_sels() const { return brick_sels_; }

  // --- Block classes and congruence lumping ---------------------------
  //
  // Decode partitions the static block grid into interior blocks (brick
  // adjacency matches the uniform affine template derived from block 0;
  // array-only launches are all-interior) and corner blocks (shuffled or
  // boundary-irregular adjacency), and -- in CountersOnly mode -- detects
  // when whole groups of G consecutive blocks produce memory-event
  // sequences congruent up to a base-address shift of r * lump_delta_bytes
  // for group member r.  Eligible launches replay one leader per group;
  // the G-1 mates reuse the leader's window (shifted L2 events, replayed
  // per-core counter addends).  lump_factor() == 1 means every block takes
  // the general path.

  /// Congruence group width G (1 = lumping disabled for this plan).
  int lump_factor() const { return lump_G_; }
  /// Byte shift between adjacent group members' access streams.
  std::uint64_t lump_delta_bytes() const { return lump_delta_bytes_; }
  /// Blocks whose brick adjacency deviates from the affine template.
  std::uint64_t num_corner_blocks() const { return num_corner_; }
  /// True when block `blin` is a corner block (general addend resolution).
  bool block_is_corner(long blin) const {
    return !corner_.empty() &&
           (corner_[static_cast<std::size_t>(blin) >> 3] &
            (1u << (blin & 7))) != 0;
  }
  /// Canonical brick-id delta of adjacency `code` on `grid` (interior
  /// blocks satisfy adj[bid * 27 + code] == bid + canon).
  std::int64_t canon_delta(int grid, int code) const {
    return canon_.empty() ? 0
                          : canon_[static_cast<std::size_t>(grid) * 27 +
                                   static_cast<std::size_t>(code)];
  }

  // Decode-product introspection, consumed by analysis::verify_plan (the
  // --verify-plan differential gate) and the decode-mutation tests.
  int vec_width() const { return W_; }
  std::uint32_t vec_bytes() const { return vec_bytes_; }
  int num_vregs() const { return num_vregs_; }
  int num_spill_slots() const { return num_spill_slots_; }
  const std::vector<PlanInst>& insts() const { return insts_; }
  const std::vector<GridPlan>& grids() const { return grids_; }
  const AluAggregates& alu() const { return alu_; }

  // Test-only mutable views: the decode-mutation suite corrupts a decoded
  // plan in place to prove the differential verifier rejects it.  Nothing
  // in the simulator mutates a plan after construction.
  std::vector<PlanInst>& mutable_insts() { return insts_; }
  std::vector<GridPlan>& mutable_grids() { return grids_; }
  AluAggregates& mutable_alu() { return alu_; }
  SoaStream& mutable_soa() { return soa_; }
  int& mutable_lump_factor() { return lump_G_; }
  std::uint64_t& mutable_lump_delta_bytes() { return lump_delta_bytes_; }

 private:
  /// Builds the SoA lanes from the freshly decoded insts_.
  void build_soa();
  /// Corner classification + congruence-lump eligibility (CountersOnly).
  void analyze_blocks();
  /// Batched address generation: materializes block `blin`'s address,
  /// page-key, and bypass lanes (one entry per instruction) into the given
  /// arena rows, via the per-block addend table (scratch, addend_slots()
  /// entries).
  void fill_block_addresses(long blin, std::uint64_t* arow,
                            std::uint64_t* prow, std::uint8_t* brow,
                            std::uint64_t* addend) const;

  /// The SoA CountersOnly engines (serial and sharded).
  KernelReport replay_counters(memsim::MemoryHierarchy& hier) const;
  KernelReport replay_counters_sharded(memsim::MemoryHierarchy& hier,
                                       int nshards, int used_cores) const;
  /// The reference sharded loop (Functional engine).
  KernelReport replay_sharded_reference(memsim::MemoryHierarchy& hier,
                                        int nshards, int used_cores) const;

  const Kernel* kernel_;
  const arch::GpuArch* arch_;
  ExecMode mode_;
  int W_ = 0;
  std::uint32_t vec_bytes_ = 0;   ///< W * kElemBytes
  std::uint64_t vec_mask_ = 0;    ///< vec_bytes_ - 1 when a power of two
  int num_vregs_ = 0;
  int num_spill_slots_ = 0;
  std::vector<PlanInst> insts_;
  std::vector<GridPlan> grids_;
  AluAggregates alu_;

  SoaStream soa_;
  std::vector<BrickSel> brick_sels_;   ///< used (grid, code) addend entries
  std::vector<std::int64_t> canon_;    ///< ngrids * 27 affine deltas
  std::vector<std::uint8_t> corner_;   ///< per-block bitmap; empty = none
  std::uint64_t num_corner_ = 0;
  int lump_G_ = 1;
  std::uint64_t lump_delta_bytes_ = 0;
};

}  // namespace bricksim::simt
