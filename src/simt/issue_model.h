// Per-core issue-resource accounting and the timing finalization shared by
// the two execution engines (the legacy interpreter in machine.cpp and the
// ExecPlan replay in execplan.cpp).  Keeping the arithmetic in one place is
// what makes the engines' timing decompositions bit-identical by
// construction: both accumulate the same CoreUse fields and run the same
// max-of-bottlenecks expression in the same order.
#pragma once

#include <algorithm>
#include <vector>

#include "arch/arch.h"
#include "simt/machine.h"

namespace bricksim::simt::detail {

/// Per-core issue-resource accumulators (lanes / bytes / instructions).
///
/// All fields are doubles, but every addend is either integer-valued (lane
/// counts, line counts, sector bytes) or a single repeated constant
/// (W * shuffle_cost_mult, extra_cycles_per_load), so per-core totals depend
/// only on per-core addend counts, never on accumulation order -- the
/// property the block-interleaved engines and the parallel sweep rely on.
struct CoreUse {
  double fp_lanes = 0;
  double int_lanes = 0;
  double shuffle_lanes = 0;
  double l1_bytes = 0;
  double mem_insts = 0;
  double serial_cycles = 0;  ///< exposed-latency dead time (additive)
};

/// Fills the timing decomposition of `rep` from the finished traffic
/// counters and per-core issue usage (see DESIGN.md Section 5).
inline void finalize_timing(KernelReport& rep,
                            const std::vector<CoreUse>& cores,
                            const arch::GpuArch& arch, const Kernel& kernel) {
  const double bw =
      arch.achieved_bw(kernel.read_streams) * kernel.bw_derate;
  rep.t_hbm = bw > 0 ? static_cast<double>(rep.traffic.hbm_total()) / bw : 0;
  rep.t_l2 = static_cast<double>(rep.traffic.l2_read_bytes +
                                 rep.traffic.l2_write_bytes) /
             (arch.l2_gbytes_per_sec * 1e9);
  double worst_cycles = 0;
  for (const CoreUse& cu : cores) {
    double cyc = cu.fp_lanes / arch.fp64_lanes_per_cycle;
    cyc = std::max(cyc, cu.int_lanes / arch.int_lanes_per_cycle);
    cyc = std::max(cyc, cu.shuffle_lanes / arch.shuffle_lanes_per_cycle);
    cyc = std::max(cyc, cu.l1_bytes / arch.l1_bytes_per_cycle);
    cyc = std::max(cyc, cu.mem_insts / arch.mem_issue_per_cycle);
    cyc += cu.serial_cycles;  // exposed latency is dead time on top
    worst_cycles = std::max(worst_cycles, cyc);
  }
  rep.t_issue = worst_cycles / (arch.clock_ghz * 1e9);
  rep.seconds = std::max({rep.t_hbm, rep.t_l2, rep.t_issue});
}

}  // namespace bricksim::simt::detail
