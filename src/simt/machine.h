// The SIMT machine: executes vector-IR kernels on a simulated GPU.
//
// A kernel is an ir::Program (the straight-line body of one thread block)
// launched over a 3D grid of blocks.  The machine:
//
//  * dispatches blocks to cores round-robin, keeping
//    `max_resident_blocks_per_core * num_cores` blocks in flight and
//    interleaving their execution in fixed instruction slices -- so the
//    shared L2 observes the concurrent access stream a real GPU produces;
//  * resolves MemRefs to device byte addresses (array, brick-with-adjacency,
//    or per-block spill scratch) and drives memsim::MemoryHierarchy;
//  * in Functional mode also computes real double-precision values through
//    per-block vector register files, so generated kernels can be verified
//    bit-for-bit against scalar references;
//  * accumulates per-core issue-resource usage and produces a timing
//    decomposition: kernel time is the max of the HBM-bandwidth term, the
//    L2-bandwidth term, and the per-core issue bottleneck.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "arch/arch.h"
#include "common/types.h"
#include "ir/program.h"
#include "memsim/hierarchy.h"

namespace bricksim::simt {

enum class ExecMode {
  Functional,    ///< compute values + counters (tests, examples)
  CountersOnly,  ///< addresses/counters only (large benchmark sweeps)
};

/// Which execution engine runs the kernel.  Both produce bit-identical
/// KernelReports (functional values, traffic counters, cost totals); the
/// interpreter is kept for one release as the A/B baseline of the
/// equivalence tests and the --engine=interp|plan harness flag.
enum class Engine {
  Plan,    ///< decode-once/replay-many ExecPlan (default, fast)
  Interp,  ///< legacy per-block re-decoding interpreter
};

/// Binds one IR grid slot to a simulated device buffer.
///
/// Exactly one of the two layout descriptions is used, matching the Space of
/// the MemRefs that name this grid.  `data` optionally backs Functional
/// execution (may be null in CountersOnly mode).
struct GridBinding {
  std::uint64_t device_base = 0;  ///< device byte address of element 0

  // --- Array layout ---
  Vec3 padded{};  ///< allocated extents including ghost
  Vec3 ghost{};   ///< element offset of interior (0,0,0)

  // --- Brick layout ---
  int elems_per_brick = 0;
  std::span<const std::uint32_t> adjacency;       ///< [num_bricks * 27]
  std::span<const std::uint32_t> block_to_brick;  ///< [blocks.volume()]
  Vec3 brick_dims{};  ///< (BI = vec width, BJ, BK)

  // --- Functional backing store (host mirror of the device buffer) ---
  bElem* data = nullptr;
  std::size_t len = 0;
};

/// A lowered kernel plus everything needed to launch it.
struct Kernel {
  const ir::Program* program = nullptr;
  Vec3 blocks{};            ///< thread-block grid extents
  Vec3 tile{};              ///< elements per block: (W, TJ, TK)
  std::vector<GridBinding> grids;
  std::vector<double> constants;  ///< values of program constants

  // Launch attributes supplied by the programming-model lowering:
  int read_streams = 1;           ///< distinct read address streams
  double bw_derate = 1.0;         ///< achieved-bandwidth multiplier
  double shuffle_cost_mult = 1.0; ///< shuffle issue-cost multiplier
  bool bypass_l2_unaligned_vloads = false;  ///< MI250X/HIP lowering quirk
  bool streaming_stores = true;   ///< false => full-line stores still RMW
  /// Exposed memory latency per global load (cycles).  Zero when the
  /// compiler pipelines loads well; positive for lowerings that leave loads
  /// serialised on the accumulation chain (the paper's naive-SYCL kernels).
  double extra_cycles_per_load = 0;
};

/// Counters and timing decomposition for one kernel invocation.
struct KernelReport {
  memsim::Traffic traffic;

  std::uint64_t blocks_run = 0;
  std::uint64_t warp_insts = 0;     ///< total warp-wide instructions issued
  std::uint64_t flops_executed = 0; ///< FLOPs actually performed
  std::uint64_t spill_bytes = 0;    ///< scratch traffic included in L1 bytes

  // Timing components (seconds); seconds == the max of them.
  double t_hbm = 0;
  double t_l2 = 0;
  double t_issue = 0;   ///< slowest core's issue-bottleneck time
  double seconds = 0;

  /// Name of the binding component, for reports: "HBM", "L2" or "issue".
  const char* bottleneck() const {
    if (seconds == t_hbm) return "HBM";
    if (seconds == t_l2) return "L2";
    return "issue";
  }

  double gflops() const {
    return seconds > 0 ? static_cast<double>(flops_executed) / seconds / 1e9
                       : 0.0;
  }
  /// Empirical arithmetic intensity (FLOPs per HBM byte).
  double arithmetic_intensity() const {
    const auto bytes = traffic.hbm_total();
    return bytes > 0 ? static_cast<double>(flops_executed) /
                           static_cast<double>(bytes)
                     : 0.0;
  }

  /// Field-for-field equality (exact on the timing doubles): the ExecPlan
  /// engine promises reports bit-identical to the interpreter, and the
  /// equivalence tests compare through this.
  friend bool operator==(const KernelReport&, const KernelReport&) = default;
};

class ExecPlan;

class Machine {
 public:
  explicit Machine(const arch::GpuArch& arch);

  /// Runs `kernel` to completion with cold caches and returns its report.
  /// The default engine decodes the program into an ExecPlan and replays it
  /// per block (see execplan.h); Engine::Interp selects the legacy
  /// interpreter, which re-walks the ir::Program for every block.
  /// `shards > 1` replays the Plan engine's block grid across that many
  /// worker threads (ExecPlan::replay_sharded) with a bit-identical
  /// report; the interpreter has no sharded path and ignores it.
  KernelReport run(const Kernel& kernel, ExecMode mode,
                   Engine engine = Engine::Plan, int shards = 1);

  /// Post-decode gate: when set, run() hands every freshly decoded ExecPlan
  /// to the hook before replaying it (Engine::Plan only; Interp has no
  /// decode step).  The --verify-plan flag installs
  /// analysis::verify_plan/enforce_plan here -- a std::function so simt
  /// stays below analysis in the library layering.  A throwing hook aborts
  /// the launch.
  using PlanHook = std::function<void(const ExecPlan&, const Kernel&)>;
  void set_plan_hook(PlanHook hook) { plan_hook_ = std::move(hook); }

  const arch::GpuArch& gpu() const { return arch_; }
  const memsim::MemoryHierarchy& hierarchy() const { return hier_; }

 private:
  KernelReport run_interp(const Kernel& kernel, ExecMode mode);

  arch::GpuArch arch_;
  memsim::MemoryHierarchy hier_;
  PlanHook plan_hook_;
};

/// Assigns non-overlapping, line-aligned device address ranges to a sequence
/// of buffer sizes (a miniature device allocator for tests and launchers).
class DeviceAllocator {
 public:
  explicit DeviceAllocator(int line_bytes) : line_(line_bytes) {}
  std::uint64_t allocate(std::uint64_t bytes);

 private:
  int line_;
  std::uint64_t next_ = 1ull << 20;  // leave page zero unmapped
};

}  // namespace bricksim::simt
