#include "simt/machine.h"

#include <algorithm>

#include "common/error.h"
#include "simt/execplan.h"
#include "simt/issue_model.h"

namespace bricksim::simt {

namespace {

/// Execution state of one resident thread block (legacy interpreter).
struct BlockCtx {
  Vec3 bc{};
  long blin = -1;
  int core = 0;
  std::size_t pc = 0;
  bool active = false;
  std::vector<double> regs;    ///< Functional mode: num_vregs * W
  std::vector<double> spills;  ///< Functional mode: slots * W
  /// Distinct DRAM activation granules this block touched with
  /// DRAM-reaching accesses (small: compulsory misses only), for the
  /// page-locality model.  Array accesses are keyed by their logical
  /// (grid, j, k) row -- each row is a separate address stream / DRAM row
  /// regardless of domain size -- while brick and scratch accesses are
  /// keyed by 4 KiB page (a brick IS a page-sized contiguous granule).
  PageSet dram_pages;
};

Vec3 unlinearize(long b, const Vec3& n) {
  Vec3 v;
  v.i = static_cast<int>(b % n.i);
  v.j = static_cast<int>((b / n.i) % n.j);
  v.k = static_cast<int>(b / (static_cast<long>(n.i) * n.j));
  return v;
}

}  // namespace

std::uint64_t DeviceAllocator::allocate(std::uint64_t bytes) {
  // Align every buffer to 4 KiB so distinct grids never share a line.
  constexpr std::uint64_t kAlign = 4096;
  next_ = (next_ + kAlign - 1) / kAlign * kAlign;
  const std::uint64_t base = next_;
  next_ += (bytes + line_ - 1) / line_ * line_;
  return base;
}

Machine::Machine(const arch::GpuArch& arch) : arch_(arch), hier_(arch) {}

KernelReport Machine::run(const Kernel& kernel, ExecMode mode,
                          Engine engine, int shards) {
  if (engine == Engine::Interp) return run_interp(kernel, mode);
  ExecPlan plan(kernel, arch_, mode);
  if (plan_hook_) plan_hook_(plan, kernel);
  return shards > 1 ? plan.replay_sharded(hier_, shards)
                    : plan.replay(hier_);
}

KernelReport Machine::run_interp(const Kernel& kernel, ExecMode mode) {
  BRICKSIM_REQUIRE(kernel.program != nullptr, "kernel without a program");
  const ir::Program& prog = *kernel.program;
  prog.verify();
  BRICKSIM_REQUIRE(kernel.tile.i % prog.vec_width() == 0,
                   "tile inner extent must be a multiple of the program "
                   "vector width (vector folding)");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.grids.size()) >= prog.num_grids(),
                   "not enough grid bindings for the program");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.constants.size()) >=
                       prog.num_constants(),
                   "not enough constant values bound");

  hier_.reset();
  const int W = prog.vec_width();
  const long total_blocks = kernel.blocks.volume();
  BRICKSIM_REQUIRE(total_blocks > 0, "empty launch grid");
  const int resident = static_cast<int>(
      std::min<long>(arch_.max_resident_blocks(), total_blocks));
  const bool functional = mode == ExecMode::Functional;

  KernelReport rep;
  std::vector<detail::CoreUse> cores(arch_.num_cores);

  // Counters-only fast path: ALU/shuffle resource usage and FLOPs are
  // identical for every block (same straight-line program), so they are
  // tallied analytically per block and only memory instructions -- whose
  // cache behaviour genuinely differs -- are executed.
  std::vector<ir::Inst> mem_only;
  double alu_fp_lanes = 0, alu_int_lanes = 0, alu_shuffle_lanes = 0;
  std::uint64_t alu_flops = 0, alu_warp_insts = 0;
  if (!functional) {
    for (const ir::Inst& in : prog.insts()) {
      switch (in.op) {
        case ir::Op::VLoad:
        case ir::Op::VStore:
          mem_only.push_back(in);
          break;
        case ir::Op::VAlign:
          alu_shuffle_lanes += W * kernel.shuffle_cost_mult;
          ++alu_warp_insts;
          break;
        case ir::Op::VAddV:
        case ir::Op::VMulV:
        case ir::Op::VMulC:
          alu_fp_lanes += W;
          alu_flops += W;
          ++alu_warp_insts;
          break;
        case ir::Op::VFmaV:
        case ir::Op::VFmaC:
          alu_fp_lanes += W;
          alu_flops += 2ull * W;
          ++alu_warp_insts;
          break;
        case ir::Op::VSetC:
        case ir::Op::VZero:
          alu_fp_lanes += W;
          ++alu_warp_insts;
          break;
        case ir::Op::IOp:
          alu_int_lanes += static_cast<double>(in.iops) * W;
          alu_warp_insts += in.iops;
          break;
      }
    }
  }
  const auto& insts = functional ? prog.insts() : mem_only;

  std::vector<BlockCtx> slots(resident);
  long next_block = 0;
  int active = 0;

  auto assign = [&](BlockCtx& ctx) -> bool {
    if (next_block >= total_blocks) {
      ctx.active = false;
      return false;
    }
    ctx.blin = next_block++;
    ctx.bc = unlinearize(ctx.blin, kernel.blocks);
    ctx.core = static_cast<int>(ctx.blin % arch_.num_cores);
    ctx.pc = 0;
    ctx.active = true;
    ctx.dram_pages.clear();
    if (functional) {
      ctx.regs.assign(static_cast<std::size_t>(prog.num_vregs()) * W, 0.0);
      ctx.spills.assign(
          static_cast<std::size_t>(prog.num_spill_slots()) * W, 0.0);
    } else {
      detail::CoreUse& cu = cores[ctx.core];
      cu.fp_lanes += alu_fp_lanes;
      cu.int_lanes += alu_int_lanes;
      cu.shuffle_lanes += alu_shuffle_lanes;
      rep.flops_executed += alu_flops;
      rep.warp_insts += alu_warp_insts;
    }
    return true;
  };
  for (auto& s : slots)
    if (assign(s)) ++active;

  std::vector<double> tmp(W);  // VAlign scratch (dst may alias a source)

  // Resolves an array/brick MemRef to a device address, an optional
  // functional pointer, and the DRAM-activation-granule key (see BlockCtx).
  struct Resolved {
    std::uint64_t addr;
    bElem* ptr;
    std::uint64_t row_key;
  };
  auto resolve = [&](const BlockCtx& ctx, const ir::MemRef& m) -> Resolved {
    const GridBinding& g = kernel.grids[m.grid];
    if (m.space == ir::Space::Array) {
      const Vec3 e{g.ghost.i + ctx.bc.i * kernel.tile.i + m.di,
                   g.ghost.j + ctx.bc.j * kernel.tile.j + m.dj,
                   g.ghost.k + ctx.bc.k * kernel.tile.k + m.dk};
      const long idx = linear_index(e, g.padded);
      BRICKSIM_ASSERT(idx >= 0, "array access before the buffer");
      BRICKSIM_ASSERT(g.data == nullptr || idx + W <= static_cast<long>(g.len),
                      "array access out of bounds");
      const std::uint64_t row_key =
          (1ull << 62) | (static_cast<std::uint64_t>(m.grid) << 56) |
          (static_cast<std::uint64_t>(e.k) << 28) |
          static_cast<std::uint64_t>(e.j);
      return {g.device_base + static_cast<std::uint64_t>(idx) * kElemBytes,
              g.data ? g.data + idx : nullptr, row_key};
    }
    // Brick space.
    BRICKSIM_ASSERT(!g.block_to_brick.empty(), "brick binding without map");
    std::uint32_t bid = g.block_to_brick[static_cast<std::size_t>(ctx.blin)];
    const int code =
        (m.nbr_dk + 1) * 9 + (m.nbr_dj + 1) * 3 + (m.nbr_di + 1);
    if (code != 13) bid = g.adjacency[static_cast<std::size_t>(bid) * 27 + code];
    const long idx = static_cast<long>(bid) * g.elems_per_brick +
                     (static_cast<long>(m.vk) * g.brick_dims.j + m.vj) *
                         g.brick_dims.i +
                     static_cast<long>(m.vi) * W;
    const std::uint64_t addr =
        g.device_base + static_cast<std::uint64_t>(idx) * kElemBytes;
    return {addr, g.data ? g.data + idx : nullptr, addr >> 12};
  };

  constexpr int kSlice = 16;  // instructions per block per scheduling round

  while (active > 0) {
    for (auto& ctx : slots) {
      if (!ctx.active) continue;
      detail::CoreUse& cu = cores[ctx.core];
      const std::size_t end = std::min(insts.size(), ctx.pc + kSlice);
      for (; ctx.pc < end; ++ctx.pc) {
        const ir::Inst& in = insts[ctx.pc];
        switch (in.op) {
          case ir::Op::VLoad: {
            if (in.mem.space == ir::Space::Spill) {
              auto shape = hier_.scratch_access(W * kElemBytes, false);
              cu.mem_insts += shape.lines;
              cu.l1_bytes += shape.sectors * arch_.l1.sector_bytes;
              rep.spill_bytes += static_cast<std::uint64_t>(W) * kElemBytes;
              if (functional) {
                const double* src = &ctx.spills[static_cast<std::size_t>(
                                                    in.mem.slot) *
                                                W];
                std::copy(src, src + W, &ctx.regs[static_cast<std::size_t>(
                                                      in.dst) *
                                                  W]);
              }
              break;
            }
            auto [addr, ptr, row_key] = resolve(ctx, in.mem);
            const bool bypass = kernel.bypass_l2_unaligned_vloads &&
                                in.mem.vectorized &&
                                in.mem.space == ir::Space::Array &&
                                (addr % (static_cast<std::uint64_t>(W) *
                                         kElemBytes)) != 0;
            auto shape =
                hier_.access(ctx.core, addr, W * kElemBytes, false, bypass);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * arch_.l1.sector_bytes;
            cu.serial_cycles += kernel.extra_cycles_per_load;
            if (shape.dram_touch) ctx.dram_pages.insert(row_key);
            if (functional) {
              BRICKSIM_ASSERT(ptr != nullptr, "functional load without data");
              std::copy(ptr, ptr + W,
                        &ctx.regs[static_cast<std::size_t>(in.dst) * W]);
            }
            break;
          }
          case ir::Op::VStore: {
            if (in.mem.space == ir::Space::Spill) {
              auto shape = hier_.scratch_access(W * kElemBytes, true);
              cu.mem_insts += shape.lines;
              cu.l1_bytes += shape.sectors * arch_.l1.sector_bytes;
              rep.spill_bytes += static_cast<std::uint64_t>(W) * kElemBytes;
              if (functional) {
                const double* src =
                    &ctx.regs[static_cast<std::size_t>(in.a) * W];
                std::copy(src, src + W,
                          &ctx.spills[static_cast<std::size_t>(in.mem.slot) *
                                      W]);
              }
              break;
            }
            auto [addr, ptr, row_key] = resolve(ctx, in.mem);
            auto shape =
                hier_.access(ctx.core, addr, W * kElemBytes, true,
                             /*bypass_l2=*/false,
                             /*rmw_stores=*/!kernel.streaming_stores);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * arch_.l1.sector_bytes;
            if (shape.dram_touch) ctx.dram_pages.insert(row_key);
            if (functional) {
              BRICKSIM_ASSERT(ptr != nullptr, "functional store without data");
              const double* src = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              std::copy(src, src + W, ptr);
            }
            break;
          }
          case ir::Op::VAlign: {
            cu.shuffle_lanes += W * kernel.shuffle_cost_mult;
            if (functional) {
              const double* a = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              const double* b = &ctx.regs[static_cast<std::size_t>(in.b) * W];
              for (int l = 0; l < W; ++l) {
                const int s = in.shift + l;
                tmp[l] = s < W ? a[s] : b[s - W];
              }
              std::copy(tmp.begin(), tmp.end(),
                        &ctx.regs[static_cast<std::size_t>(in.dst) * W]);
            }
            break;
          }
          case ir::Op::VAddV: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double* a = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              const double* b = &ctx.regs[static_cast<std::size_t>(in.b) * W];
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              for (int l = 0; l < W; ++l) d[l] = a[l] + b[l];
            }
            break;
          }
          case ir::Op::VMulV: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double* a = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              const double* b = &ctx.regs[static_cast<std::size_t>(in.b) * W];
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              for (int l = 0; l < W; ++l) d[l] = a[l] * b[l];
            }
            break;
          }
          case ir::Op::VFmaV: {
            cu.fp_lanes += W;
            rep.flops_executed += 2ull * W;
            if (functional) {
              const double* a = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              const double* b = &ctx.regs[static_cast<std::size_t>(in.b) * W];
              const double* c = &ctx.regs[static_cast<std::size_t>(in.c) * W];
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              for (int l = 0; l < W; ++l) d[l] = a[l] * b[l] + c[l];
            }
            break;
          }
          case ir::Op::VMulC: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double cv = kernel.constants[in.cidx];
              const double* a = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              for (int l = 0; l < W; ++l) d[l] = a[l] * cv;
            }
            break;
          }
          case ir::Op::VFmaC: {
            cu.fp_lanes += W;
            rep.flops_executed += 2ull * W;
            if (functional) {
              const double cv = kernel.constants[in.cidx];
              const double* a = &ctx.regs[static_cast<std::size_t>(in.a) * W];
              const double* b = &ctx.regs[static_cast<std::size_t>(in.b) * W];
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              for (int l = 0; l < W; ++l) d[l] = a[l] + b[l] * cv;
            }
            break;
          }
          case ir::Op::VSetC: {
            cu.fp_lanes += W;
            if (functional) {
              const double cv = kernel.constants[in.cidx];
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              std::fill(d, d + W, cv);
            }
            break;
          }
          case ir::Op::VZero: {
            cu.fp_lanes += W;
            if (functional) {
              double* d = &ctx.regs[static_cast<std::size_t>(in.dst) * W];
              std::fill(d, d + W, 0.0);
            }
            break;
          }
          case ir::Op::IOp: {
            cu.int_lanes += static_cast<double>(in.iops) * W;
            rep.warp_insts += in.iops - 1;  // +1 added below like any inst
            break;
          }
        }
        rep.warp_insts += 1;
      }
      if (ctx.pc >= insts.size()) {
        // Page-locality overhead: each distinct activation granule this
        // block reached DRAM for costs row-activation / TLB-walk traffic.
        // Single-stream kernels are exempt: a sequential stream keeps its
        // DRAM row open and never pays the switch cost.
        if (kernel.read_streams > 1)
          hier_.charge_page_overhead(
              static_cast<double>(ctx.dram_pages.size()) *
              arch_.page_open_bytes);
        ++rep.blocks_run;
        if (!assign(ctx)) --active;
      }
    }
  }

  // Drain dirty output lines: an out-of-place stencil's stores all reach
  // HBM eventually, so end-of-kernel residue is counted as written back.
  hier_.flush_l2();
  rep.traffic = hier_.traffic();
  detail::finalize_timing(rep, cores, arch_, kernel);
  return rep;
}

}  // namespace bricksim::simt
