#include "simt/execplan.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>

#include "common/error.h"
#include "common/threadpool.h"
#include "simt/issue_model.h"

namespace bricksim::simt {

namespace {

/// Inverse of the block linearization (identical to the interpreter's).
Vec3 unlinearize(long b, const Vec3& n) {
  Vec3 v;
  v.i = static_cast<int>(b % n.i);
  v.j = static_cast<int>((b / n.i) % n.j);
  v.k = static_cast<int>(b / (static_cast<long>(n.i) * n.j));
  return v;
}

constexpr int kSlice = 16;  // instructions per block per scheduling round

/// log2(v) when v is a positive power of two, else -1 (division fallback);
/// mirrors the memsim hierarchy's address-splitting strategy exactly.
int pow2_shift(int v) {
  if (v <= 0 || (v & (v - 1)) != 0) return -1;
  int s = 0;
  while ((1 << s) != v) ++s;
  return s;
}

/// Address-splitting geometry of the CountersOnly SoA engines, hoisted out
/// of the per-access path.
struct Geom {
  int sector = 0, line = 0;
  int sshift = -1, lshift = -1;
  double sector_bytes = 0;          ///< double image for cu.l1_bytes
  std::uint32_t vb = 0;             ///< warp access width in bytes
  bool rmw = false;                 ///< !streaming_stores
  double extra_load_cycles = 0;     ///< kernel.extra_cycles_per_load

  std::uint64_t sector_of(std::uint64_t a) const {
    return sshift >= 0 ? a >> sshift
                       : a / static_cast<std::uint64_t>(sector);
  }
  std::uint64_t line_of(std::uint64_t a) const {
    return lshift >= 0 ? a >> lshift : a / static_cast<std::uint64_t>(line);
  }
};

Geom make_geom(const arch::GpuArch& arch, const Kernel& kernel,
               std::uint32_t vec_bytes) {
  Geom g;
  g.sector = arch.l1.sector_bytes;
  g.line = arch.l1.line_bytes;
  g.sshift = pow2_shift(g.sector);
  g.lshift = pow2_shift(g.line);
  g.sector_bytes = g.sector;
  g.vb = vec_bytes;
  g.rmw = !kernel.streaming_stores;
  g.extra_load_cycles = kernel.extra_cycles_per_load;
  return g;
}

// One leader window, recorded for replication onto its congruence-group
// mates: the per-access counter addends (replayed addend-by-addend so the
// mates' CoreUse accumulation sequences match the serial engine's exactly),
// the L2-bound line events (shifted per mate), and the window's L1-side
// traffic sums (all integer counters, so one scaled add per mate is exact).

/// L2-bound line op kinds; kWinBrickKey flags a page key that must be
/// recomputed from the shifted address (brick keys are addr >> 12 and a
/// sub-page shift can merge or split pages; array row keys are i-invariant).
constexpr std::uint8_t kWinLoad = 0, kWinStoreFull = 1, kWinStorePartial = 2,
                       kWinPageOnly = 3, kWinBrickKey = 4;

struct WinEvent {
  std::uint64_t line;  ///< L1-line address the L2 must walk
  std::uint64_t pk;    ///< page key (array) or raw access address (brick)
  std::uint8_t op;     ///< kWin* | optional kWinBrickKey
};

struct WinAcc {
  std::uint8_t lines, sectors, flags;  ///< flags: kSoaGlobalLoad / kSoaSpill
};

struct WindowScratch {
  std::vector<WinAcc> acc;
  std::vector<WinEvent> ev;
  memsim::Traffic t;           ///< window L1-side traffic sums
  std::uint64_t insts = 0;     ///< warp instruction count
  std::uint64_t spills = 0;    ///< spill instruction count
  void reset() {
    acc.clear();
    ev.clear();
    t = memsim::Traffic{};
    insts = 0;
    spills = 0;
  }
};

/// Executes insts [pc0, pc_end) of one congruence-group leader against its
/// private L1, updating the leader's CoreUse inline (identical addend
/// sequence to the general path) and recording everything a mate needs.
/// The L1 front half mirrors memsim::MemoryHierarchy::access exactly; the
/// L2-bound lines go to ws.ev instead of the shared L2.
void exec_lump_window(const ExecPlan::SoaStream& soa, std::size_t pc0,
                      std::size_t pc_end, const std::uint64_t* addr,
                      const std::uint64_t* pkey, const std::uint8_t* byp,
                      const Geom& g, memsim::L1Tags& l1, detail::CoreUse& cu,
                      WindowScratch& ws) {
  ws.reset();
  for (std::size_t i = pc0; i < pc_end; ++i) {
    const std::uint8_t f = soa.flags[i];
    ++ws.insts;
    if (f & ExecPlan::kSoaSpill) {
      const int sectors = static_cast<int>((g.vb + g.sector - 1) / g.sector);
      const int lines = static_cast<int>((g.vb + g.line - 1) / g.line);
      const std::uint64_t sb =
          static_cast<std::uint64_t>(sectors) * g.sector;
      if (f & ExecPlan::kSoaStore)
        ws.t.l1_write_bytes += sb;
      else
        ws.t.l1_read_bytes += sb;
      cu.mem_insts += lines;
      cu.l1_bytes += sectors * g.sector_bytes;
      ++ws.spills;
      ws.acc.push_back({static_cast<std::uint8_t>(lines),
                        static_cast<std::uint8_t>(sectors),
                        ExecPlan::kSoaSpill});
      continue;
    }
    const std::uint64_t a = addr[i];
    const std::uint64_t fl = g.line_of(a);
    const std::uint64_t ll = g.line_of(a + g.vb - 1);
    const int sectors =
        static_cast<int>(g.sector_of(a + g.vb - 1) - g.sector_of(a) + 1);
    const int lines = static_cast<int>(ll - fl + 1);
    const std::uint64_t sb = static_cast<std::uint64_t>(sectors) * g.sector;
    const std::uint8_t bbit = (f & ExecPlan::kSoaBrick) ? kWinBrickKey : 0;
    const std::uint64_t pk = (f & ExecPlan::kSoaBrick) ? a : pkey[i];
    if (f & ExecPlan::kSoaStore) {
      ws.t.l1_write_bytes += sb;
      const bool all_full =
          !g.rmw && a == fl * static_cast<std::uint64_t>(g.line) &&
          a + g.vb == (ll + 1) * static_cast<std::uint64_t>(g.line);
      for (std::uint64_t ln = fl; ln <= ll; ++ln) {
        const std::uint64_t line_begin = ln * g.line;
        const bool full = all_full ||
                          (!g.rmw && a <= line_begin &&
                           a + g.vb >= line_begin + g.line);
        l1.touch(ln);
        ws.t.l2_write_bytes += g.line;
        ws.ev.push_back(
            {ln, pk,
             static_cast<std::uint8_t>(
                 (full ? kWinStoreFull : kWinStorePartial) | bbit)});
      }
      cu.mem_insts += lines;
      cu.l1_bytes += sectors * g.sector_bytes;
      ws.acc.push_back({static_cast<std::uint8_t>(lines),
                        static_cast<std::uint8_t>(sectors), 0});
    } else {
      ws.t.l1_read_bytes += sb;
      for (std::uint64_t ln = fl; ln <= ll; ++ln) {
        if (l1.access(ln)) {
          ws.t.l1_hits++;
          continue;
        }
        ws.t.l1_misses++;
        ws.t.l2_read_bytes += g.line;
        if (byp[i]) {
          ws.t.hbm_read_bytes += g.line;
          ws.ev.push_back(
              {ln, pk, static_cast<std::uint8_t>(kWinPageOnly | bbit)});
        } else {
          ws.ev.push_back({ln, pk, static_cast<std::uint8_t>(kWinLoad | bbit)});
        }
      }
      cu.mem_insts += lines;
      cu.l1_bytes += sectors * g.sector_bytes;
      cu.serial_cycles += g.extra_load_cycles;
      ws.acc.push_back({static_cast<std::uint8_t>(lines),
                        static_cast<std::uint8_t>(sectors),
                        ExecPlan::kSoaGlobalLoad});
    }
  }
}

/// Replays a recorded window's counter addends onto a mate core, preserving
/// the exact per-access addition sequence (the repeated-constant fields of
/// CoreUse are order-insensitive only within a same-constant stream).
void apply_window_counters(const WindowScratch& ws, const Geom& g,
                           detail::CoreUse& cu) {
  for (const WinAcc& a : ws.acc) {
    cu.mem_insts += a.lines;
    cu.l1_bytes += a.sectors * g.sector_bytes;
    if (a.flags & ExecPlan::kSoaGlobalLoad)
      cu.serial_cycles += g.extra_load_cycles;
  }
}

/// Lowers a recorded window event op to the sharded replay's L2 op.
memsim::L2Op win_to_l2(std::uint8_t op) {
  switch (op & 3u) {
    case kWinStoreFull:
      return memsim::L2Op::StoreFull;
    case kWinStorePartial:
      return memsim::L2Op::StorePartial;
    case kWinPageOnly:
      return memsim::L2Op::PageOnly;
    default:
      return memsim::L2Op::Load;
  }
}

/// dst += src * mult.  All Traffic counters are u64, so replicating a
/// lumped window's L1-side traffic as one scaled add (instead of G separate
/// adds) is exact and order-free.
void add_scaled_traffic(memsim::Traffic& dst, const memsim::Traffic& src,
                        std::uint64_t mult) {
  dst.l1_read_bytes += src.l1_read_bytes * mult;
  dst.l1_write_bytes += src.l1_write_bytes * mult;
  dst.l2_read_bytes += src.l2_read_bytes * mult;
  dst.l2_write_bytes += src.l2_write_bytes * mult;
  dst.hbm_read_bytes += src.hbm_read_bytes * mult;
  dst.hbm_write_bytes += src.hbm_write_bytes * mult;
  dst.l1_hits += src.l1_hits * mult;
  dst.l1_misses += src.l1_misses * mult;
  dst.l2_hits += src.l2_hits * mult;
  dst.l2_misses += src.l2_misses * mult;
}

/// The thread pool a sharded replay drains its phase-1 segments through.
/// Cached per calling thread: the harness's two-level jobs x shards
/// scheduler calls replay_sharded thousands of times per sweep, and
/// re-spawning the workers each call was a measurable share of the sharded
/// overhead that PR 7's bench exposed.  One pool per (harness worker,
/// shard count) is exactly the transient pool's concurrency, made durable.
ThreadPool& cached_shard_pool(int threads) {
  thread_local std::unique_ptr<ThreadPool> pool;
  if (!pool || pool->jobs() != threads)
    pool = std::make_unique<ThreadPool>(threads);
  return *pool;
}

}  // namespace

ExecPlan::ExecPlan(const Kernel& kernel, const arch::GpuArch& arch,
                   ExecMode mode)
    : kernel_(&kernel), arch_(&arch), mode_(mode) {
  BRICKSIM_REQUIRE(kernel.program != nullptr, "kernel without a program");
  const ir::Program& prog = *kernel.program;
  prog.verify();
  BRICKSIM_REQUIRE(kernel.tile.i % prog.vec_width() == 0,
                   "tile inner extent must be a multiple of the program "
                   "vector width (vector folding)");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.grids.size()) >= prog.num_grids(),
                   "not enough grid bindings for the program");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.constants.size()) >=
                       prog.num_constants(),
                   "not enough constant values bound");
  const long total_blocks = kernel.blocks.volume();
  BRICKSIM_REQUIRE(total_blocks > 0, "empty launch grid");

  W_ = prog.vec_width();
  vec_bytes_ = static_cast<std::uint32_t>(W_) * kElemBytes;
  if ((vec_bytes_ & (vec_bytes_ - 1)) == 0) vec_mask_ = vec_bytes_ - 1;
  num_vregs_ = prog.num_vregs();
  num_spill_slots_ = prog.num_spill_slots();
  const bool functional = mode == ExecMode::Functional;

  // Grid templates: device base, functional pointer, and the element stride
  // of one block step along each launch axis (array layout; meaningless and
  // unused for brick grids, whose `padded` is zero).
  grids_.reserve(kernel.grids.size());
  for (const GridBinding& g : kernel.grids) {
    GridPlan gp;
    gp.base = g.device_base;
    gp.data = g.data;
    gp.bi = kernel.tile.i;
    gp.bj = static_cast<std::int64_t>(kernel.tile.j) * g.padded.i;
    gp.bk = static_cast<std::int64_t>(kernel.tile.k) * g.padded.i * g.padded.j;
    gp.adjacency = g.adjacency.data();
    gp.block_to_brick = g.block_to_brick.data();
    gp.elems_per_brick = g.elems_per_brick;
    grids_.push_back(gp);
  }

  // Largest per-grid block offset in the launch: the offset is monotone in
  // each block coordinate, so the (blocks - 1) corner bounds every block.
  auto max_block_offset = [&](const GridPlan& gp) {
    return static_cast<std::int64_t>(kernel.blocks.i - 1) * gp.bi +
           static_cast<std::int64_t>(kernel.blocks.j - 1) * gp.bj +
           static_cast<std::int64_t>(kernel.blocks.k - 1) * gp.bk;
  };

  auto decode_mem = [&](const ir::Inst& in, bool is_store) {
    const ir::MemRef& m = in.mem;
    PlanInst p;
    p.grid = static_cast<std::uint8_t>(m.grid);
    if (is_store)
      p.a = static_cast<std::uint32_t>(in.a) * W_;
    else
      p.dst = static_cast<std::uint32_t>(in.dst) * W_;
    if (m.space == ir::Space::Spill) {
      p.kind = is_store ? PKind::StoreSpill : PKind::LoadSpill;
      p.idx0 = static_cast<std::int64_t>(m.slot) * W_;
      insts_.push_back(p);
      return;
    }
    const GridBinding& g = kernel.grids[m.grid];
    if (functional)
      BRICKSIM_ASSERT(g.data != nullptr,
                      is_store ? "functional store without data"
                               : "functional load without data");
    if (m.space == ir::Space::Array) {
      p.kind = is_store ? PKind::StoreArray : PKind::LoadArray;
      p.bypass_candidate = !is_store && m.vectorized;
      const Vec3 e0{g.ghost.i + m.di, g.ghost.j + m.dj, g.ghost.k + m.dk};
      p.idx0 = linear_index(e0, g.padded);
      p.row_key0 = (1ull << 62) |
                   (static_cast<std::uint64_t>(m.grid) << 56) |
                   (static_cast<std::uint64_t>(e0.k) << 28) |
                   static_cast<std::uint64_t>(e0.j);
      // Whole-launch bounds check, hoisted out of the replay loop: block
      // offsets are non-negative and maximal at the far-corner block.
      BRICKSIM_ASSERT(p.idx0 >= 0, "array access before the buffer");
      BRICKSIM_ASSERT(g.data == nullptr ||
                          p.idx0 + max_block_offset(grids_[m.grid]) + W_ <=
                              static_cast<std::int64_t>(g.len),
                      "array access out of bounds");
    } else {
      p.kind = is_store ? PKind::StoreBrick : PKind::LoadBrick;
      BRICKSIM_ASSERT(!g.block_to_brick.empty(), "brick binding without map");
      BRICKSIM_ASSERT(static_cast<long>(g.block_to_brick.size()) >=
                          total_blocks,
                      "block-to-brick map smaller than the launch grid");
      p.nbr_code = static_cast<std::uint8_t>((m.nbr_dk + 1) * 9 +
                                             (m.nbr_dj + 1) * 3 +
                                             (m.nbr_di + 1));
      p.idx0 = (static_cast<std::int64_t>(m.vk) * g.brick_dims.j + m.vj) *
                   g.brick_dims.i +
               static_cast<std::int64_t>(m.vi) * W_;
    }
    insts_.push_back(p);
  };

  for (const ir::Inst& in : prog.insts()) {
    switch (in.op) {
      case ir::Op::VLoad:
        decode_mem(in, /*is_store=*/false);
        break;
      case ir::Op::VStore:
        decode_mem(in, /*is_store=*/true);
        break;
      case ir::Op::VAlign:
        if (functional) {
          PlanInst p;
          p.kind = PKind::Align;
          p.dst = static_cast<std::uint32_t>(in.dst) * W_;
          p.a = static_cast<std::uint32_t>(in.a) * W_;
          p.b = static_cast<std::uint32_t>(in.b) * W_;
          p.shift_or_iops = in.shift;
          insts_.push_back(p);
        } else {
          alu_.shuffle_lanes += W_ * kernel.shuffle_cost_mult;
          ++alu_.warp_insts;
        }
        break;
      case ir::Op::VAddV:
      case ir::Op::VMulV:
      case ir::Op::VMulC:
      case ir::Op::VFmaV:
      case ir::Op::VFmaC:
      case ir::Op::VSetC:
      case ir::Op::VZero:
        if (functional) {
          PlanInst p;
          switch (in.op) {
            case ir::Op::VAddV: p.kind = PKind::AddV; break;
            case ir::Op::VMulV: p.kind = PKind::MulV; break;
            case ir::Op::VFmaV: p.kind = PKind::FmaV; break;
            case ir::Op::VMulC: p.kind = PKind::MulC; break;
            case ir::Op::VFmaC: p.kind = PKind::FmaC; break;
            case ir::Op::VSetC: p.kind = PKind::SetC; break;
            default:            p.kind = PKind::Zero; break;
          }
          p.dst = static_cast<std::uint32_t>(in.dst) * W_;
          if (in.a >= 0) p.a = static_cast<std::uint32_t>(in.a) * W_;
          if (in.b >= 0) p.b = static_cast<std::uint32_t>(in.b) * W_;
          if (in.c >= 0) p.c = static_cast<std::uint32_t>(in.c) * W_;
          if (in.cidx >= 0) p.cv = kernel.constants[in.cidx];
          insts_.push_back(p);
        } else {
          alu_.fp_lanes += W_;
          ++alu_.warp_insts;
          if (in.op == ir::Op::VAddV || in.op == ir::Op::VMulV ||
              in.op == ir::Op::VMulC)
            alu_.flops += W_;
          else if (in.op == ir::Op::VFmaV || in.op == ir::Op::VFmaC)
            alu_.flops += 2ull * W_;
        }
        break;
      case ir::Op::IOp:
        if (functional) {
          PlanInst p;
          p.kind = PKind::IOp;
          p.shift_or_iops = in.iops;
          insts_.push_back(p);
        } else {
          alu_.int_lanes += static_cast<double>(in.iops) * W_;
          alu_.warp_insts += in.iops;
        }
        break;
    }
  }

  build_soa();
  if (!functional) analyze_blocks();
}

void ExecPlan::build_soa() {
  const std::size_t n = insts_.size();
  soa_.kind.resize(n);
  soa_.flags.assign(n, 0);
  soa_.sel.assign(n, addend_zero_slot());
  soa_.tmpl.assign(n, 0);
  soa_.row_key0.assign(n, 0);
  const std::uint32_t ngrids = static_cast<std::uint32_t>(grids_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const PlanInst& in = insts_[i];
    soa_.kind[i] = in.kind;
    std::uint8_t f = 0;
    switch (in.kind) {
      case PKind::LoadArray:
      case PKind::StoreArray:
        f = in.kind == PKind::StoreArray ? kSoaStore : kSoaGlobalLoad;
        if (in.bypass_candidate) f |= kSoaBypassCand;
        soa_.sel[i] = in.grid;
        soa_.tmpl[i] = grids_[in.grid].base +
                       static_cast<std::uint64_t>(in.idx0) * kElemBytes;
        soa_.row_key0[i] = in.row_key0;
        break;
      case PKind::LoadBrick:
      case PKind::StoreBrick: {
        f = kSoaBrick |
            (in.kind == PKind::StoreBrick ? kSoaStore : kSoaGlobalLoad);
        const std::uint32_t slot =
            ngrids + static_cast<std::uint32_t>(in.grid) * 27 + in.nbr_code;
        soa_.sel[i] = slot;
        soa_.tmpl[i] = grids_[in.grid].base +
                       static_cast<std::uint64_t>(in.idx0) * kElemBytes;
        bool seen = false;
        for (const BrickSel& bs : brick_sels_) seen |= bs.sel == slot;
        if (!seen) brick_sels_.push_back({in.grid, in.nbr_code, slot});
        break;
      }
      case PKind::LoadSpill:
        f = kSoaSpill;
        break;
      case PKind::StoreSpill:
        f = kSoaSpill | kSoaStore;
        break;
      default:
        break;  // Functional-only ALU lanes: no flags, zero addend slot
    }
    soa_.flags[i] = f;
  }
}

void ExecPlan::analyze_blocks() {
  const Kernel& kernel = *kernel_;
  const long total_blocks = kernel.blocks.volume();
  const std::size_t ngrids = grids_.size();

  // Corner classification (brick launches): the canonical adjacency delta of
  // each used (grid, code) comes from block 0; a block whose adjacency
  // deviates on any used code resolves brick ids through the general gather.
  if (!brick_sels_.empty()) {
    canon_.assign(ngrids * 27, 0);
    for (const BrickSel& bs : brick_sels_) {
      const GridPlan& gp = grids_[bs.grid];
      const std::uint32_t bid0 = gp.block_to_brick[0];
      const std::uint32_t nb =
          bs.code == 13
              ? bid0
              : gp.adjacency[static_cast<std::size_t>(bid0) * 27 + bs.code];
      canon_[static_cast<std::size_t>(bs.grid) * 27 + bs.code] =
          static_cast<std::int64_t>(nb) - static_cast<std::int64_t>(bid0);
    }
    corner_.assign(static_cast<std::size_t>((total_blocks + 7) / 8), 0);
    for (long b = 0; b < total_blocks; ++b) {
      for (const BrickSel& bs : brick_sels_) {
        if (bs.code == 13) continue;
        const GridPlan& gp = grids_[bs.grid];
        const std::uint32_t bid =
            gp.block_to_brick[static_cast<std::size_t>(b)];
        if (static_cast<std::int64_t>(
                gp.adjacency[static_cast<std::size_t>(bid) * 27 + bs.code]) !=
            static_cast<std::int64_t>(bid) +
                canon_[static_cast<std::size_t>(bs.grid) * 27 + bs.code]) {
          corner_[static_cast<std::size_t>(b) >> 3] |=
              static_cast<std::uint8_t>(1u << (b & 7));
          ++num_corner_;
          break;
        }
      }
    }
    if (num_corner_ == 0) corner_.clear();
  }

  // Congruence-lump eligibility (all-or-nothing for the launch).  G divides
  // blocks.i, num_cores, and the resident-set size, so groups of G
  // consecutive block ids are G-aligned, share (j, k), never straddle a
  // wave or a G-aligned shard boundary, and land on cores c0 .. c0+G-1 with
  // c0 % G == 0 -- making leader cores a kernel-invariant set and keeping
  // every mate L1 an unconsulted shifted image of its leader's.
  long g = std::gcd(static_cast<long>(kernel.blocks.i),
                    static_cast<long>(arch_->num_cores));
  g = std::gcd(g, std::min<long>(arch_->max_resident_blocks(), total_blocks));
  if (g < 2) return;

  // Every referenced grid must step by the same byte delta per +1 block
  // along i, and the delta must preserve sector/line/vector alignment so
  // access shapes and the bypass predicate are shift-invariant.
  bool any_mem = false;
  std::int64_t du = 0;
  bool uniform = true;
  std::vector<std::uint8_t> array_used(ngrids, 0), brick_used(ngrids, 0);
  for (const PlanInst& in : insts_) {
    if (in.kind == PKind::LoadArray || in.kind == PKind::StoreArray) {
      any_mem = true;
      array_used[in.grid] = 1;
    } else if (in.kind == PKind::LoadBrick || in.kind == PKind::StoreBrick) {
      any_mem = true;
      brick_used[in.grid] = 1;
    }
  }
  auto note_delta = [&](std::int64_t d) {
    if (d <= 0)
      uniform = false;
    else if (du == 0)
      du = d;
    else if (du != d)
      uniform = false;
  };
  for (std::size_t gi = 0; gi < ngrids; ++gi) {
    if (array_used[gi]) note_delta(grids_[gi].bi);
    if (brick_used[gi]) note_delta(grids_[gi].elems_per_brick);
  }
  if (!any_mem || !uniform || du == 0) return;

  const std::uint64_t du_bytes = static_cast<std::uint64_t>(du) * kElemBytes;
  if (du_bytes % static_cast<std::uint64_t>(arch_->l1.line_bytes) != 0 ||
      du_bytes % static_cast<std::uint64_t>(arch_->l1.sector_bytes) != 0)
    return;
  if (vec_mask_ ? (du_bytes & vec_mask_) != 0 : du_bytes % vec_bytes_ != 0)
    return;

  // Brick launches: a +1 block step must shift brick ids and every used
  // adjacency uniformly within each group (shuffled decompositions fail).
  for (std::size_t gi = 0; gi < ngrids; ++gi) {
    if (!brick_used[gi]) continue;
    const GridPlan& gp = grids_[gi];
    for (long b0 = 0; b0 < total_blocks; b0 += g) {
      const std::uint32_t base =
          gp.block_to_brick[static_cast<std::size_t>(b0)];
      for (long r = 1; r < g; ++r)
        if (gp.block_to_brick[static_cast<std::size_t>(b0 + r)] !=
            base + static_cast<std::uint32_t>(r))
          return;
    }
  }
  for (const BrickSel& bs : brick_sels_) {
    if (bs.code == 13) continue;
    const GridPlan& gp = grids_[bs.grid];
    for (long b0 = 0; b0 < total_blocks; b0 += g) {
      const std::uint32_t base =
          gp.adjacency[static_cast<std::size_t>(
                           gp.block_to_brick[static_cast<std::size_t>(b0)]) *
                           27 +
                       bs.code];
      for (long r = 1; r < g; ++r)
        if (gp.adjacency[static_cast<std::size_t>(
                             gp.block_to_brick[static_cast<std::size_t>(
                                 b0 + r)]) *
                             27 +
                         bs.code] != base + static_cast<std::uint32_t>(r))
          return;
    }
  }

  lump_G_ = static_cast<int>(g);
  lump_delta_bytes_ = du_bytes;
}

void ExecPlan::fill_block_addresses(long blin, std::uint64_t* arow,
                                    std::uint64_t* prow, std::uint8_t* brow,
                                    std::uint64_t* addend) const {
  const Kernel& kernel = *kernel_;
  const Vec3 bc = unlinearize(blin, kernel.blocks);
  const std::size_t ngrids = grids_.size();
  for (std::size_t g = 0; g < ngrids; ++g)
    addend[g] = static_cast<std::uint64_t>(bc.i * grids_[g].bi +
                                           bc.j * grids_[g].bj +
                                           bc.k * grids_[g].bk) *
                kElemBytes;
  const bool corner = block_is_corner(blin);
  for (const BrickSel& bs : brick_sels_) {
    const GridPlan& gp = grids_[bs.grid];
    const std::uint32_t bid0 =
        gp.block_to_brick[static_cast<std::size_t>(blin)];
    std::uint32_t bid;
    if (corner)
      bid = bs.code == 13
                ? bid0
                : gp.adjacency[static_cast<std::size_t>(bid0) * 27 + bs.code];
    else
      bid = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(bid0) +
          canon_[static_cast<std::size_t>(bs.grid) * 27 + bs.code]);
    addend[bs.sel] = static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(bid) * gp.elems_per_brick) *
                     kElemBytes;
  }
  addend[addend_zero_slot()] = 0;
  const std::uint64_t row_add =
      (static_cast<std::uint64_t>(bc.k) * kernel.tile.k << 28) +
      static_cast<std::uint64_t>(bc.j) * kernel.tile.j;
  const std::size_t n = insts_.size();
  const bool bypass_loads = kernel.bypass_l2_unaligned_vloads;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = soa_.tmpl[i] + addend[soa_.sel[i]];
    const std::uint8_t f = soa_.flags[i];
    arow[i] = a;
    prow[i] = (f & kSoaBrick) ? a >> 12 : soa_.row_key0[i] + row_add;
    brow[i] = static_cast<std::uint8_t>(
        bypass_loads && (f & kSoaBypassCand) &&
        (vec_mask_ ? (a & vec_mask_) != 0 : (a % vec_bytes_) != 0));
  }
}

KernelReport ExecPlan::replay(memsim::MemoryHierarchy& hier) const {
  return mode_ == ExecMode::CountersOnly ? replay_counters(hier)
                                         : replay_reference(hier);
}

// The SoA CountersOnly engine.  Same schedule as replay_reference (waves of
// R resident blocks, kSlice-instruction round-robin windows, ascending slot
// order), restructured around the decoded SoA lanes:
//
//  * batched address generation -- at wave start one pass per block
//    materializes every instruction's address / page key / bypass flag into
//    flat arena rows (fill_block_addresses), so the replay windows stream
//    pre-resolved addresses into the hierarchy with no per-access address
//    arithmetic or PlanInst pointer chasing;
//  * congruence lumping (lump_factor() > 1) -- only group leaders execute
//    against an L1; each window's counter addends, L1 traffic, and L2-bound
//    line events are recorded once and replicated onto the G-1 mates (events
//    shifted by r * lump_delta_bytes, applied to the shared L2 in exact slot
//    order), so the L1 probe work -- the dominant replay cost -- drops by
//    the group factor while every counter stays bit-identical.
//
// tests/test_execplan.cpp pins this engine to replay_reference() across the
// paper catalog; tests/test_shard.cpp pins the sharded variant.
KernelReport ExecPlan::replay_counters(memsim::MemoryHierarchy& hier) const {
  const Kernel& kernel = *kernel_;
  const arch::GpuArch& arch = *arch_;
  hier.reset();

  const long total_blocks = kernel.blocks.volume();
  const long R = std::min<long>(arch.max_resident_blocks(), total_blocks);
  const int C = arch.num_cores;
  const bool rmw_stores = !kernel.streaming_stores;
  const bool track_pages = kernel.read_streams > 1;
  const std::size_t ninsts = insts_.size();
  const Geom geom = make_geom(arch, kernel, vec_bytes_);
  const long G = lump_G_;
  const bool lump = G > 1;
  const std::uint64_t dbytes = lump_delta_bytes_;
  const std::uint64_t dlines =
      lump ? dbytes / static_cast<std::uint64_t>(geom.line) : 0;
  const long nrounds =
      ninsts == 0 ? 1 : static_cast<long>((ninsts + kSlice - 1) / kSlice);
  const long nwaves = (total_blocks + R - 1) / R;

  KernelReport rep;
  std::vector<detail::CoreUse> cores(static_cast<std::size_t>(C));
  memsim::Traffic lump_t;  // L1-side traffic of lumped windows

  std::vector<std::uint64_t> addr(static_cast<std::size_t>(R) * ninsts);
  std::vector<std::uint64_t> pkey(static_cast<std::size_t>(R) * ninsts);
  std::vector<std::uint8_t> byp(static_cast<std::size_t>(R) * ninsts);
  std::vector<std::uint64_t> addend(addend_slots());
  std::vector<PageSet> pages(static_cast<std::size_t>(R));
  WindowScratch ws;

  for (long wave = 0; wave < nwaves; ++wave) {
    const long nslots = std::min(R, total_blocks - wave * R);
    // Wave start: per-block ALU aggregates, then batched addresses (lumped
    // launches materialize leader rows only -- mates reuse them shifted).
    for (long s = 0; s < nslots; ++s) {
      const long blin = wave * R + s;
      detail::CoreUse& cu = cores[static_cast<std::size_t>(blin % C)];
      cu.fp_lanes += alu_.fp_lanes;
      cu.int_lanes += alu_.int_lanes;
      cu.shuffle_lanes += alu_.shuffle_lanes;
      rep.flops_executed += alu_.flops;
      rep.warp_insts += alu_.warp_insts;
      if (lump && (s % G) != 0) continue;
      fill_block_addresses(blin,
                           addr.data() + static_cast<std::size_t>(s) * ninsts,
                           pkey.data() + static_cast<std::size_t>(s) * ninsts,
                           byp.data() + static_cast<std::size_t>(s) * ninsts,
                           addend.data());
    }
    for (long round = 0; round < nrounds; ++round) {
      const std::size_t pc0 = static_cast<std::size_t>(round) * kSlice;
      const std::size_t pc_end = std::min(ninsts, pc0 + kSlice);
      const bool completes = pc_end >= ninsts;
      for (long s = 0; s < nslots; ++s) {
        const long blin = wave * R + s;
        const int core = static_cast<int>(blin % C);
        if (!lump) {
          detail::CoreUse& cu = cores[static_cast<std::size_t>(core)];
          const std::uint64_t* arow =
              addr.data() + static_cast<std::size_t>(s) * ninsts;
          const std::uint64_t* prow =
              pkey.data() + static_cast<std::size_t>(s) * ninsts;
          const std::uint8_t* brow =
              byp.data() + static_cast<std::size_t>(s) * ninsts;
          PageSet& ps = pages[static_cast<std::size_t>(s)];
          for (std::size_t i = pc0; i < pc_end; ++i) {
            const std::uint8_t f = soa_.flags[i];
            const bool store = (f & kSoaStore) != 0;
            if (f & kSoaSpill) {
              const auto shape = hier.scratch_access(vec_bytes_, store);
              cu.mem_insts += shape.lines;
              cu.l1_bytes += shape.sectors * geom.sector_bytes;
              rep.spill_bytes += vec_bytes_;
              continue;
            }
            const auto shape =
                hier.access(core, arow[i], vec_bytes_, store,
                            store ? false : brow[i] != 0,
                            store ? rmw_stores : false);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * geom.sector_bytes;
            if (!store) cu.serial_cycles += geom.extra_load_cycles;
            if (shape.dram_touch && track_pages) ps.insert(prow[i]);
          }
          rep.warp_insts += pc_end - pc0;
          if (completes) {
            if (track_pages)
              hier.charge_page_overhead(static_cast<double>(ps.size()) *
                                        arch.page_open_bytes);
            ++rep.blocks_run;
            ps.clear();
          }
        } else if ((s % G) == 0) {
          exec_lump_window(soa_, pc0, pc_end,
                           addr.data() + static_cast<std::size_t>(s) * ninsts,
                           pkey.data() + static_cast<std::size_t>(s) * ninsts,
                           byp.data() + static_cast<std::size_t>(s) * ninsts,
                           geom, hier.l1(core),
                           cores[static_cast<std::size_t>(core)], ws);
          for (long r = 1; r < G; ++r)
            apply_window_counters(ws, geom,
                                  cores[static_cast<std::size_t>(core + r)]);
          rep.warp_insts += ws.insts * static_cast<std::uint64_t>(G);
          rep.spill_bytes += ws.spills * vec_bytes_ *
                             static_cast<std::uint64_t>(G);
          add_scaled_traffic(lump_t, ws.t, static_cast<std::uint64_t>(G));
          // Apply the group's L2 events in exact slot order: leader first,
          // then each mate's stream shifted by its rank.
          for (long r = 0; r < G; ++r) {
            const std::uint64_t dl = static_cast<std::uint64_t>(r) * dlines;
            const std::uint64_t db = static_cast<std::uint64_t>(r) * dbytes;
            PageSet& ps = pages[static_cast<std::size_t>(s + r)];
            for (const WinEvent& e : ws.ev) {
              const std::uint64_t ln = e.line + dl;
              bool dram = false;
              switch (e.op & 3u) {
                case kWinLoad:
                  dram = hier.replay_l2_load(ln);
                  break;
                case kWinStoreFull:
                  dram = hier.replay_l2_store_full(ln);
                  break;
                case kWinStorePartial:
                  dram = hier.replay_l2_store_partial(ln);
                  break;
                default:  // kWinPageOnly: bypass load, counters in phase 1
                  dram = true;
                  break;
              }
              if (dram && track_pages)
                ps.insert((e.op & kWinBrickKey) ? (e.pk + db) >> 12 : e.pk);
            }
          }
          if (completes) {
            for (long r = 0; r < G; ++r) {
              PageSet& ps = pages[static_cast<std::size_t>(s + r)];
              if (track_pages)
                hier.charge_page_overhead(static_cast<double>(ps.size()) *
                                          arch.page_open_bytes);
              ++rep.blocks_run;
              ps.clear();
            }
          }
        }
        // Lumped mates: everything was applied at their leader's turn.
      }
    }
  }

  hier.merge_traffic(lump_t);
  hier.flush_l2();
  rep.traffic = hier.traffic();
  detail::finalize_timing(rep, cores, arch, kernel);
  return rep;
}

KernelReport ExecPlan::replay_reference(memsim::MemoryHierarchy& hier) const {
  const Kernel& kernel = *kernel_;
  const arch::GpuArch& arch = *arch_;
  hier.reset();

  const int W = W_;
  const long total_blocks = kernel.blocks.volume();
  const int resident = static_cast<int>(
      std::min<long>(arch.max_resident_blocks(), total_blocks));
  const bool functional = mode_ == ExecMode::Functional;
  const double shuffle_lanes_per_align = W * kernel.shuffle_cost_mult;
  const double l1_sector_bytes = arch.l1.sector_bytes;
  const bool bypass_loads = kernel.bypass_l2_unaligned_vloads;
  const bool rmw_stores = !kernel.streaming_stores;
  const std::size_t ngrids = grids_.size();

  KernelReport rep;
  std::vector<detail::CoreUse> cores(arch.num_cores);

  // One scratch arena for all resident blocks, zeroed once: programs are
  // verified free of use-before-def (ExecPlan construction ran
  // ir::Program::verify()), so a block never observes its predecessor's
  // register or spill values and per-block re-zeroing would be dead work.
  const std::size_t reg_elems =
      functional ? static_cast<std::size_t>(num_vregs_) * W : 0;
  const std::size_t spill_elems =
      functional ? static_cast<std::size_t>(num_spill_slots_) * W : 0;
  std::vector<double> arena(
      static_cast<std::size_t>(resident) * (reg_elems + spill_elems), 0.0);
  std::vector<std::int64_t> goff(static_cast<std::size_t>(resident) * ngrids,
                                 0);

  /// Execution state of one resident thread block.
  struct Slot {
    long blin = -1;
    int core = 0;
    std::size_t pc = 0;
    bool active = false;
    double* regs = nullptr;
    double* spills = nullptr;
    std::int64_t* goff = nullptr;  ///< per-grid block element offsets
    std::uint64_t row_add = 0;     ///< per-block row-key addend
    PageSet pages;
  };
  std::vector<Slot> slots(resident);
  for (int n = 0; n < resident; ++n) {
    slots[n].regs = arena.data() +
                    static_cast<std::size_t>(n) * (reg_elems + spill_elems);
    slots[n].spills = slots[n].regs + reg_elems;
    slots[n].goff = goff.data() + static_cast<std::size_t>(n) * ngrids;
  }

  long next_block = 0;
  int active = 0;
  auto assign = [&](Slot& s) -> bool {
    if (next_block >= total_blocks) {
      s.active = false;
      return false;
    }
    s.blin = next_block++;
    const Vec3 bc = unlinearize(s.blin, kernel.blocks);
    s.core = static_cast<int>(s.blin % arch.num_cores);
    s.pc = 0;
    s.active = true;
    s.pages.clear();
    for (std::size_t g = 0; g < ngrids; ++g)
      s.goff[g] = bc.i * grids_[g].bi + bc.j * grids_[g].bj +
                  bc.k * grids_[g].bk;
    s.row_add = (static_cast<std::uint64_t>(bc.k) * kernel.tile.k << 28) +
                static_cast<std::uint64_t>(bc.j) * kernel.tile.j;
    if (!functional) {
      detail::CoreUse& cu = cores[s.core];
      cu.fp_lanes += alu_.fp_lanes;
      cu.int_lanes += alu_.int_lanes;
      cu.shuffle_lanes += alu_.shuffle_lanes;
      rep.flops_executed += alu_.flops;
      rep.warp_insts += alu_.warp_insts;
    }
    return true;
  };
  for (auto& s : slots)
    if (assign(s)) ++active;

  std::vector<double> tmp(W);  // VAlign scratch (dst may alias a source)
  const PlanInst* const ip = insts_.data();
  const std::size_t ninsts = insts_.size();

  while (active > 0) {
    for (auto& s : slots) {
      if (!s.active) continue;
      detail::CoreUse& cu = cores[s.core];
      const std::size_t end = std::min(ninsts, s.pc + kSlice);
      for (; s.pc < end; ++s.pc) {
        const PlanInst& in = ip[s.pc];
        switch (in.kind) {
          case PKind::LoadArray: {
            const GridPlan& g = grids_[in.grid];
            const std::int64_t idx = in.idx0 + s.goff[in.grid];
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const bool bypass =
                bypass_loads && in.bypass_candidate &&
                (vec_mask_ ? (addr & vec_mask_) != 0
                           : (addr % vec_bytes_) != 0);
            const auto shape =
                hier.access(s.core, addr, vec_bytes_, false, bypass);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            cu.serial_cycles += kernel.extra_cycles_per_load;
            if (shape.dram_touch) s.pages.insert(in.row_key0 + s.row_add);
            if (functional) {
              const double* src = g.data + idx;
              std::copy(src, src + W, s.regs + in.dst);
            }
            break;
          }
          case PKind::StoreArray: {
            const GridPlan& g = grids_[in.grid];
            const std::int64_t idx = in.idx0 + s.goff[in.grid];
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const auto shape = hier.access(s.core, addr, vec_bytes_, true,
                                           /*bypass_l2=*/false, rmw_stores);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            if (shape.dram_touch) s.pages.insert(in.row_key0 + s.row_add);
            if (functional) {
              const double* src = s.regs + in.a;
              std::copy(src, src + W, g.data + idx);
            }
            break;
          }
          case PKind::LoadBrick: {
            const GridPlan& g = grids_[in.grid];
            std::uint32_t bid =
                g.block_to_brick[static_cast<std::size_t>(s.blin)];
            if (in.nbr_code != 13)
              bid = g.adjacency[static_cast<std::size_t>(bid) * 27 +
                                in.nbr_code];
            const std::int64_t idx =
                static_cast<std::int64_t>(bid) * g.elems_per_brick + in.idx0;
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const auto shape =
                hier.access(s.core, addr, vec_bytes_, false, false);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            cu.serial_cycles += kernel.extra_cycles_per_load;
            if (shape.dram_touch) s.pages.insert(addr >> 12);
            if (functional) {
              const double* src = g.data + idx;
              std::copy(src, src + W, s.regs + in.dst);
            }
            break;
          }
          case PKind::StoreBrick: {
            const GridPlan& g = grids_[in.grid];
            std::uint32_t bid =
                g.block_to_brick[static_cast<std::size_t>(s.blin)];
            if (in.nbr_code != 13)
              bid = g.adjacency[static_cast<std::size_t>(bid) * 27 +
                                in.nbr_code];
            const std::int64_t idx =
                static_cast<std::int64_t>(bid) * g.elems_per_brick + in.idx0;
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const auto shape = hier.access(s.core, addr, vec_bytes_, true,
                                           /*bypass_l2=*/false, rmw_stores);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            if (shape.dram_touch) s.pages.insert(addr >> 12);
            if (functional) {
              const double* src = s.regs + in.a;
              std::copy(src, src + W, g.data + idx);
            }
            break;
          }
          case PKind::LoadSpill: {
            const auto shape = hier.scratch_access(vec_bytes_, false);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            rep.spill_bytes += vec_bytes_;
            if (functional) {
              const double* src = s.spills + in.idx0;
              std::copy(src, src + W, s.regs + in.dst);
            }
            break;
          }
          case PKind::StoreSpill: {
            const auto shape = hier.scratch_access(vec_bytes_, true);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            rep.spill_bytes += vec_bytes_;
            if (functional) {
              const double* src = s.regs + in.a;
              std::copy(src, src + W, s.spills + in.idx0);
            }
            break;
          }
          case PKind::Align: {
            cu.shuffle_lanes += shuffle_lanes_per_align;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              for (int l = 0; l < W; ++l) {
                const int sh = in.shift_or_iops + l;
                tmp[l] = sh < W ? a[sh] : b[sh - W];
              }
              std::copy(tmp.begin(), tmp.end(), s.regs + in.dst);
            }
            break;
          }
          case PKind::AddV: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] + b[l];
            }
            break;
          }
          case PKind::MulV: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] * b[l];
            }
            break;
          }
          case PKind::FmaV: {
            cu.fp_lanes += W;
            rep.flops_executed += 2ull * W;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              const double* c = s.regs + in.c;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] * b[l] + c[l];
            }
            break;
          }
          case PKind::MulC: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double cv = in.cv;
              const double* a = s.regs + in.a;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] * cv;
            }
            break;
          }
          case PKind::FmaC: {
            cu.fp_lanes += W;
            rep.flops_executed += 2ull * W;
            if (functional) {
              const double cv = in.cv;
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] + b[l] * cv;
            }
            break;
          }
          case PKind::SetC: {
            cu.fp_lanes += W;
            if (functional) {
              double* d = s.regs + in.dst;
              std::fill(d, d + W, in.cv);
            }
            break;
          }
          case PKind::Zero: {
            cu.fp_lanes += W;
            if (functional) {
              double* d = s.regs + in.dst;
              std::fill(d, d + W, 0.0);
            }
            break;
          }
          case PKind::IOp: {
            cu.int_lanes += static_cast<double>(in.shift_or_iops) * W;
            rep.warp_insts += in.shift_or_iops - 1;  // +1 added below
            break;
          }
        }
        rep.warp_insts += 1;
      }
      if (s.pc >= ninsts) {
        // Page-locality overhead: each distinct activation granule this
        // block reached DRAM for costs row-activation / TLB-walk traffic.
        // Single-stream kernels are exempt: a sequential stream keeps its
        // DRAM row open and never pays the switch cost.
        if (kernel.read_streams > 1)
          hier.charge_page_overhead(static_cast<double>(s.pages.size()) *
                                    arch.page_open_bytes);
        ++rep.blocks_run;
        if (!assign(s)) --active;
      }
    }
  }

  // Drain dirty output lines: an out-of-place stencil's stores all reach
  // HBM eventually, so end-of-kernel residue is counted as written back.
  hier.flush_l2();
  rep.traffic = hier.traffic();
  detail::finalize_timing(rep, cores, arch, kernel);
  return rep;
}

// Sharded replay.  The per-instruction switch below intentionally mirrors
// replay()'s, with hier.access() swapped for the shard's L1 front-end and
// dram_touch page inserts deferred to phase 2 (only the shared L2 knows
// whether a line reaches DRAM).  The two loops are pinned together by the
// shard-invariance suite in tests/test_shard.cpp, which requires reports
// bit-identical to replay() across the paper catalog at several shard
// counts.
//
// Schedule facts the decomposition rests on (all properties of replay()'s
// while loop): every block runs ceil(ninsts / kSlice) rounds, so the
// resident set refills in lockstep "waves" -- iteration t is (wave, round)
// = (t / nrounds, t % nrounds) and slot s of wave w runs block w * R + s;
// and a slot's core is always s % num_cores (when blocks exceed the
// resident set, R is a multiple of num_cores; otherwise there is a single
// wave with block id == slot id).  A contiguous core range therefore owns a
// fixed set of slots for the whole launch, and the global schedule position
// of (wave, round, slot) is the merge key (wave * nrounds + round) * R +
// slot.
KernelReport ExecPlan::replay_sharded(memsim::MemoryHierarchy& hier,
                                      int shards) const {
  const Kernel& kernel = *kernel_;
  const arch::GpuArch& arch = *arch_;
  const long total_blocks = kernel.blocks.volume();
  const int resident = static_cast<int>(
      std::min<long>(arch.max_resident_blocks(), total_blocks));
  // Cores the schedule actually uses: with fewer blocks than cores, only
  // cores [0, resident) ever see work -- sharding the idle tail would give
  // some shards nothing to do.
  const int used_cores = std::min(resident, arch.num_cores);
  const int nshards = std::min(shards, used_cores);
  if (nshards <= 1 ||
      total_blocks >= static_cast<long>(
                          std::numeric_limits<std::uint32_t>::max()))
    return replay(hier);  // ShardEvent::block is 32-bit
  if (mode_ == ExecMode::CountersOnly)
    return replay_counters_sharded(hier, nshards, used_cores);
  return replay_sharded_reference(hier, nshards, used_cores);
}

KernelReport ExecPlan::replay_sharded_reference(memsim::MemoryHierarchy& hier,
                                                int nshards,
                                                int used_cores) const {
  const Kernel& kernel = *kernel_;
  const arch::GpuArch& arch = *arch_;
  const long total_blocks = kernel.blocks.volume();
  const int resident = static_cast<int>(
      std::min<long>(arch.max_resident_blocks(), total_blocks));
  hier.reset();
  const int W = W_;
  const bool functional = mode_ == ExecMode::Functional;
  const double shuffle_lanes_per_align = W * kernel.shuffle_cost_mult;
  const double l1_sector_bytes = arch.l1.sector_bytes;
  const bool bypass_loads = kernel.bypass_l2_unaligned_vloads;
  const bool rmw_stores = !kernel.streaming_stores;
  const std::size_t ngrids = grids_.size();
  const std::size_t ninsts = insts_.size();
  const long R = resident;
  const long nrounds =
      ninsts == 0 ? 1 : static_cast<long>((ninsts + kSlice - 1) / kSlice);
  const long nwaves = (total_blocks + R - 1) / R;
  const std::size_t reg_elems =
      functional ? static_cast<std::size_t>(num_vregs_) * W : 0;
  const std::size_t spill_elems =
      functional ? static_cast<std::size_t>(num_spill_slots_) * W : 0;

  /// One shard: private L1s + event log, the slots it owns, and partial
  /// accumulators merged after the last segment.
  struct ShardState {
    memsim::L1Shard l1;
    std::vector<int> slots;              ///< owned slot ids, ascending
    std::vector<detail::CoreUse> cores;  ///< full-size; only owned rows used
    std::vector<double> arena;           ///< functional regs+spills per slot
    std::vector<std::int64_t> goff;      ///< per (slot, grid) block offsets
    std::vector<std::uint64_t> row_add;  ///< per-slot row-key addend
    std::uint64_t blocks_run = 0, warp_insts = 0, flops = 0, spill_bytes = 0;
    ShardState(const arch::GpuArch& a, int c0, int c1)
        : l1(a, c0, c1), cores(static_cast<std::size_t>(a.num_cores)) {}
  };
  std::vector<ShardState> st;
  st.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) {
    const int c0 = i * used_cores / nshards;
    const int c1 = (i + 1) * used_cores / nshards;
    st.emplace_back(arch, c0, c1);
    ShardState& sh = st.back();
    for (int s = 0; s < resident; ++s) {
      const int core = s % arch.num_cores;
      if (core >= c0 && core < c1) sh.slots.push_back(s);
    }
    sh.arena.assign(sh.slots.size() * (reg_elems + spill_elems), 0.0);
    sh.goff.resize(sh.slots.size() * ngrids);
    sh.row_add.resize(sh.slots.size());
  }

  auto run_shard_segment = [&](ShardState& sh, long w0, long w1) {
    const PlanInst* const ip = insts_.data();
    std::vector<double> tmp(static_cast<std::size_t>(W));
    for (long wave = w0; wave < w1; ++wave) {
      for (long round = 0; round < nrounds; ++round) {
        const std::uint64_t okey_base =
            (static_cast<std::uint64_t>(wave) * nrounds +
             static_cast<std::uint64_t>(round)) *
            static_cast<std::uint64_t>(R);
        const std::size_t pc0 = static_cast<std::size_t>(round) * kSlice;
        const std::size_t pc_end = std::min(ninsts, pc0 + kSlice);
        for (std::size_t li = 0; li < sh.slots.size(); ++li) {
          const int s = sh.slots[li];
          const long blin = wave * R + s;
          if (blin >= total_blocks) continue;  // idle slot in the last wave
          const int core = static_cast<int>(blin % arch.num_cores);
          detail::CoreUse& cu = sh.cores[static_cast<std::size_t>(core)];
          std::int64_t* goff = sh.goff.data() + li * ngrids;
          double* regs =
              functional ? sh.arena.data() + li * (reg_elems + spill_elems)
                         : nullptr;
          double* spills = functional ? regs + reg_elems : nullptr;
          if (round == 0) {
            const Vec3 bc = unlinearize(blin, kernel.blocks);
            for (std::size_t g = 0; g < ngrids; ++g)
              goff[g] = bc.i * grids_[g].bi + bc.j * grids_[g].bj +
                        bc.k * grids_[g].bk;
            sh.row_add[li] =
                (static_cast<std::uint64_t>(bc.k) * kernel.tile.k << 28) +
                static_cast<std::uint64_t>(bc.j) * kernel.tile.j;
            if (!functional) {
              cu.fp_lanes += alu_.fp_lanes;
              cu.int_lanes += alu_.int_lanes;
              cu.shuffle_lanes += alu_.shuffle_lanes;
              sh.flops += alu_.flops;
              sh.warp_insts += alu_.warp_insts;
            }
          }
          const std::uint64_t row_add = sh.row_add[li];
          const std::uint64_t order =
              okey_base + static_cast<std::uint64_t>(s);
          const std::uint32_t blk = static_cast<std::uint32_t>(blin);
          for (std::size_t pc = pc0; pc < pc_end; ++pc) {
            const PlanInst& in = ip[pc];
            switch (in.kind) {
              case PKind::LoadArray: {
                const GridPlan& g = grids_[in.grid];
                const std::int64_t idx = in.idx0 + goff[in.grid];
                const std::uint64_t addr =
                    g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
                const bool bypass =
                    bypass_loads && in.bypass_candidate &&
                    (vec_mask_ ? (addr & vec_mask_) != 0
                               : (addr % vec_bytes_) != 0);
                const auto shape =
                    sh.l1.access(core, addr, vec_bytes_, false, bypass,
                                 false, order, blk, in.row_key0 + row_add);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * l1_sector_bytes;
                cu.serial_cycles += kernel.extra_cycles_per_load;
                if (functional) {
                  const double* src = g.data + idx;
                  std::copy(src, src + W, regs + in.dst);
                }
                break;
              }
              case PKind::StoreArray: {
                const GridPlan& g = grids_[in.grid];
                const std::int64_t idx = in.idx0 + goff[in.grid];
                const std::uint64_t addr =
                    g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
                const auto shape =
                    sh.l1.access(core, addr, vec_bytes_, true, false,
                                 rmw_stores, order, blk,
                                 in.row_key0 + row_add);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * l1_sector_bytes;
                if (functional) {
                  const double* src = regs + in.a;
                  std::copy(src, src + W, g.data + idx);
                }
                break;
              }
              case PKind::LoadBrick: {
                const GridPlan& g = grids_[in.grid];
                std::uint32_t bid =
                    g.block_to_brick[static_cast<std::size_t>(blin)];
                if (in.nbr_code != 13)
                  bid = g.adjacency[static_cast<std::size_t>(bid) * 27 +
                                    in.nbr_code];
                const std::int64_t idx =
                    static_cast<std::int64_t>(bid) * g.elems_per_brick +
                    in.idx0;
                const std::uint64_t addr =
                    g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
                const auto shape =
                    sh.l1.access(core, addr, vec_bytes_, false, false,
                                 false, order, blk, addr >> 12);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * l1_sector_bytes;
                cu.serial_cycles += kernel.extra_cycles_per_load;
                if (functional) {
                  const double* src = g.data + idx;
                  std::copy(src, src + W, regs + in.dst);
                }
                break;
              }
              case PKind::StoreBrick: {
                const GridPlan& g = grids_[in.grid];
                std::uint32_t bid =
                    g.block_to_brick[static_cast<std::size_t>(blin)];
                if (in.nbr_code != 13)
                  bid = g.adjacency[static_cast<std::size_t>(bid) * 27 +
                                    in.nbr_code];
                const std::int64_t idx =
                    static_cast<std::int64_t>(bid) * g.elems_per_brick +
                    in.idx0;
                const std::uint64_t addr =
                    g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
                const auto shape =
                    sh.l1.access(core, addr, vec_bytes_, true, false,
                                 rmw_stores, order, blk, addr >> 12);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * l1_sector_bytes;
                if (functional) {
                  const double* src = regs + in.a;
                  std::copy(src, src + W, g.data + idx);
                }
                break;
              }
              case PKind::LoadSpill: {
                const auto shape = sh.l1.scratch_access(vec_bytes_, false);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * l1_sector_bytes;
                sh.spill_bytes += vec_bytes_;
                if (functional) {
                  const double* src = spills + in.idx0;
                  std::copy(src, src + W, regs + in.dst);
                }
                break;
              }
              case PKind::StoreSpill: {
                const auto shape = sh.l1.scratch_access(vec_bytes_, true);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * l1_sector_bytes;
                sh.spill_bytes += vec_bytes_;
                if (functional) {
                  const double* src = regs + in.a;
                  std::copy(src, src + W, spills + in.idx0);
                }
                break;
              }
              case PKind::Align: {
                cu.shuffle_lanes += shuffle_lanes_per_align;
                if (functional) {
                  const double* a = regs + in.a;
                  const double* b = regs + in.b;
                  for (int l = 0; l < W; ++l) {
                    const int sh2 = in.shift_or_iops + l;
                    tmp[static_cast<std::size_t>(l)] =
                        sh2 < W ? a[sh2] : b[sh2 - W];
                  }
                  std::copy(tmp.begin(), tmp.end(), regs + in.dst);
                }
                break;
              }
              case PKind::AddV: {
                cu.fp_lanes += W;
                sh.flops += W;
                if (functional) {
                  const double* a = regs + in.a;
                  const double* b = regs + in.b;
                  double* d = regs + in.dst;
                  for (int l = 0; l < W; ++l) d[l] = a[l] + b[l];
                }
                break;
              }
              case PKind::MulV: {
                cu.fp_lanes += W;
                sh.flops += W;
                if (functional) {
                  const double* a = regs + in.a;
                  const double* b = regs + in.b;
                  double* d = regs + in.dst;
                  for (int l = 0; l < W; ++l) d[l] = a[l] * b[l];
                }
                break;
              }
              case PKind::FmaV: {
                cu.fp_lanes += W;
                sh.flops += 2ull * W;
                if (functional) {
                  const double* a = regs + in.a;
                  const double* b = regs + in.b;
                  const double* c = regs + in.c;
                  double* d = regs + in.dst;
                  for (int l = 0; l < W; ++l) d[l] = a[l] * b[l] + c[l];
                }
                break;
              }
              case PKind::MulC: {
                cu.fp_lanes += W;
                sh.flops += W;
                if (functional) {
                  const double cv = in.cv;
                  const double* a = regs + in.a;
                  double* d = regs + in.dst;
                  for (int l = 0; l < W; ++l) d[l] = a[l] * cv;
                }
                break;
              }
              case PKind::FmaC: {
                cu.fp_lanes += W;
                sh.flops += 2ull * W;
                if (functional) {
                  const double cv = in.cv;
                  const double* a = regs + in.a;
                  const double* b = regs + in.b;
                  double* d = regs + in.dst;
                  for (int l = 0; l < W; ++l) d[l] = a[l] + b[l] * cv;
                }
                break;
              }
              case PKind::SetC: {
                cu.fp_lanes += W;
                if (functional) {
                  double* d = regs + in.dst;
                  std::fill(d, d + W, in.cv);
                }
                break;
              }
              case PKind::Zero: {
                cu.fp_lanes += W;
                if (functional) {
                  double* d = regs + in.dst;
                  std::fill(d, d + W, 0.0);
                }
                break;
              }
              case PKind::IOp: {
                cu.int_lanes += static_cast<double>(in.shift_or_iops) * W;
                sh.warp_insts += in.shift_or_iops - 1;  // +1 added below
                break;
              }
            }
            sh.warp_insts += 1;
          }
          if (pc_end >= ninsts) ++sh.blocks_run;
        }
      }
    }
  };

  // Segment size: bound the buffered event volume (each event is one
  // L2-bound cache line) so arbitrarily large launches replay in constant
  // memory.  L1 state, functional arenas, and all accumulators persist
  // across segments; only the event logs and page sets are per-segment.
  std::size_t nmem = 0;
  for (const PlanInst& in : insts_)
    if (in.kind == PKind::LoadArray || in.kind == PKind::StoreArray ||
        in.kind == PKind::LoadBrick || in.kind == PKind::StoreBrick)
      ++nmem;
  const std::uint64_t lines_bound =
      vec_bytes_ / static_cast<std::uint32_t>(arch.l1.line_bytes) + 1;
  const std::uint64_t events_per_wave = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(R) * nmem * lines_bound);
  constexpr std::uint64_t kEventBudget = 1ull << 21;  // ~64 MB of events
  const long seg_waves = static_cast<long>(
      std::max<std::uint64_t>(1, kEventBudget / events_per_wave));

  KernelReport rep;
  const bool track_pages = kernel.read_streams > 1;
  std::vector<PageSet> pages;
  // Shard 0 runs inline on the calling thread; the cached pool supplies the
  // other nshards - 1 workers.  Same concurrency as the old per-call
  // ThreadPool(nshards), without respawning threads on every launch.
  ThreadPool& pool = cached_shard_pool(nshards - 1);
  for (long w0 = 0; w0 < nwaves; w0 += seg_waves) {
    const long w1 = std::min(nwaves, w0 + seg_waves);
    // Phase 1: every shard replays its slots against private L1s.
    for (std::size_t i = 1; i < st.size(); ++i) {
      ShardState& sh = st[i];
      pool.submit([&sh, w0, w1, &run_shard_segment] {
        run_shard_segment(sh, w0, w1);
      });
    }
    run_shard_segment(st[0], w0, w1);
    pool.wait();

    // Phase 2: k-way merge the shards' event logs by schedule order and
    // walk the shared L2.  Keys are unique across shards (a key names one
    // slot, and every slot has one owner), so the merged sequence -- and
    // with it every L2 state transition -- is exactly the serial replay's.
    const long seg_block0 = w0 * R;
    const std::size_t seg_blocks = static_cast<std::size_t>(
        std::min(total_blocks, w1 * R) - seg_block0);
    if (track_pages) {
      // Reuse the page sets (and their heap buffers) across segments; only
      // entries below the segment's block count are read.
      if (pages.size() < seg_blocks) pages.resize(seg_blocks);
      for (std::size_t i = 0; i < seg_blocks; ++i) pages[i].clear();
    }
    std::vector<std::size_t> pos(st.size(), 0);
    for (;;) {
      int best = -1;
      std::uint64_t best_key = 0;
      for (std::size_t i = 0; i < st.size(); ++i) {
        const auto& ev = st[i].l1.events();
        if (pos[i] < ev.size() &&
            (best < 0 || ev[pos[i]].order < best_key)) {
          best = static_cast<int>(i);
          best_key = ev[pos[i]].order;
        }
      }
      if (best < 0) break;
      const auto& ev = st[static_cast<std::size_t>(best)].l1.events();
      std::size_t& p = pos[static_cast<std::size_t>(best)];
      while (p < ev.size() && ev[p].order == best_key) {
        const memsim::ShardEvent& e = ev[p++];
        bool dram = false;
        switch (e.op) {
          case memsim::L2Op::Load:
            dram = hier.replay_l2_load(e.line);
            break;
          case memsim::L2Op::StoreFull:
            dram = hier.replay_l2_store_full(e.line);
            break;
          case memsim::L2Op::StorePartial:
            dram = hier.replay_l2_store_partial(e.line);
            break;
          case memsim::L2Op::PageOnly:
            dram = true;  // bypass load: counters charged in phase 1
            break;
        }
        if (dram && track_pages)
          pages[static_cast<std::size_t>(e.block - seg_block0)].insert(
              e.page_key);
      }
    }
    for (ShardState& sh : st) sh.l1.events().clear();
    // Page-locality overhead, once per completed block (blocks never span
    // waves, so per-segment page sets are final).  A pure counter add, so
    // charging after the merge instead of at block completion is exact.
    if (track_pages)
      for (std::size_t i = 0; i < seg_blocks; ++i)
        hier.charge_page_overhead(static_cast<double>(pages[i].size()) *
                                  arch.page_open_bytes);
  }

  // Merge: shard-partial counters are disjoint sums of the serial replay's
  // (each core, block, and instruction has exactly one owner), so straight
  // addition reproduces the serial totals exactly.
  std::vector<detail::CoreUse> cores(
      static_cast<std::size_t>(arch.num_cores));
  for (const ShardState& sh : st) {
    hier.merge_traffic(sh.l1.traffic());
    rep.blocks_run += sh.blocks_run;
    rep.warp_insts += sh.warp_insts;
    rep.flops_executed += sh.flops;
    rep.spill_bytes += sh.spill_bytes;
    for (std::size_t c = 0; c < cores.size(); ++c) {
      cores[c].fp_lanes += sh.cores[c].fp_lanes;
      cores[c].int_lanes += sh.cores[c].int_lanes;
      cores[c].shuffle_lanes += sh.cores[c].shuffle_lanes;
      cores[c].l1_bytes += sh.cores[c].l1_bytes;
      cores[c].mem_insts += sh.cores[c].mem_insts;
      cores[c].serial_cycles += sh.cores[c].serial_cycles;
    }
  }
  hier.flush_l2();
  rep.traffic = hier.traffic();
  detail::finalize_timing(rep, cores, arch, kernel);
  return rep;
}

// The SoA CountersOnly sharded engine: replay_counters() restructured into
// the two-phase scheme of replay_sharded_reference().  Lumped groups never
// straddle a shard (boundaries are G-aligned), so a group leader appends
// its mates' shifted L2 events -- with final page keys -- directly into its
// shard's log, and phase 2 is byte-for-byte the reference merge.
KernelReport ExecPlan::replay_counters_sharded(memsim::MemoryHierarchy& hier,
                                               int nshards,
                                               int used_cores) const {
  const Kernel& kernel = *kernel_;
  const arch::GpuArch& arch = *arch_;
  const long total_blocks = kernel.blocks.volume();
  const long R = std::min<long>(arch.max_resident_blocks(), total_blocks);
  const int C = arch.num_cores;
  const long G = lump_G_;
  const bool lump = G > 1;
  if (lump) {
    // G divides both num_cores and R, hence used_cores = min of multiples.
    nshards = std::min(nshards, used_cores / static_cast<int>(G));
    if (nshards <= 1) return replay_counters(hier);
  }

  hier.reset();
  const bool rmw_stores = !kernel.streaming_stores;
  const bool track_pages = kernel.read_streams > 1;
  const std::size_t ninsts = insts_.size();
  const Geom geom = make_geom(arch, kernel, vec_bytes_);
  const std::uint64_t dbytes = lump_delta_bytes_;
  const std::uint64_t dlines =
      lump ? dbytes / static_cast<std::uint64_t>(geom.line) : 0;
  const long nrounds =
      ninsts == 0 ? 1 : static_cast<long>((ninsts + kSlice - 1) / kSlice);
  const long nwaves = (total_blocks + R - 1) / R;

  struct CShard {
    memsim::L1Shard l1;
    memsim::Traffic lt;                  ///< lumped windows' L1-side traffic
    std::vector<int> slots;              ///< owned slot ids, ascending
    std::vector<detail::CoreUse> cores;  ///< full-size; only owned rows used
    std::vector<std::uint64_t> addr, pkey, addend;
    std::vector<std::uint8_t> byp;
    WindowScratch ws;
    std::uint64_t blocks_run = 0, warp_insts = 0, flops = 0, spill_bytes = 0;
    CShard(const arch::GpuArch& a, int c0, int c1)
        : l1(a, c0, c1), cores(static_cast<std::size_t>(a.num_cores)) {}
  };
  std::vector<CShard> st;
  st.reserve(static_cast<std::size_t>(nshards));
  const int align = lump ? static_cast<int>(G) : 1;
  const int units = used_cores / align;
  for (int i = 0; i < nshards; ++i) {
    const int c0 = i * units / nshards * align;
    const int c1 = (i + 1) * units / nshards * align;
    st.emplace_back(arch, c0, c1);
    CShard& sh = st.back();
    for (int s = 0; s < static_cast<int>(R); ++s) {
      const int core = s % C;
      if (core >= c0 && core < c1) sh.slots.push_back(s);
    }
    sh.addr.resize(sh.slots.size() * ninsts);
    sh.pkey.resize(sh.slots.size() * ninsts);
    sh.byp.resize(sh.slots.size() * ninsts);
    sh.addend.resize(addend_slots());
  }

  auto run_shard_segment = [&](CShard& sh, long w0, long w1) {
    for (long wave = w0; wave < w1; ++wave) {
      const long nslots = std::min(R, total_blocks - wave * R);
      for (std::size_t li = 0; li < sh.slots.size(); ++li) {
        const int s = sh.slots[li];
        if (s >= nslots) break;  // slots ascend; the tail idles this wave
        const long blin = wave * R + s;
        detail::CoreUse& cu = sh.cores[static_cast<std::size_t>(blin % C)];
        cu.fp_lanes += alu_.fp_lanes;
        cu.int_lanes += alu_.int_lanes;
        cu.shuffle_lanes += alu_.shuffle_lanes;
        sh.flops += alu_.flops;
        sh.warp_insts += alu_.warp_insts;
        if (lump && (s % G) != 0) continue;
        fill_block_addresses(blin, sh.addr.data() + li * ninsts,
                             sh.pkey.data() + li * ninsts,
                             sh.byp.data() + li * ninsts, sh.addend.data());
      }
      for (long round = 0; round < nrounds; ++round) {
        const std::uint64_t okey_base =
            (static_cast<std::uint64_t>(wave) * nrounds +
             static_cast<std::uint64_t>(round)) *
            static_cast<std::uint64_t>(R);
        const std::size_t pc0 = static_cast<std::size_t>(round) * kSlice;
        const std::size_t pc_end = std::min(ninsts, pc0 + kSlice);
        const bool completes = pc_end >= ninsts;
        for (std::size_t li = 0; li < sh.slots.size(); ++li) {
          const int s = sh.slots[li];
          if (s >= nslots) break;
          const long blin = wave * R + s;
          const int core = static_cast<int>(blin % C);
          const std::uint64_t order =
              okey_base + static_cast<std::uint64_t>(s);
          if (!lump) {
            detail::CoreUse& cu = sh.cores[static_cast<std::size_t>(core)];
            const std::uint64_t* arow = sh.addr.data() + li * ninsts;
            const std::uint64_t* prow = sh.pkey.data() + li * ninsts;
            const std::uint8_t* brow = sh.byp.data() + li * ninsts;
            const std::uint32_t blk = static_cast<std::uint32_t>(blin);
            for (std::size_t i = pc0; i < pc_end; ++i) {
              const std::uint8_t f = soa_.flags[i];
              const bool store = (f & kSoaStore) != 0;
              if (f & kSoaSpill) {
                const auto shape = sh.l1.scratch_access(vec_bytes_, store);
                cu.mem_insts += shape.lines;
                cu.l1_bytes += shape.sectors * geom.sector_bytes;
                sh.spill_bytes += vec_bytes_;
                continue;
              }
              const auto shape =
                  sh.l1.access(core, arow[i], vec_bytes_, store,
                               store ? false : brow[i] != 0,
                               store ? rmw_stores : false, order, blk,
                               prow[i]);
              cu.mem_insts += shape.lines;
              cu.l1_bytes += shape.sectors * geom.sector_bytes;
              if (!store) cu.serial_cycles += geom.extra_load_cycles;
            }
            sh.warp_insts += pc_end - pc0;
            if (completes) ++sh.blocks_run;
          } else if ((s % G) == 0) {
            exec_lump_window(soa_, pc0, pc_end,
                             sh.addr.data() + li * ninsts,
                             sh.pkey.data() + li * ninsts,
                             sh.byp.data() + li * ninsts, geom,
                             sh.l1.l1(core),
                             sh.cores[static_cast<std::size_t>(core)], sh.ws);
            for (long r = 1; r < G; ++r)
              apply_window_counters(
                  sh.ws, geom, sh.cores[static_cast<std::size_t>(core + r)]);
            sh.warp_insts += sh.ws.insts * static_cast<std::uint64_t>(G);
            sh.spill_bytes +=
                sh.ws.spills * vec_bytes_ * static_cast<std::uint64_t>(G);
            add_scaled_traffic(sh.lt, sh.ws.t,
                               static_cast<std::uint64_t>(G));
            auto& log = sh.l1.events();
            for (long r = 0; r < G; ++r) {
              const std::uint64_t dl = static_cast<std::uint64_t>(r) * dlines;
              const std::uint64_t db = static_cast<std::uint64_t>(r) * dbytes;
              const std::uint32_t blk = static_cast<std::uint32_t>(blin + r);
              for (const WinEvent& e : sh.ws.ev)
                log.push_back(
                    {order + static_cast<std::uint64_t>(r), e.line + dl,
                     (e.op & kWinBrickKey) ? (e.pk + db) >> 12 : e.pk, blk,
                     win_to_l2(e.op)});
            }
            if (completes) sh.blocks_run += static_cast<std::uint64_t>(G);
          }
          // Lumped mates: applied at their leader's turn, nothing to do.
        }
      }
    }
  };

  std::size_t nmem = 0;
  for (const PlanInst& in : insts_)
    if (in.kind == PKind::LoadArray || in.kind == PKind::StoreArray ||
        in.kind == PKind::LoadBrick || in.kind == PKind::StoreBrick)
      ++nmem;
  const std::uint64_t lines_bound =
      vec_bytes_ / static_cast<std::uint32_t>(arch.l1.line_bytes) + 1;
  const std::uint64_t events_per_wave = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(R) * nmem * lines_bound);
  constexpr std::uint64_t kEventBudget = 1ull << 21;  // ~64 MB of events
  const long seg_waves = static_cast<long>(
      std::max<std::uint64_t>(1, kEventBudget / events_per_wave));

  KernelReport rep;
  std::vector<PageSet> pages;
  ThreadPool& pool = cached_shard_pool(nshards - 1);
  for (long w0 = 0; w0 < nwaves; w0 += seg_waves) {
    const long w1 = std::min(nwaves, w0 + seg_waves);
    for (std::size_t i = 1; i < st.size(); ++i) {
      CShard& sh = st[i];
      pool.submit([&sh, w0, w1, &run_shard_segment] {
        run_shard_segment(sh, w0, w1);
      });
    }
    run_shard_segment(st[0], w0, w1);
    pool.wait();

    const long seg_block0 = w0 * R;
    const std::size_t seg_blocks = static_cast<std::size_t>(
        std::min(total_blocks, w1 * R) - seg_block0);
    if (track_pages) {
      if (pages.size() < seg_blocks) pages.resize(seg_blocks);
      for (std::size_t i = 0; i < seg_blocks; ++i) pages[i].clear();
    }
    std::vector<std::size_t> pos(st.size(), 0);
    for (;;) {
      int best = -1;
      std::uint64_t best_key = 0;
      for (std::size_t i = 0; i < st.size(); ++i) {
        const auto& ev = st[i].l1.events();
        if (pos[i] < ev.size() &&
            (best < 0 || ev[pos[i]].order < best_key)) {
          best = static_cast<int>(i);
          best_key = ev[pos[i]].order;
        }
      }
      if (best < 0) break;
      const auto& ev = st[static_cast<std::size_t>(best)].l1.events();
      std::size_t& p = pos[static_cast<std::size_t>(best)];
      while (p < ev.size() && ev[p].order == best_key) {
        const memsim::ShardEvent& e = ev[p++];
        bool dram = false;
        switch (e.op) {
          case memsim::L2Op::Load:
            dram = hier.replay_l2_load(e.line);
            break;
          case memsim::L2Op::StoreFull:
            dram = hier.replay_l2_store_full(e.line);
            break;
          case memsim::L2Op::StorePartial:
            dram = hier.replay_l2_store_partial(e.line);
            break;
          case memsim::L2Op::PageOnly:
            dram = true;  // bypass load: counters charged in phase 1
            break;
        }
        if (dram && track_pages)
          pages[static_cast<std::size_t>(e.block - seg_block0)].insert(
              e.page_key);
      }
    }
    for (CShard& sh : st) sh.l1.events().clear();
    if (track_pages)
      for (std::size_t i = 0; i < seg_blocks; ++i)
        hier.charge_page_overhead(static_cast<double>(pages[i].size()) *
                                  arch.page_open_bytes);
  }

  std::vector<detail::CoreUse> cores(static_cast<std::size_t>(C));
  for (const CShard& sh : st) {
    hier.merge_traffic(sh.l1.traffic());
    hier.merge_traffic(sh.lt);
    rep.blocks_run += sh.blocks_run;
    rep.warp_insts += sh.warp_insts;
    rep.flops_executed += sh.flops;
    rep.spill_bytes += sh.spill_bytes;
    for (std::size_t c = 0; c < cores.size(); ++c) {
      cores[c].fp_lanes += sh.cores[c].fp_lanes;
      cores[c].int_lanes += sh.cores[c].int_lanes;
      cores[c].shuffle_lanes += sh.cores[c].shuffle_lanes;
      cores[c].l1_bytes += sh.cores[c].l1_bytes;
      cores[c].mem_insts += sh.cores[c].mem_insts;
      cores[c].serial_cycles += sh.cores[c].serial_cycles;
    }
  }
  hier.flush_l2();
  rep.traffic = hier.traffic();
  detail::finalize_timing(rep, cores, arch, kernel);
  return rep;
}

}  // namespace bricksim::simt
