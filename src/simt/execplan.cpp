#include "simt/execplan.h"

#include <algorithm>

#include "common/error.h"
#include "simt/issue_model.h"

namespace bricksim::simt {

namespace {

/// Inverse of the block linearization (identical to the interpreter's).
Vec3 unlinearize(long b, const Vec3& n) {
  Vec3 v;
  v.i = static_cast<int>(b % n.i);
  v.j = static_cast<int>((b / n.i) % n.j);
  v.k = static_cast<int>(b / (static_cast<long>(n.i) * n.j));
  return v;
}

constexpr int kSlice = 16;  // instructions per block per scheduling round

}  // namespace

ExecPlan::ExecPlan(const Kernel& kernel, const arch::GpuArch& arch,
                   ExecMode mode)
    : kernel_(&kernel), arch_(&arch), mode_(mode) {
  BRICKSIM_REQUIRE(kernel.program != nullptr, "kernel without a program");
  const ir::Program& prog = *kernel.program;
  prog.verify();
  BRICKSIM_REQUIRE(kernel.tile.i % prog.vec_width() == 0,
                   "tile inner extent must be a multiple of the program "
                   "vector width (vector folding)");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.grids.size()) >= prog.num_grids(),
                   "not enough grid bindings for the program");
  BRICKSIM_REQUIRE(static_cast<int>(kernel.constants.size()) >=
                       prog.num_constants(),
                   "not enough constant values bound");
  const long total_blocks = kernel.blocks.volume();
  BRICKSIM_REQUIRE(total_blocks > 0, "empty launch grid");

  W_ = prog.vec_width();
  vec_bytes_ = static_cast<std::uint32_t>(W_) * kElemBytes;
  if ((vec_bytes_ & (vec_bytes_ - 1)) == 0) vec_mask_ = vec_bytes_ - 1;
  num_vregs_ = prog.num_vregs();
  num_spill_slots_ = prog.num_spill_slots();
  const bool functional = mode == ExecMode::Functional;

  // Grid templates: device base, functional pointer, and the element stride
  // of one block step along each launch axis (array layout; meaningless and
  // unused for brick grids, whose `padded` is zero).
  grids_.reserve(kernel.grids.size());
  for (const GridBinding& g : kernel.grids) {
    GridPlan gp;
    gp.base = g.device_base;
    gp.data = g.data;
    gp.bi = kernel.tile.i;
    gp.bj = static_cast<std::int64_t>(kernel.tile.j) * g.padded.i;
    gp.bk = static_cast<std::int64_t>(kernel.tile.k) * g.padded.i * g.padded.j;
    gp.adjacency = g.adjacency.data();
    gp.block_to_brick = g.block_to_brick.data();
    gp.elems_per_brick = g.elems_per_brick;
    grids_.push_back(gp);
  }

  // Largest per-grid block offset in the launch: the offset is monotone in
  // each block coordinate, so the (blocks - 1) corner bounds every block.
  auto max_block_offset = [&](const GridPlan& gp) {
    return static_cast<std::int64_t>(kernel.blocks.i - 1) * gp.bi +
           static_cast<std::int64_t>(kernel.blocks.j - 1) * gp.bj +
           static_cast<std::int64_t>(kernel.blocks.k - 1) * gp.bk;
  };

  auto decode_mem = [&](const ir::Inst& in, bool is_store) {
    const ir::MemRef& m = in.mem;
    PlanInst p;
    p.grid = static_cast<std::uint8_t>(m.grid);
    if (is_store)
      p.a = static_cast<std::uint32_t>(in.a) * W_;
    else
      p.dst = static_cast<std::uint32_t>(in.dst) * W_;
    if (m.space == ir::Space::Spill) {
      p.kind = is_store ? PKind::StoreSpill : PKind::LoadSpill;
      p.idx0 = static_cast<std::int64_t>(m.slot) * W_;
      insts_.push_back(p);
      return;
    }
    const GridBinding& g = kernel.grids[m.grid];
    if (functional)
      BRICKSIM_ASSERT(g.data != nullptr,
                      is_store ? "functional store without data"
                               : "functional load without data");
    if (m.space == ir::Space::Array) {
      p.kind = is_store ? PKind::StoreArray : PKind::LoadArray;
      p.bypass_candidate = !is_store && m.vectorized;
      const Vec3 e0{g.ghost.i + m.di, g.ghost.j + m.dj, g.ghost.k + m.dk};
      p.idx0 = linear_index(e0, g.padded);
      p.row_key0 = (1ull << 62) |
                   (static_cast<std::uint64_t>(m.grid) << 56) |
                   (static_cast<std::uint64_t>(e0.k) << 28) |
                   static_cast<std::uint64_t>(e0.j);
      // Whole-launch bounds check, hoisted out of the replay loop: block
      // offsets are non-negative and maximal at the far-corner block.
      BRICKSIM_ASSERT(p.idx0 >= 0, "array access before the buffer");
      BRICKSIM_ASSERT(g.data == nullptr ||
                          p.idx0 + max_block_offset(grids_[m.grid]) + W_ <=
                              static_cast<std::int64_t>(g.len),
                      "array access out of bounds");
    } else {
      p.kind = is_store ? PKind::StoreBrick : PKind::LoadBrick;
      BRICKSIM_ASSERT(!g.block_to_brick.empty(), "brick binding without map");
      BRICKSIM_ASSERT(static_cast<long>(g.block_to_brick.size()) >=
                          total_blocks,
                      "block-to-brick map smaller than the launch grid");
      p.nbr_code = static_cast<std::uint8_t>((m.nbr_dk + 1) * 9 +
                                             (m.nbr_dj + 1) * 3 +
                                             (m.nbr_di + 1));
      p.idx0 = (static_cast<std::int64_t>(m.vk) * g.brick_dims.j + m.vj) *
                   g.brick_dims.i +
               static_cast<std::int64_t>(m.vi) * W_;
    }
    insts_.push_back(p);
  };

  for (const ir::Inst& in : prog.insts()) {
    switch (in.op) {
      case ir::Op::VLoad:
        decode_mem(in, /*is_store=*/false);
        break;
      case ir::Op::VStore:
        decode_mem(in, /*is_store=*/true);
        break;
      case ir::Op::VAlign:
        if (functional) {
          PlanInst p;
          p.kind = PKind::Align;
          p.dst = static_cast<std::uint32_t>(in.dst) * W_;
          p.a = static_cast<std::uint32_t>(in.a) * W_;
          p.b = static_cast<std::uint32_t>(in.b) * W_;
          p.shift_or_iops = in.shift;
          insts_.push_back(p);
        } else {
          alu_.shuffle_lanes += W_ * kernel.shuffle_cost_mult;
          ++alu_.warp_insts;
        }
        break;
      case ir::Op::VAddV:
      case ir::Op::VMulV:
      case ir::Op::VMulC:
      case ir::Op::VFmaV:
      case ir::Op::VFmaC:
      case ir::Op::VSetC:
      case ir::Op::VZero:
        if (functional) {
          PlanInst p;
          switch (in.op) {
            case ir::Op::VAddV: p.kind = PKind::AddV; break;
            case ir::Op::VMulV: p.kind = PKind::MulV; break;
            case ir::Op::VFmaV: p.kind = PKind::FmaV; break;
            case ir::Op::VMulC: p.kind = PKind::MulC; break;
            case ir::Op::VFmaC: p.kind = PKind::FmaC; break;
            case ir::Op::VSetC: p.kind = PKind::SetC; break;
            default:            p.kind = PKind::Zero; break;
          }
          p.dst = static_cast<std::uint32_t>(in.dst) * W_;
          if (in.a >= 0) p.a = static_cast<std::uint32_t>(in.a) * W_;
          if (in.b >= 0) p.b = static_cast<std::uint32_t>(in.b) * W_;
          if (in.c >= 0) p.c = static_cast<std::uint32_t>(in.c) * W_;
          if (in.cidx >= 0) p.cv = kernel.constants[in.cidx];
          insts_.push_back(p);
        } else {
          alu_.fp_lanes += W_;
          ++alu_.warp_insts;
          if (in.op == ir::Op::VAddV || in.op == ir::Op::VMulV ||
              in.op == ir::Op::VMulC)
            alu_.flops += W_;
          else if (in.op == ir::Op::VFmaV || in.op == ir::Op::VFmaC)
            alu_.flops += 2ull * W_;
        }
        break;
      case ir::Op::IOp:
        if (functional) {
          PlanInst p;
          p.kind = PKind::IOp;
          p.shift_or_iops = in.iops;
          insts_.push_back(p);
        } else {
          alu_.int_lanes += static_cast<double>(in.iops) * W_;
          alu_.warp_insts += in.iops;
        }
        break;
    }
  }
}

KernelReport ExecPlan::replay(memsim::MemoryHierarchy& hier) const {
  const Kernel& kernel = *kernel_;
  const arch::GpuArch& arch = *arch_;
  hier.reset();

  const int W = W_;
  const long total_blocks = kernel.blocks.volume();
  const int resident = static_cast<int>(
      std::min<long>(arch.max_resident_blocks(), total_blocks));
  const bool functional = mode_ == ExecMode::Functional;
  const double shuffle_lanes_per_align = W * kernel.shuffle_cost_mult;
  const double l1_sector_bytes = arch.l1.sector_bytes;
  const bool bypass_loads = kernel.bypass_l2_unaligned_vloads;
  const bool rmw_stores = !kernel.streaming_stores;
  const std::size_t ngrids = grids_.size();

  KernelReport rep;
  std::vector<detail::CoreUse> cores(arch.num_cores);

  // One scratch arena for all resident blocks, zeroed once: programs are
  // verified free of use-before-def (ExecPlan construction ran
  // ir::Program::verify()), so a block never observes its predecessor's
  // register or spill values and per-block re-zeroing would be dead work.
  const std::size_t reg_elems =
      functional ? static_cast<std::size_t>(num_vregs_) * W : 0;
  const std::size_t spill_elems =
      functional ? static_cast<std::size_t>(num_spill_slots_) * W : 0;
  std::vector<double> arena(
      static_cast<std::size_t>(resident) * (reg_elems + spill_elems), 0.0);
  std::vector<std::int64_t> goff(static_cast<std::size_t>(resident) * ngrids,
                                 0);

  /// Execution state of one resident thread block.
  struct Slot {
    long blin = -1;
    int core = 0;
    std::size_t pc = 0;
    bool active = false;
    double* regs = nullptr;
    double* spills = nullptr;
    std::int64_t* goff = nullptr;  ///< per-grid block element offsets
    std::uint64_t row_add = 0;     ///< per-block row-key addend
    PageSet pages;
  };
  std::vector<Slot> slots(resident);
  for (int n = 0; n < resident; ++n) {
    slots[n].regs = arena.data() +
                    static_cast<std::size_t>(n) * (reg_elems + spill_elems);
    slots[n].spills = slots[n].regs + reg_elems;
    slots[n].goff = goff.data() + static_cast<std::size_t>(n) * ngrids;
  }

  long next_block = 0;
  int active = 0;
  auto assign = [&](Slot& s) -> bool {
    if (next_block >= total_blocks) {
      s.active = false;
      return false;
    }
    s.blin = next_block++;
    const Vec3 bc = unlinearize(s.blin, kernel.blocks);
    s.core = static_cast<int>(s.blin % arch.num_cores);
    s.pc = 0;
    s.active = true;
    s.pages.clear();
    for (std::size_t g = 0; g < ngrids; ++g)
      s.goff[g] = bc.i * grids_[g].bi + bc.j * grids_[g].bj +
                  bc.k * grids_[g].bk;
    s.row_add = (static_cast<std::uint64_t>(bc.k) * kernel.tile.k << 28) +
                static_cast<std::uint64_t>(bc.j) * kernel.tile.j;
    if (!functional) {
      detail::CoreUse& cu = cores[s.core];
      cu.fp_lanes += alu_.fp_lanes;
      cu.int_lanes += alu_.int_lanes;
      cu.shuffle_lanes += alu_.shuffle_lanes;
      rep.flops_executed += alu_.flops;
      rep.warp_insts += alu_.warp_insts;
    }
    return true;
  };
  for (auto& s : slots)
    if (assign(s)) ++active;

  std::vector<double> tmp(W);  // VAlign scratch (dst may alias a source)
  const PlanInst* const ip = insts_.data();
  const std::size_t ninsts = insts_.size();

  while (active > 0) {
    for (auto& s : slots) {
      if (!s.active) continue;
      detail::CoreUse& cu = cores[s.core];
      const std::size_t end = std::min(ninsts, s.pc + kSlice);
      for (; s.pc < end; ++s.pc) {
        const PlanInst& in = ip[s.pc];
        switch (in.kind) {
          case PKind::LoadArray: {
            const GridPlan& g = grids_[in.grid];
            const std::int64_t idx = in.idx0 + s.goff[in.grid];
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const bool bypass =
                bypass_loads && in.bypass_candidate &&
                (vec_mask_ ? (addr & vec_mask_) != 0
                           : (addr % vec_bytes_) != 0);
            const auto shape =
                hier.access(s.core, addr, vec_bytes_, false, bypass);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            cu.serial_cycles += kernel.extra_cycles_per_load;
            if (shape.dram_touch) s.pages.insert(in.row_key0 + s.row_add);
            if (functional) {
              const double* src = g.data + idx;
              std::copy(src, src + W, s.regs + in.dst);
            }
            break;
          }
          case PKind::StoreArray: {
            const GridPlan& g = grids_[in.grid];
            const std::int64_t idx = in.idx0 + s.goff[in.grid];
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const auto shape = hier.access(s.core, addr, vec_bytes_, true,
                                           /*bypass_l2=*/false, rmw_stores);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            if (shape.dram_touch) s.pages.insert(in.row_key0 + s.row_add);
            if (functional) {
              const double* src = s.regs + in.a;
              std::copy(src, src + W, g.data + idx);
            }
            break;
          }
          case PKind::LoadBrick: {
            const GridPlan& g = grids_[in.grid];
            std::uint32_t bid =
                g.block_to_brick[static_cast<std::size_t>(s.blin)];
            if (in.nbr_code != 13)
              bid = g.adjacency[static_cast<std::size_t>(bid) * 27 +
                                in.nbr_code];
            const std::int64_t idx =
                static_cast<std::int64_t>(bid) * g.elems_per_brick + in.idx0;
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const auto shape =
                hier.access(s.core, addr, vec_bytes_, false, false);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            cu.serial_cycles += kernel.extra_cycles_per_load;
            if (shape.dram_touch) s.pages.insert(addr >> 12);
            if (functional) {
              const double* src = g.data + idx;
              std::copy(src, src + W, s.regs + in.dst);
            }
            break;
          }
          case PKind::StoreBrick: {
            const GridPlan& g = grids_[in.grid];
            std::uint32_t bid =
                g.block_to_brick[static_cast<std::size_t>(s.blin)];
            if (in.nbr_code != 13)
              bid = g.adjacency[static_cast<std::size_t>(bid) * 27 +
                                in.nbr_code];
            const std::int64_t idx =
                static_cast<std::int64_t>(bid) * g.elems_per_brick + in.idx0;
            const std::uint64_t addr =
                g.base + static_cast<std::uint64_t>(idx) * kElemBytes;
            const auto shape = hier.access(s.core, addr, vec_bytes_, true,
                                           /*bypass_l2=*/false, rmw_stores);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            if (shape.dram_touch) s.pages.insert(addr >> 12);
            if (functional) {
              const double* src = s.regs + in.a;
              std::copy(src, src + W, g.data + idx);
            }
            break;
          }
          case PKind::LoadSpill: {
            const auto shape = hier.scratch_access(vec_bytes_, false);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            rep.spill_bytes += vec_bytes_;
            if (functional) {
              const double* src = s.spills + in.idx0;
              std::copy(src, src + W, s.regs + in.dst);
            }
            break;
          }
          case PKind::StoreSpill: {
            const auto shape = hier.scratch_access(vec_bytes_, true);
            cu.mem_insts += shape.lines;
            cu.l1_bytes += shape.sectors * l1_sector_bytes;
            rep.spill_bytes += vec_bytes_;
            if (functional) {
              const double* src = s.regs + in.a;
              std::copy(src, src + W, s.spills + in.idx0);
            }
            break;
          }
          case PKind::Align: {
            cu.shuffle_lanes += shuffle_lanes_per_align;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              for (int l = 0; l < W; ++l) {
                const int sh = in.shift_or_iops + l;
                tmp[l] = sh < W ? a[sh] : b[sh - W];
              }
              std::copy(tmp.begin(), tmp.end(), s.regs + in.dst);
            }
            break;
          }
          case PKind::AddV: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] + b[l];
            }
            break;
          }
          case PKind::MulV: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] * b[l];
            }
            break;
          }
          case PKind::FmaV: {
            cu.fp_lanes += W;
            rep.flops_executed += 2ull * W;
            if (functional) {
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              const double* c = s.regs + in.c;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] * b[l] + c[l];
            }
            break;
          }
          case PKind::MulC: {
            cu.fp_lanes += W;
            rep.flops_executed += W;
            if (functional) {
              const double cv = in.cv;
              const double* a = s.regs + in.a;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] * cv;
            }
            break;
          }
          case PKind::FmaC: {
            cu.fp_lanes += W;
            rep.flops_executed += 2ull * W;
            if (functional) {
              const double cv = in.cv;
              const double* a = s.regs + in.a;
              const double* b = s.regs + in.b;
              double* d = s.regs + in.dst;
              for (int l = 0; l < W; ++l) d[l] = a[l] + b[l] * cv;
            }
            break;
          }
          case PKind::SetC: {
            cu.fp_lanes += W;
            if (functional) {
              double* d = s.regs + in.dst;
              std::fill(d, d + W, in.cv);
            }
            break;
          }
          case PKind::Zero: {
            cu.fp_lanes += W;
            if (functional) {
              double* d = s.regs + in.dst;
              std::fill(d, d + W, 0.0);
            }
            break;
          }
          case PKind::IOp: {
            cu.int_lanes += static_cast<double>(in.shift_or_iops) * W;
            rep.warp_insts += in.shift_or_iops - 1;  // +1 added below
            break;
          }
        }
        rep.warp_insts += 1;
      }
      if (s.pc >= ninsts) {
        // Page-locality overhead: each distinct activation granule this
        // block reached DRAM for costs row-activation / TLB-walk traffic.
        // Single-stream kernels are exempt: a sequential stream keeps its
        // DRAM row open and never pays the switch cost.
        if (kernel.read_streams > 1)
          hier.charge_page_overhead(static_cast<double>(s.pages.size()) *
                                    arch.page_open_bytes);
        ++rep.blocks_run;
        if (!assign(s)) --active;
      }
    }
  }

  // Drain dirty output lines: an out-of-place stencil's stores all reach
  // HBM eventually, so end-of-kernel residue is counted as written back.
  hier.flush_l2();
  rep.traffic = hier.traffic();
  detail::finalize_timing(rep, cores, arch, kernel);
  return rep;
}

}  // namespace bricksim::simt
