// Performance-portability metrics (paper Section 5.2).
//
//  * Pennycook's metric P: the harmonic mean of per-platform performance
//    efficiencies, zero if any platform is unsupported/zero.
//  * Two efficiency definitions: fraction of the (empirical) Roofline at
//    the measured arithmetic intensity, and the paper's new fraction of
//    THEORETICAL arithmetic intensity (how close data movement comes to the
//    compulsory-miss bound of an infinite cache).
//  * The potential-speedup model of Figure 7: plotting fraction-of-AI (x)
//    against fraction-of-Roofline (y) puts every platform/model on one
//    chart; iso-curves x*y = 1/s mark a constant potential speedup s from
//    any mix of better data locality and better code generation.
//  * Correlation pairs (Figures 5/6): the same metric measured under two
//    programming models on one architecture, one per axis.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "dsl/stencil.h"
#include "profiler/profiler.h"
#include "roofline/roofline.h"

namespace bricksim::metrics {

/// Pennycook performance portability: |H| / sum(1/e_i); 0 when any
/// efficiency is <= 0 (unsupported platform).
double pennycook_p(std::span<const double> efficiencies);

/// The consistency companions to P from the studies the paper builds on
/// (its references [12, 28]): P alone hides whether performance is
/// uniformly mediocre or mostly-great-with-one-outlier.
struct EfficiencySummary {
  double p = 0;         ///< Pennycook harmonic mean
  double min = 0;       ///< worst platform
  double max = 0;       ///< best platform
  double stddev = 0;    ///< spread
  double cv = 0;        ///< coefficient of variation (stddev / mean)
  double min_max = 0;   ///< min/max ratio: 1 = perfectly consistent
};

EfficiencySummary summarize_efficiencies(std::span<const double> effs);

/// e_i = achieved GFLOP/s over Roofline-attainable GFLOP/s at measured AI.
double fraction_of_roofline(const roofline::Roofline& rl,
                            const profiler::Measurement& m);

/// e_i = measured AI over the stencil's theoretical (compulsory-bound) AI.
/// Capped at 1 (a cache can deliver at most compulsory-only traffic over a
/// whole out-of-place kernel; above-unity readings would be ghost effects).
double fraction_of_theoretical_ai(const dsl::Stencil& stencil,
                                  const profiler::Measurement& m);

/// Potential speedup = 1 / (frac_ai * frac_roofline): how much faster the
/// kernel could get from ideal locality AND ideal code generation.
double potential_speedup(double frac_ai, double frac_roofline);

/// Theoretical lower bound on bytes moved for an out-of-place stencil over
/// `domain`: one read and one write per point (2.15 GB at 512^3).
std::uint64_t compulsory_bytes(Vec3 domain);

/// One point of a correlation plot: the same (stencil, variant) measured
/// under two programming models.
struct CorrPoint {
  std::string stencil;
  std::string variant;
  double x = 0;  ///< metric under the x-axis model
  double y = 0;  ///< metric under the y-axis model
};

enum class CorrMetric { Gflops, HbmGbytes };

/// Pairs measurements by (stencil, variant); `ys` provides the y axis.
/// Measurements present on only one side are skipped.
std::vector<CorrPoint> correlate(
    std::span<const profiler::Measurement> ys,
    std::span<const profiler::Measurement> xs, CorrMetric metric);

/// Aggregated analysis::brickcheck statistics over a set of measurements:
/// every Roofline/portability number in a report should be traceable to a
/// kernel the static verifier passed, so the rollup travels with the
/// metrics rather than being a side channel.
struct CheckRollup {
  long kernels = 0;   ///< measurements with the pass enabled
  long insts = 0;     ///< total instructions verified
  long errors = 0;
  long warnings = 0;
  long clean = 0;     ///< kernels with zero diagnostics

  /// Fraction of checked kernels with no diagnostics at all (1 when none
  /// were checked: no evidence of a problem).
  double clean_fraction() const {
    return kernels > 0
               ? static_cast<double>(clean) / static_cast<double>(kernels)
               : 1.0;
  }

  friend bool operator==(const CheckRollup&, const CheckRollup&) = default;
};

CheckRollup rollup_checks(std::span<const profiler::Measurement> ms);

/// Lossless JSON round trip for the audit-trail artifact:
/// check_rollup_from_json(to_json(r)) == r.
json::Value to_json(const CheckRollup& r);
CheckRollup check_rollup_from_json(const json::Value& v);

}  // namespace bricksim::metrics
