#include "metrics/metrics.h"

#include <algorithm>

#include "common/stats.h"

namespace bricksim::metrics {

double pennycook_p(std::span<const double> efficiencies) {
  return harmonic_mean(efficiencies);
}

EfficiencySummary summarize_efficiencies(std::span<const double> effs) {
  EfficiencySummary s;
  if (effs.empty()) return s;
  s.p = pennycook_p(effs);
  s.min = min_of(effs);
  s.max = max_of(effs);
  s.stddev = stddev(effs);
  const double m = mean(effs);
  s.cv = m > 0 ? s.stddev / m : 0;
  s.min_max = s.max > 0 ? s.min / s.max : 0;
  return s;
}

double fraction_of_roofline(const roofline::Roofline& rl,
                            const profiler::Measurement& m) {
  return rl.fraction(m.gflops, m.ai);
}

double fraction_of_theoretical_ai(const dsl::Stencil& stencil,
                                  const profiler::Measurement& m) {
  const double theo = stencil.theoretical_ai();
  if (theo <= 0) return 0;
  return std::min(1.0, m.ai / theo);
}

double potential_speedup(double frac_ai, double frac_roofline) {
  if (frac_ai <= 0 || frac_roofline <= 0) return 0;
  return 1.0 / (frac_ai * frac_roofline);
}

std::uint64_t compulsory_bytes(Vec3 domain) {
  return 2ull * static_cast<std::uint64_t>(domain.volume()) * kElemBytes;
}

std::vector<CorrPoint> correlate(std::span<const profiler::Measurement> ys,
                                 std::span<const profiler::Measurement> xs,
                                 CorrMetric metric) {
  auto value = [&](const profiler::Measurement& m) {
    switch (metric) {
      case CorrMetric::Gflops: return m.gflops;
      case CorrMetric::HbmGbytes:
        return static_cast<double>(m.hbm_bytes) / 1e9;
    }
    return 0.0;
  };
  std::vector<CorrPoint> out;
  for (const auto& y : ys) {
    for (const auto& x : xs) {
      if (x.stencil == y.stencil && x.variant == y.variant) {
        out.push_back({y.stencil, y.variant, value(x), value(y)});
        break;
      }
    }
  }
  return out;
}

CheckRollup rollup_checks(std::span<const profiler::Measurement> ms) {
  CheckRollup r;
  for (const auto& m : ms) {
    if (m.check_insts == 0) continue;  // pass was off for this launch
    r.kernels++;
    r.insts += m.check_insts;
    r.errors += m.check_errors;
    r.warnings += m.check_warnings;
    if (m.check_errors == 0 && m.check_warnings == 0) r.clean++;
  }
  return r;
}

json::Value to_json(const CheckRollup& r) {
  json::Value v = json::Value::object();
  v["kernels"] = r.kernels;
  v["insts"] = r.insts;
  v["errors"] = r.errors;
  v["warnings"] = r.warnings;
  v["clean"] = r.clean;
  return v;
}

CheckRollup check_rollup_from_json(const json::Value& v) {
  CheckRollup r;
  r.kernels = v.at("kernels").as_long();
  r.insts = v.at("insts").as_long();
  r.errors = v.at("errors").as_long();
  r.warnings = v.at("warnings").as_long();
  r.clean = v.at("clean").as_long();
  return r;
}

}  // namespace bricksim::metrics
