#include "memsim/cache.h"

#include <algorithm>

#include "common/error.h"

namespace bricksim::memsim {

SetAssocCache::SetAssocCache(const arch::CacheParams& params)
    : params_(params) {
  BRICKSIM_REQUIRE(params.line_bytes > 0, "cache line size must be positive");
  BRICKSIM_REQUIRE(params.associativity > 0, "associativity must be positive");
  BRICKSIM_REQUIRE(params.associativity <= 64,
                   "associativity above 64 overflows the dirty bitmask");
  const std::uint64_t lines = params.capacity_bytes / params.line_bytes;
  BRICKSIM_REQUIRE(lines >= static_cast<std::uint64_t>(params.associativity),
                   "cache must hold at least one set");
  assoc_ = params.associativity;
  sets_ = lines / assoc_;
  if ((sets_ & (sets_ - 1)) == 0) sets_mask_ = sets_ - 1;
  sets_magic_ = ~0ull / sets_ + 1;
  stride_ = static_cast<std::size_t>(assoc_) + 1;
  state_.assign(sets_ * stride_, kInvalid);
  for (std::uint64_t s = 0; s < sets_; ++s) state_[s * stride_ + assoc_] = 0;
}

SetAssocCache::Result SetAssocCache::fill_evict(std::uint64_t* blk,
                                                std::uint64_t line,
                                                bool dirty) {
  // The set is full and the block is in MRU-first order, so the victim is
  // simply the last way -- the least recently used line.
  std::uint64_t& mask = blk[assoc_];
  const std::uint64_t victim_bit = 1ull << (assoc_ - 1);
  Result r;
  r.hit = false;
  if (mask & victim_bit) {
    r.writeback = true;
    r.wb_line = blk[assoc_ - 1];
    --dirty_count_;
  }
  for (int k = assoc_ - 1; k > 0; --k) blk[k] = blk[k - 1];
  blk[0] = line;
  mask = ((mask & ~victim_bit) << 1) | (dirty ? 1u : 0u);
  if (dirty) ++dirty_count_;
  return r;
}

std::uint64_t SetAssocCache::reset() {
  const std::uint64_t dirty = dirty_count_;
  std::fill(state_.begin(), state_.end(), kInvalid);
  for (std::uint64_t s = 0; s < sets_; ++s) state_[s * stride_ + assoc_] = 0;
  dirty_count_ = 0;
  return dirty;
}

L1Tags::L1Tags(const arch::CacheParams& params) : params_(params) {
  BRICKSIM_REQUIRE(params.line_bytes > 0, "cache line size must be positive");
  BRICKSIM_REQUIRE(params.associativity > 0, "associativity must be positive");
  const std::uint64_t lines = params.capacity_bytes / params.line_bytes;
  BRICKSIM_REQUIRE(lines >= static_cast<std::uint64_t>(params.associativity),
                   "cache must hold at least one set");
  assoc_ = params.associativity;
  sets_ = lines / assoc_;
  if ((sets_ & (sets_ - 1)) == 0) sets_mask_ = sets_ - 1;
  sets_magic_ = ~0ull / sets_ + 1;
  state_.assign(sets_ * static_cast<std::size_t>(assoc_), kInvalid);
}

void L1Tags::reset() { std::fill(state_.begin(), state_.end(), kInvalid); }

void L1Tags::shift_copy_from(const L1Tags& other, std::uint64_t line_delta) {
  BRICKSIM_REQUIRE(sets_ == other.sets_ && assoc_ == other.assoc_,
                   "shift_copy_from requires identical geometry");
  // All tags of one source set share (tag mod sets_), so shifted they all
  // share ((tag + delta) mod sets_): sets move wholesale, recency order
  // intact, to a destination rotated by (delta mod sets_).
  const std::uint64_t rot = line_delta % sets_;
  const std::size_t stride = static_cast<std::size_t>(assoc_);
  for (std::uint64_t s = 0; s < sets_; ++s) {
    std::uint64_t d = s + rot;
    if (d >= sets_) d -= sets_;
    const std::uint64_t* src = other.state_.data() + s * stride;
    std::uint64_t* dst = state_.data() + d * stride;
    for (int w = 0; w < assoc_; ++w)
      dst[w] = src[w] == kInvalid ? kInvalid : src[w] + line_delta;
  }
}

}  // namespace bricksim::memsim
