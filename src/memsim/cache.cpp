#include "memsim/cache.h"

#include <algorithm>

#include "common/error.h"

namespace bricksim::memsim {

SetAssocCache::SetAssocCache(const arch::CacheParams& params)
    : params_(params) {
  BRICKSIM_REQUIRE(params.line_bytes > 0, "cache line size must be positive");
  BRICKSIM_REQUIRE(params.associativity > 0, "associativity must be positive");
  BRICKSIM_REQUIRE(params.associativity <= 64,
                   "associativity above 64 overflows the dirty bitmask");
  const std::uint64_t lines = params.capacity_bytes / params.line_bytes;
  BRICKSIM_REQUIRE(lines >= static_cast<std::uint64_t>(params.associativity),
                   "cache must hold at least one set");
  assoc_ = params.associativity;
  sets_ = lines / assoc_;
  if ((sets_ & (sets_ - 1)) == 0) sets_mask_ = sets_ - 1;
  sets_magic_ = ~0ull / sets_ + 1;
  stride_ = static_cast<std::size_t>(assoc_) + 1;
  state_.assign(sets_ * stride_, kInvalid);
  for (std::uint64_t s = 0; s < sets_; ++s) state_[s * stride_ + assoc_] = 0;
}

SetAssocCache::Result SetAssocCache::fill_evict(std::uint64_t* blk,
                                                std::uint64_t line,
                                                bool dirty) {
  // The set is full and the block is in MRU-first order, so the victim is
  // simply the last way -- the least recently used line.
  std::uint64_t& mask = blk[assoc_];
  const std::uint64_t victim_bit = 1ull << (assoc_ - 1);
  Result r;
  r.hit = false;
  if (mask & victim_bit) {
    r.writeback = true;
    r.wb_line = blk[assoc_ - 1];
    --dirty_count_;
  }
  std::memmove(blk + 1, blk, (assoc_ - 1) * sizeof(std::uint64_t));
  blk[0] = line;
  mask = ((mask & ~victim_bit) << 1) | (dirty ? 1u : 0u);
  if (dirty) ++dirty_count_;
  return r;
}

std::uint64_t SetAssocCache::reset() {
  const std::uint64_t dirty = dirty_count_;
  std::fill(state_.begin(), state_.end(), kInvalid);
  for (std::uint64_t s = 0; s < sets_; ++s) state_[s * stride_ + assoc_] = 0;
  dirty_count_ = 0;
  return dirty;
}

}  // namespace bricksim::memsim
