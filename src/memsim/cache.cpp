#include "memsim/cache.h"

#include "common/error.h"

namespace bricksim::memsim {

SetAssocCache::SetAssocCache(const arch::CacheParams& params)
    : params_(params) {
  BRICKSIM_REQUIRE(params.line_bytes > 0, "cache line size must be positive");
  BRICKSIM_REQUIRE(params.associativity > 0, "associativity must be positive");
  const std::uint64_t lines = params.capacity_bytes / params.line_bytes;
  BRICKSIM_REQUIRE(lines >= static_cast<std::uint64_t>(params.associativity),
                   "cache must hold at least one set");
  sets_ = lines / params.associativity;
  ways_.assign(sets_ * params.associativity, Way{});
}

SetAssocCache::Result SetAssocCache::access(std::uint64_t line, bool write) {
  const std::uint64_t set = line % sets_;
  Way* base = &ways_[set * params_.associativity];
  for (int w = 0; w < params_.associativity; ++w) {
    if (base[w].tag == line) {
      base[w].stamp = ++tick_;
      base[w].dirty = base[w].dirty || write;
      return {.hit = true};
    }
  }
  return fill(line, set, write);
}

SetAssocCache::Result SetAssocCache::install_dirty(std::uint64_t line) {
  const std::uint64_t set = line % sets_;
  Way* base = &ways_[set * params_.associativity];
  for (int w = 0; w < params_.associativity; ++w) {
    if (base[w].tag == line) {
      base[w].stamp = ++tick_;
      base[w].dirty = true;
      return {.hit = true};
    }
  }
  return fill(line, set, /*dirty=*/true);
}

SetAssocCache::Result SetAssocCache::fill(std::uint64_t line,
                                          std::uint64_t set, bool dirty) {
  Way* base = &ways_[set * params_.associativity];
  int victim = 0;
  for (int w = 1; w < params_.associativity; ++w) {
    if (base[w].tag == Way::kInvalid) {
      victim = w;
      break;
    }
    if (base[w].stamp < base[victim].stamp) victim = w;
  }
  Result r;
  r.hit = false;
  if (base[victim].tag != Way::kInvalid && base[victim].dirty) {
    r.writeback = true;
    r.wb_line = base[victim].tag;
  }
  base[victim] = {.tag = line, .stamp = ++tick_, .dirty = dirty};
  return r;
}

bool SetAssocCache::probe(std::uint64_t line) const {
  const std::uint64_t set = line % sets_;
  const Way* base = &ways_[set * params_.associativity];
  for (int w = 0; w < params_.associativity; ++w)
    if (base[w].tag == line) return true;
  return false;
}

std::uint64_t SetAssocCache::reset() {
  const std::uint64_t dirty = dirty_lines();
  ways_.assign(ways_.size(), Way{});
  tick_ = 0;
  return dirty;
}

std::uint64_t SetAssocCache::dirty_lines() const {
  std::uint64_t n = 0;
  for (const Way& w : ways_)
    if (w.tag != Way::kInvalid && w.dirty) ++n;
  return n;
}

}  // namespace bricksim::memsim
