// A single set-associative, write-back, LRU cache level.
//
// Operates on line addresses (byte address >> log2(line)).  The hierarchy
// (hierarchy.h) composes per-core L1s with a shared L2 and owns the traffic
// accounting; this class only answers hit/miss/writeback questions.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.h"

namespace bricksim::memsim {

class SetAssocCache {
 public:
  explicit SetAssocCache(const arch::CacheParams& params);

  struct Result {
    bool hit = false;
    bool writeback = false;        ///< an evicted dirty line must go down
    std::uint64_t wb_line = 0;     ///< line address of the writeback victim
  };

  /// Looks up `line` (a line address, not a byte address).  On miss the line
  /// is allocated, evicting the LRU way.  `write` marks the line dirty.
  Result access(std::uint64_t line, bool write);

  /// Allocates `line` as dirty WITHOUT a fill from below (full-line streaming
  /// store).  Returns any dirty victim exactly like access().
  Result install_dirty(std::uint64_t line);

  /// True if the line is currently resident (no state change).
  bool probe(std::uint64_t line) const;

  /// Drops everything; returns the number of dirty lines discarded.
  std::uint64_t reset();

  /// Number of dirty resident lines (used by flush accounting and tests).
  std::uint64_t dirty_lines() const;

  int line_bytes() const { return params_.line_bytes; }
  std::uint64_t num_sets() const { return sets_; }
  int ways() const { return params_.associativity; }

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t stamp = 0;
    bool dirty = false;
    static constexpr std::uint64_t kInvalid = ~0ull;
  };

  Result fill(std::uint64_t line, std::uint64_t set, bool dirty);

  arch::CacheParams params_;
  std::uint64_t sets_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  ///< sets_ * associativity entries
};

}  // namespace bricksim::memsim
