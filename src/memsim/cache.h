// A single set-associative, write-back, LRU cache level.
//
// Operates on line addresses (byte address >> log2(line)).  The hierarchy
// (hierarchy.h) composes per-core L1s with a shared L2 and owns the traffic
// accounting; this class only answers hit/miss/victim/writeback questions.
//
// This is the hottest structure in the simulator (hundreds of millions of
// probes per sweep), so the storage is laid out for the *host's* memory
// hierarchy.  Each set is one contiguous block of `assoc + 1` words -- the
// way tags ordered most-recently-used first, then a dirty bitmask (bit w =
// way at position w dirty).  Keeping the ways physically in recency order
// replaces the classical LRU timestamp array wholesale:
//
//  * a probe touches one small contiguous block instead of three parallel
//    arrays megabytes apart (for the multi-MB L2 tag stores of the simulated
//    GPUs that is one host-cache miss instead of three),
//  * hits scan from the MRU end and stop, and a miss stops at the first
//    invalid tag (valid ways are always a prefix),
//  * the eviction victim is O(1): the tag at the last position IS the LRU
//    line, no stamp scan,
//  * and there is no monotonic tick counter left to overflow.
//
// A hit/fill rotates the block's prefix down one slot (a <=120-byte
// overlapping move inside one or two host cache lines) and reinserts the
// line at position 0 -- exactly the "stamp := ++tick" of the classical
// implementation, expressed as order instead of time.  The set index avoids
// a hardware divide (mask for power-of-two set counts, Lemire fastmod
// otherwise) and the dirty census is incremental so dirty_lines() is O(1).
// All of it is purely mechanical: hit/miss/victim/writeback sequences are
// bit-identical to the original timestamped array-of-structs implementation
// (which way of a set holds a line is unobservable; recency order and the
// resident/dirty line sets are preserved exactly).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "arch/arch.h"

namespace bricksim::memsim {

class SetAssocCache {
 public:
  explicit SetAssocCache(const arch::CacheParams& params);

  struct Result {
    bool hit = false;
    bool writeback = false;        ///< an evicted dirty line must go down
    std::uint64_t wb_line = 0;     ///< line address of the writeback victim
  };

  /// Looks up `line` (a line address, not a byte address).  On miss the line
  /// is allocated, evicting the LRU way.  `write` marks the line dirty.
  Result access(std::uint64_t line, bool write) {
    std::uint64_t* blk = set_block(line);
    for (int w = 0; w < assoc_; ++w) {
      if (blk[w] == line) {
        promote(blk, w, write);
        return {.hit = true};
      }
      if (blk[w] == kInvalid) return fill_empty(blk, w, line, write);
    }
    return fill_evict(blk, line, write);
  }

  /// Allocates `line` as dirty WITHOUT a fill from below (full-line streaming
  /// store).  Returns any dirty victim exactly like access().
  Result install_dirty(std::uint64_t line) {
    return access(line, /*write=*/true);
  }

  /// True if the line is currently resident (no state change).
  bool probe(std::uint64_t line) const {
    const std::uint64_t* blk = set_block(line);
    for (int w = 0; w < assoc_; ++w) {
      if (blk[w] == line) return true;
      if (blk[w] == kInvalid) return false;
    }
    return false;
  }

  /// probe() + LRU-touch fused into one tag scan: refreshes the recency when
  /// `line` is resident (exactly `probe(line) && access(line, false)`),
  /// no state change otherwise.
  bool touch(std::uint64_t line) {
    std::uint64_t* blk = set_block(line);
    for (int w = 0; w < assoc_; ++w) {
      if (blk[w] == line) {
        promote(blk, w, /*write=*/false);
        return true;
      }
      if (blk[w] == kInvalid) return false;
    }
    return false;
  }

  /// Drops everything; returns the number of dirty lines discarded.
  std::uint64_t reset();

  /// Number of dirty resident lines (used by flush accounting and tests).
  std::uint64_t dirty_lines() const { return dirty_count_; }

  int line_bytes() const { return params_.line_bytes; }
  std::uint64_t num_sets() const { return sets_; }
  int ways() const { return params_.associativity; }

 private:
  static constexpr std::uint64_t kInvalid = ~0ull;

  /// line % sets_, without a hardware divide on the hot path.
  std::uint64_t set_of(std::uint64_t line) const {
    if (sets_mask_) return line & sets_mask_;
    if (line >> 32) return line % sets_;  // fastmod needs a 32-bit operand
    // Lemire fastmod: exact for line, sets_ < 2^32 (Lemire/Kaser/Kurz 2019).
    const std::uint64_t lowbits = sets_magic_ * line;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(lowbits) * sets_) >> 64);
  }

  /// The state block of `line`'s set: assoc_ tags in MRU-first order, then
  /// one dirty-bitmask word.
  std::uint64_t* set_block(std::uint64_t line) {
    return state_.data() + set_of(line) * stride_;
  }
  const std::uint64_t* set_block(std::uint64_t line) const {
    return state_.data() + set_of(line) * stride_;
  }

  /// Moves the hit way at position `p` to the MRU position (0), carrying its
  /// dirty bit along and or-ing in `write`.
  void promote(std::uint64_t* blk, int p, bool write) {
    std::uint64_t& mask = blk[assoc_];
    std::uint64_t bit = (mask >> p) & 1u;
    if (p != 0) {
      const std::uint64_t line = blk[p];
      for (int k = p; k > 0; --k) blk[k] = blk[k - 1];
      blk[0] = line;
      const std::uint64_t low = mask & ((1ull << p) - 1);
      mask = (mask & ~((2ull << p) - 1)) | (low << 1) | bit;
    }
    if (write && !bit) {
      mask |= 1u;
      ++dirty_count_;
    }
  }

  /// Installs `line` at MRU with the free slot at `e` (no eviction).  Valid
  /// ways are always a prefix, so slots e..assoc_ are all empty and the
  /// dirty mask has no bits at or above e.
  Result fill_empty(std::uint64_t* blk, int e, std::uint64_t line,
                    bool dirty) {
    for (int k = e; k > 0; --k) blk[k] = blk[k - 1];
    blk[0] = line;
    std::uint64_t& mask = blk[assoc_];
    mask = (mask << 1) | (dirty ? 1u : 0u);
    if (dirty) ++dirty_count_;
    return {.hit = false};
  }

  Result fill_evict(std::uint64_t* blk, std::uint64_t line, bool dirty);

  arch::CacheParams params_;
  int assoc_ = 0;
  std::size_t stride_ = 0;        ///< words per set block: assoc_ + 1
  std::uint64_t sets_ = 0;
  std::uint64_t sets_mask_ = 0;   ///< sets_ - 1 when sets_ is a power of two
  std::uint64_t sets_magic_ = 0;  ///< ~0ull / sets_ + 1 (Lemire fastmod)
  std::uint64_t dirty_count_ = 0;
  std::vector<std::uint64_t> state_;  ///< sets_ * stride_ words (see set_block)
};

// The GPU L1s are write-through for global data and never call
// install_dirty, so their dirty bitmask is identically zero and every
// Result they return has writeback == false.  L1Tags is the same
// MRU-ordered set-associative structure with the dirty machinery deleted:
// sets are `assoc` contiguous tag words, a probe is one rolling pass that
// scans and shifts in the same loop (no memmove call, no bitmask surgery),
// and access() answers the only question the L1 front-end asks -- hit or
// not.  State transitions (residency + recency order) are bit-identical to
// SetAssocCache under a never-dirty workload; tests assert the equivalence.
class L1Tags {
 public:
  explicit L1Tags(const arch::CacheParams& params);

  /// Looks up `line`; on miss allocates it, evicting the LRU way.  Returns
  /// whether it hit.  Exactly SetAssocCache::access(line, false).hit.
  bool access(std::uint64_t line) {
    std::uint64_t* blk = set_block(line);
    if (blk[0] == line) return true;  // MRU hit: nothing moves
    std::uint64_t prev = blk[0];
    for (int w = 1; w < assoc_; ++w) {
      const std::uint64_t t = blk[w];
      blk[w] = prev;  // rolling shift: prefix moves down as the scan walks
      if (t == line) {
        blk[0] = line;
        return true;
      }
      prev = t;
      if (t == kInvalid) {  // valid ways are a prefix: fill the first hole
        blk[0] = line;
        return false;
      }
    }
    blk[0] = line;  // full set: `prev` (the LRU tag) just fell off the end
    return false;
  }

  /// Promotes `line` to MRU if resident (a write-through store touch);
  /// no state change otherwise.  Exactly SetAssocCache::touch.
  bool touch(std::uint64_t line) {
    std::uint64_t* blk = set_block(line);
    if (blk[0] == line) return true;
    for (int w = 1; w < assoc_; ++w) {
      if (blk[w] == line) {
        for (int k = w; k > 0; --k) blk[k] = blk[k - 1];
        blk[0] = line;
        return true;
      }
      if (blk[w] == kInvalid) return false;
    }
    return false;
  }

  /// True if the line is currently resident (no state change).
  bool probe(std::uint64_t line) const {
    const std::uint64_t* blk = set_block(line);
    for (int w = 0; w < assoc_; ++w) {
      if (blk[w] == line) return true;
      if (blk[w] == kInvalid) return false;
    }
    return false;
  }

  void reset();

  /// Overwrites this cache with `other`'s state, every resident tag shifted
  /// by `line_delta` (mod 2^64).  Used by the congruence-class replay to
  /// materialize a lumped core's L1 before it re-enters the general path:
  /// when every access a core made is `line_delta` away from the accesses
  /// another core made, its true L1 state is exactly this shifted copy.
  /// Requires identical geometry, and -- for the per-set copy to land whole
  /// -- the caller guarantees set_of is a pure modulo (it is: mask or
  /// Lemire fastmod), so a uniform tag shift rotates sets uniformly.
  void shift_copy_from(const L1Tags& other, std::uint64_t line_delta);

  int line_bytes() const { return params_.line_bytes; }
  std::uint64_t num_sets() const { return sets_; }
  int ways() const { return assoc_; }

 private:
  static constexpr std::uint64_t kInvalid = ~0ull;

  std::uint64_t set_of(std::uint64_t line) const {
    if (sets_mask_) return line & sets_mask_;
    if (line >> 32) return line % sets_;  // fastmod needs a 32-bit operand
    const std::uint64_t lowbits = sets_magic_ * line;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(lowbits) * sets_) >> 64);
  }

  std::uint64_t* set_block(std::uint64_t line) {
    return state_.data() + set_of(line) * static_cast<std::size_t>(assoc_);
  }
  const std::uint64_t* set_block(std::uint64_t line) const {
    return state_.data() + set_of(line) * static_cast<std::size_t>(assoc_);
  }

  arch::CacheParams params_;
  int assoc_ = 0;
  std::uint64_t sets_ = 0;
  std::uint64_t sets_mask_ = 0;
  std::uint64_t sets_magic_ = 0;
  std::vector<std::uint64_t> state_;  ///< sets_ * assoc_ tag words
};

}  // namespace bricksim::memsim
