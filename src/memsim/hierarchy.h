// The simulated device memory hierarchy: one L1 per core, a shared L2, HBM.
//
// The SIMT machine presents warp-wide accesses (address + byte count); the
// hierarchy splits them into sectors (transaction granularity, what Nsight
// and rocprof report as "L1 bytes") and lines (allocation granularity), and
// walks the levels with write-back/LRU semantics:
//
//  * loads:  L1 -> L2 -> HBM, allocating at every level.
//  * stores that cover whole lines: streaming/write-combining -- installed
//    dirty in L2 without a fill from HBM (GPU stencil stores are full-line).
//  * partial-line stores: write-through the L1 into L2 with write-allocate
//    (a read-modify-write fill from HBM on L2 miss).
//  * `bypass_l2` loads: on L1 miss go straight to HBM.  Used to model the
//    MI250X/HIP lowering of unaligned vector loads that the paper observed
//    moving >10 GB on `array codegen` (Figure 6, right).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/arch.h"
#include "memsim/cache.h"

namespace bricksim::memsim {

/// Byte counters between adjacent levels plus hit/miss tallies.
struct Traffic {
  // Register file <-> L1, sector-granular ("L1 data movement" in Figure 4).
  std::uint64_t l1_read_bytes = 0;
  std::uint64_t l1_write_bytes = 0;
  // L1 <-> L2, line-granular.
  std::uint64_t l2_read_bytes = 0;
  std::uint64_t l2_write_bytes = 0;
  // L2 <-> HBM, line-granular ("Bytes accessed" in Figures 5/6).
  std::uint64_t hbm_read_bytes = 0;
  std::uint64_t hbm_write_bytes = 0;

  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;

  std::uint64_t l1_total() const { return l1_read_bytes + l1_write_bytes; }
  std::uint64_t hbm_total() const { return hbm_read_bytes + hbm_write_bytes; }

  Traffic& operator+=(const Traffic& o);
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const arch::GpuArch& arch);

  /// Shape of one warp-wide access, used by the SIMT timing model.
  struct AccessShape {
    int sectors = 0;  ///< transaction granules touched
    int lines = 0;    ///< cache lines touched
    /// True when the access reached DRAM (an L2 read miss, a streaming-
    /// store install of a new line, or an L2 bypass) -- feeds the
    /// page-locality overhead model (arch::GpuArch::page_open_bytes).
    bool dram_touch = false;
  };

  /// Performs a warp-wide access of `bytes` bytes at byte address `addr`
  /// issued from `core` (selects the L1).  `write` selects store semantics;
  /// `bypass_l2` applies to loads only (see file comment); `rmw_stores`
  /// forces write-allocate (read-modify-write) even for full-line stores,
  /// modelling lowerings that fail streaming-store detection.
  AccessShape access(int core, std::uint64_t addr, std::uint32_t bytes,
                     bool write, bool bypass_l2 = false,
                     bool rmw_stores = false);

  /// Charges page-locality overhead (DRAM row activations / TLB walks) as
  /// extra HBM read traffic; called by the machine once per (block, page).
  void charge_page_overhead(double bytes) {
    traffic_.hbm_read_bytes += static_cast<std::uint64_t>(bytes);
  }

  /// A per-thread-block scratch access (register spill traffic).  Spill
  /// working sets are tiny and block-local, so they are modelled as
  /// L1-resident: only register-file<->L1 bytes are counted.
  AccessShape scratch_access(std::uint32_t bytes, bool write);

  /// Counts the dirty lines still in L2 as written back to HBM.  Call at
  /// most once, after a kernel, when modelling a full drain; the default
  /// reports (like hardware profilers) count only in-kernel traffic.
  void flush_l2();

  const Traffic& traffic() const { return traffic_; }
  void reset_counters() { traffic_ = Traffic{}; }
  /// Drops all cached state AND counters (cold caches).
  void reset();

  const arch::GpuArch& gpu() const { return arch_; }

 private:
  arch::GpuArch arch_;
  std::vector<SetAssocCache> l1_;
  SetAssocCache l2_;
  Traffic traffic_;
};

}  // namespace bricksim::memsim
