// The simulated device memory hierarchy: one L1 per core, a shared L2, HBM.
//
// The SIMT machine presents warp-wide accesses (address + byte count); the
// hierarchy splits them into sectors (transaction granularity, what Nsight
// and rocprof report as "L1 bytes") and lines (allocation granularity), and
// walks the levels with write-back/LRU semantics:
//
//  * loads:  L1 -> L2 -> HBM, allocating at every level.
//  * stores that cover whole lines: streaming/write-combining -- installed
//    dirty in L2 without a fill from HBM (GPU stencil stores are full-line).
//  * partial-line stores: write-through the L1 into L2 with write-allocate
//    (a read-modify-write fill from HBM on L2 miss).
//  * `bypass_l2` loads: on L1 miss go straight to HBM.  Used to model the
//    MI250X/HIP lowering of unaligned vector loads that the paper observed
//    moving >10 GB on `array codegen` (Figure 6, right).
//
// access() and scratch_access() are defined inline: they sit on the replay
// engine's per-instruction path, and together with SetAssocCache's inline
// tag scans the whole L1-hit case compiles down to one set probe.  Sector
// and line splitting uses precomputed shifts (all real geometries are
// power-of-two) with a division fallback, and the store path's full-line
// coverage test is hoisted out of the per-line loop for aligned accesses.
// The restructuring is mechanical: every counter update and cache state
// transition is bit-identical to the original out-of-line implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/arch.h"
#include "common/error.h"
#include "memsim/cache.h"

namespace bricksim::memsim {

/// Byte counters between adjacent levels plus hit/miss tallies.
struct Traffic {
  // Register file <-> L1, sector-granular ("L1 data movement" in Figure 4).
  std::uint64_t l1_read_bytes = 0;
  std::uint64_t l1_write_bytes = 0;
  // L1 <-> L2, line-granular.
  std::uint64_t l2_read_bytes = 0;
  std::uint64_t l2_write_bytes = 0;
  // L2 <-> HBM, line-granular ("Bytes accessed" in Figures 5/6).
  std::uint64_t hbm_read_bytes = 0;
  std::uint64_t hbm_write_bytes = 0;

  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;

  std::uint64_t l1_total() const { return l1_read_bytes + l1_write_bytes; }
  std::uint64_t hbm_total() const { return hbm_read_bytes + hbm_write_bytes; }

  Traffic& operator+=(const Traffic& o);
  /// Bit-exact equality (all counters are integers); the ExecPlan
  /// equivalence tests compare engine outputs through this.
  friend bool operator==(const Traffic&, const Traffic&) = default;
};

/// Shape of one warp-wide access, used by the SIMT timing model.
struct AccessShape {
  int sectors = 0;  ///< transaction granules touched
  int lines = 0;    ///< cache lines touched
  /// True when the access reached DRAM (an L2 read miss, a streaming-
  /// store install of a new line, or an L2 bypass) -- feeds the
  /// page-locality overhead model (arch::GpuArch::page_open_bytes).
  bool dram_touch = false;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const arch::GpuArch& arch);

  /// Historical nested name; the struct now lives at namespace scope so the
  /// sharded L1 front-end (L1Shard below) can return it too.
  using AccessShape = bricksim::memsim::AccessShape;

  /// Performs a warp-wide access of `bytes` bytes at byte address `addr`
  /// issued from `core` (selects the L1).  `write` selects store semantics;
  /// `bypass_l2` applies to loads only (see file comment); `rmw_stores`
  /// forces write-allocate (read-modify-write) even for full-line stores,
  /// modelling lowerings that fail streaming-store detection.
  AccessShape access(int core, std::uint64_t addr, std::uint32_t bytes,
                     bool write, bool bypass_l2 = false,
                     bool rmw_stores = false) {
    BRICKSIM_ASSERT(core >= 0 && core < static_cast<int>(l1_.size()),
                    "core id out of range");
    BRICKSIM_ASSERT(bytes > 0, "zero-byte access");

    const int sector = arch_.l1.sector_bytes;
    const int line = arch_.l1.line_bytes;
    const std::uint64_t first_sector = sector_of(addr);
    const std::uint64_t last_sector = sector_of(addr + bytes - 1);
    const std::uint64_t first_line = line_of(addr);
    const std::uint64_t last_line = line_of(addr + bytes - 1);

    AccessShape shape;
    shape.sectors = static_cast<int>(last_sector - first_sector + 1);
    shape.lines = static_cast<int>(last_line - first_line + 1);

    const std::uint64_t sector_bytes =
        static_cast<std::uint64_t>(shape.sectors) * sector;
    if (write)
      traffic_.l1_write_bytes += sector_bytes;
    else
      traffic_.l1_read_bytes += sector_bytes;

    L1Tags& l1 = l1_[core];
    if (write) {
      // Full-line coverage -> streaming store into L2, no fill.  Partial
      // coverage (first/last line of an unaligned span) -> write-allocate.
      // The coverage test depends only on the span's end lines, so it is
      // resolved here instead of per line; a line-aligned full-line store
      // (the common stencil case) takes the all_full path for every line.
      const bool all_full = !rmw_stores &&
                            addr == first_line * static_cast<std::uint64_t>(line) &&
                            addr + bytes == (last_line + 1) * static_cast<std::uint64_t>(line);
      for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
        const std::uint64_t line_begin = ln * line;
        const bool full = all_full ||
                          (!rmw_stores && addr <= line_begin &&
                           (addr + bytes) >= line_begin + line);
        // L1 is write-through for global stores: update if present, do not
        // allocate.  (GPU L1s do not cache global stores.)
        l1.touch(ln);  // keep a resident line warm
        traffic_.l2_write_bytes += line;
        if (full) {
          if (replay_l2_store_full(ln)) shape.dram_touch = true;
        } else {
          if (replay_l2_store_partial(ln)) shape.dram_touch = true;
        }
      }
      return shape;
    }

    // Load path.
    for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
      if (l1.access(ln)) {
        traffic_.l1_hits++;
        continue;
      }
      traffic_.l1_misses++;
      // L1 holds no dirty global data (write-through), so L1 victims vanish.
      traffic_.l2_read_bytes += line;
      if (bypass_l2) {
        traffic_.hbm_read_bytes += line;
        shape.dram_touch = true;
        continue;
      }
      if (replay_l2_load(ln)) shape.dram_touch = true;
    }
    return shape;
  }

  // L2 back-halves of access(), one cache line each.  access() itself runs
  // through these, and the sharded replay (ExecPlan::replay_sharded) calls
  // them directly when applying a merged L2 event stream -- so the sharded
  // and unsharded paths hit the same L2 state machine and counters by
  // construction.  Each returns whether the line touched DRAM (the
  // per-access dram_touch is the OR over its lines).

  /// L2 half of an L1-missing, non-bypass load line.
  bool replay_l2_load(std::uint64_t ln) {
    const int line = arch_.l1.line_bytes;
    auto r2 = l2_.access(ln, /*write=*/false);
    if (r2.hit) {
      traffic_.l2_hits++;
    } else {
      traffic_.l2_misses++;
      traffic_.hbm_read_bytes += line;
    }
    if (r2.writeback) traffic_.hbm_write_bytes += line;
    return !r2.hit;
  }

  /// L2 half of a full-line (streaming) store line: install dirty, no fill.
  bool replay_l2_store_full(std::uint64_t ln) {
    const int line = arch_.l1.line_bytes;
    auto r2 = l2_.install_dirty(ln);
    if (r2.writeback) traffic_.hbm_write_bytes += line;
    return !r2.hit;  // new line: will be written to DRAM
  }

  /// L2 half of a partial-line store line: write-allocate (RMW fill).
  bool replay_l2_store_partial(std::uint64_t ln) {
    const int line = arch_.l1.line_bytes;
    auto r2 = l2_.access(ln, /*write=*/true);
    if (!r2.hit) {
      traffic_.l2_misses++;
      traffic_.hbm_read_bytes += line;  // read-modify-write fill
    } else {
      traffic_.l2_hits++;
    }
    if (r2.writeback) traffic_.hbm_write_bytes += line;
    return !r2.hit;
  }

  /// Folds a shard's phase-1 counters (L1 traffic, L2-bound byte counts,
  /// bypass HBM reads) into this hierarchy's totals.
  void merge_traffic(const Traffic& t) { traffic_ += t; }

  /// Charges page-locality overhead (DRAM row activations / TLB walks) as
  /// extra HBM read traffic; called by the machine once per (block, page).
  void charge_page_overhead(double bytes) {
    traffic_.hbm_read_bytes += static_cast<std::uint64_t>(bytes);
  }

  /// A per-thread-block scratch access (register spill traffic).  Spill
  /// working sets are tiny and block-local, so they are modelled as
  /// L1-resident: only register-file<->L1 bytes are counted.
  AccessShape scratch_access(std::uint32_t bytes, bool write) {
    const int sector = arch_.l1.sector_bytes;
    const int line = arch_.l1.line_bytes;
    AccessShape shape;
    shape.sectors = static_cast<int>((bytes + sector - 1) / sector);
    shape.lines = static_cast<int>((bytes + line - 1) / line);
    const std::uint64_t sector_bytes =
        static_cast<std::uint64_t>(shape.sectors) * sector;
    if (write)
      traffic_.l1_write_bytes += sector_bytes;
    else
      traffic_.l1_read_bytes += sector_bytes;
    return shape;
  }

  /// Counts the dirty lines still in L2 as written back to HBM.  Call at
  /// most once, after a kernel, when modelling a full drain; the default
  /// reports (like hardware profilers) count only in-kernel traffic.
  void flush_l2();

  const Traffic& traffic() const { return traffic_; }
  void reset_counters() { traffic_ = Traffic{}; }
  /// Drops all cached state AND counters (cold caches).
  void reset();

  /// Direct access to one core's L1 tag store.  The congruence-class replay
  /// (ExecPlan) uses it to materialize a lumped core's L1 as a shifted copy
  /// of its group leader's before the final partial wave.
  L1Tags& l1(int core) { return l1_[static_cast<std::size_t>(core)]; }

  const arch::GpuArch& gpu() const { return arch_; }

 private:
  std::uint64_t sector_of(std::uint64_t addr) const {
    return sector_shift_ >= 0
               ? addr >> sector_shift_
               : addr / static_cast<std::uint64_t>(arch_.l1.sector_bytes);
  }
  std::uint64_t line_of(std::uint64_t addr) const {
    return line_shift_ >= 0
               ? addr >> line_shift_
               : addr / static_cast<std::uint64_t>(arch_.l1.line_bytes);
  }

  arch::GpuArch arch_;
  int sector_shift_ = -1;  ///< log2(sector_bytes), or -1 if not a power of 2
  int line_shift_ = -1;    ///< log2(line_bytes), or -1 if not a power of 2
  std::vector<L1Tags> l1_;
  SetAssocCache l2_;
  Traffic traffic_;
};

/// What a shard asks the shared L2 to do with one cache line when its event
/// stream is replayed (phase 2 of ExecPlan::replay_sharded).
enum class L2Op : std::uint8_t {
  Load,          ///< L1-missing load line  -> MemoryHierarchy::replay_l2_load
  StoreFull,     ///< full-line store line  -> replay_l2_store_full
  StorePartial,  ///< partial store line    -> replay_l2_store_partial
  PageOnly,      ///< bypass-L2 load line: counters already charged in phase
                 ///< 1, only the DRAM-page touch remains to record
};

/// One L2-bound cache-line operation recorded during a shard's private
/// phase-1 replay.  `order` is the line's position in the unsharded replay's
/// global schedule; merging all shards' streams by ascending `order` (ties
/// impossible across shards -- an order key names one block slot, and each
/// slot belongs to exactly one shard) reproduces the exact L2 access
/// sequence of the serial replay.
struct ShardEvent {
  std::uint64_t order;     ///< global schedule position (wave, round, slot)
  std::uint64_t line;      ///< cache-line index (addr / line_bytes)
  std::uint64_t page_key;  ///< DRAM-page key to record if the line touches
                           ///< DRAM (stream-distinguished, see ExecPlan)
  std::uint32_t block;     ///< linear block id, selects the page set
  L2Op op;
};

/// The per-shard half of the memory hierarchy: private L1s for a contiguous
/// core range plus a log of L2-bound line operations.  access() performs
/// exactly the L1 front half of MemoryHierarchy::access() -- same sector /
/// line split, same L1 state transitions, same counters -- but instead of
/// walking the shared L2 it appends a ShardEvent per L2-bound line.  L1s
/// shard cleanly because they are per-core and the replay schedule binds
/// each core to one shard; the L2 is shared state and is only ever touched
/// serially, in phase 2, through the merged event stream.
class L1Shard {
 public:
  /// Private L1s for cores [core0, core1) of `arch`.
  L1Shard(const arch::GpuArch& arch, int core0, int core1);

  /// Mirrors MemoryHierarchy::access() up to the L2 boundary.  `order`,
  /// `block` and `page_key` tag the emitted events; the returned shape's
  /// dram_touch is always false (only the shared L2 knows).
  AccessShape access(int core, std::uint64_t addr, std::uint32_t bytes,
                     bool write, bool bypass_l2, bool rmw_stores,
                     std::uint64_t order, std::uint32_t block,
                     std::uint64_t page_key) {
    BRICKSIM_ASSERT(core >= core0_ && core < core0_ + static_cast<int>(l1_.size()),
                    "core id outside shard");
    BRICKSIM_ASSERT(bytes > 0, "zero-byte access");

    const int sector = arch_->l1.sector_bytes;
    const int line = arch_->l1.line_bytes;
    const std::uint64_t first_sector = sector_of(addr);
    const std::uint64_t last_sector = sector_of(addr + bytes - 1);
    const std::uint64_t first_line = line_of(addr);
    const std::uint64_t last_line = line_of(addr + bytes - 1);

    AccessShape shape;
    shape.sectors = static_cast<int>(last_sector - first_sector + 1);
    shape.lines = static_cast<int>(last_line - first_line + 1);

    const std::uint64_t sector_bytes =
        static_cast<std::uint64_t>(shape.sectors) * sector;
    if (write)
      traffic_.l1_write_bytes += sector_bytes;
    else
      traffic_.l1_read_bytes += sector_bytes;

    L1Tags& l1 = l1_[static_cast<std::size_t>(core - core0_)];
    if (write) {
      const bool all_full = !rmw_stores &&
                            addr == first_line * static_cast<std::uint64_t>(line) &&
                            addr + bytes == (last_line + 1) * static_cast<std::uint64_t>(line);
      for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
        const std::uint64_t line_begin = ln * line;
        const bool full = all_full ||
                          (!rmw_stores && addr <= line_begin &&
                           (addr + bytes) >= line_begin + line);
        l1.touch(ln);
        traffic_.l2_write_bytes += line;
        events_.push_back({order, ln, page_key, block,
                           full ? L2Op::StoreFull : L2Op::StorePartial});
      }
      return shape;
    }

    for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
      if (l1.access(ln)) {
        traffic_.l1_hits++;
        continue;
      }
      traffic_.l1_misses++;
      traffic_.l2_read_bytes += line;
      if (bypass_l2) {
        traffic_.hbm_read_bytes += line;
        events_.push_back({order, ln, page_key, block, L2Op::PageOnly});
        continue;
      }
      events_.push_back({order, ln, page_key, block, L2Op::Load});
    }
    return shape;
  }

  /// Identical to MemoryHierarchy::scratch_access (pure counters).
  AccessShape scratch_access(std::uint32_t bytes, bool write) {
    const int sector = arch_->l1.sector_bytes;
    const int line = arch_->l1.line_bytes;
    AccessShape shape;
    shape.sectors = static_cast<int>((bytes + sector - 1) / sector);
    shape.lines = static_cast<int>((bytes + line - 1) / line);
    const std::uint64_t sector_bytes =
        static_cast<std::uint64_t>(shape.sectors) * sector;
    if (write)
      traffic_.l1_write_bytes += sector_bytes;
    else
      traffic_.l1_read_bytes += sector_bytes;
    return shape;
  }

  const Traffic& traffic() const { return traffic_; }
  std::vector<ShardEvent>& events() { return events_; }

  /// One core's private L1 (same congruence-materialization use as
  /// MemoryHierarchy::l1, within this shard's core range).
  L1Tags& l1(int core) { return l1_[static_cast<std::size_t>(core - core0_)]; }

 private:
  std::uint64_t sector_of(std::uint64_t addr) const {
    return sector_shift_ >= 0
               ? addr >> sector_shift_
               : addr / static_cast<std::uint64_t>(arch_->l1.sector_bytes);
  }
  std::uint64_t line_of(std::uint64_t addr) const {
    return line_shift_ >= 0
               ? addr >> line_shift_
               : addr / static_cast<std::uint64_t>(arch_->l1.line_bytes);
  }

  const arch::GpuArch* arch_;  ///< borrowed; outlives the shard
  int core0_ = 0;
  int sector_shift_ = -1;
  int line_shift_ = -1;
  std::vector<L1Tags> l1_;
  Traffic traffic_;
  std::vector<ShardEvent> events_;
};

}  // namespace bricksim::memsim
