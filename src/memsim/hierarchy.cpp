#include "memsim/hierarchy.h"

#include "common/error.h"

namespace bricksim::memsim {

Traffic& Traffic::operator+=(const Traffic& o) {
  l1_read_bytes += o.l1_read_bytes;
  l1_write_bytes += o.l1_write_bytes;
  l2_read_bytes += o.l2_read_bytes;
  l2_write_bytes += o.l2_write_bytes;
  hbm_read_bytes += o.hbm_read_bytes;
  hbm_write_bytes += o.hbm_write_bytes;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  return *this;
}

MemoryHierarchy::MemoryHierarchy(const arch::GpuArch& arch)
    : arch_(arch), l2_(arch.l2) {
  l1_.reserve(arch.num_cores);
  for (int c = 0; c < arch.num_cores; ++c) l1_.emplace_back(arch.l1);
}

MemoryHierarchy::AccessShape MemoryHierarchy::access(int core,
                                                     std::uint64_t addr,
                                                     std::uint32_t bytes,
                                                     bool write,
                                                     bool bypass_l2,
                                                     bool rmw_stores) {
  BRICKSIM_ASSERT(core >= 0 && core < static_cast<int>(l1_.size()),
                  "core id out of range");
  BRICKSIM_ASSERT(bytes > 0, "zero-byte access");

  const int sector = arch_.l1.sector_bytes;
  const int line = arch_.l1.line_bytes;
  const std::uint64_t first_sector = addr / sector;
  const std::uint64_t last_sector = (addr + bytes - 1) / sector;
  const std::uint64_t first_line = addr / line;
  const std::uint64_t last_line = (addr + bytes - 1) / line;

  AccessShape shape;
  shape.sectors = static_cast<int>(last_sector - first_sector + 1);
  shape.lines = static_cast<int>(last_line - first_line + 1);

  const std::uint64_t sector_bytes =
      static_cast<std::uint64_t>(shape.sectors) * sector;
  if (write)
    traffic_.l1_write_bytes += sector_bytes;
  else
    traffic_.l1_read_bytes += sector_bytes;

  SetAssocCache& l1 = l1_[core];
  for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
    if (write) {
      // Full-line coverage -> streaming store into L2, no fill.  Partial
      // coverage (first/last line of an unaligned span) -> write-allocate.
      const std::uint64_t line_begin = ln * line;
      const std::uint64_t line_end = line_begin + line;
      const bool full =
          !rmw_stores && addr <= line_begin && (addr + bytes) >= line_end;
      // L1 is write-through for global stores: update if present, do not
      // allocate.  (GPU L1s do not cache global stores.)
      if (l1.probe(ln)) l1.access(ln, /*write=*/false);  // keep it warm
      traffic_.l2_write_bytes += line;
      if (full) {
        auto r2 = l2_.install_dirty(ln);
        if (!r2.hit) shape.dram_touch = true;  // will be written to DRAM
        if (r2.writeback) traffic_.hbm_write_bytes += line;
      } else {
        auto r2 = l2_.access(ln, /*write=*/true);
        if (!r2.hit) {
          traffic_.l2_misses++;
          traffic_.hbm_read_bytes += line;  // read-modify-write fill
          shape.dram_touch = true;
        } else {
          traffic_.l2_hits++;
        }
        if (r2.writeback) traffic_.hbm_write_bytes += line;
      }
      continue;
    }

    // Load path.
    auto r1 = l1.access(ln, /*write=*/false);
    if (r1.hit) {
      traffic_.l1_hits++;
      continue;
    }
    traffic_.l1_misses++;
    // L1 holds no dirty global data (write-through), so L1 victims vanish.
    traffic_.l2_read_bytes += line;
    if (bypass_l2) {
      traffic_.hbm_read_bytes += line;
      shape.dram_touch = true;
      continue;
    }
    auto r2 = l2_.access(ln, /*write=*/false);
    if (r2.hit) {
      traffic_.l2_hits++;
    } else {
      traffic_.l2_misses++;
      traffic_.hbm_read_bytes += line;
      shape.dram_touch = true;
    }
    if (r2.writeback) traffic_.hbm_write_bytes += line;
  }
  return shape;
}

MemoryHierarchy::AccessShape MemoryHierarchy::scratch_access(
    std::uint32_t bytes, bool write) {
  const int sector = arch_.l1.sector_bytes;
  const int line = arch_.l1.line_bytes;
  AccessShape shape;
  shape.sectors = static_cast<int>((bytes + sector - 1) / sector);
  shape.lines = static_cast<int>((bytes + line - 1) / line);
  const std::uint64_t sector_bytes =
      static_cast<std::uint64_t>(shape.sectors) * sector;
  if (write)
    traffic_.l1_write_bytes += sector_bytes;
  else
    traffic_.l1_read_bytes += sector_bytes;
  return shape;
}

void MemoryHierarchy::flush_l2() {
  traffic_.hbm_write_bytes += l2_.dirty_lines() * arch_.l2.line_bytes;
}

void MemoryHierarchy::reset() {
  for (auto& c : l1_) c.reset();
  l2_.reset();
  traffic_ = Traffic{};
}

}  // namespace bricksim::memsim
