#include "memsim/hierarchy.h"

#include "common/error.h"

namespace bricksim::memsim {

namespace {

/// log2(v) when v is a positive power of two, -1 otherwise.
int pow2_shift(int v) {
  if (v <= 0 || (v & (v - 1)) != 0) return -1;
  int s = 0;
  while ((1 << s) != v) ++s;
  return s;
}

}  // namespace

Traffic& Traffic::operator+=(const Traffic& o) {
  l1_read_bytes += o.l1_read_bytes;
  l1_write_bytes += o.l1_write_bytes;
  l2_read_bytes += o.l2_read_bytes;
  l2_write_bytes += o.l2_write_bytes;
  hbm_read_bytes += o.hbm_read_bytes;
  hbm_write_bytes += o.hbm_write_bytes;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  return *this;
}

MemoryHierarchy::MemoryHierarchy(const arch::GpuArch& arch)
    : arch_(arch), l2_(arch.l2) {
  sector_shift_ = pow2_shift(arch.l1.sector_bytes);
  line_shift_ = pow2_shift(arch.l1.line_bytes);
  l1_.reserve(arch.num_cores);
  for (int c = 0; c < arch.num_cores; ++c) l1_.emplace_back(arch.l1);
}

void MemoryHierarchy::flush_l2() {
  traffic_.hbm_write_bytes += l2_.dirty_lines() * arch_.l2.line_bytes;
}

void MemoryHierarchy::reset() {
  for (auto& c : l1_) c.reset();
  l2_.reset();
  traffic_ = Traffic{};
}

L1Shard::L1Shard(const arch::GpuArch& arch, int core0, int core1)
    : arch_(&arch), core0_(core0) {
  BRICKSIM_REQUIRE(0 <= core0 && core0 < core1 && core1 <= arch.num_cores,
                   "bad shard core range");
  sector_shift_ = pow2_shift(arch.l1.sector_bytes);
  line_shift_ = pow2_shift(arch.l1.line_bytes);
  l1_.reserve(static_cast<std::size_t>(core1 - core0));
  for (int c = core0; c < core1; ++c) l1_.emplace_back(arch.l1);
}

}  // namespace bricksim::memsim
