// Profiler substrate: the stand-in for Nsight Compute / rocprof / Omniperf /
// Intel Advisor.  Hardware profilers read device counters; BrickSim's
// simulator owns the ground truth, so this module just snapshots a
// LaunchResult into a flat, self-describing Measurement record (the unit all
// tables, figures and metrics are computed from) and renders the detailed
// per-kernel report a profiler CLI would print.
#pragma once

#include <ostream>
#include <string>

#include "codegen/codegen.h"
#include "common/json.h"
#include "dsl/stencil.h"
#include "model/launcher.h"
#include "model/progmodel.h"

namespace bricksim::profiler {

struct Measurement {
  // Identity.
  std::string stencil;
  std::string variant;
  std::string arch;
  std::string pm;
  Vec3 domain{};

  // Headline numbers (normalised to the paper's common minimum FLOP count).
  double seconds = 0;
  double gflops = 0;        ///< normalised FLOPs / time
  double ai = 0;            ///< normalised FLOPs / HBM bytes
  double ai_executed = 0;   ///< executed FLOPs / HBM bytes

  // Raw counters.
  std::uint64_t hbm_bytes = 0;
  std::uint64_t hbm_read_bytes = 0;
  std::uint64_t hbm_write_bytes = 0;
  std::uint64_t l2_bytes = 0;
  std::uint64_t l1_bytes = 0;
  std::uint64_t flops_executed = 0;
  long flops_normalized = 0;
  std::uint64_t warp_insts = 0;

  // Timing decomposition and kernel shape.
  double t_hbm = 0, t_l2 = 0, t_issue = 0;
  std::string bottleneck;
  int regs_used = 0;
  int spill_slots = 0;
  int read_streams = 0;
  bool used_scatter = false;

  // brickcheck results for the launched program (pre-launch static pass).
  long check_errors = 0;
  long check_warnings = 0;
  long check_insts = 0;  ///< instructions the pass scanned (0 = pass off)

  /// Field-for-field (bit-exact on the doubles) equality: the parallel
  /// sweep executor promises results identical to a serial sweep, and the
  /// determinism tests compare through this.
  friend bool operator==(const Measurement&, const Measurement&) = default;
};

/// Builds a Measurement from a launch.
Measurement measure(const dsl::Stencil& stencil, codegen::Variant variant,
                    const model::Platform& platform, Vec3 domain,
                    const model::LaunchResult& result);

/// Runs the launcher (counters-only) and measures in one call.
Measurement run_and_measure(const model::Launcher& launcher,
                            const dsl::Stencil& stencil,
                            codegen::Variant variant,
                            const model::Platform& platform,
                            const codegen::Options& opts = {});

/// Prints a detailed per-kernel report (profiler-CLI style).
void print_report(std::ostream& os, const Measurement& m);

/// Lossless JSON round trip (doubles via shortest-round-trip formatting):
/// measurement_from_json(to_json(m)) == m field-for-field, bit-exact on the
/// doubles.  The unit record of the sweep cache and all result artifacts.
json::Value to_json(const Measurement& m);
Measurement measurement_from_json(const json::Value& v);

}  // namespace bricksim::profiler
