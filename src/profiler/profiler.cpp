#include "profiler/profiler.h"

#include <iomanip>

namespace bricksim::profiler {

Measurement measure(const dsl::Stencil& stencil, codegen::Variant variant,
                    const model::Platform& platform, Vec3 domain,
                    const model::LaunchResult& r) {
  Measurement m;
  m.stencil = stencil.name();
  m.variant = codegen::variant_name(variant);
  m.arch = platform.gpu.name;
  m.pm = platform.pm.name;
  m.domain = domain;

  m.seconds = r.report.seconds;
  m.gflops = r.normalized_gflops();
  m.ai = r.normalized_ai();
  m.ai_executed = r.report.arithmetic_intensity();

  const auto& t = r.report.traffic;
  m.hbm_bytes = t.hbm_total();
  m.hbm_read_bytes = t.hbm_read_bytes;
  m.hbm_write_bytes = t.hbm_write_bytes;
  m.l2_bytes = t.l2_read_bytes + t.l2_write_bytes;
  m.l1_bytes = t.l1_total();
  m.flops_executed = r.report.flops_executed;
  m.flops_normalized = r.normalized_flops;
  m.warp_insts = r.report.warp_insts;

  m.t_hbm = r.report.t_hbm;
  m.t_l2 = r.report.t_l2;
  m.t_issue = r.report.t_issue;
  m.bottleneck = r.report.bottleneck();
  m.regs_used = r.regs_used;
  m.spill_slots = r.spill_slots;
  m.read_streams = r.read_streams;
  m.used_scatter = r.used_scatter;
  m.check_errors = r.check_stats.errors;
  m.check_warnings = r.check_stats.warnings;
  m.check_insts = r.check_stats.insts;
  return m;
}

Measurement run_and_measure(const model::Launcher& launcher,
                            const dsl::Stencil& stencil,
                            codegen::Variant variant,
                            const model::Platform& platform,
                            const codegen::Options& opts) {
  const model::LaunchResult r =
      launcher.run(stencil, variant, platform, opts);
  return measure(stencil, variant, platform, launcher.domain(), r);
}

void print_report(std::ostream& os, const Measurement& m) {
  auto gb = [](std::uint64_t b) { return static_cast<double>(b) / 1e9; };
  os << std::fixed;
  os << "kernel " << m.stencil << " / " << m.variant << " on " << m.arch
     << " / " << m.pm << "  (domain " << m.domain.i << "x" << m.domain.j
     << "x" << m.domain.k << ")\n";
  os << "  time          " << std::setprecision(4) << m.seconds * 1e3
     << " ms   bottleneck: " << m.bottleneck << "\n";
  os << "    t_hbm " << m.t_hbm * 1e3 << " ms, t_l2 " << m.t_l2 * 1e3
     << " ms, t_issue " << m.t_issue * 1e3 << " ms\n";
  os << "  perf          " << std::setprecision(1) << m.gflops
     << " GFLOP/s (normalised)   AI " << std::setprecision(3) << m.ai
     << " FLOP/B (executed " << m.ai_executed << ")\n";
  os << "  traffic       HBM " << std::setprecision(3) << gb(m.hbm_bytes)
     << " GB (R " << gb(m.hbm_read_bytes) << " / W " << gb(m.hbm_write_bytes)
     << "), L2 " << gb(m.l2_bytes) << " GB, L1 " << gb(m.l1_bytes) << " GB\n";
  os << "  kernel shape  regs " << m.regs_used << ", spill slots "
     << m.spill_slots << ", read streams " << m.read_streams << ", "
     << (m.used_scatter ? "scatter" : "gather") << ", warp insts "
     << m.warp_insts << "\n";
  if (m.check_insts > 0)
    os << "  brickcheck    " << m.check_insts << " insts verified, "
       << m.check_errors << " error(s), " << m.check_warnings
       << " warning(s)\n";
}

}  // namespace bricksim::profiler
