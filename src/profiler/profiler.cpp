#include "profiler/profiler.h"

#include <iomanip>

namespace bricksim::profiler {

Measurement measure(const dsl::Stencil& stencil, codegen::Variant variant,
                    const model::Platform& platform, Vec3 domain,
                    const model::LaunchResult& r) {
  Measurement m;
  m.stencil = stencil.name();
  m.variant = codegen::variant_name(variant);
  m.arch = platform.gpu.name;
  m.pm = platform.pm.name;
  m.domain = domain;

  m.seconds = r.report.seconds;
  m.gflops = r.normalized_gflops();
  m.ai = r.normalized_ai();
  m.ai_executed = r.report.arithmetic_intensity();

  const auto& t = r.report.traffic;
  m.hbm_bytes = t.hbm_total();
  m.hbm_read_bytes = t.hbm_read_bytes;
  m.hbm_write_bytes = t.hbm_write_bytes;
  m.l2_bytes = t.l2_read_bytes + t.l2_write_bytes;
  m.l1_bytes = t.l1_total();
  m.flops_executed = r.report.flops_executed;
  m.flops_normalized = r.normalized_flops;
  m.warp_insts = r.report.warp_insts;

  m.t_hbm = r.report.t_hbm;
  m.t_l2 = r.report.t_l2;
  m.t_issue = r.report.t_issue;
  m.bottleneck = r.report.bottleneck();
  m.regs_used = r.regs_used;
  m.spill_slots = r.spill_slots;
  m.read_streams = r.read_streams;
  m.used_scatter = r.used_scatter;
  m.check_errors = r.check_stats.errors;
  m.check_warnings = r.check_stats.warnings;
  m.check_insts = r.check_stats.insts;
  return m;
}

Measurement run_and_measure(const model::Launcher& launcher,
                            const dsl::Stencil& stencil,
                            codegen::Variant variant,
                            const model::Platform& platform,
                            const codegen::Options& opts) {
  const model::LaunchResult r =
      launcher.run(stencil, variant, platform, opts);
  return measure(stencil, variant, platform, launcher.domain(), r);
}

void print_report(std::ostream& os, const Measurement& m) {
  auto gb = [](std::uint64_t b) { return static_cast<double>(b) / 1e9; };
  os << std::fixed;
  os << "kernel " << m.stencil << " / " << m.variant << " on " << m.arch
     << " / " << m.pm << "  (domain " << m.domain.i << "x" << m.domain.j
     << "x" << m.domain.k << ")\n";
  os << "  time          " << std::setprecision(4) << m.seconds * 1e3
     << " ms   bottleneck: " << m.bottleneck << "\n";
  os << "    t_hbm " << m.t_hbm * 1e3 << " ms, t_l2 " << m.t_l2 * 1e3
     << " ms, t_issue " << m.t_issue * 1e3 << " ms\n";
  os << "  perf          " << std::setprecision(1) << m.gflops
     << " GFLOP/s (normalised)   AI " << std::setprecision(3) << m.ai
     << " FLOP/B (executed " << m.ai_executed << ")\n";
  os << "  traffic       HBM " << std::setprecision(3) << gb(m.hbm_bytes)
     << " GB (R " << gb(m.hbm_read_bytes) << " / W " << gb(m.hbm_write_bytes)
     << "), L2 " << gb(m.l2_bytes) << " GB, L1 " << gb(m.l1_bytes) << " GB\n";
  os << "  kernel shape  regs " << m.regs_used << ", spill slots "
     << m.spill_slots << ", read streams " << m.read_streams << ", "
     << (m.used_scatter ? "scatter" : "gather") << ", warp insts "
     << m.warp_insts << "\n";
  if (m.check_insts > 0)
    os << "  brickcheck    " << m.check_insts << " insts verified, "
       << m.check_errors << " error(s), " << m.check_warnings
       << " warning(s)\n";
}

namespace {

json::Value vec3_to_json(const Vec3& v) {
  json::Value a = json::Value::array();
  a.push_back(v.i);
  a.push_back(v.j);
  a.push_back(v.k);
  return a;
}

Vec3 vec3_from_json(const json::Value& a) {
  return {static_cast<int>(a[0].as_long()), static_cast<int>(a[1].as_long()),
          static_cast<int>(a[2].as_long())};
}

}  // namespace

json::Value to_json(const Measurement& m) {
  json::Value v = json::Value::object();
  v["stencil"] = m.stencil;
  v["variant"] = m.variant;
  v["arch"] = m.arch;
  v["pm"] = m.pm;
  v["domain"] = vec3_to_json(m.domain);
  v["seconds"] = m.seconds;
  v["gflops"] = m.gflops;
  v["ai"] = m.ai;
  v["ai_executed"] = m.ai_executed;
  v["hbm_bytes"] = m.hbm_bytes;
  v["hbm_read_bytes"] = m.hbm_read_bytes;
  v["hbm_write_bytes"] = m.hbm_write_bytes;
  v["l2_bytes"] = m.l2_bytes;
  v["l1_bytes"] = m.l1_bytes;
  v["flops_executed"] = m.flops_executed;
  v["flops_normalized"] = m.flops_normalized;
  v["warp_insts"] = m.warp_insts;
  v["t_hbm"] = m.t_hbm;
  v["t_l2"] = m.t_l2;
  v["t_issue"] = m.t_issue;
  v["bottleneck"] = m.bottleneck;
  v["regs_used"] = m.regs_used;
  v["spill_slots"] = m.spill_slots;
  v["read_streams"] = m.read_streams;
  v["used_scatter"] = m.used_scatter;
  v["check_errors"] = m.check_errors;
  v["check_warnings"] = m.check_warnings;
  v["check_insts"] = m.check_insts;
  return v;
}

Measurement measurement_from_json(const json::Value& v) {
  Measurement m;
  m.stencil = v.at("stencil").as_string();
  m.variant = v.at("variant").as_string();
  m.arch = v.at("arch").as_string();
  m.pm = v.at("pm").as_string();
  m.domain = vec3_from_json(v.at("domain"));
  m.seconds = v.at("seconds").as_double();
  m.gflops = v.at("gflops").as_double();
  m.ai = v.at("ai").as_double();
  m.ai_executed = v.at("ai_executed").as_double();
  m.hbm_bytes = v.at("hbm_bytes").as_u64();
  m.hbm_read_bytes = v.at("hbm_read_bytes").as_u64();
  m.hbm_write_bytes = v.at("hbm_write_bytes").as_u64();
  m.l2_bytes = v.at("l2_bytes").as_u64();
  m.l1_bytes = v.at("l1_bytes").as_u64();
  m.flops_executed = v.at("flops_executed").as_u64();
  m.flops_normalized = v.at("flops_normalized").as_long();
  m.warp_insts = v.at("warp_insts").as_u64();
  m.t_hbm = v.at("t_hbm").as_double();
  m.t_l2 = v.at("t_l2").as_double();
  m.t_issue = v.at("t_issue").as_double();
  m.bottleneck = v.at("bottleneck").as_string();
  m.regs_used = static_cast<int>(v.at("regs_used").as_long());
  m.spill_slots = static_cast<int>(v.at("spill_slots").as_long());
  m.read_streams = static_cast<int>(v.at("read_streams").as_long());
  m.used_scatter = v.at("used_scatter").as_bool();
  m.check_errors = v.at("check_errors").as_long();
  m.check_warnings = v.at("check_warnings").as_long();
  m.check_insts = v.at("check_insts").as_long();
  return m;
}

}  // namespace bricksim::profiler
