// The Roofline model and its mixbench-style empirical derivation.
//
// The paper evaluates every kernel against a Roofline per (architecture,
// programming model), with ceilings derived from the mixbench microbenchmark
// (Konstantinidis & Cotronis) on NVIDIA/AMD and from Intel Advisor on PVC.
// BrickSim reproduces the methodology: a sweep of synthetic kernels with a
// controlled FLOP:byte ratio is run through the same simulator, and the
// plateaus of that sweep become the empirical bandwidth and compute
// ceilings.
#pragma once

#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "model/progmodel.h"

namespace bricksim::roofline {

struct Roofline {
  double peak_bw = 0;     ///< bytes/s ceiling
  double peak_flops = 0;  ///< FLOP/s ceiling

  friend bool operator==(const Roofline&, const Roofline&) = default;

  /// Arithmetic intensity at which the two ceilings meet.
  double ridge() const { return peak_bw > 0 ? peak_flops / peak_bw : 0; }

  /// Attainable FLOP/s at arithmetic intensity `ai`.
  double attainable(double ai) const {
    const double mem = ai * peak_bw;
    return mem < peak_flops ? mem : peak_flops;
  }

  /// Fraction of the Roofline achieved by a kernel running at `gflops`
  /// (1e9 FLOP/s) with arithmetic intensity `ai`.
  double fraction(double gflops, double ai) const {
    const double att = attainable(ai);
    return att > 0 ? gflops * 1e9 / att : 0;
  }
};

/// Vendor-datasheet ceilings (no derating).
Roofline theoretical_roofline(const arch::GpuArch& gpu);

/// One point of the mixbench sweep.
struct MixbenchPoint {
  double nominal_ai = 0;   ///< configured FLOP:byte ratio
  double measured_ai = 0;  ///< FLOPs / measured HBM bytes
  double gflops = 0;
  double gbytes_per_sec = 0;

  friend bool operator==(const MixbenchPoint&,
                         const MixbenchPoint&) = default;
};

struct EmpiricalRoofline {
  Roofline roofline;  ///< plateaus of the sweep
  std::vector<MixbenchPoint> points;

  friend bool operator==(const EmpiricalRoofline&,
                         const EmpiricalRoofline&) = default;
};

/// Runs the mixbench sweep for `platform` on a `domain`-sized working set
/// (large enough to defeat the L2) and derives the empirical ceilings.
EmpiricalRoofline mixbench(const model::Platform& platform,
                           bricksim::Vec3 domain);

/// Lossless JSON round trips (bit-exact doubles) for the sweep cache and
/// result artifacts: *_from_json(to_json(x)) == x.
json::Value to_json(const Roofline& rl);
Roofline roofline_from_json(const json::Value& v);
json::Value to_json(const MixbenchPoint& p);
MixbenchPoint mixbench_point_from_json(const json::Value& v);
json::Value to_json(const EmpiricalRoofline& e);
EmpiricalRoofline empirical_roofline_from_json(const json::Value& v);

}  // namespace bricksim::roofline
