#include "roofline/roofline.h"

#include <algorithm>

#include "codegen/codegen.h"
#include "common/error.h"
#include "ir/program.h"
#include "simt/machine.h"

namespace bricksim::roofline {

Roofline theoretical_roofline(const arch::GpuArch& gpu) {
  return {gpu.peak_hbm_bytes_per_sec(), gpu.peak_fp64_flops()};
}

namespace {

/// Builds the mixbench kernel body: per output row, one streaming load,
/// `flops_per_elem/2` FMAs, one streaming store.  AI = flops_per_elem/16.
ir::Program make_mixbench_program(int W, int fma_per_elem) {
  ir::Program prog(W);
  const int cidx = prog.add_constant("c");
  for (int vk = 0; vk < codegen::kTileK; ++vk)
    for (int vj = 0; vj < codegen::kTileJ; ++vj) {
      ir::MemRef in;
      in.grid = 0;
      in.space = ir::Space::Array;
      in.dj = vj;
      in.dk = vk;
      in.vectorized = true;
      int acc = prog.load(in);
      for (int t = 0; t < fma_per_elem; ++t)
        acc = prog.fma_const(acc, acc, cidx);
      ir::MemRef out = in;
      out.grid = 1;
      prog.store(acc, out);
    }
  return prog;
}

}  // namespace

EmpiricalRoofline mixbench(const model::Platform& platform, Vec3 domain) {
  const arch::GpuArch& gpu = platform.gpu;
  const int W = gpu.simd_width;
  BRICKSIM_REQUIRE(domain.i % W == 0 && domain.j % codegen::kTileJ == 0 &&
                       domain.k % codegen::kTileK == 0,
                   "mixbench domain must be divisible by the tile shape");

  EmpiricalRoofline out;
  simt::Machine machine(gpu);

  for (int fma : {0, 1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const ir::Program prog = make_mixbench_program(W, fma);

    simt::Kernel kernel;
    kernel.program = &prog;
    kernel.tile = {W, codegen::kTileJ, codegen::kTileK};
    kernel.blocks = {domain.i / W, domain.j / codegen::kTileJ,
                     domain.k / codegen::kTileK};
    kernel.constants = {1.0000001};
    kernel.read_streams = 1;  // a pure streaming pattern
    kernel.bw_derate = platform.pm.bw_derate;
    kernel.streaming_stores = platform.pm.streaming_stores;

    simt::DeviceAllocator dev(gpu.l1.line_bytes);
    for (int g = 0; g < 2; ++g) {
      simt::GridBinding b;
      b.padded = domain;
      b.device_base = dev.allocate(
          static_cast<std::uint64_t>(domain.volume()) * kElemBytes);
      kernel.grids.push_back(b);
    }

    const simt::KernelReport rep =
        machine.run(kernel, simt::ExecMode::CountersOnly);

    MixbenchPoint p;
    p.nominal_ai = 2.0 * fma / (2.0 * kElemBytes);
    p.measured_ai = rep.arithmetic_intensity();
    p.gflops = rep.gflops();
    p.gbytes_per_sec = rep.seconds > 0
                           ? static_cast<double>(rep.traffic.hbm_total()) /
                                 rep.seconds / 1e9
                           : 0;
    out.points.push_back(p);
  }

  for (const MixbenchPoint& p : out.points) {
    out.roofline.peak_bw = std::max(out.roofline.peak_bw,
                                    p.gbytes_per_sec * 1e9);
    out.roofline.peak_flops = std::max(out.roofline.peak_flops,
                                       p.gflops * 1e9);
  }
  return out;
}

json::Value to_json(const Roofline& rl) {
  json::Value v = json::Value::object();
  v["peak_bw"] = rl.peak_bw;
  v["peak_flops"] = rl.peak_flops;
  return v;
}

Roofline roofline_from_json(const json::Value& v) {
  Roofline rl;
  rl.peak_bw = v.at("peak_bw").as_double();
  rl.peak_flops = v.at("peak_flops").as_double();
  return rl;
}

json::Value to_json(const MixbenchPoint& p) {
  json::Value v = json::Value::object();
  v["nominal_ai"] = p.nominal_ai;
  v["measured_ai"] = p.measured_ai;
  v["gflops"] = p.gflops;
  v["gbytes_per_sec"] = p.gbytes_per_sec;
  return v;
}

MixbenchPoint mixbench_point_from_json(const json::Value& v) {
  MixbenchPoint p;
  p.nominal_ai = v.at("nominal_ai").as_double();
  p.measured_ai = v.at("measured_ai").as_double();
  p.gflops = v.at("gflops").as_double();
  p.gbytes_per_sec = v.at("gbytes_per_sec").as_double();
  return p;
}

json::Value to_json(const EmpiricalRoofline& e) {
  json::Value v = json::Value::object();
  v["roofline"] = to_json(e.roofline);
  json::Value points = json::Value::array();
  for (const auto& p : e.points) points.push_back(to_json(p));
  v["points"] = points;
  return v;
}

EmpiricalRoofline empirical_roofline_from_json(const json::Value& v) {
  EmpiricalRoofline e;
  e.roofline = roofline_from_json(v.at("roofline"));
  const json::Value& points = v.at("points");
  for (std::size_t i = 0; i < points.size(); ++i)
    e.points.push_back(mixbench_point_from_json(points[i]));
  return e;
}

}  // namespace bricksim::roofline
