#include "model/progmodel.h"

#include "common/error.h"

namespace bricksim::model {

std::string pm_name(PmKind kind) {
  switch (kind) {
    case PmKind::CUDA: return "CUDA";
    case PmKind::HIP: return "HIP";
    case PmKind::SYCL: return "SYCL";
    case PmKind::OpenMP: return "OpenMP";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Calibration notes (matched against the paper's Section 5 observations):
//
//  * CUDA on A100: the reference toolchain.  Tiny address overhead (nvcc
//    strength-reduces tile indexing), pipelined loads, streaming stores.
//
//  * HIP on A100: "CUDA and HIP show the same performance and arithmetic
//    intensity since the HIP interface is a wrapper for the NVIDIA
//    compiler" -- the profile is the CUDA profile with a different name.
//
//  * SYCL on A100 (intel-llvm 2023): naive kernels are dramatically slower
//    (up to 13x star / 26x cube vs codegen): accessor indexing in 64-bit
//    that is not strength-reduced (addr ops), and an un-pipelined
//    accumulation chain exposing ~1/16 of the HBM latency per load.  It
//    also misses streaming-store formation, which is what makes "CUDA move
//    2x less data than SYCL" in Figure 5 (right): output lines are filled
//    from HBM before being overwritten.
//
//  * HIP on MI250X: mature native toolchain, but unaligned *vectorised*
//    loads (the array-codegen i-shifted loads) are lowered through a path
//    that does not allocate in L2 -- reproducing the >10 GB `array codegen`
//    anomaly of Figure 6 (right) while naive and brick kernels stay near
//    the compulsory-traffic bound.
//
//  * SYCL on MI250X (DPC++ 2022.09): between the two -- some exposed
//    latency on naive kernels (3x star / 9x cube codegen speedups), no
//    L2-bypass quirk (bricks codegen matches HIP, Figure 6).
//
//  * SYCL on PVC (oneAPI icpx): native toolchain for the hardware; small
//    overheads, but sub-group shuffles are comparatively expensive on
//    Xe-cores (vector engines are 16 lanes wide, and the generated stencils
//    shuffle heavily), hence shuffle_cost_mult = 2.
// ---------------------------------------------------------------------------

namespace {

ProgModel cuda_like(PmKind kind, const std::string& name) {
  ProgModel m;
  m.kind = kind;
  m.name = name;
  m.addr_ops_per_load_naive = 2;
  m.addr_ops_per_store_naive = 1;
  m.addr_ops_per_load_codegen = 1;
  m.addr_ops_per_store_codegen = 1;
  return m;
}

}  // namespace

ProgModel model_for(PmKind kind, const arch::GpuArch& gpu) {
  const bool nvidia = gpu.vendor == "NVIDIA";
  const bool amd = gpu.vendor == "AMD";
  const bool intel = gpu.vendor == "Intel";
  const bool cpu = gpu.vendor == "Intel-CPU";

  switch (kind) {
    case PmKind::CUDA:
      BRICKSIM_REQUIRE(nvidia, "CUDA is only available on NVIDIA GPUs");
      return cuda_like(PmKind::CUDA, "CUDA");

    case PmKind::HIP: {
      BRICKSIM_REQUIRE(nvidia || amd, "HIP needs an NVIDIA or AMD GPU");
      ProgModel m = cuda_like(PmKind::HIP, "HIP");
      if (amd) m.bypass_l2_unaligned_vloads = true;
      return m;
    }

    case PmKind::SYCL: {
      ProgModel m;
      m.kind = PmKind::SYCL;
      m.name = "SYCL";
      if (nvidia) {
        m.addr_ops_per_load_naive = 12;
        m.addr_ops_per_store_naive = 4;
        m.addr_ops_per_load_codegen = 3;
        m.addr_ops_per_store_codegen = 2;
        m.naive_extra_cycles_per_load = 28;  // ~latency/16
        m.bw_derate = 0.93;
        m.shuffle_cost_mult = 1.5;
        m.reg_budget_fraction = 0.75;
        m.streaming_stores = false;
      } else if (amd) {
        m.addr_ops_per_load_naive = 10;
        m.addr_ops_per_store_naive = 4;
        m.addr_ops_per_load_codegen = 3;
        m.addr_ops_per_store_codegen = 2;
        m.naive_extra_cycles_per_load = 14;
        m.bw_derate = 0.97;
        m.shuffle_cost_mult = 1.5;
        m.reg_budget_fraction = 0.75;
      } else {
        BRICKSIM_REQUIRE(intel, "unknown vendor for SYCL");
        m.addr_ops_per_load_naive = 6;
        m.addr_ops_per_store_naive = 2;
        m.addr_ops_per_load_codegen = 2;
        m.addr_ops_per_store_codegen = 1;
        m.naive_extra_cycles_per_load = 2;
        m.shuffle_cost_mult = 2.0;
      }
      return m;
    }

    case PmKind::OpenMP: {
      // The CPU extension: OpenMP threads over bricks plus intrinsics from
      // the vector code generator.  Mature toolchain: strength-reduced
      // addressing, hardware prefetch, no lowering quirks.
      BRICKSIM_REQUIRE(cpu, "OpenMP backend targets the CPU architectures");
      ProgModel m = cuda_like(PmKind::OpenMP, "OpenMP");
      return m;
    }
  }
  throw Error("unreachable programming-model kind");
}

std::vector<Platform> paper_platforms() {
  const arch::GpuArch a100 = arch::make_a100();
  const arch::GpuArch mi = arch::make_mi250x_gcd();
  const arch::GpuArch pvc = arch::make_pvc_stack();
  return {
      {a100, model_for(PmKind::CUDA, a100)},
      {a100, model_for(PmKind::HIP, a100)},
      {a100, model_for(PmKind::SYCL, a100)},
      {mi, model_for(PmKind::HIP, mi)},
      {mi, model_for(PmKind::SYCL, mi)},
      {pvc, model_for(PmKind::SYCL, pvc)},
  };
}

std::vector<Platform> metric_platforms() {
  auto all = paper_platforms();
  all.erase(all.begin() + 1);  // drop A100/HIP (identical to A100/CUDA)
  return all;
}

std::vector<Platform> cpu_platforms() {
  std::vector<Platform> out;
  for (const auto& a : arch::cpu_architectures())
    out.push_back({a, model_for(PmKind::OpenMP, a)});
  return out;
}

}  // namespace bricksim::model
