// The launcher: runs one (stencil, variant, platform) experiment end to end.
//
// Pipeline: DSL stencil -> vector codegen (variant-specific lowering with
// the platform's programming-model costs) -> register allocation against
// the platform's register budget -> data binding (padded arrays or bricked
// storage with adjacency) -> SIMT machine execution -> KernelReport.
//
// Two entry points: `run` executes counters-only (no data allocated; used
// by the benchmark sweeps at paper scale), `run_functional` executes with
// real values so results can be verified against the scalar reference.
#pragma once

#include <memory>
#include <vector>

#include "analysis/brickcheck.h"
#include "codegen/codegen.h"
#include "common/grid.h"
#include "dsl/stencil.h"
#include "model/progmodel.h"
#include "simt/machine.h"

namespace bricksim::brick {
class BrickDecomp;
class BrickedArray;
}  // namespace bricksim::brick

namespace bricksim::model {

struct LaunchResult {
  simt::KernelReport report;
  ir::InstStats inst_stats;  ///< post-register-allocation, per thread block
  int regs_used = 0;
  int spill_slots = 0;
  bool used_scatter = false;
  int read_streams = 1;

  /// brickcheck statistics for the pre-launch verification of the
  /// post-regalloc program (zeroed when the launcher's check mode is Off).
  analysis::CheckStats check_stats;

  /// The paper's normalised FLOP count: the minimal symmetry-exploiting
  /// count, identical for every variant of the same stencil, "to avoid
  /// introducing FLOP count variations on the Roofline model".
  long normalized_flops = 0;

  double normalized_gflops() const {
    return report.seconds > 0
               ? static_cast<double>(normalized_flops) / report.seconds / 1e9
               : 0.0;
  }
  /// Arithmetic intensity from normalised FLOPs and measured HBM bytes.
  double normalized_ai() const {
    const auto bytes = report.traffic.hbm_total();
    return bytes > 0 ? static_cast<double>(normalized_flops) /
                           static_cast<double>(bytes)
                     : 0.0;
  }
};

/// Everything built for one launch short of executing it: the post-regalloc
/// program, the bound kernel, the launch geometry, and the storage backing
/// the bindings.  `kernel` points into this struct's owned members (program,
/// decomposition, host mirrors), which live on the heap -- a PreparedLaunch
/// is movable without invalidating the kernel.  Produced by
/// Launcher::prepare(); `bricksim lint` analyses these statically without
/// ever running them.
struct PreparedLaunch {
  std::unique_ptr<ir::Program> program;  ///< post-regalloc program
  simt::Kernel kernel;
  analysis::LaunchGeom geom;  ///< always built, even with checks off

  ir::InstStats inst_stats;   ///< per thread block
  int regs_used = 0;
  int spill_slots = 0;
  bool used_scatter = false;
  int read_streams = 1;
  long normalized_flops = 0;
  analysis::CheckStats check_stats;

  // Owned storage backing the kernel's grid bindings.
  std::vector<bElem> in_copy;
  std::unique_ptr<brick::BrickDecomp> decomp;
  std::unique_ptr<brick::BrickedArray> bin, bout;

  // Out of line: the brick types are forward-declared here.
  PreparedLaunch();
  PreparedLaunch(PreparedLaunch&&) noexcept;
  PreparedLaunch& operator=(PreparedLaunch&&) noexcept;
  ~PreparedLaunch();
};

class Launcher {
 public:
  /// `domain` is the interior grid (512^3 in the paper).  Extents must be
  /// divisible by the tile/brick shape of every platform used.
  explicit Launcher(Vec3 domain);

  Vec3 domain() const { return domain_; }

  /// Pre-launch brickcheck policy: Warn (default) prints diagnostics to
  /// stderr, Strict turns any error into a thrown bricksim::Error, Off
  /// skips the pass.  The harness `--check` flag plumbs through here.
  void set_check_mode(analysis::CheckMode mode) { check_ = mode; }
  analysis::CheckMode check_mode() const { return check_; }

  /// Execution engine for the SIMT machine (bit-identical reports either
  /// way).  The harness `--engine` flag plumbs through here.
  void set_engine(simt::Engine engine) { engine_ = engine; }
  simt::Engine engine() const { return engine_; }

  /// Worker threads one kernel's block-grid replay is sharded across
  /// (simt::ExecPlan::replay_sharded; Engine::Plan only, and reports stay
  /// bit-identical at any value).  1 (the default) replays serially.  The
  /// harness's two-level sweep scheduler plumbs its per-config share of
  /// --jobs through here.
  void set_shards(int shards) { shards_ = shards; }
  int shards() const { return shards_; }

  /// Opt-in differential verification of every decoded ExecPlan against its
  /// source program (analysis::verify_plan, enforced strictly) before the
  /// plan replays.  Engine::Plan only; the harness `--verify-plan` flag
  /// plumbs through here.
  void set_verify_plan(bool on) { verify_plan_ = on; }
  bool verify_plan() const { return verify_plan_; }

  /// Observation hook handed every freshly decoded ExecPlan before it
  /// replays (Engine::Plan only; shares the Machine's single hook slot, so
  /// set_verify_plan wins when both are set).  The SoA-vs-AoS equivalence
  /// tests replay production plans through both layouts via this.
  void set_plan_hook(simt::Machine::PlanHook hook) {
    plan_hook_ = std::move(hook);
  }

  /// Builds one configuration end to end WITHOUT executing it: lowering,
  /// register allocation, counters-only data binding, launch geometry, and
  /// the pre-launch brickcheck gate (under the current check mode).
  PreparedLaunch prepare(const dsl::Stencil& stencil, codegen::Variant variant,
                         const Platform& platform,
                         const codegen::Options& opts = {}) const;

  /// Counters-only execution (no element data; fast, any domain size).
  LaunchResult run(const dsl::Stencil& stencil, codegen::Variant variant,
                   const Platform& platform,
                   const codegen::Options& opts = {}) const;

  /// Functional execution: applies the stencil to `in` (ghost >= radius)
  /// and writes `out` (interior == domain).
  LaunchResult run_functional(const dsl::Stencil& stencil,
                              codegen::Variant variant,
                              const Platform& platform, const HostGrid& in,
                              HostGrid& out,
                              const codegen::Options& opts = {}) const;

 private:
  PreparedLaunch prepare_impl(const dsl::Stencil& stencil,
                              codegen::Variant variant,
                              const Platform& platform,
                              const codegen::Options& opts, const HostGrid* in,
                              HostGrid* out) const;
  LaunchResult run_impl(const dsl::Stencil& stencil, codegen::Variant variant,
                        const Platform& platform, const codegen::Options& opts,
                        const HostGrid* in, HostGrid* out) const;

  Vec3 domain_;
  analysis::CheckMode check_ = analysis::CheckMode::Warn;
  simt::Engine engine_ = simt::Engine::Plan;
  int shards_ = 1;
  bool verify_plan_ = false;
  simt::Machine::PlanHook plan_hook_;
};

}  // namespace bricksim::model
