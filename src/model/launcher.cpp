#include "model/launcher.h"

#include <algorithm>
#include <vector>

#include "analysis/planverify.h"
#include "brick/brick.h"
#include "common/error.h"
#include "common/fault.h"
#include "ir/regalloc.h"
#include "ir/schedule.h"

namespace bricksim::model {

PreparedLaunch::PreparedLaunch() = default;
PreparedLaunch::PreparedLaunch(PreparedLaunch&&) noexcept = default;
PreparedLaunch& PreparedLaunch::operator=(PreparedLaunch&&) noexcept =
    default;
PreparedLaunch::~PreparedLaunch() = default;

Launcher::Launcher(Vec3 domain) : domain_(domain) {
  BRICKSIM_REQUIRE(domain.i > 0 && domain.j > 0 && domain.k > 0,
                   "domain extents must be positive");
}

LaunchResult Launcher::run(const dsl::Stencil& stencil,
                           codegen::Variant variant, const Platform& platform,
                           const codegen::Options& opts) const {
  return run_impl(stencil, variant, platform, opts, nullptr, nullptr);
}

LaunchResult Launcher::run_functional(const dsl::Stencil& stencil,
                                      codegen::Variant variant,
                                      const Platform& platform,
                                      const HostGrid& in, HostGrid& out,
                                      const codegen::Options& opts) const {
  BRICKSIM_REQUIRE(in.interior() == domain_ && out.interior() == domain_,
                   "grid interiors must match the launcher domain");
  const int r = stencil.radius();
  BRICKSIM_REQUIRE(in.ghost().i >= r && in.ghost().j >= r && in.ghost().k >= r,
                   "input ghost must cover the stencil radius");
  return run_impl(stencil, variant, platform, opts, &in, &out);
}

PreparedLaunch Launcher::prepare(const dsl::Stencil& stencil,
                                 codegen::Variant variant,
                                 const Platform& platform,
                                 const codegen::Options& opts) const {
  return prepare_impl(stencil, variant, platform, opts, nullptr, nullptr);
}

PreparedLaunch Launcher::prepare_impl(const dsl::Stencil& stencil,
                                      codegen::Variant variant,
                                      const Platform& platform,
                                      const codegen::Options& opts,
                                      const HostGrid* in,
                                      HostGrid* out) const {
  const arch::GpuArch& gpu = platform.gpu;
  const ProgModel& pm = platform.pm;
  const int W = gpu.simd_width;
  const int ti = W * opts.tile_i_vectors;  // vector folding in i
  const int tj = opts.tile_j;
  const int tk = opts.tile_k;
  BRICKSIM_REQUIRE(domain_.i % ti == 0 && domain_.j % tj == 0 &&
                       domain_.k % tk == 0,
                   "domain must be divisible by the tile shape on " +
                       gpu.name);

  // 1. Lower with this model's per-access costs.
  const bool naive = variant == codegen::Variant::Array;
  codegen::LoweringCosts costs;
  costs.addr_ops_per_load =
      naive ? pm.addr_ops_per_load_naive : pm.addr_ops_per_load_codegen;
  costs.addr_ops_per_store =
      naive ? pm.addr_ops_per_store_naive : pm.addr_ops_per_store_codegen;
  codegen::LoweredKernel lowered =
      codegen::lower(stencil, variant, W, opts, costs);
  if (opts.reorder_for_pressure)
    lowered.program =
        ir::schedule_for_pressure(lowered.program).program;

  // 2. Register allocation against the platform budget.
  const int budget = std::max(
      8, static_cast<int>(gpu.regs_per_lane * pm.reg_budget_fraction));
  ir::RegAllocResult ra = ir::allocate_registers(lowered.program, budget);

  PreparedLaunch prep;
  prep.program = std::make_unique<ir::Program>(std::move(ra.program));

  // 3. Bind data.
  const bool functional = in != nullptr;
  simt::Kernel& kernel = prep.kernel;
  kernel.program = prep.program.get();
  kernel.tile = {ti, tj, tk};
  kernel.blocks = {domain_.i / ti, domain_.j / tj, domain_.k / tk};
  for (const auto& group : stencil.groups())
    kernel.constants.push_back(group.value);
  kernel.read_streams = lowered.read_streams;
  kernel.bw_derate = pm.bw_derate;
  kernel.shuffle_cost_mult = pm.shuffle_cost_mult;
  kernel.bypass_l2_unaligned_vloads = pm.bypass_l2_unaligned_vloads;
  kernel.streaming_stores = pm.streaming_stores;
  kernel.extra_cycles_per_load = naive ? pm.naive_extra_cycles_per_load : 0.0;

  simt::DeviceAllocator dev(gpu.l1.line_bytes);

  if (variant == codegen::Variant::BricksCodegen) {
    prep.decomp = std::make_unique<brick::BrickDecomp>(
        domain_, brick::BrickDims{ti, tj, tk}, opts.shuffled_brick_order,
        opts.brick_order_seed);
    brick::BrickDecomp& decomp = *prep.decomp;
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        decomp.num_bricks() * decomp.dims().elems() * kElemBytes);
    auto make_binding = [&](bElem* data, std::size_t len) {
      simt::GridBinding g;
      g.device_base = dev.allocate(bytes);
      g.elems_per_brick = decomp.dims().elems();
      g.adjacency = decomp.adjacency();
      g.block_to_brick = decomp.block_to_brick();
      g.brick_dims = decomp.dims().as_vec();
      g.data = data;
      g.len = len;
      return g;
    };
    if (functional) {
      prep.bin = std::make_unique<brick::BrickedArray>(decomp);
      prep.bout = std::make_unique<brick::BrickedArray>(decomp);
      prep.bin->from_host(*in);
      kernel.grids.push_back(
          make_binding(prep.bin->raw().data(), prep.bin->raw().size()));
      kernel.grids.push_back(
          make_binding(prep.bout->raw().data(), prep.bout->raw().size()));
    } else {
      kernel.grids.push_back(make_binding(nullptr, 0));
      kernel.grids.push_back(make_binding(nullptr, 0));
    }
  } else {
    // Array layout: input padded by the stencil radius, output by whatever
    // ghost the caller's grid carries (zero in counters-only mode).
    const int r = stencil.radius();
    const Vec3 in_ghost = functional ? in->ghost() : Vec3{r, r, r};
    const Vec3 in_padded{domain_.i + 2 * in_ghost.i,
                         domain_.j + 2 * in_ghost.j,
                         domain_.k + 2 * in_ghost.k};
    simt::GridBinding gi;
    gi.padded = in_padded;
    gi.ghost = in_ghost;
    gi.device_base = dev.allocate(
        static_cast<std::uint64_t>(in_padded.volume()) * kElemBytes);
    if (functional) {
      prep.in_copy.assign(in->raw().begin(), in->raw().end());
      gi.data = prep.in_copy.data();
      gi.len = prep.in_copy.size();
    }
    kernel.grids.push_back(gi);

    const Vec3 out_ghost = functional ? out->ghost() : Vec3{0, 0, 0};
    const Vec3 out_padded{domain_.i + 2 * out_ghost.i,
                          domain_.j + 2 * out_ghost.j,
                          domain_.k + 2 * out_ghost.k};
    simt::GridBinding go;
    go.padded = out_padded;
    go.ghost = out_ghost;
    go.device_base = dev.allocate(
        static_cast<std::uint64_t>(out_padded.volume()) * kElemBytes);
    if (functional) {
      go.data = out->raw().data();
      go.len = out->raw().size();
    }
    kernel.grids.push_back(go);
  }

  // 4. The launch geometry, and the pre-launch static verification of the
  // program that will actually run (post-regalloc: spill code included).
  analysis::LaunchGeom& geom = prep.geom;
  geom.blocks = kernel.blocks;
  geom.tile = kernel.tile;
  geom.require_aligned_vloads = gpu.requires_aligned_vloads;
  for (const simt::GridBinding& g : kernel.grids) {
    analysis::GridGeom gg;
    if (variant == codegen::Variant::BricksCodegen) {
      gg.layout = ir::Space::Brick;
      gg.brick_dims = g.brick_dims;
    } else {
      gg.layout = ir::Space::Array;
      gg.padded = g.padded;
      gg.ghost = g.ghost;
    }
    geom.grids.push_back(gg);
  }
  if (check_ != analysis::CheckMode::Off) {
    const analysis::Report rep = analysis::check(*prep.program, geom);
    analysis::enforce(rep, check_,
                      stencil.name() + "/" + codegen::variant_name(variant) +
                          " on " + gpu.name);
    prep.check_stats = rep.stats;
  }

  prep.inst_stats = prep.program->stats();
  prep.regs_used = ra.regs_used;
  prep.spill_slots = ra.spill_slots;
  prep.used_scatter = lowered.used_scatter;
  prep.read_streams = lowered.read_streams;
  prep.normalized_flops = stencil.min_flops(domain_);
  return prep;
}

LaunchResult Launcher::run_impl(const dsl::Stencil& stencil,
                                codegen::Variant variant,
                                const Platform& platform,
                                const codegen::Options& opts,
                                const HostGrid* in, HostGrid* out) const {
  // The kernel-launch fault site: a seeded plan can fail exactly one
  // (platform, stencil, variant) config here to exercise the harness's
  // per-config isolation; free when no plan is armed.
  if (fault::armed())
    fault::throw_if(fault::Site::Launch,
                    platform.label() + " " + stencil.name() + " " +
                        codegen::variant_name(variant));

  PreparedLaunch prep =
      prepare_impl(stencil, variant, platform, opts, in, out);
  const bool functional = in != nullptr;

  // Execute, optionally gating the decoded plan behind the differential
  // verifier (Interp has no decode step to verify).  The Machine (and the
  // megabytes of cache tag state inside its MemoryHierarchy) is reused
  // across launches on the same worker thread: both engines reset the
  // hierarchy at kernel entry, so reuse is bit-identical, and a 108-config
  // sweep stops paying a large allocation + page-fault bill per config.
  // Keyed by full GpuArch equality, not name: ablation sweeps vary
  // parameters under one name.
  thread_local std::unique_ptr<simt::Machine> machine;
  if (!machine || !(machine->gpu() == platform.gpu))
    machine = std::make_unique<simt::Machine>(platform.gpu);
  if (verify_plan_ && engine_ == simt::Engine::Plan) {
    const std::string context = stencil.name() + "/" +
                                codegen::variant_name(variant) + " on " +
                                platform.gpu.name;
    machine->set_plan_hook(
        [context](const simt::ExecPlan& plan, const simt::Kernel& k) {
          analysis::enforce_plan(analysis::verify_plan(plan, k), context);
        });
  } else if (plan_hook_ && engine_ == simt::Engine::Plan) {
    machine->set_plan_hook(plan_hook_);
  } else {
    machine->set_plan_hook(nullptr);  // clear any previous launch's hook
  }

  LaunchResult res;
  res.check_stats = prep.check_stats;
  res.report = machine->run(prep.kernel,
                            functional ? simt::ExecMode::Functional
                                       : simt::ExecMode::CountersOnly,
                            engine_, shards_);
  if (functional && prep.bout) prep.bout->to_host(*out);

  res.inst_stats = prep.inst_stats;
  res.regs_used = prep.regs_used;
  res.spill_slots = prep.spill_slots;
  res.used_scatter = prep.used_scatter;
  res.read_streams = prep.read_streams;
  res.normalized_flops = prep.normalized_flops;
  return res;
}

}  // namespace bricksim::model
