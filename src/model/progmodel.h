// Programming-model descriptors: CUDA, HIP and SYCL as *lowering profiles*.
//
// The paper compares the same stencil kernels compiled by nvcc (CUDA),
// hipcc (HIP -- a wrapper over nvcc on Perlmutter, amdclang on Crusher) and
// SYCL compilers (intel-llvm on A100, DPC++ on MI250X, oneAPI icpx on PVC).
// BrickSim has no compilers to compare, so each (model, architecture) pair
// becomes a profile describing HOW that toolchain lowers the kernels:
// address-arithmetic it fails to strength-reduce, loads it fails to pipeline
// (exposed latency), streaming stores it fails to form, register budget,
// shuffle cost, and the MI250X/HIP unaligned-vector-load L2 behaviour.
// Performance gaps between models then *emerge* from the simulator rather
// than being scale factors on the result.  Calibration notes in
// progmodel.cpp.
#pragma once

#include <string>
#include <vector>

#include "arch/arch.h"

namespace bricksim::model {

enum class PmKind {
  CUDA,
  HIP,
  SYCL,
  OpenMP,  ///< the CPU extension backend (OpenMP threads + SIMD intrinsics)
};

std::string pm_name(PmKind kind);

struct ProgModel {
  PmKind kind = PmKind::CUDA;
  std::string name;

  // Integer address-arithmetic instructions the compiler leaves per memory
  // access, for naive kernels and for generated (explicit-pointer) kernels.
  int addr_ops_per_load_naive = 0;
  int addr_ops_per_store_naive = 0;
  int addr_ops_per_load_codegen = 0;
  int addr_ops_per_store_codegen = 0;

  /// Exposed memory latency per load in NAIVE kernels (cycles): compilers
  /// that do not unroll/pipeline the accumulation chain leave loads
  /// serialised.  Zero for mature native toolchains.
  double naive_extra_cycles_per_load = 0;

  double bw_derate = 1.0;         ///< achieved-HBM-bandwidth multiplier
  double shuffle_cost_mult = 1.0; ///< sub-group shuffle issue-cost factor
  double reg_budget_fraction = 1.0;  ///< usable fraction of the register file
  bool streaming_stores = true;   ///< full-line stores avoid RMW fills
  bool bypass_l2_unaligned_vloads = false;  ///< HIP-on-MI250X quirk
};

/// One column of the study: an architecture plus a programming model.
struct Platform {
  arch::GpuArch gpu;
  ProgModel pm;
  std::string label() const { return gpu.name + "/" + pm.name; }
};

/// The tuned profile of `kind` on `gpu`; throws if the combination is not
/// part of the study (e.g. CUDA on AMD).
ProgModel model_for(PmKind kind, const arch::GpuArch& gpu);

/// All six (architecture, model) combinations of Figure 3, in paper order:
/// A100/CUDA, A100/HIP, A100/SYCL, MI250X/HIP, MI250X/SYCL, PVC/SYCL.
std::vector<Platform> paper_platforms();

/// The five distinct columns of Tables 3 and 5 (A100/HIP omitted because it
/// is by construction identical to A100/CUDA).
std::vector<Platform> metric_platforms();

/// The CPU extension platforms: SKX/OpenMP and KNL/OpenMP (the
/// architectures of the paper's reference [65], which first demonstrated
/// BrickLib performance portability across CPUs and GPUs).
std::vector<Platform> cpu_platforms();

}  // namespace bricksim::model
