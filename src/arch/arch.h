// GPU architecture descriptors.
//
// BrickSim replaces the paper's physical testbeds (Perlmutter / Crusher /
// Florentia, Section 4.1) with simulated devices.  A GpuArch captures every
// hardware parameter the simulator consumes: core counts, SIMT width, cache
// geometry, HBM bandwidth, FP64 peak, per-core issue capacities, and the
// calibrated streaming-efficiency model (see DESIGN.md Section 5).
//
// The headline numbers (cores, widths, capacities, bandwidths, peaks) are
// taken directly from the paper's Section 4.1; issue capacities are derived
// so that the advertised peaks are exactly achievable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bricksim::arch {

/// Geometry of one cache level.
struct CacheParams {
  std::uint64_t capacity_bytes = 0;
  int line_bytes = 0;       ///< allocation/tag granularity
  int sector_bytes = 0;     ///< transaction granularity (Nsight counts 32B sectors)
  int associativity = 0;    ///< ways per set

  friend bool operator==(const CacheParams&, const CacheParams&) = default;
};

/// A simulated GPU (one A100, one MI250X GCD, or one PVC stack -- the
/// "one process per GCD / per stack" granularity the paper benchmarks).
struct GpuArch {
  std::string name;     ///< e.g. "A100"
  std::string vendor;   ///< "NVIDIA" / "AMD" / "Intel"

  int num_cores = 0;    ///< SMs / CUs / Xe-cores
  int simd_width = 0;   ///< warp / wavefront / chosen sub-group width
  double clock_ghz = 0; ///< nominal core clock used to convert cycles to time

  // Per-core, per-cycle issue capacities.  A "lane" is one element of a
  // warp-wide operation; a warp-wide FP64 FMA on A100 consumes 32 fp64
  // lanes and produces 64 FLOPs.
  double fp64_lanes_per_cycle = 0;
  double int_lanes_per_cycle = 0;
  double shuffle_lanes_per_cycle = 0;
  double l1_bytes_per_cycle = 0;     ///< L1 <-> register file throughput
  double mem_issue_per_cycle = 0;    ///< warp-wide memory instructions issued

  CacheParams l1;  ///< per core
  CacheParams l2;  ///< shared across the device

  double hbm_gbytes_per_sec = 0;  ///< peak HBM bandwidth (GB/s, 1e9)
  double l2_gbytes_per_sec = 0;   ///< aggregate L2 bandwidth (GB/s)
  double mem_latency_cycles = 0;  ///< average HBM round-trip latency

  int max_resident_blocks_per_core = 0;
  int regs_per_lane = 0;  ///< FP64-sized registers available per lane

  /// The lowering requires vectorised loads/stores to be naturally aligned
  /// (lane 0 at a W-element boundary).  None of the paper's GPUs do -- they
  /// model unaligned accesses as extra sectors/L2 behaviour instead -- but
  /// analysis::brickcheck turns unaligned vectorised refs into hard
  /// alignment diagnostics on architectures that set this.
  bool requires_aligned_vloads = false;

  // --- Calibrated streaming-efficiency model -------------------------------
  // Achieved HBM bandwidth of a kernel reading `streams` distinct address
  // streams:
  //   peak * stream_base_eff                    (streams == 1: mixbench-like)
  //   peak * stream_base_eff * stencil_bw_eff
  //        / (1 + stream_penalty * max(0, streams - free_streams))   (else)
  // Calibration rationale lives in arch.cpp.
  double stream_base_eff = 1.0;   ///< streaming kernels vs datasheet peak
  double stencil_bw_eff = 1.0;    ///< multi-stream (stencil) derating
  double stream_penalty = 0.0;    ///< per-extra-stream decay
  int free_streams = 0;

  // --- Page-locality (TLB / DRAM row activation) model ----------------------
  // Each 4 KiB page a thread block touches with DRAM-reaching traffic costs
  // `page_open_bytes` of extra HBM read traffic (row activation overfetch
  // plus page-table walks).  Blocked layouts touch O(1) pages per block;
  // a conventional tiled array touches one page per row it reads -- this is
  // the "inefficient use of prefetch engines and TLBs" of the paper's
  // Section 3, made explicit and measurable.
  double page_open_bytes = 0;

  /// Peak FP64 throughput in FLOP/s (an FMA counts as two FLOPs).
  double peak_fp64_flops() const {
    return num_cores * fp64_lanes_per_cycle * 2.0 * clock_ghz * 1e9;
  }
  /// Peak HBM bandwidth in bytes/s.
  double peak_hbm_bytes_per_sec() const { return hbm_gbytes_per_sec * 1e9; }

  /// Achieved bandwidth (bytes/s) for a kernel reading `streams` distinct
  /// address streams, before any programming-model derating.
  double achieved_bw(int streams) const;

  /// Maximum thread blocks simultaneously resident on the whole device.
  int max_resident_blocks() const {
    return num_cores * max_resident_blocks_per_core;
  }

  /// Field-for-field equality.  Names alone do not identify an
  /// architecture -- ablation sweeps vary parameters under one name -- so
  /// anything caching per-architecture state (e.g. model::Launcher's
  /// machine reuse) must compare the whole descriptor.
  friend bool operator==(const GpuArch&, const GpuArch&) = default;
};

/// NVIDIA A100 (Perlmutter node GPU): 108 SMs, warp 32, 192KB L1/SM,
/// 40MB L2, 40GB HBM2e @ 1555 GB/s, 9.7 TFLOP/s FP64.
GpuArch make_a100();

/// One GCD of an AMD MI250X (Crusher): 110 CUs, wave 64, 16KB L1/CU,
/// 8MB L2, 64GB HBM2e @ 1600 GB/s, ~24 TFLOP/s FP64 (vector).
GpuArch make_mi250x_gcd();

/// One stack of an Intel Data Center GPU Max "Ponte Vecchio" (Florentia):
/// 64 Xe-cores, sub-group 16 (the paper's preferred width), 512KB L1/Xe-core,
/// 208MB L2, 64GB HBM2e @ 1640 GB/s, ~16 TFLOP/s FP64.
GpuArch make_pvc_stack();

// --- CPU extension ----------------------------------------------------------
// BrickLib also targets CPUs ("architecture-specific implementations for
// CPUs include SIMD instructions in AVX2, AVX512, and SVE" -- paper
// Section 3, scoped out of its evaluation; demonstrated in its reference
// [65] on Intel KNL and Skylake).  The machine model carries over directly:
// a "core" is a CPU core, a warp is one AVX-512 register (8 doubles),
// VAlign lowers to valignq, the per-core cache is the private L1, and the
// shared level models the LLC.

/// Intel Xeon Skylake-SP (one socket): 24 cores, AVX-512 (2 FMA units),
/// 32KB L1, 33MB shared LLC, 6-channel DDR4 @ ~120 GB/s, ~1.6 TFLOP/s FP64.
GpuArch make_skylake();

/// Intel Xeon Phi Knights Landing: 68 cores, AVX-512 (2 VPUs), 32KB L1,
/// MCDRAM in cache/flat mode modelled as a 16GB shared level @ ~380 GB/s
/// effective, ~3 TFLOP/s FP64.
GpuArch make_knl();

/// All three GPU architectures in the study, in paper order.
std::vector<GpuArch> all_architectures();

/// The CPU extension architectures (reference [65] of the paper).
std::vector<GpuArch> cpu_architectures();

/// Looks up an architecture by (case-sensitive) name; throws on miss.
GpuArch arch_by_name(const std::string& name);

}  // namespace bricksim::arch
