#include "arch/arch.h"

#include <algorithm>

#include "common/error.h"

namespace bricksim::arch {

double GpuArch::achieved_bw(int streams) const {
  double bw = peak_hbm_bytes_per_sec() * stream_base_eff;
  if (streams > 1) {
    const double extra = std::max(0, streams - free_streams);
    bw *= stencil_bw_eff / (1.0 + stream_penalty * extra);
  }
  return bw;
}

// ---------------------------------------------------------------------------
// Calibration notes
//
// Headline capacities/bandwidths/peaks come from the paper, Section 4.1.
// Three families of parameters are calibrated rather than quoted:
//
//  * issue capacities: chosen so peak_fp64_flops() reproduces the advertised
//    FP64 peak at the nominal clock, and L1 throughput matches the published
//    per-core figures (A100 ~128 B/cycle/SM, CDNA2 ~64 B/cycle/CU,
//    Xe-core ~128 B/cycle due to its wide load/store unit).
//
//  * mem_latency_cycles: public microbenchmark values for HBM round trips.
//
//  * stream_base_eff / stream_penalty / free_streams: the fraction of peak
//    HBM bandwidth a streaming kernel achieves as a function of how many
//    distinct address streams it reads.  Calibrated against the paper's
//    Table 3 (fraction-of-Roofline for bricks codegen): A100 sustains
//    ~90-95% almost independent of stream count; the MI250X GCD plateaus
//    around 66-70% for stencil-like kernels regardless of shape; PVC starts
//    high but degrades steeply with stream count (77% -> 47% from 7pt to
//    25pt star in the paper).
// ---------------------------------------------------------------------------

GpuArch make_a100() {
  GpuArch a;
  a.name = "A100";
  a.vendor = "NVIDIA";
  a.num_cores = 108;
  a.simd_width = 32;
  a.clock_ghz = 1.410;
  a.fp64_lanes_per_cycle = 32;  // 108 * 32 * 2 * 1.41e9 = 9.74 TFLOP/s
  a.int_lanes_per_cycle = 64;
  a.shuffle_lanes_per_cycle = 32;
  a.l1_bytes_per_cycle = 128;
  a.mem_issue_per_cycle = 1.0;
  a.l1 = {192 * 1024, 128, 32, 4};
  a.l2 = {40ull * 1024 * 1024, 128, 32, 16};
  a.hbm_gbytes_per_sec = 1555;
  a.l2_gbytes_per_sec = 4000;
  a.mem_latency_cycles = 450;
  a.max_resident_blocks_per_core = 4;  // 512-thread blocks, 2048 threads/SM
  a.regs_per_lane = 64;                // 255 32b regs/thread, FP64 working set
  a.stream_base_eff = 0.92;   // mixbench ~1430 GB/s
  a.stencil_bw_eff = 0.95;    // stencils sustain ~95% of the streaming rate
  a.stream_penalty = 0.010;
  a.free_streams = 4;
  a.page_open_bytes = 256;    // strong TLB/row-activation sensitivity
  return a;
}

GpuArch make_mi250x_gcd() {
  GpuArch a;
  a.name = "MI250X-GCD";
  a.vendor = "AMD";
  a.num_cores = 110;
  a.simd_width = 64;
  a.clock_ghz = 1.700;
  a.fp64_lanes_per_cycle = 64;  // 110 * 64 * 2 * 1.7e9 = 23.9 TFLOP/s
  a.int_lanes_per_cycle = 64;
  a.shuffle_lanes_per_cycle = 64;
  a.l1_bytes_per_cycle = 64;
  a.mem_issue_per_cycle = 1.0;
  a.l1 = {16 * 1024, 64, 64, 4};
  a.l2 = {8ull * 1024 * 1024, 64, 64, 16};
  a.hbm_gbytes_per_sec = 1600;
  a.l2_gbytes_per_sec = 3400;
  a.mem_latency_cycles = 600;
  a.max_resident_blocks_per_core = 2;  // 1024-item blocks
  a.regs_per_lane = 64;                // 256 VGPRs 32b wide
  a.stream_base_eff = 0.82;   // mixbench ~1310 GB/s
  a.stencil_bw_eff = 0.66;    // flat stencil derating (paper Table 3 column)
  a.stream_penalty = 0.002;
  a.free_streams = 0;
  a.page_open_bytes = 256;
  return a;
}

GpuArch make_pvc_stack() {
  GpuArch a;
  a.name = "PVC-Stack";
  a.vendor = "Intel";
  a.num_cores = 64;  // Xe-cores per stack (512 EUs / 8 EUs per Xe-core)
  a.simd_width = 16; // the paper's preferred sub-group width on PVC
  a.clock_ghz = 1.600;
  a.fp64_lanes_per_cycle = 80;  // aggregate over 8 EUs: ~16.4 TFLOP/s
  a.int_lanes_per_cycle = 128;
  a.shuffle_lanes_per_cycle = 16;  // sub-group shuffles are EU-serialised
  a.l1_bytes_per_cycle = 128;
  a.mem_issue_per_cycle = 1.0;
  a.l1 = {512 * 1024, 64, 64, 8};
  a.l2 = {208ull * 1024 * 1024, 64, 64, 16};
  a.hbm_gbytes_per_sec = 1640;
  a.l2_gbytes_per_sec = 3600;
  a.mem_latency_cycles = 650;
  a.max_resident_blocks_per_core = 4;  // 256-item blocks
  a.regs_per_lane = 128;               // 4KB GRF per thread
  a.stream_base_eff = 0.85;   // Advisor-style ceiling ~1390 GB/s
  a.stencil_bw_eff = 0.80;    // steep stream-count sensitivity (Table 3)
  a.stream_penalty = 0.050;
  a.free_streams = 4;
  a.page_open_bytes = 96;
  return a;
}

GpuArch make_skylake() {
  GpuArch a;
  a.name = "SKX";
  a.vendor = "Intel-CPU";
  a.num_cores = 24;
  a.simd_width = 8;  // AVX-512 doubles
  a.clock_ghz = 2.10;
  a.fp64_lanes_per_cycle = 16;  // two 8-wide FMA units: ~1.6 TFLOP/s
  a.int_lanes_per_cycle = 16;
  a.shuffle_lanes_per_cycle = 8;  // one valignq per cycle
  a.l1_bytes_per_cycle = 128;     // two 64B loads per cycle
  a.mem_issue_per_cycle = 2.0;
  a.l1 = {32 * 1024, 64, 64, 8};
  a.l2 = {33ull * 1024 * 1024, 64, 64, 11};  // shared LLC
  a.hbm_gbytes_per_sec = 120;                // 6-channel DDR4
  a.l2_gbytes_per_sec = 700;
  a.mem_latency_cycles = 200;
  a.max_resident_blocks_per_core = 1;  // one brick per core at a time
  a.regs_per_lane = 28;                // 32 zmm minus scratch
  a.stream_base_eff = 0.90;
  a.stencil_bw_eff = 0.85;  // hardware prefetchers handle a few streams well
  a.stream_penalty = 0.004;
  a.free_streams = 8;       // ~2 prefetch streams per L1 x 4-deep
  a.page_open_bytes = 64;
  return a;
}

GpuArch make_knl() {
  GpuArch a;
  a.name = "KNL";
  a.vendor = "Intel-CPU";
  a.num_cores = 68;
  a.simd_width = 8;
  a.clock_ghz = 1.40;
  a.fp64_lanes_per_cycle = 16;  // two VPUs: ~3.0 TFLOP/s
  a.int_lanes_per_cycle = 8;
  a.shuffle_lanes_per_cycle = 8;
  a.l1_bytes_per_cycle = 128;
  a.mem_issue_per_cycle = 2.0;
  a.l1 = {32 * 1024, 64, 64, 8};
  a.l2 = {34ull * 1024 * 1024, 64, 64, 16};  // tile L2s modelled as shared
  a.hbm_gbytes_per_sec = 380;                // MCDRAM effective
  a.l2_gbytes_per_sec = 1500;
  a.mem_latency_cycles = 220;
  a.max_resident_blocks_per_core = 1;
  a.regs_per_lane = 28;
  a.stream_base_eff = 0.85;
  a.stencil_bw_eff = 0.80;
  a.stream_penalty = 0.006;
  a.free_streams = 4;
  a.page_open_bytes = 64;
  return a;
}

std::vector<GpuArch> all_architectures() {
  return {make_a100(), make_mi250x_gcd(), make_pvc_stack()};
}

std::vector<GpuArch> cpu_architectures() {
  return {make_skylake(), make_knl()};
}

GpuArch arch_by_name(const std::string& name) {
  for (auto& a : all_architectures())
    if (a.name == name) return a;
  for (auto& a : cpu_architectures())
    if (a.name == name) return a;
  throw Error("unknown architecture: " + name);
}

}  // namespace bricksim::arch
