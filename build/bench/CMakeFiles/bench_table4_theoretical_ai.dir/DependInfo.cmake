
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_theoretical_ai.cpp" "bench/CMakeFiles/bench_table4_theoretical_ai.dir/bench_table4_theoretical_ai.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_theoretical_ai.dir/bench_table4_theoretical_ai.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bricksim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bricksim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/bricksim_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/bricksim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bricksim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/bricksim_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/bricksim_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/brick/CMakeFiles/bricksim_brick.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bricksim_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bricksim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/bricksim_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bricksim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bricksim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
