file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_theoretical_ai.dir/bench_table4_theoretical_ai.cpp.o"
  "CMakeFiles/bench_table4_theoretical_ai.dir/bench_table4_theoretical_ai.cpp.o.d"
  "bench_table4_theoretical_ai"
  "bench_table4_theoretical_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_theoretical_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
