# Empty compiler generated dependencies file for bench_table4_theoretical_ai.
# This may be replaced when dependencies are built.
