# Empty compiler generated dependencies file for bench_ablation_brickshape.
# This may be replaced when dependencies are built.
