file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_brickshape.dir/bench_ablation_brickshape.cpp.o"
  "CMakeFiles/bench_ablation_brickshape.dir/bench_ablation_brickshape.cpp.o.d"
  "bench_ablation_brickshape"
  "bench_ablation_brickshape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_brickshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
