file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_l1_movement.dir/bench_fig4_l1_movement.cpp.o"
  "CMakeFiles/bench_fig4_l1_movement.dir/bench_fig4_l1_movement.cpp.o.d"
  "bench_fig4_l1_movement"
  "bench_fig4_l1_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_l1_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
