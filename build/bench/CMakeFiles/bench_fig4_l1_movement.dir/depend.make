# Empty dependencies file for bench_fig4_l1_movement.
# This may be replaced when dependencies are built.
