file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_crossplatform.dir/bench_cpu_crossplatform.cpp.o"
  "CMakeFiles/bench_cpu_crossplatform.dir/bench_cpu_crossplatform.cpp.o.d"
  "bench_cpu_crossplatform"
  "bench_cpu_crossplatform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_crossplatform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
