# Empty compiler generated dependencies file for bench_cpu_crossplatform.
# This may be replaced when dependencies are built.
