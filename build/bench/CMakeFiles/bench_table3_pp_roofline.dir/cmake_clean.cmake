file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pp_roofline.dir/bench_table3_pp_roofline.cpp.o"
  "CMakeFiles/bench_table3_pp_roofline.dir/bench_table3_pp_roofline.cpp.o.d"
  "bench_table3_pp_roofline"
  "bench_table3_pp_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pp_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
