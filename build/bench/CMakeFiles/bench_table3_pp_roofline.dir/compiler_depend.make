# Empty compiler generated dependencies file for bench_table3_pp_roofline.
# This may be replaced when dependencies are built.
