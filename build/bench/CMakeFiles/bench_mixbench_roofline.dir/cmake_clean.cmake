file(REMOVE_RECURSE
  "CMakeFiles/bench_mixbench_roofline.dir/bench_mixbench_roofline.cpp.o"
  "CMakeFiles/bench_mixbench_roofline.dir/bench_mixbench_roofline.cpp.o.d"
  "bench_mixbench_roofline"
  "bench_mixbench_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixbench_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
