# Empty dependencies file for bench_mixbench_roofline.
# This may be replaced when dependencies are built.
