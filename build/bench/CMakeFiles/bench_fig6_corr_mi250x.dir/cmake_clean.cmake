file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_corr_mi250x.dir/bench_fig6_corr_mi250x.cpp.o"
  "CMakeFiles/bench_fig6_corr_mi250x.dir/bench_fig6_corr_mi250x.cpp.o.d"
  "bench_fig6_corr_mi250x"
  "bench_fig6_corr_mi250x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_corr_mi250x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
