# Empty dependencies file for bench_fig6_corr_mi250x.
# This may be replaced when dependencies are built.
