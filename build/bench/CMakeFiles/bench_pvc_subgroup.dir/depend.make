# Empty dependencies file for bench_pvc_subgroup.
# This may be replaced when dependencies are built.
