file(REMOVE_RECURSE
  "CMakeFiles/bench_pvc_subgroup.dir/bench_pvc_subgroup.cpp.o"
  "CMakeFiles/bench_pvc_subgroup.dir/bench_pvc_subgroup.cpp.o.d"
  "bench_pvc_subgroup"
  "bench_pvc_subgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pvc_subgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
