file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_stencils.dir/bench_table2_stencils.cpp.o"
  "CMakeFiles/bench_table2_stencils.dir/bench_table2_stencils.cpp.o.d"
  "bench_table2_stencils"
  "bench_table2_stencils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_stencils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
