# Empty compiler generated dependencies file for bench_table5_pp_theoretical_ai.
# This may be replaced when dependencies are built.
