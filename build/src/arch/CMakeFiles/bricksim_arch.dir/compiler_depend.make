# Empty compiler generated dependencies file for bricksim_arch.
# This may be replaced when dependencies are built.
