file(REMOVE_RECURSE
  "CMakeFiles/bricksim_arch.dir/arch.cpp.o"
  "CMakeFiles/bricksim_arch.dir/arch.cpp.o.d"
  "libbricksim_arch.a"
  "libbricksim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
