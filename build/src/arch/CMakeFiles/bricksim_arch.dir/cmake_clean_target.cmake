file(REMOVE_RECURSE
  "libbricksim_arch.a"
)
