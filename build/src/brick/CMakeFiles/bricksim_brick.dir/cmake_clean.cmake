file(REMOVE_RECURSE
  "CMakeFiles/bricksim_brick.dir/brick.cpp.o"
  "CMakeFiles/bricksim_brick.dir/brick.cpp.o.d"
  "CMakeFiles/bricksim_brick.dir/exchange.cpp.o"
  "CMakeFiles/bricksim_brick.dir/exchange.cpp.o.d"
  "libbricksim_brick.a"
  "libbricksim_brick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_brick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
