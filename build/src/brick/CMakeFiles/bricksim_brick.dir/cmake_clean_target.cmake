file(REMOVE_RECURSE
  "libbricksim_brick.a"
)
