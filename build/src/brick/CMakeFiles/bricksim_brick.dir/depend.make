# Empty dependencies file for bricksim_brick.
# This may be replaced when dependencies are built.
