file(REMOVE_RECURSE
  "CMakeFiles/bricksim_profiler.dir/profiler.cpp.o"
  "CMakeFiles/bricksim_profiler.dir/profiler.cpp.o.d"
  "libbricksim_profiler.a"
  "libbricksim_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
