file(REMOVE_RECURSE
  "libbricksim_profiler.a"
)
