# Empty compiler generated dependencies file for bricksim_profiler.
# This may be replaced when dependencies are built.
