file(REMOVE_RECURSE
  "CMakeFiles/bricksim_harness.dir/autotune.cpp.o"
  "CMakeFiles/bricksim_harness.dir/autotune.cpp.o.d"
  "CMakeFiles/bricksim_harness.dir/harness.cpp.o"
  "CMakeFiles/bricksim_harness.dir/harness.cpp.o.d"
  "libbricksim_harness.a"
  "libbricksim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
