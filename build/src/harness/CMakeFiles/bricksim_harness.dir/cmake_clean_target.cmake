file(REMOVE_RECURSE
  "libbricksim_harness.a"
)
