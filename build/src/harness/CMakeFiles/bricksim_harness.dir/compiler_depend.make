# Empty compiler generated dependencies file for bricksim_harness.
# This may be replaced when dependencies are built.
