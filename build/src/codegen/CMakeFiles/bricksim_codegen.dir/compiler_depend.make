# Empty compiler generated dependencies file for bricksim_codegen.
# This may be replaced when dependencies are built.
