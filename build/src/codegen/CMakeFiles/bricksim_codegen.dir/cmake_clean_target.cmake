file(REMOVE_RECURSE
  "libbricksim_codegen.a"
)
