file(REMOVE_RECURSE
  "CMakeFiles/bricksim_codegen.dir/codegen.cpp.o"
  "CMakeFiles/bricksim_codegen.dir/codegen.cpp.o.d"
  "CMakeFiles/bricksim_codegen.dir/emit_source.cpp.o"
  "CMakeFiles/bricksim_codegen.dir/emit_source.cpp.o.d"
  "libbricksim_codegen.a"
  "libbricksim_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
