file(REMOVE_RECURSE
  "CMakeFiles/bricksim_ir.dir/program.cpp.o"
  "CMakeFiles/bricksim_ir.dir/program.cpp.o.d"
  "CMakeFiles/bricksim_ir.dir/regalloc.cpp.o"
  "CMakeFiles/bricksim_ir.dir/regalloc.cpp.o.d"
  "CMakeFiles/bricksim_ir.dir/schedule.cpp.o"
  "CMakeFiles/bricksim_ir.dir/schedule.cpp.o.d"
  "libbricksim_ir.a"
  "libbricksim_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
