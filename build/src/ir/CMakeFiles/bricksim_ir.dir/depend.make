# Empty dependencies file for bricksim_ir.
# This may be replaced when dependencies are built.
