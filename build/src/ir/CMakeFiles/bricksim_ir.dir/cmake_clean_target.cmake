file(REMOVE_RECURSE
  "libbricksim_ir.a"
)
