
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/bricksim_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/bricksim_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/regalloc.cpp" "src/ir/CMakeFiles/bricksim_ir.dir/regalloc.cpp.o" "gcc" "src/ir/CMakeFiles/bricksim_ir.dir/regalloc.cpp.o.d"
  "/root/repo/src/ir/schedule.cpp" "src/ir/CMakeFiles/bricksim_ir.dir/schedule.cpp.o" "gcc" "src/ir/CMakeFiles/bricksim_ir.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bricksim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
