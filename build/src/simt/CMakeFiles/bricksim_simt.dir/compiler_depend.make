# Empty compiler generated dependencies file for bricksim_simt.
# This may be replaced when dependencies are built.
