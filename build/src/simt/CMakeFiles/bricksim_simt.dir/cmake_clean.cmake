file(REMOVE_RECURSE
  "CMakeFiles/bricksim_simt.dir/machine.cpp.o"
  "CMakeFiles/bricksim_simt.dir/machine.cpp.o.d"
  "libbricksim_simt.a"
  "libbricksim_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
