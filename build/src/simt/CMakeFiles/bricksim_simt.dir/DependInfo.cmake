
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/machine.cpp" "src/simt/CMakeFiles/bricksim_simt.dir/machine.cpp.o" "gcc" "src/simt/CMakeFiles/bricksim_simt.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/bricksim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/bricksim_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bricksim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bricksim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
