file(REMOVE_RECURSE
  "libbricksim_simt.a"
)
