file(REMOVE_RECURSE
  "libbricksim_roofline.a"
)
