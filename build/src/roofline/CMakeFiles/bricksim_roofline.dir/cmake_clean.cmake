file(REMOVE_RECURSE
  "CMakeFiles/bricksim_roofline.dir/roofline.cpp.o"
  "CMakeFiles/bricksim_roofline.dir/roofline.cpp.o.d"
  "libbricksim_roofline.a"
  "libbricksim_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
