# Empty dependencies file for bricksim_roofline.
# This may be replaced when dependencies are built.
