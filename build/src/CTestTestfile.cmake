# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("arch")
subdirs("memsim")
subdirs("ir")
subdirs("simt")
subdirs("dsl")
subdirs("brick")
subdirs("codegen")
subdirs("model")
subdirs("profiler")
subdirs("roofline")
subdirs("metrics")
subdirs("harness")
