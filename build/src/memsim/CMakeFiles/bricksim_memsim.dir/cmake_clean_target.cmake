file(REMOVE_RECURSE
  "libbricksim_memsim.a"
)
