file(REMOVE_RECURSE
  "CMakeFiles/bricksim_memsim.dir/cache.cpp.o"
  "CMakeFiles/bricksim_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/bricksim_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/bricksim_memsim.dir/hierarchy.cpp.o.d"
  "libbricksim_memsim.a"
  "libbricksim_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
