# Empty compiler generated dependencies file for bricksim_memsim.
# This may be replaced when dependencies are built.
