file(REMOVE_RECURSE
  "libbricksim_common.a"
)
