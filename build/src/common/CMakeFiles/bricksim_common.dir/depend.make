# Empty dependencies file for bricksim_common.
# This may be replaced when dependencies are built.
