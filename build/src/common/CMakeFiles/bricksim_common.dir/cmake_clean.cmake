file(REMOVE_RECURSE
  "CMakeFiles/bricksim_common.dir/cli.cpp.o"
  "CMakeFiles/bricksim_common.dir/cli.cpp.o.d"
  "CMakeFiles/bricksim_common.dir/stats.cpp.o"
  "CMakeFiles/bricksim_common.dir/stats.cpp.o.d"
  "CMakeFiles/bricksim_common.dir/table.cpp.o"
  "CMakeFiles/bricksim_common.dir/table.cpp.o.d"
  "libbricksim_common.a"
  "libbricksim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
