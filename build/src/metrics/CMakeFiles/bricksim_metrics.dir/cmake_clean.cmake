file(REMOVE_RECURSE
  "CMakeFiles/bricksim_metrics.dir/metrics.cpp.o"
  "CMakeFiles/bricksim_metrics.dir/metrics.cpp.o.d"
  "libbricksim_metrics.a"
  "libbricksim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
