file(REMOVE_RECURSE
  "libbricksim_metrics.a"
)
