# Empty dependencies file for bricksim_metrics.
# This may be replaced when dependencies are built.
