file(REMOVE_RECURSE
  "libbricksim_dsl.a"
)
