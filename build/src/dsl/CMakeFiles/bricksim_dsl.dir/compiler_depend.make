# Empty compiler generated dependencies file for bricksim_dsl.
# This may be replaced when dependencies are built.
