file(REMOVE_RECURSE
  "CMakeFiles/bricksim_dsl.dir/expr.cpp.o"
  "CMakeFiles/bricksim_dsl.dir/expr.cpp.o.d"
  "CMakeFiles/bricksim_dsl.dir/reference.cpp.o"
  "CMakeFiles/bricksim_dsl.dir/reference.cpp.o.d"
  "CMakeFiles/bricksim_dsl.dir/stencil.cpp.o"
  "CMakeFiles/bricksim_dsl.dir/stencil.cpp.o.d"
  "libbricksim_dsl.a"
  "libbricksim_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
