file(REMOVE_RECURSE
  "libbricksim_model.a"
)
