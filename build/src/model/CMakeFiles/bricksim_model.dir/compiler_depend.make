# Empty compiler generated dependencies file for bricksim_model.
# This may be replaced when dependencies are built.
