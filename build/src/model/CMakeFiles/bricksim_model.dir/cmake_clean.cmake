file(REMOVE_RECURSE
  "CMakeFiles/bricksim_model.dir/launcher.cpp.o"
  "CMakeFiles/bricksim_model.dir/launcher.cpp.o.d"
  "CMakeFiles/bricksim_model.dir/progmodel.cpp.o"
  "CMakeFiles/bricksim_model.dir/progmodel.cpp.o.d"
  "libbricksim_model.a"
  "libbricksim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bricksim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
