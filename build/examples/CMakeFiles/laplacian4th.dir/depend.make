# Empty dependencies file for laplacian4th.
# This may be replaced when dependencies are built.
