file(REMOVE_RECURSE
  "CMakeFiles/laplacian4th.dir/laplacian4th.cpp.o"
  "CMakeFiles/laplacian4th.dir/laplacian4th.cpp.o.d"
  "laplacian4th"
  "laplacian4th.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplacian4th.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
