# Empty dependencies file for wave25pt.
# This may be replaced when dependencies are built.
