file(REMOVE_RECURSE
  "CMakeFiles/wave25pt.dir/wave25pt.cpp.o"
  "CMakeFiles/wave25pt.dir/wave25pt.cpp.o.d"
  "wave25pt"
  "wave25pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave25pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
