file(REMOVE_RECURSE
  "CMakeFiles/fig2_kernels.dir/fig2_kernels.cpp.o"
  "CMakeFiles/fig2_kernels.dir/fig2_kernels.cpp.o.d"
  "fig2_kernels"
  "fig2_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
