# Empty dependencies file for fig2_kernels.
# This may be replaced when dependencies are built.
