file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_roofline.dir/test_metrics_roofline.cpp.o"
  "CMakeFiles/test_metrics_roofline.dir/test_metrics_roofline.cpp.o.d"
  "test_metrics_roofline"
  "test_metrics_roofline.pdb"
  "test_metrics_roofline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
