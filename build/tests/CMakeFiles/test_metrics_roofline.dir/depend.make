# Empty dependencies file for test_metrics_roofline.
# This may be replaced when dependencies are built.
