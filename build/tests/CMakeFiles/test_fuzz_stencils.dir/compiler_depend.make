# Empty compiler generated dependencies file for test_fuzz_stencils.
# This may be replaced when dependencies are built.
