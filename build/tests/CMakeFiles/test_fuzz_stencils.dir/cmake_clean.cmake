file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_stencils.dir/test_fuzz_stencils.cpp.o"
  "CMakeFiles/test_fuzz_stencils.dir/test_fuzz_stencils.cpp.o.d"
  "test_fuzz_stencils"
  "test_fuzz_stencils.pdb"
  "test_fuzz_stencils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_stencils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
