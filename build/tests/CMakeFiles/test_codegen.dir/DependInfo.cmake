
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/test_codegen.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/test_codegen.dir/test_codegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/bricksim_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/bricksim_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bricksim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bricksim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
