
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_exchange.cpp" "tests/CMakeFiles/test_exchange.dir/test_exchange.cpp.o" "gcc" "tests/CMakeFiles/test_exchange.dir/test_exchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/brick/CMakeFiles/bricksim_brick.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/bricksim_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bricksim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
