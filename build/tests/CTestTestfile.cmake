# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_regalloc[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_dsl[1]_include.cmake")
include("/root/repo/build/tests/test_brick[1]_include.cmake")
include("/root/repo/build/tests/test_exchange[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_simt[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_metrics_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_autotune[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_stencils[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
