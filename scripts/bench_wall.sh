#!/usr/bin/env bash
# Wall-clock benchmark of the simulator itself (not the simulated GPUs):
# times the fig3 roofline sweep and the table2 emitter end to end in a
# Release build, for both execution engines (--engine=plan vs interp) at
# --jobs 1 and --jobs N, and writes the results to BENCH_interpreter.json.
#
# This is the acceptance benchmark of the ExecPlan engine (see EXPERIMENTS.md
# "Timing methodology"): identical output is asserted for every timed
# configuration before any number is recorded, so a speedup can never come
# from computing something different.
#
# Usage: scripts/bench_wall.sh [--n N] [--jobs J] [--reps R] [--out FILE]
#                              [--micro]
#
# --micro additionally runs the replay-only microbenches from
# bench_components (google-benchmark): the ExecPlan decode is hoisted out of
# the timed loop, so the per-launch replay cost of each engine (SoA plan
# replay, AoS reference replay, interpreter) is isolated from decode cost.
# The results land in a "micro" section of the output JSON
# (BENCH_replay.json separates decode cost from replay cost this way).
set -euo pipefail
cd "$(dirname "$0")/.."

N=128
JOBS="$(nproc 2>/dev/null || echo 4)"
REPS=3
OUT=BENCH_interpreter.json
MICRO=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --n) N="$2"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    --reps) REPS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --micro) MICRO=1; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

echo "==> Release build" >&2
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
TARGETS=(bench_fig3_roofline bench_table2_stencils)
[[ "$MICRO" == 1 ]] && TARGETS+=(bench_components)
cmake --build build-release -j "$JOBS" --target "${TARGETS[@]}" > /dev/null

FIG3=build-release/bench/bench_fig3_roofline
TABLE2=build-release/bench/bench_table2_stencils

# Outputs must be identical across engines, job counts, and shard counts
# before timing.
echo "==> A/B output check (plan vs interp, jobs 1 vs $JOBS, sharded)" >&2
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$FIG3" --n "$N" --jobs 1 --engine=plan   > "$TMP/plan1"
"$FIG3" --n "$N" --jobs 1 --engine=interp > "$TMP/interp1"
"$FIG3" --n "$N" --jobs "$JOBS" --engine=plan > "$TMP/planN"
"$FIG3" --n "$N" --jobs "$JOBS" --shards "$JOBS" --engine=plan > "$TMP/shardN"
cmp -s "$TMP/plan1" "$TMP/interp1" || { echo "ENGINE MISMATCH" >&2; exit 1; }
cmp -s "$TMP/plan1" "$TMP/planN"   || { echo "JOBS MISMATCH" >&2; exit 1; }
cmp -s "$TMP/plan1" "$TMP/shardN"  || { echo "SHARDS MISMATCH" >&2; exit 1; }

# One timed run, wall-clock seconds on stdout.
time_once() {
  local t0 t1
  t0=$(date +%s.%N)
  "$@" > /dev/null
  t1=$(date +%s.%N)
  echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}'
}

median() {
  printf '%s\n' "$@" | sort -n | awk -v r="$#" \
    'NR == int((r + 1) / 2) { print }'
}

# Timed cells are INTERLEAVED across reps (rep 1 of every configuration,
# then rep 2 of every configuration, ...) rather than timed cell by cell:
# on a shared host, load drifts over minutes, and back-to-back medians
# systematically favour whichever cell happened to run in a quiet window.
# Interleaving spreads every cell over the same wall-clock span, so the
# medians are compared under the same conditions.
rows=()
run_config() {  # name cmd...
  local name="$1"; shift
  declare -A samples=()
  local rep engine jobs
  for rep in $(seq "$REPS"); do
    for engine in plan interp; do
      for jobs in 1 "$JOBS"; do
        echo "==> timing $name engine=$engine jobs=$jobs (rep $rep/$REPS)" >&2
        samples["$engine:$jobs"]+="$(time_once "$@" --jobs "$jobs" --engine="$engine") "
      done
    done
    # The sharded cell rides the same interleave: the whole --jobs budget
    # moved inside each kernel (ExecPlan::replay_sharded) instead of
    # across configs -- the regime a single huge config or a straggler
    # tail runs in.  Output already proved identical above.
    if [[ "$name" == fig3* ]]; then
      echo "==> timing $name engine=plan jobs=$JOBS shards=$JOBS (rep $rep/$REPS)" >&2
      samples["sharded"]+="$(time_once "$@" --jobs "$JOBS" --shards "$JOBS" --engine=plan) "
    fi
  done
  for engine in plan interp; do
    for jobs in 1 "$JOBS"; do
      local secs
      # shellcheck disable=SC2086  # word splitting of the sample list is intended
      secs=$(median ${samples["$engine:$jobs"]})
      rows+=("    {\"config\": \"$name\", \"engine\": \"$engine\", \"jobs\": $jobs, \"seconds\": $secs}")
    done
  done
  if [[ "$name" == fig3* ]]; then
    local secs
    # shellcheck disable=SC2086
    secs=$(median ${samples["sharded"]})
    rows+=("    {\"config\": \"$name\", \"engine\": \"plan\", \"jobs\": $JOBS, \"shards\": $JOBS, \"seconds\": $secs}")
  fi
}

run_config "fig3_n$N" "$FIG3" --n "$N"
run_config "table2" "$TABLE2"

# Replay-only microbenches: decode hoisted out of the timed loop, so these
# numbers are pure per-launch replay cost (google-benchmark picks the
# iteration count; /0 = array codegen layout, /1 = bricks layout).
MICRO_JSON=""
if [[ "$MICRO" == 1 ]]; then
  # google-benchmark only emits the median aggregate for >= 2 repetitions.
  MREPS="$REPS"
  [[ "$MREPS" -lt 2 ]] && MREPS=2
  echo "==> replay-only microbenches (decode excluded, median of $MREPS)" >&2
  build-release/bench/bench_components \
    --benchmark_filter='BM_PlanDecode|BM_PlanReplaySoa|BM_PlanReplayAos|BM_InterpReplay' \
    --benchmark_repetitions="$MREPS" --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$TMP/micro.json" 2> /dev/null
  MICRO_JSON="$(jq '[.benchmarks[] | select(.aggregate_name == "median") |
    {bench: .run_name, ms_per_launch: ((.real_time / 1e6) * 1000 | round / 1000)}]' \
    "$TMP/micro.json")"
fi

{
  echo '{'
  echo '  "benchmark": "simulator wall-clock (Release, median of '"$REPS"')",'
  echo '  "host_jobs": '"$JOBS"','
  echo '  "results": ['
  for i in "${!rows[@]}"; do
    if [[ "$i" -lt $(( ${#rows[@]} - 1 )) ]]; then
      echo "${rows[$i]},"
    else
      echo "${rows[$i]}"
    fi
  done
  echo '  ]'
  echo '}'
} > "$OUT"
if [[ "$MICRO" == 1 ]]; then
  jq --argjson micro "$MICRO_JSON" '. + {
    "micro_note": "replay-only per-launch cost, ExecPlan decode excluded (bench_components, star-2 on A100/CUDA at 64^3; /0 = array codegen layout, /1 = bricks layout)",
    "micro": $micro}' "$OUT" > "$OUT.tmp" && mv "$OUT.tmp" "$OUT"
fi
echo "==> wrote $OUT" >&2
