#!/usr/bin/env bash
# Wall-clock benchmark of the simulator itself (not the simulated GPUs):
# times the fig3 roofline sweep and the table2 emitter end to end in a
# Release build, for both execution engines (--engine=plan vs interp) at
# --jobs 1 and --jobs N, and writes the results to BENCH_interpreter.json.
#
# This is the acceptance benchmark of the ExecPlan engine (see EXPERIMENTS.md
# "Timing methodology"): identical output is asserted for every timed
# configuration before any number is recorded, so a speedup can never come
# from computing something different.
#
# Usage: scripts/bench_wall.sh [--n N] [--jobs J] [--reps R] [--out FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

N=128
JOBS="$(nproc 2>/dev/null || echo 4)"
REPS=3
OUT=BENCH_interpreter.json
while [[ $# -gt 0 ]]; do
  case "$1" in
    --n) N="$2"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    --reps) REPS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

echo "==> Release build" >&2
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-release -j "$JOBS" --target \
  bench_fig3_roofline bench_table2_stencils > /dev/null

FIG3=build-release/bench/bench_fig3_roofline
TABLE2=build-release/bench/bench_table2_stencils

# Outputs must be identical across engines and job counts before timing.
echo "==> A/B output check (plan vs interp, jobs 1 vs $JOBS)" >&2
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$FIG3" --n "$N" --jobs 1 --engine=plan   > "$TMP/plan1"
"$FIG3" --n "$N" --jobs 1 --engine=interp > "$TMP/interp1"
"$FIG3" --n "$N" --jobs "$JOBS" --engine=plan > "$TMP/planN"
cmp -s "$TMP/plan1" "$TMP/interp1" || { echo "ENGINE MISMATCH" >&2; exit 1; }
cmp -s "$TMP/plan1" "$TMP/planN"   || { echo "JOBS MISMATCH" >&2; exit 1; }

# Median-of-R wall-clock seconds for one command.
time_cmd() {
  local times=()
  for _ in $(seq "$REPS"); do
    local t0 t1
    t0=$(date +%s.%N)
    "$@" > /dev/null
    t1=$(date +%s.%N)
    times+=("$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')")
  done
  printf '%s\n' "${times[@]}" | sort -n | awk -v r="$REPS" \
    'NR == int((r + 1) / 2) { print }'
}

rows=()
run_config() {  # name cmd...
  local name="$1"; shift
  local engine jobs
  for engine in plan interp; do
    for jobs in 1 "$JOBS"; do
      echo "==> timing $name engine=$engine jobs=$jobs" >&2
      local secs
      secs=$(time_cmd "$@" --jobs "$jobs" --engine="$engine")
      rows+=("    {\"config\": \"$name\", \"engine\": \"$engine\", \"jobs\": $jobs, \"seconds\": $secs}")
    done
  done
}

run_config "fig3_n$N" "$FIG3" --n "$N"
run_config "table2" "$TABLE2"

{
  echo '{'
  echo '  "benchmark": "simulator wall-clock (Release, median of '"$REPS"')",'
  echo '  "host_jobs": '"$JOBS"','
  echo '  "results": ['
  (IFS=,$'\n'; echo "${rows[*]}")
  echo '  ]'
  echo '}'
} > "$OUT"
echo "==> wrote $OUT" >&2
