#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every source file under src/
# and fails on any warning (--warnings-as-errors='*').  Usage:
#
#   scripts/lint.sh [build-dir]
#
# The build dir (default: build) is reconfigured with compile_commands.json
# exported.  Files are linted in parallel, one clang-tidy process per core
# (clang-tidy is single-threaded per invocation, so this is the only way to
# use the machine); xargs propagates any child's failure as a non-zero exit.
# When clang-tidy is not installed the lint is skipped with a notice and
# exit 0, so environments without LLVM tooling (like the pinned CI
# container) still run the rest of the pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping (install clang-tidy to enable)" >&2
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

JOBS="$(nproc 2>/dev/null || echo 2)"
mapfile -t files < <(find src -name '*.cpp' | sort)
echo "lint: clang-tidy over ${#files[@]} files (${JOBS} jobs)"
printf '%s\0' "${files[@]}" |
  xargs -0 -n 1 -P "$JOBS" \
    clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*'
echo "lint: clean"
