#!/usr/bin/env bash
# Regenerates every paper-scale (512^3) result referenced by EXPERIMENTS.md
# into results/.  Sweeps run on all cores by default (the parallel sweep
# executor; results are identical for every job count) -- pass JOBS=N to
# pin the worker count.  Each bench also accepts --n 256 for a ~8x faster
# sweep with the same shapes.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
for b in fig3_roofline fig4_l1_movement fig5_corr_a100 fig6_corr_mi250x \
         table3_pp_roofline table5_pp_theoretical_ai fig7_potential_speedup; do
  echo "== bench_$b --n 512 --jobs $JOBS =="
  ./build/bench/bench_$b --n 512 --jobs "$JOBS" | tee "results/${b}_n512.txt"
done
