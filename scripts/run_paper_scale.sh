#!/usr/bin/env bash
# Regenerates every paper-scale (512^3) result referenced by EXPERIMENTS.md
# into results/ through the bricksim driver: one shared sweep feeds all
# seven experiments (the legacy per-binary loop simulated it seven times),
# and the content-addressed cache makes reruns free.  Pass JOBS=N to pin
# the worker count; results are identical for every job count.
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
echo "== bricksim run fig3 fig4 fig5 fig6 table3 table5 fig7 --n 512 --jobs $JOBS =="
./build/bench/bricksim run fig3 fig4 fig5 fig6 table3 table5 fig7 \
  --n 512 --jobs "$JOBS" --progress --out results/paper_scale
echo "== artifacts in results/paper_scale/<experiment>/ =="
