#!/usr/bin/env bash
# The full CI gate future PRs inherit:
#
#   1. tier-1 verify, plain:     configure + build + ctest
#   2. tier-1 verify, Release:   the same under -O2 -DNDEBUG -- the
#                                configuration the benchmarks run in, so
#                                assert-hidden behaviour differences and
#                                optimizer-sensitive bugs surface in CI
#   3. perf smoke, Release:      the fig3@128 A/B gate from bench_wall.sh
#                                (plan vs interp output byte-identical),
#                                then a 3-rep median of the plan engine at
#                                --jobs 1 gated at +10% of the committed
#                                BENCH_replay.json baseline; skippable on
#                                slow/noisy hosts via
#                                BRICKSIM_SKIP_PERF_SMOKE=1
#   4. tier-1 verify, sanitized: the same under ASan + UBSan
#                                (BRICKSIM_SANITIZE=address;undefined)
#   5. concurrency verify, TSan: the threadpool + harness suites (the
#                                parallel sweep executor's determinism and
#                                data-race contracts) and the engine A/B
#                                equivalence suite under
#                                BRICKSIM_SANITIZE=thread
#   6. parallel sweep smoke:     the fig3 sweep at --jobs > 1, both engines
#   7. driver verify:            `bricksim all` cold then warm -- the warm
#                                run must replay entirely from the
#                                content-addressed cache (zero sweeps
#                                simulated, zero emitters run, asserted
#                                from run_summary.json) with byte-identical
#                                stdout and artifacts; then every legacy
#                                bench_* binary is diffed byte-for-byte
#                                against `bricksim run <name>`
#   8. fault-injection soak:     the driver under ASan with deterministic
#                                faults armed (--fault-inject /
#                                BRICKSIM_FAULT_INJECT): a degraded run
#                                exits 3 with FAILED holes and a named
#                                failure in run_summary.json, --resume
#                                replays the checkpoint shards and
#                                simulates only the hole (byte-identical
#                                to a never-faulted run), a corrupted
#                                cache entry is quarantined and healed by
#                                re-simulation, and `bricksim doctor`
#                                reports/prunes the damage
#   9. static-analysis verify:   `bricksim lint` under ASan, cold then
#                                warm -- the warm run must join brickperf's
#                                static estimates against cached counters
#                                without simulating a sweep (asserted from
#                                run_summary.json), with the drift verdict
#                                re-asserted from the lint output against
#                                the SoA replay path (every row within the
#                                35% gate, L1 byte-exact); then the
#                                ExecPlan differential verifier gates
#                                every decode of the full catalog
#                                (--verify-plan --no-cache)
#  10. service verify:           `bricksim serve` under an armed fault
#                                plan takes a 2000-request mixed-load
#                                storm, the broker counters must satisfy
#                                the admission invariant afterwards, and
#                                SIGTERM drains cleanly; then the driver
#                                survives SIGINT mid-sweep and resumes
#                                from its checkpoint shards
#  11. overload soak:            two daemons share one cache dir; a storm
#                                at 4x the admission limit with
#                                --memo-bytes at ~1/10 the working set and
#                                a connection-drop fault armed must shed
#                                (never hang), keep memo bytes <= budget,
#                                and simulate each fingerprint exactly
#                                once; then one daemon is SIGKILLed
#                                mid-sweep and the peer must steal the
#                                stale lease, adopt the shards, and
#                                produce artifacts byte-identical to a
#                                clean single-daemon cold run
#  12. clang-tidy lint           (scripts/lint.sh; skipped when absent)
#
# Usage: scripts/ci.sh [--fast]
#   --fast  run only the brickcheck/ir/codegen test subset under the
#           sanitizers instead of the full suite (for quick local loops).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/12] tier-1 verify (plain)"
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [2/12] tier-1 verify (Release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-release --output-on-failure -j "$JOBS" \
    -R 'ExecPlan|Machine|SetAssocCache|Hierarchy'
else
  ctest --test-dir build-release --output-on-failure -j "$JOBS"
fi

echo "==> [3/12] perf smoke (fig3@128 Release: A/B gate + regression vs BENCH_replay.json)"
if [[ "${BRICKSIM_SKIP_PERF_SMOKE:-0}" == 1 ]]; then
  echo "    skipped (BRICKSIM_SKIP_PERF_SMOKE=1)"
else
  # The A/B gate from bench_wall.sh first: plan and interp must produce
  # byte-identical sweep output before any timing is trusted -- a speedup
  # can never come from computing something different.
  PERFDIR="$(mktemp -d)"
  FIG3R=./build-release/bench/bench_fig3_roofline
  "$FIG3R" --n 128 --jobs 1 --engine=plan   > "$PERFDIR/plan"   2> /dev/null
  "$FIG3R" --n 128 --jobs 1 --engine=interp > "$PERFDIR/interp" 2> /dev/null
  cmp -s "$PERFDIR/plan" "$PERFDIR/interp" \
    || { echo "FAIL: fig3 output differs between plan and interp"; exit 1; }
  # 3-rep median of the plan engine at --jobs 1 against the committed
  # baseline; >10% slower fails the leg (BRICKSIM_SKIP_PERF_SMOKE=1 for
  # hosts too noisy to hold a 10% band).
  baseline="$(jq -r '.results[] | select(.config == "fig3_n128"
      and .engine == "plan" and .jobs == 1 and (has("shards") | not))
      | .seconds' BENCH_replay.json)"
  [[ -n "$baseline" && "$baseline" != null ]] \
    || { echo "FAIL: no fig3_n128 plan jobs=1 row in BENCH_replay.json"; exit 1; }
  samples=()
  for rep in 1 2 3; do
    t0="$(date +%s.%N)"
    "$FIG3R" --n 128 --jobs 1 --engine=plan > /dev/null 2> /dev/null
    t1="$(date +%s.%N)"
    samples+=("$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b - a}')")
  done
  med="$(printf '%s\n' "${samples[@]}" | sort -n | sed -n 2p)"
  echo "    fig3@128 plan jobs=1: ${med}s (baseline ${baseline}s, gate +10%)"
  awk -v m="$med" -v b="$baseline" 'BEGIN{exit !(m <= b * 1.10)}' \
    || { echo "FAIL: plan engine regressed >10% vs BENCH_replay.json" \
         "(${med}s vs baseline ${baseline}s)"; exit 1; }
  rm -rf "$PERFDIR"
fi

echo "==> [4/12] tier-1 verify (ASan + UBSan)"
cmake -B build-asan -S . -DBRICKSIM_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_analysis|test_ir|test_codegen|test_regalloc'
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "==> [5/12] concurrency verify (TSan)"
cmake -B build-tsan -S . -DBRICKSIM_SANITIZE="thread"
cmake --build build-tsan -j "$JOBS" --target test_threadpool test_harness test_execplan test_shard test_broker test_serve test_lease test_fuzz_protocol bench_fig3_roofline
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ParallelFor|HarnessParallel|HarnessTest|ExecPlan|Shard|Broker|Serve|Framing|Lease|FuzzProtocol'
# Sharded fig3 smoke under TSan: the intra-kernel replay shards
# (ExecPlan::replay_sharded) genuinely run concurrently here --
# BRICKSIM_OVERSUBSCRIBE lifts the effective_jobs hardware clamp so the
# threads exist even on a 1-core CI box.
BRICKSIM_OVERSUBSCRIBE=1 ./build-tsan/bench/bench_fig3_roofline \
  --n 64 --jobs 4 --shards 4 > /dev/null 2> /dev/null

echo "==> [6/12] parallel sweep smoke (fig3 at --jobs 4, both engines + shards)"
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --engine=plan > /dev/null 2> /dev/null
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --engine=interp > /dev/null 2> /dev/null
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --shards 4 > /dev/null 2> /dev/null

echo "==> [7/12] driver verify (bricksim all cold/warm + legacy byte-diff)"
CIDIR="$(mktemp -d)"
trap 'rm -rf "$CIDIR"' EXIT
BRICKSIM=./build/bench/bricksim

# Cold: runs the sweeps, persists the cache, writes artifacts.
"$BRICKSIM" all --n 128 --out "$CIDIR/cold" --cache-dir "$CIDIR/cache" \
  > "$CIDIR/cold.stdout" 2> /dev/null

# Warm: an unchanged fingerprint must replay everything from the cache --
# zero sweeps simulated, zero emitters executed.
"$BRICKSIM" all --n 128 --out "$CIDIR/warm" --cache-dir "$CIDIR/cache" \
  > "$CIDIR/warm.stdout" 2> /dev/null
grep -q '"sweeps_simulated": 0' "$CIDIR/warm/run_summary.json" \
  || { echo "FAIL: warm bricksim all re-simulated a sweep"; exit 1; }
grep -q '"experiments_emitted": 0' "$CIDIR/warm/run_summary.json" \
  || { echo "FAIL: warm bricksim all re-ran an emitter"; exit 1; }
cmp "$CIDIR/cold.stdout" "$CIDIR/warm.stdout" \
  || { echo "FAIL: warm stdout differs from cold"; exit 1; }
for exp in "$CIDIR"/cold/*/; do
  name="$(basename "$exp")"
  cmp "$exp/output.txt" "$CIDIR/warm/$name/output.txt" \
    || { echo "FAIL: warm output.txt differs for $name"; exit 1; }
done

# Every deprecated alias binary must be byte-identical to the driver --
# which, having a warm cache, also proves cached-replay fidelity against
# a fresh simulation.
for pair in table1:bench_table1_platforms table2:bench_table2_stencils \
            table4:bench_table4_theoretical_ai fig3:bench_fig3_roofline \
            fig4:bench_fig4_l1_movement fig5:bench_fig5_corr_a100 \
            fig6:bench_fig6_corr_mi250x table3:bench_table3_pp_roofline \
            table5:bench_table5_pp_theoretical_ai \
            fig7:bench_fig7_potential_speedup \
            mixbench:bench_mixbench_roofline \
            ablation_codegen:bench_ablation_codegen \
            ablation_brickshape:bench_ablation_brickshape \
            cpu_crossplatform:bench_cpu_crossplatform \
            pvc_subgroup:bench_pvc_subgroup; do
  name="${pair%%:*}"; bin="${pair##*:}"
  ./build/bench/"$bin" --n 128 > "$CIDIR/legacy.out" 2> /dev/null
  "$BRICKSIM" run "$name" --n 128 --out "$CIDIR/run" \
    --cache-dir "$CIDIR/cache" > "$CIDIR/driver.out" 2> /dev/null
  cmp "$CIDIR/legacy.out" "$CIDIR/driver.out" \
    || { echo "FAIL: $bin stdout differs from bricksim run $name"; exit 1; }
done

echo "==> [8/12] fault-injection soak (ASan driver)"
ASAN_BRICKSIM=./build-asan/bench/bricksim
SOAK="$CIDIR/soak"
mkdir -p "$SOAK"

# Reference: a clean run in its own cache, for byte-level comparison.
"$ASAN_BRICKSIM" run cpu_crossplatform --n 64 --jobs 1 \
  --out "$SOAK/ref" --cache-dir "$SOAK/ref_cache" \
  > "$SOAK/ref.stdout" 2> /dev/null

# Degraded run: one deterministic launch fault (--jobs 1 pins which
# config fails).  The run must complete, render the hole as FAILED, name
# the failure in run_summary.json, and exit 3 -- not 1.
rc=0
"$ASAN_BRICKSIM" run cpu_crossplatform --n 64 --jobs 1 \
  --out "$SOAK/bad" --cache-dir "$SOAK/cache" --fault-inject 'launch@1' \
  > "$SOAK/bad.stdout" 2> /dev/null || rc=$?
[[ "$rc" == 3 ]] \
  || { echo "FAIL: degraded run exited $rc, expected 3"; exit 1; }
grep -q 'FAILED' "$SOAK/bad.stdout" \
  || { echo "FAIL: degraded run rendered no FAILED hole"; exit 1; }
grep -q '"site": "launch"' "$SOAK/bad/run_summary.json" \
  || { echo "FAIL: run_summary.json names no launch failure"; exit 1; }
grep -q '"cpu_crossplatform": "degraded"' "$SOAK/bad/run_summary.json" \
  || { echo "FAIL: experiment not marked degraded"; exit 1; }

# Resume without the fault: the checkpoint shards replay bit-identically,
# only the hole is simulated, and the output matches the never-faulted
# reference byte for byte.
"$ASAN_BRICKSIM" run cpu_crossplatform --n 64 --jobs 1 \
  --out "$SOAK/resumed" --cache-dir "$SOAK/cache" --resume \
  > "$SOAK/resumed.stdout" 2> /dev/null
cmp "$SOAK/resumed.stdout" "$SOAK/ref.stdout" \
  || { echo "FAIL: resumed stdout differs from clean reference"; exit 1; }
grep -q '"configs_simulated": 1' "$SOAK/resumed/run_summary.json" \
  || { echo "FAIL: resume re-simulated more than the hole"; exit 1; }

# Cache self-healing: corrupt the stored sweep entry (same-length edit so
# only the checksum can notice) and drop the artifact entries so the
# sweep is actually re-read.  The next run must quarantine the damage,
# re-simulate, and still match the reference byte for byte.
rm -f "$SOAK/cache"/artifact-*.json
sed -i 's/"measurements"/"measuremenXs"/' "$SOAK/cache"/sweep-*.json
"$ASAN_BRICKSIM" run cpu_crossplatform --n 64 --jobs 1 \
  --out "$SOAK/healed" --cache-dir "$SOAK/cache" \
  > "$SOAK/healed.stdout" 2> "$SOAK/healed.stderr"
cmp "$SOAK/healed.stdout" "$SOAK/ref.stdout" \
  || { echo "FAIL: healed stdout differs from clean reference"; exit 1; }
grep -q 'quarantin' "$SOAK/healed.stderr" \
  || { echo "FAIL: corrupt entry was not quarantined"; exit 1; }
grep -q '"entries_quarantined": 1' "$SOAK/healed/run_summary.json" \
  || { echo "FAIL: quarantine not counted in run_summary.json"; exit 1; }
ls "$SOAK/cache"/sweep-*.json.corrupt > /dev/null 2>&1 \
  || { echo "FAIL: no .corrupt quarantine file left behind"; exit 1; }

# Torn-write fault: the torn entry must be detected (quarantined) on the
# next run, never replayed as truth.
rc=0
"$ASAN_BRICKSIM" run fig4 --n 64 --jobs 1 --out "$SOAK/torn" \
  --cache-dir "$SOAK/torn_cache" \
  --fault-inject 'cache.write.torn[sweep-]@1' \
  > /dev/null 2> /dev/null || rc=$?
[[ "$rc" == 0 ]] \
  || { echo "FAIL: torn-write run exited $rc (faults in the cache layer"\
" must not degrade the run)"; exit 1; }
rm -f "$SOAK/torn_cache"/artifact-*.json
"$ASAN_BRICKSIM" run fig4 --n 64 --jobs 1 --out "$SOAK/torn2" \
  --cache-dir "$SOAK/torn_cache" > /dev/null 2> "$SOAK/torn2.stderr"
grep -q 'quarantin' "$SOAK/torn2.stderr" \
  || { echo "FAIL: torn cache entry was not quarantined"; exit 1; }

# Env-armed emitter fault: BRICKSIM_FAULT_INJECT reaches the driver, the
# failing emitter is isolated and named, exit code 3.
rc=0
BRICKSIM_FAULT_INJECT='emit[table2]@1' \
  "$ASAN_BRICKSIM" run table2 --no-cache --out "$SOAK/emit" \
  > "$SOAK/emit.stdout" 2> "$SOAK/emit.stderr" || rc=$?
[[ "$rc" == 3 ]] \
  || { echo "FAIL: emitter-fault run exited $rc, expected 3"; exit 1; }
grep -q 'BRICKSIM_FAULT_INJECT' "$SOAK/emit.stderr" \
  || { echo "FAIL: env-armed fault injection printed no note"; exit 1; }
grep -q '"table2": "failed"' "$SOAK/emit/run_summary.json" \
  || { echo "FAIL: failed emitter not marked in run_summary.json"; exit 1; }

# Doctor: reports the quarantined entry, prune clears it, and a healthy
# cache scans clean (exit 0).
"$ASAN_BRICKSIM" doctor --cache-dir "$SOAK/cache" > "$SOAK/doctor.out"
grep -q '\.corrupt' "$SOAK/doctor.out" \
  || { echo "FAIL: doctor missed the quarantined entry"; exit 1; }
"$ASAN_BRICKSIM" doctor --cache-dir "$SOAK/cache" --prune > /dev/null
"$ASAN_BRICKSIM" doctor --cache-dir "$SOAK/cache" > "$SOAK/doctor2.out" \
  || { echo "FAIL: doctor reports damage after prune"; exit 1; }

echo "==> [9/12] static-analysis verify (brickperf drift gate + plan verifier)"
# Cold: simulates the main sweep, then joins brickperf's static estimates
# against the measured counters; any drift outside tolerance exits 3.
"$ASAN_BRICKSIM" run lint --n 64 --out "$CIDIR/lint_cold" \
  --cache-dir "$CIDIR/lint_cache" > /dev/null 2> /dev/null

# The counters the join measures now come from the SoA replay path
# (batched addends, congruence lumping).  The emitter already threw if any
# config drifted outside DriftTolerance (L1 exact / HBM 35%); re-assert
# the verdict from the rendered output so a silently-weakened gate cannot
# pass: every joined row agrees, and the L1 estimates are still byte-exact.
LINT_OUT="$CIDIR/lint_cold/lint/output.txt"
grep -q 'configuration(s) joined against measured counters' "$LINT_OUT" \
  || { echo "FAIL: lint output records no drift verdict"; exit 1; }
grep -q '\([0-9][0-9]*\) configuration(s) joined.*; \1 within declared tolerance' \
  "$LINT_OUT" \
  || { echo "FAIL: not every lint row is within declared tolerance"; exit 1; }
if grep -qE 'NO *$' "$LINT_OUT"; then
  echo "FAIL: a lint row drifted outside the 35% gate"; exit 1
fi
awk '/%/ { for (f = 1; f <= NF; ++f) if ($f ~ /%$/) {
             if ($f != "0.00%") bad = 1; break } } END { exit bad }' \
  "$LINT_OUT" \
  || { echo "FAIL: L1 drift is no longer exact under the SoA replay path"; \
       exit 1; }

# Warm: the same join must replay counters from the cache -- the static
# analysis itself costs no simulation.
"$ASAN_BRICKSIM" run lint --n 64 --out "$CIDIR/lint_warm" \
  --cache-dir "$CIDIR/lint_cache" > /dev/null 2> /dev/null
grep -q '"sweeps_simulated": 0' "$CIDIR/lint_warm/run_summary.json" \
  || { echo "FAIL: warm bricksim lint re-simulated a sweep"; exit 1; }

# Differential decode verification over the full catalog: every ExecPlan
# the sweep decodes is re-derived from its source program and compared
# field by field before it replays (enforced strictly; any divergence
# aborts the launch).
"$ASAN_BRICKSIM" run fig3 --n 64 --verify-plan --no-cache \
  --out "$CIDIR/verify_plan" > /dev/null 2> /dev/null

echo "==> [10/12] service verify (bricksim serve + mixed-load storm + graceful shutdown)"
SRV="$CIDIR/serve"
mkdir -p "$SRV"

# The daemon, with fault injection armed: the first simulated config
# fails, so a degraded sweep flows through the broker like a healthy one
# (served, memoized, counted) -- the storm below must still come back
# clean at the protocol level.
BRICKSIM_FAULT_INJECT='launch@1' "$BRICKSIM" serve --socket "$SRV/s.sock" \
  --cache-dir "$SRV/cache" 2> "$SRV/serve.stderr" &
SRV_PID=$!
for _ in $(seq 100); do [[ -S "$SRV/s.sock" ]] && break; sleep 0.1; done
[[ -S "$SRV/s.sock" ]] \
  || { echo "FAIL: serve never created its socket"; exit 1; }
"$BRICKSIM" query healthz --socket "$SRV/s.sock" | grep -q '"serving"' \
  || { echo "FAIL: healthz did not report serving"; exit 1; }

# Mixed hot/cold storm: 2000 requests over 16 connections, three distinct
# fingerprints (hot 64^3, cold 128^3/192^3), spread priorities.  Exit 0
# means every reply was ok and nothing failed or was rejected.
"$BRICKSIM" loadtest --socket "$SRV/s.sock" --requests 2000 --threads 16 \
  --kind cpu --hot-n 64 --cold-ns 128,192 --cold-every 7 \
  --priority-spread > "$SRV/loadtest.json" \
  || { echo "FAIL: loadtest reported failures"; cat "$SRV/loadtest.json"; \
       exit 1; }

# Counter contract after the storm: the admission invariant holds, the
# three fingerprints cost exactly three simulations (single-flight: every
# other cold arrival coalesced), warm hits never touched the pool
# (enqueued == cold_misses), and nothing expired, failed, or was rejected.
"$BRICKSIM" query counters --socket "$SRV/s.sock" > "$SRV/counters.json"
jq -e '.counters |
    .requests == 2000
    and .requests == .warm_memo + .coalesced + .cold_misses + .rejected
                     + .overloaded
    and .cold_misses == .warm_disk + .simulated + .expired + .failed
    and .simulated == 3
    and .enqueued == .cold_misses
    and .expired == 0 and .failed == 0 and .rejected == 0
    and .overloaded == 0 and .memo_evictions == 0
    and .inflight == 0' "$SRV/counters.json" > /dev/null \
  || { echo "FAIL: broker counters violate the contract"; \
       cat "$SRV/counters.json"; exit 1; }
grep -q 'fault injection armed' "$SRV/serve.stderr" \
  || { echo "FAIL: serve did not note the armed fault plan"; exit 1; }

# Graceful drain on SIGTERM: exit 0, a drain note, and no stale socket.
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
[[ "$rc" == 0 ]] \
  || { echo "FAIL: serve exited $rc on SIGTERM, expected a clean drain"; \
       exit 1; }
grep -q 'drained cleanly' "$SRV/serve.stderr" \
  || { echo "FAIL: serve printed no drain summary"; exit 1; }
[[ ! -S "$SRV/s.sock" ]] \
  || { echo "FAIL: serve left its socket behind"; exit 1; }

# Driver-side graceful shutdown: SIGINT mid-sweep must exit 128+SIGINT
# (130), mark the run interrupted, and leave resumable checkpoint shards
# -- and a --resume rerun completes from them instead of starting over.
INT="$CIDIR/interrupt"
mkdir -p "$INT"
rc=0
"$BRICKSIM" run cpu_crossplatform --n 256 --jobs 2 --out "$INT/cut" \
  --cache-dir "$INT/cache" > /dev/null 2> /dev/null &
RUN_PID=$!
sleep 0.5
kill -INT "$RUN_PID"
wait "$RUN_PID" || rc=$?
[[ "$rc" == 130 ]] \
  || { echo "FAIL: interrupted run exited $rc, expected 130"; exit 1; }
grep -q '"interrupted": true' "$INT/cut/run_summary.json" \
  || { echo "FAIL: run_summary.json not marked interrupted"; exit 1; }
ls "$INT/cache"/*/shard-*.json > /dev/null 2>&1 \
  || { echo "FAIL: interrupted run left no checkpoint shards"; exit 1; }
"$BRICKSIM" run cpu_crossplatform --n 256 --jobs 2 --out "$INT/resumed" \
  --cache-dir "$INT/cache" --resume > /dev/null 2> /dev/null \
  || { echo "FAIL: resume after interrupt did not complete"; exit 1; }
jq -e '.cache.shards_resumed > 0' "$INT/resumed/run_summary.json" \
  > /dev/null \
  || { echo "FAIL: resume after interrupt replayed no shards"; exit 1; }

echo "==> [11/12] overload soak (two daemons, one cache: shed + evict + SIGKILL lease takeover)"
OVL="$CIDIR/overload"
mkdir -p "$OVL"

# Reference: the contested cold sweep from a pristine single-daemon run,
# for byte-level comparison after the lease takeover -- plus one hot-storm
# entry whose size calibrates the memo budget below.
"$BRICKSIM" serve --socket "$OVL/ref.sock" --cache-dir "$OVL/ref_cache" \
  2> /dev/null &
REF_PID=$!
for _ in $(seq 100); do [[ -S "$OVL/ref.sock" ]] && break; sleep 0.1; done
"$BRICKSIM" query sweep --kind cpu --n 320 --socket "$OVL/ref.sock" \
  > "$OVL/ref_sweep.json"
FP="$(jq -r '.fingerprint' "$OVL/ref_sweep.json")"
"$BRICKSIM" query sweep --kind cpu --n 64 --socket "$OVL/ref.sock" \
  > "$OVL/ref_hot.json"
HOT_FP="$(jq -r '.fingerprint' "$OVL/ref_hot.json")"
kill -TERM "$REF_PID"
wait "$REF_PID"

# The memo budget: half of one entry, i.e. ~1/10 of the five-fingerprint
# working set the storm touches.  Every insert must therefore evict, the
# byte bound must hold as an invariant, and every warm hit is forced
# through the disk-cache fallback -- while results stay exact.
HOT_BYTES="$(stat -c %s "$OVL/ref_cache/sweep-$HOT_FP.json")"
BUDGET=$(( HOT_BYTES / 2 ))
[[ "$BUDGET" -ge 1 ]] || BUDGET=1

# Two daemons over ONE cache dir (and therefore one lease namespace).
# Daemon A takes the storm with a connection-drop fault armed; its
# admission bound is 1 queued cold leader, and the storm's four
# fingerprints (one hot + three cold -- with the memo this tight even
# hot hits arrive as disk-reading cold-miss leaders) all contend for it:
# a storm at 4x the limit, so it MUST shed.  The contested n=320 sweep
# is deliberately NOT in the storm set -- it has to still be cold for
# the SIGKILL takeover below.
BRICKSIM_FAULT_INJECT='conn.drop@5' \
  "$BRICKSIM" serve --socket "$OVL/a.sock" --cache-dir "$OVL/cache" \
  --workers 2 --max-queue 1 --memo-bytes "$BUDGET" --lease-ttl-ms 1500 \
  2> "$OVL/a.stderr" &
A_PID=$!
"$BRICKSIM" serve --socket "$OVL/b.sock" --cache-dir "$OVL/cache" \
  --workers 2 --max-queue 1 --memo-bytes "$BUDGET" --lease-ttl-ms 1500 \
  2> "$OVL/b.stderr" &
B_PID=$!
for _ in $(seq 100); do
  [[ -S "$OVL/a.sock" && -S "$OVL/b.sock" ]] && break; sleep 0.1
done
[[ -S "$OVL/a.sock" && -S "$OVL/b.sock" ]] \
  || { echo "FAIL: overload-soak daemons never bound their sockets"; exit 1; }

# The storm: every client must end in success -- shed and dropped requests
# retry with backoff until they land; nothing may hang or give up.
"$BRICKSIM" loadtest --socket "$OVL/a.sock" --requests 200 --threads 8 \
  --kind cpu --hot-n 64 --cold-ns 128,192,256 --cold-every 3 \
  --retries 30 > "$OVL/loadtest.json" \
  || { echo "FAIL: overload-soak loadtest reported failures"; \
       cat "$OVL/loadtest.json"; exit 1; }
jq -e '.succeeded == 200 and .gave_up == 0 and .protocol_errors == 0
    and .shed >= 1 and .retried >= 1' "$OVL/loadtest.json" > /dev/null \
  || { echo "FAIL: storm tally shows no shed/retry convergence"; \
       cat "$OVL/loadtest.json"; exit 1; }

# Counter contract on the stormed daemon: the admission invariant holds
# with shedding in play, memory stayed bounded (memo bytes <= budget with
# evictions actually exercised), and each of the 4 fingerprints cost
# exactly one simulation -- shed retries and drop-forced resends never
# duplicated work.
"$BRICKSIM" query counters --socket "$OVL/a.sock" > "$OVL/a_counters.json"
jq -e --argjson budget "$BUDGET" '.counters |
    .requests == .warm_memo + .coalesced + .cold_misses + .rejected
                 + .overloaded
    and .overloaded >= 1
    and .memo_evictions >= 1
    and .memo_bytes <= $budget
    and .simulated == 4
    and .expired == 0 and .failed == 0 and .rejected == 0
    and .inflight == 0' "$OVL/a_counters.json" > /dev/null \
  || { echo "FAIL: stormed daemon counters violate the overload contract"; \
       cat "$OVL/a_counters.json"; exit 1; }

# SIGKILL mid-sweep: start the contested cold sweep on daemon A, wait
# until its leader provably holds the lease, then kill -9 the daemon --
# no drain, no release, exactly what a crashed host leaves behind.
"$BRICKSIM" query sweep --kind cpu --n 320 --socket "$OVL/a.sock" \
  > /dev/null 2> /dev/null &
Q_PID=$!
for _ in $(seq 200); do
  [[ -e "$OVL/cache/lease-$FP.json" ]] && break; sleep 0.05
done
[[ -e "$OVL/cache/lease-$FP.json" ]] \
  || { echo "FAIL: contested sweep never took its lease"; exit 1; }
kill -9 "$A_PID"
wait "$Q_PID" 2> /dev/null || true
wait "$A_PID" 2> /dev/null || true
[[ ! -e "$OVL/cache/sweep-$FP.json" ]] \
  || { echo "FAIL: daemon A finished before the SIGKILL landed"; exit 1; }

# Peer takeover: daemon B must expire the corpse's stale lease (its
# heartbeats stopped at the SIGKILL), adopt the checkpoint shards, finish
# the sweep once, and release the lease.
"$BRICKSIM" query sweep --kind cpu --n 320 --socket "$OVL/b.sock" \
  > "$OVL/b_sweep.json"
jq -e '.ok == true and .status == "simulated"' "$OVL/b_sweep.json" \
  > /dev/null \
  || { echo "FAIL: peer did not complete the dead daemon's sweep"; \
       cat "$OVL/b_sweep.json"; exit 1; }
"$BRICKSIM" query counters --socket "$OVL/b.sock" > "$OVL/b_counters.json"
jq -e '.counters | .lease_steals == 1 and .simulated == 1' \
  "$OVL/b_counters.json" > /dev/null \
  || { echo "FAIL: peer counters record no lease steal"; \
       cat "$OVL/b_counters.json"; exit 1; }
[[ ! -e "$OVL/cache/lease-$FP.json" ]] \
  || { echo "FAIL: stolen lease was not released after the store"; exit 1; }

# The takeover artifact is byte-identical to the pristine single-daemon
# run: crash + adoption changed nothing about the result.
cmp "$OVL/cache/sweep-$FP.json" "$OVL/ref_cache/sweep-$FP.json" \
  || { echo "FAIL: takeover sweep differs from the clean reference"; \
       exit 1; }

# Doctor over the survivor's cache: any stale leases are reported and
# pruned, and what the crash left behind is NOT corruption (exit 0).
"$BRICKSIM" doctor --cache-dir "$OVL/cache" --prune > "$OVL/doctor.out" \
  || { echo "FAIL: doctor flags the post-crash cache as corrupt"; \
       cat "$OVL/doctor.out"; exit 1; }

kill -TERM "$B_PID"
rc=0
wait "$B_PID" || rc=$?
[[ "$rc" == 0 ]] \
  || { echo "FAIL: surviving daemon exited $rc on SIGTERM"; exit 1; }

echo "==> [12/12] lint"
scripts/lint.sh

echo "==> CI green"
