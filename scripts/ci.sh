#!/usr/bin/env bash
# The full CI gate future PRs inherit:
#
#   1. tier-1 verify, plain:     configure + build + ctest
#   2. tier-1 verify, sanitized: the same under ASan + UBSan
#                                (BRICKSIM_SANITIZE=address;undefined)
#   3. clang-tidy lint           (scripts/lint.sh; skipped when absent)
#
# Usage: scripts/ci.sh [--fast]
#   --fast  run only the brickcheck/ir/codegen test subset under the
#           sanitizers instead of the full suite (for quick local loops).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/3] tier-1 verify (plain)"
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [2/3] tier-1 verify (ASan + UBSan)"
cmake -B build-asan -S . -DBRICKSIM_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_analysis|test_ir|test_codegen|test_regalloc'
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "==> [3/3] lint"
scripts/lint.sh

echo "==> CI green"
