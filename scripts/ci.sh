#!/usr/bin/env bash
# The full CI gate future PRs inherit:
#
#   1. tier-1 verify, plain:     configure + build + ctest
#   2. tier-1 verify, Release:   the same under -O2 -DNDEBUG -- the
#                                configuration the benchmarks run in, so
#                                assert-hidden behaviour differences and
#                                optimizer-sensitive bugs surface in CI
#   3. tier-1 verify, sanitized: the same under ASan + UBSan
#                                (BRICKSIM_SANITIZE=address;undefined)
#   4. concurrency verify, TSan: the threadpool + harness suites (the
#                                parallel sweep executor's determinism and
#                                data-race contracts) and the engine A/B
#                                equivalence suite under
#                                BRICKSIM_SANITIZE=thread
#   5. parallel sweep smoke:     the fig3 sweep at --jobs > 1, both engines
#   6. driver verify:            `bricksim all` cold then warm -- the warm
#                                run must replay entirely from the
#                                content-addressed cache (zero sweeps
#                                simulated, zero emitters run, asserted
#                                from run_summary.json) with byte-identical
#                                stdout and artifacts; then every legacy
#                                bench_* binary is diffed byte-for-byte
#                                against `bricksim run <name>`
#   7. clang-tidy lint           (scripts/lint.sh; skipped when absent)
#
# Usage: scripts/ci.sh [--fast]
#   --fast  run only the brickcheck/ir/codegen test subset under the
#           sanitizers instead of the full suite (for quick local loops).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/7] tier-1 verify (plain)"
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [2/7] tier-1 verify (Release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-release --output-on-failure -j "$JOBS" \
    -R 'ExecPlan|Machine|SetAssocCache|Hierarchy'
else
  ctest --test-dir build-release --output-on-failure -j "$JOBS"
fi

echo "==> [3/7] tier-1 verify (ASan + UBSan)"
cmake -B build-asan -S . -DBRICKSIM_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_analysis|test_ir|test_codegen|test_regalloc'
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "==> [4/7] concurrency verify (TSan)"
cmake -B build-tsan -S . -DBRICKSIM_SANITIZE="thread"
cmake --build build-tsan -j "$JOBS" --target test_threadpool test_harness test_execplan
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ParallelFor|HarnessParallel|HarnessTest|ExecPlan'

echo "==> [5/7] parallel sweep smoke (fig3 at --jobs 4, both engines)"
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --engine=plan > /dev/null 2> /dev/null
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --engine=interp > /dev/null 2> /dev/null

echo "==> [6/7] driver verify (bricksim all cold/warm + legacy byte-diff)"
CIDIR="$(mktemp -d)"
trap 'rm -rf "$CIDIR"' EXIT
BRICKSIM=./build/bench/bricksim

# Cold: runs the sweeps, persists the cache, writes artifacts.
"$BRICKSIM" all --n 128 --out "$CIDIR/cold" --cache-dir "$CIDIR/cache" \
  > "$CIDIR/cold.stdout" 2> /dev/null

# Warm: an unchanged fingerprint must replay everything from the cache --
# zero sweeps simulated, zero emitters executed.
"$BRICKSIM" all --n 128 --out "$CIDIR/warm" --cache-dir "$CIDIR/cache" \
  > "$CIDIR/warm.stdout" 2> /dev/null
grep -q '"sweeps_simulated": 0' "$CIDIR/warm/run_summary.json" \
  || { echo "FAIL: warm bricksim all re-simulated a sweep"; exit 1; }
grep -q '"experiments_emitted": 0' "$CIDIR/warm/run_summary.json" \
  || { echo "FAIL: warm bricksim all re-ran an emitter"; exit 1; }
cmp "$CIDIR/cold.stdout" "$CIDIR/warm.stdout" \
  || { echo "FAIL: warm stdout differs from cold"; exit 1; }
for exp in "$CIDIR"/cold/*/; do
  name="$(basename "$exp")"
  cmp "$exp/output.txt" "$CIDIR/warm/$name/output.txt" \
    || { echo "FAIL: warm output.txt differs for $name"; exit 1; }
done

# Every deprecated alias binary must be byte-identical to the driver --
# which, having a warm cache, also proves cached-replay fidelity against
# a fresh simulation.
for pair in table1:bench_table1_platforms table2:bench_table2_stencils \
            table4:bench_table4_theoretical_ai fig3:bench_fig3_roofline \
            fig4:bench_fig4_l1_movement fig5:bench_fig5_corr_a100 \
            fig6:bench_fig6_corr_mi250x table3:bench_table3_pp_roofline \
            table5:bench_table5_pp_theoretical_ai \
            fig7:bench_fig7_potential_speedup \
            mixbench:bench_mixbench_roofline \
            ablation_codegen:bench_ablation_codegen \
            ablation_brickshape:bench_ablation_brickshape \
            cpu_crossplatform:bench_cpu_crossplatform \
            pvc_subgroup:bench_pvc_subgroup; do
  name="${pair%%:*}"; bin="${pair##*:}"
  ./build/bench/"$bin" --n 128 > "$CIDIR/legacy.out" 2> /dev/null
  "$BRICKSIM" run "$name" --n 128 --out "$CIDIR/run" \
    --cache-dir "$CIDIR/cache" > "$CIDIR/driver.out" 2> /dev/null
  cmp "$CIDIR/legacy.out" "$CIDIR/driver.out" \
    || { echo "FAIL: $bin stdout differs from bricksim run $name"; exit 1; }
done

echo "==> [7/7] lint"
scripts/lint.sh

echo "==> CI green"
