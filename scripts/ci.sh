#!/usr/bin/env bash
# The full CI gate future PRs inherit:
#
#   1. tier-1 verify, plain:     configure + build + ctest
#   2. tier-1 verify, Release:   the same under -O2 -DNDEBUG -- the
#                                configuration the benchmarks run in, so
#                                assert-hidden behaviour differences and
#                                optimizer-sensitive bugs surface in CI
#   3. tier-1 verify, sanitized: the same under ASan + UBSan
#                                (BRICKSIM_SANITIZE=address;undefined)
#   4. concurrency verify, TSan: the threadpool + harness suites (the
#                                parallel sweep executor's determinism and
#                                data-race contracts) and the engine A/B
#                                equivalence suite under
#                                BRICKSIM_SANITIZE=thread
#   5. parallel sweep smoke:     the fig3 sweep at --jobs > 1, both engines
#   6. clang-tidy lint           (scripts/lint.sh; skipped when absent)
#
# Usage: scripts/ci.sh [--fast]
#   --fast  run only the brickcheck/ir/codegen test subset under the
#           sanitizers instead of the full suite (for quick local loops).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/6] tier-1 verify (plain)"
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [2/6] tier-1 verify (Release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-release --output-on-failure -j "$JOBS" \
    -R 'ExecPlan|Machine|SetAssocCache|Hierarchy'
else
  ctest --test-dir build-release --output-on-failure -j "$JOBS"
fi

echo "==> [3/6] tier-1 verify (ASan + UBSan)"
cmake -B build-asan -S . -DBRICKSIM_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_analysis|test_ir|test_codegen|test_regalloc'
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "==> [4/6] concurrency verify (TSan)"
cmake -B build-tsan -S . -DBRICKSIM_SANITIZE="thread"
cmake --build build-tsan -j "$JOBS" --target test_threadpool test_harness test_execplan
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ParallelFor|HarnessParallel|HarnessTest|ExecPlan'

echo "==> [5/6] parallel sweep smoke (fig3 at --jobs 4, both engines)"
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --engine=plan > /dev/null
./build/bench/bench_fig3_roofline --n 128 --jobs 4 --engine=interp > /dev/null

echo "==> [6/6] lint"
scripts/lint.sh

echo "==> CI green"
