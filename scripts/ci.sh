#!/usr/bin/env bash
# The full CI gate future PRs inherit:
#
#   1. tier-1 verify, plain:     configure + build + ctest
#   2. tier-1 verify, sanitized: the same under ASan + UBSan
#                                (BRICKSIM_SANITIZE=address;undefined)
#   3. concurrency verify, TSan: the threadpool + harness suites (the
#                                parallel sweep executor's determinism and
#                                data-race contracts) under
#                                BRICKSIM_SANITIZE=thread
#   4. parallel sweep smoke:     the fig3 sweep at --jobs > 1
#   5. clang-tidy lint           (scripts/lint.sh; skipped when absent)
#
# Usage: scripts/ci.sh [--fast]
#   --fast  run only the brickcheck/ir/codegen test subset under the
#           sanitizers instead of the full suite (for quick local loops).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/5] tier-1 verify (plain)"
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [2/5] tier-1 verify (ASan + UBSan)"
cmake -B build-asan -S . -DBRICKSIM_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_analysis|test_ir|test_codegen|test_regalloc'
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "==> [3/5] concurrency verify (TSan)"
cmake -B build-tsan -S . -DBRICKSIM_SANITIZE="thread"
cmake --build build-tsan -j "$JOBS" --target test_threadpool test_harness
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ParallelFor|HarnessParallel|HarnessTest'

echo "==> [4/5] parallel sweep smoke (fig3 at --jobs 4)"
./build/bench/bench_fig3_roofline --n 128 --jobs 4 > /dev/null

echo "==> [5/5] lint"
scripts/lint.sh

echo "==> CI green"
