// wave25pt: the acoustic wave equation with an 8th-order spatial
// discretisation -- the 25-point radius-4 star stencil, the largest star of
// the paper's evaluation and the regime where the brick layout's shuffle
// amortisation matters most.
//
//   u_tt = c^2 Laplacian(u)
//
// integrated with leapfrog:  u_{t+1} = 2 u_t - u_{t-1} + dt^2 c^2 L(u_t).
// The 8th-order second-derivative weights (per dimension, / h^2) are
//   centre -205/72, then 8/5, -1/5, 8/315, -1/560 at distances 1..4.
//
// The example drives the same simulation on all three simulated GPUs under
// their best programming model, verifies each step against the scalar
// reference, checks that the wavefield stays bounded (CFL respected), and
// compares the simulated step times.
#include <cmath>
#include <iostream>

#include "common/grid.h"
#include "common/table.h"
#include "dsl/reference.h"
#include "model/launcher.h"

int main() {
  using namespace bricksim;

  const Vec3 domain{64, 32, 32};
  const int steps = 6;
  const double h = 1.0, c = 1.0;
  const double dt = 0.4;  // CFL-stable for 8th order in 3D at c = 1

  dsl::Stencil lap = dsl::Stencil::star(4);
  const double w[5] = {3.0 * (-205.0 / 72.0), 8.0 / 5.0, -1.0 / 5.0,
                       8.0 / 315.0, -1.0 / 560.0};
  for (int d = 0; d <= 4; ++d)
    lap.set_coefficient("a" + std::to_string(d), w[d] / (h * h));

  // Platforms: A100/CUDA, MI250X/HIP, PVC/SYCL.
  const auto all = model::paper_platforms();
  const model::Platform plats[] = {all[0], all[3], all[5]};

  Table summary({"Platform", "steps", "sim ms/step", "max |u| final",
                 "max rel err vs reference"});

  for (const auto& pf : plats) {
    HostGrid u(domain, {4, 4, 4}), u_prev(domain, {4, 4, 4}),
        lap_u(domain, {0, 0, 0}), check(domain, {0, 0, 0});
    // Initial condition: a smooth pulse, zero initial velocity.
    for (int k = 0; k < domain.k; ++k)
      for (int j = 0; j < domain.j; ++j)
        for (int i = 0; i < domain.i; ++i) {
          const double di = (i - domain.i / 2) / 6.0;
          const double dj = (j - domain.j / 2) / 6.0;
          const double dk = (k - domain.k / 2) / 6.0;
          const double v = std::exp(-(di * di + dj * dj + dk * dk));
          u.at(i, j, k) = v;
          u_prev.at(i, j, k) = v;
        }

    const model::Launcher launcher(domain);
    double sim_seconds = 0, worst_err = 0, peak = 0;
    for (int s = 0; s < steps; ++s) {
      const auto res = launcher.run_functional(
          lap, codegen::Variant::BricksCodegen, pf, u, lap_u);
      sim_seconds += res.report.seconds;
      dsl::apply_reference(lap, u, check);
      worst_err = std::max(worst_err, dsl::max_rel_error(lap_u, check));

      peak = 0;
      for (int k = 0; k < domain.k; ++k)
        for (int j = 0; j < domain.j; ++j)
          for (int i = 0; i < domain.i; ++i) {
            const double next = 2.0 * u.at(i, j, k) - u_prev.at(i, j, k) +
                                dt * dt * c * c * lap_u.at(i, j, k);
            u_prev.at(i, j, k) = u.at(i, j, k);
            u.at(i, j, k) = next;
            peak = std::max(peak, std::abs(next));
          }
      if (peak > 10.0) {
        std::cerr << "wavefield blew up on " << pf.label() << "\n";
        return 1;
      }
    }
    summary.add_row({pf.label(), std::to_string(steps),
                     Table::fmt(sim_seconds / steps * 1e3, 4),
                     Table::fmt(peak, 4), Table::fmt(worst_err, 15)});
  }

  std::cout << "Acoustic wave equation, 25pt (radius-4, 8th order) star, "
               "leapfrog, domain "
            << domain.i << "x" << domain.j << "x" << domain.k << "\n\n";
  summary.print(std::cout);
  return 0;
}
