// laplacian4th: the paper's own Figure 1 example -- a star-shaped, radius-2,
// 13-point stencil computing a fourth-order accurate Laplacian -- written in
// the BrickSim DSL exactly as the paper writes it in the python DSL, then
// compared across all three kernel variants on one platform.
//
// The fourth-order 1D second-derivative weights are
//   (-1/12, 4/3, -5/2, 4/3, -1/12) / h^2,
// so in 3D: centre 3 * (-5/2), distance-1 neighbours 4/3, distance-2
// neighbours -1/12.  Convergence is checked against an analytic function:
// u = sin(x)sin(y)sin(z) has Laplacian -3u, and the 4th-order stencil's
// error must shrink ~16x per grid-extent doubling.
#include <cmath>
#include <iostream>

#include "common/grid.h"
#include "dsl/reference.h"
#include "model/launcher.h"
#include "profiler/profiler.h"

int main() {
  using namespace bricksim;

  // --- Figure 1, transliterated ---------------------------------------------
  dsl::Index i(0), j(1), k(2);
  dsl::Grid input("in", 3), output("out", 3);
  dsl::ConstRef a0("MPI_B0"), a1("MPI_B1"), a2("MPI_B2");

  auto calc = a0 * input(i, j, k) + a1 * input(i + 1, j, k) +
              a1 * input(i - 1, j, k) + a1 * input(i, j + 1, k) +
              a1 * input(i, j - 1, k) + a1 * input(i, j, k + 1) +
              a1 * input(i, j, k - 1) + a2 * input(i + 2, j, k) +
              a2 * input(i - 2, j, k) + a2 * input(i, j + 2, k) +
              a2 * input(i, j - 2, k) + a2 * input(i, j, k + 2) +
              a2 * input(i, j, k - 2);

  dsl::Stencil lap = dsl::Stencil::from_program(output(i, j, k).assign(calc));
  std::cout << "extracted: " << lap.name() << " "
            << dsl::shape_name(lap.shape()) << " radius " << lap.radius()
            << ", theoretical AI " << lap.theoretical_ai() << "\n\n";

  const model::Platform platform = model::paper_platforms().front();

  // --- Convergence study ----------------------------------------------------
  std::cout << "4th-order convergence (u = sin x sin y sin z, Lap u = -3u):\n";
  std::cout << "    N     max error      rate\n";
  double prev_err = 0;
  for (const int n : {32, 64, 128}) {
    const double h = 2.0 * M_PI / n;
    lap.set_coefficient("MPI_B0", 3.0 * (-5.0 / 2.0) / (h * h));
    lap.set_coefficient("MPI_B1", (4.0 / 3.0) / (h * h));
    lap.set_coefficient("MPI_B2", (-1.0 / 12.0) / (h * h));

    const Vec3 domain{n, n, n};
    HostGrid u(domain, {2, 2, 2}), lap_u(domain, {0, 0, 0});
    for (int kk = -2; kk < n + 2; ++kk)
      for (int jj = -2; jj < n + 2; ++jj)
        for (int ii = -2; ii < n + 2; ++ii)
          u.at(ii, jj, kk) =
              std::sin(ii * h) * std::sin(jj * h) * std::sin(kk * h);

    const model::Launcher launcher(domain);
    launcher.run_functional(lap, codegen::Variant::BricksCodegen, platform, u,
                            lap_u);

    double err = 0;
    for (int kk = 0; kk < n; ++kk)
      for (int jj = 0; jj < n; ++jj)
        for (int ii = 0; ii < n; ++ii)
          err = std::max(err, std::abs(lap_u.at(ii, jj, kk) +
                                       3.0 * u.at(ii, jj, kk)));
    std::cout << "  " << n << "   " << err << "   "
              << (prev_err > 0 ? prev_err / err : 0.0) << "\n";
    prev_err = err;
  }
  std::cout << "(rate ~16x per doubling = 4th order)\n\n";

  // --- Variant comparison on the simulated A100 ------------------------------
  std::cout << "variant comparison, counters-only at 256^3 on "
            << platform.label() << ":\n\n";
  const model::Launcher big({256, 256, 256});
  for (const auto variant :
       {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
        codegen::Variant::BricksCodegen}) {
    const auto m = profiler::run_and_measure(big, lap, variant, platform);
    std::cout << "  " << codegen::variant_name(variant) << ": " << m.gflops
              << " GFLOP/s at AI " << m.ai << " (bottleneck "
              << m.bottleneck << ")\n";
  }
  return 0;
}
