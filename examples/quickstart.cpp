// Quickstart: define a stencil in the DSL, run it with the brick layout and
// vector code generation on a simulated NVIDIA A100 under CUDA, verify the
// result against the scalar reference, and read the profiler report.
//
// This is the whole BrickSim pipeline in ~60 lines:
//   DSL -> Stencil -> codegen -> launch on the SIMT machine -> Measurement.
#include <iostream>

#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "model/launcher.h"
#include "profiler/profiler.h"

int main() {
  using namespace bricksim;

  // 1. Describe the classic 7-point stencil in the DSL (paper Figure 1).
  dsl::Index i(0), j(1), k(2);
  dsl::Grid input("in", 3), output("out", 3);
  dsl::ConstRef a0("B0"), a1("B1");
  auto calc = a0 * input(i, j, k) +
              a1 * (input(i + 1, j, k) + input(i - 1, j, k) +
                    input(i, j + 1, k) + input(i, j - 1, k) +
                    input(i, j, k + 1) + input(i, j, k - 1));
  dsl::Stencil stencil =
      dsl::Stencil::from_program(output(i, j, k).assign(calc));
  stencil.set_coefficient("B0", -0.5);
  stencil.set_coefficient("B1", 0.25);

  std::cout << "stencil: " << stencil.name() << " ("
            << dsl::shape_name(stencil.shape()) << ", radius "
            << stencil.radius() << ", "
            << stencil.num_unique_coefficients() << " coefficients, "
            << "theoretical AI " << stencil.theoretical_ai() << ")\n\n";

  // 2. Pick a platform: the A100 under CUDA.
  const model::Platform platform = model::paper_platforms().front();

  // 3. Run functionally on a small domain and check against the reference.
  const Vec3 domain{64, 64, 64};
  const Vec3 ghost{1, 1, 1};
  HostGrid in(domain, ghost), expect(domain, {0, 0, 0}), got(domain, {0, 0, 0});
  SplitMix64 rng(42);
  in.fill_random(rng);
  dsl::apply_reference(stencil, in, expect);

  const model::Launcher launcher(domain);
  const auto result = launcher.run_functional(
      stencil, codegen::Variant::BricksCodegen, platform, in, got);
  std::cout << "max relative error vs scalar reference: "
            << dsl::max_rel_error(expect, got) << "\n\n";

  // 4. Read the profiler report for the simulated execution.
  profiler::print_report(
      std::cout, profiler::measure(stencil, codegen::Variant::BricksCodegen,
                                   platform, domain, result));
  return 0;
}
