// portability_report: the study-in-miniature.  Sweeps all six stencils with
// bricks codegen over every (architecture, programming model) platform,
// prints each platform's Roofline position, and computes both Pennycook
// performance-portability metrics -- the numbers a user of the library would
// quote when asked "is my stencil performance-portable?".
//
// Flags: --n <extent> (default 128 so the example runs in seconds).
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  using namespace bricksim;

  auto config_opt =
      harness::sweep_config_from_cli(argc, argv, /*default_n=*/128);
  if (!config_opt) return 0;  // --help: printed and handled
  auto config = *std::move(config_opt);
  config.platforms = model::metric_platforms();
  config.variants = {codegen::Variant::BricksCodegen};

  std::cout << "BrickSim performance-portability report, bricks codegen, "
            << config.domain.i << "^3\n\n";
  const auto sweep = harness::run_sweep(config);

  std::cout << "Empirical rooflines (mixbench):\n";
  for (const auto& [label, emp] : sweep.rooflines)
    std::cout << "  " << label << ": "
              << Table::fmt(emp.roofline.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(emp.roofline.peak_flops / 1e12, 1)
              << " TFLOP/s, ridge " << Table::fmt(emp.roofline.ridge(), 1)
              << "\n";

  std::cout << "\nPer-stencil Roofline positions:\n\n";
  harness::make_fig7(sweep).print(std::cout);

  std::cout << "\nPerformance portability, fraction of Roofline "
               "(paper Table 3):\n\n";
  harness::make_table3(sweep).print(std::cout);

  std::cout << "\nPerformance portability, fraction of theoretical AI "
               "(paper Table 5):\n\n";
  harness::make_table5(sweep).print(std::cout);

  // Consistency companions to P (the paper's refs [12, 28]): is performance
  // uniformly good, or great-with-one-outlier?
  std::cout << "\nConsistency of the fraction-of-Roofline efficiencies:\n\n";
  Table c({"Stencil", "P", "min", "max", "min/max", "CV"});
  for (const auto& st : config.stencils) {
    std::vector<double> effs;
    for (const auto& pf : config.platforms) {
      const auto* m = sweep.find(st.name(), "bricks codegen", pf.label());
      if (m)
        effs.push_back(metrics::fraction_of_roofline(
            sweep.rooflines.at(pf.label()).roofline, *m));
    }
    const auto s = metrics::summarize_efficiencies(effs);
    c.add_row({st.name(), Table::pct(s.p), Table::pct(s.min),
               Table::pct(s.max), Table::fmt(s.min_max, 2),
               Table::fmt(s.cv, 2)});
  }
  c.print(std::cout);
  return 0;
}
