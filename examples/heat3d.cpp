// heat3d: time-stepping the 3D heat equation with the 7-point stencil --
// the workload class the paper's introduction motivates (low-order
// finite-difference PDE solves are memory-bandwidth bound).
//
// u_{t+1} = u_t + dt/h^2 * Laplacian(u_t), discretised as a 7-point stencil
// with coefficients a0 = 1 - 6*lambda (centre) and a1 = lambda (neighbours).
//
// The example integrates a Gaussian bump for a number of steps, alternating
// two grids, verifies the simulated-GPU execution against the scalar
// reference at every step, and tracks the decay of the peak temperature
// (which must be monotone for a stable scheme).
#include <cmath>
#include <iostream>

#include "common/grid.h"
#include "dsl/reference.h"
#include "model/launcher.h"

int main() {
  using namespace bricksim;

  const double lambda = 0.1;  // dt/h^2, stable for lambda <= 1/6
  dsl::Stencil heat = dsl::Stencil::star(1);
  heat.set_coefficient("a0", 1.0 - 6.0 * lambda);
  heat.set_coefficient("a1", lambda);

  const Vec3 domain{64, 32, 32};
  const Vec3 ghost{1, 1, 1};
  const int steps = 10;

  // Initial condition: a Gaussian bump in the middle of the box.
  HostGrid u(domain, ghost), u_next(domain, ghost), check(domain, {0, 0, 0});
  for (int k = 0; k < domain.k; ++k)
    for (int j = 0; j < domain.j; ++j)
      for (int i = 0; i < domain.i; ++i) {
        const double di = (i - domain.i / 2) / 8.0;
        const double dj = (j - domain.j / 2) / 8.0;
        const double dk = (k - domain.k / 2) / 8.0;
        u.at(i, j, k) = std::exp(-(di * di + dj * dj + dk * dk));
      }

  const model::Platform platform = model::paper_platforms().front();
  const model::Launcher launcher(domain);

  auto peak = [&](const HostGrid& g) {
    double m = 0;
    for (int k = 0; k < domain.k; ++k)
      for (int j = 0; j < domain.j; ++j)
        for (int i = 0; i < domain.i; ++i) m = std::max(m, g.at(i, j, k));
    return m;
  };

  std::cout << "3D heat equation, 7pt stencil, lambda = " << lambda
            << ", domain " << domain.i << "x" << domain.j << "x" << domain.k
            << ", " << steps << " steps on simulated " << platform.label()
            << "\n\n";
  std::cout << "step  peak temperature  sim ms   max rel err vs reference\n";

  double last_peak = peak(u);
  double total_sim_ms = 0;
  for (int s = 0; s < steps; ++s) {
    // Device step (bricks codegen) + host reference step for verification.
    const auto res = launcher.run_functional(
        heat, codegen::Variant::BricksCodegen, platform, u, u_next);
    dsl::apply_reference(heat, u, check);
    const double err = dsl::max_rel_error(u_next, check);

    const double p = peak(u_next);
    total_sim_ms += res.report.seconds * 1e3;
    std::cout << "  " << s << "     " << p << "        "
              << res.report.seconds * 1e3 << "   " << err << "\n";
    if (p > last_peak + 1e-12) {
      std::cerr << "instability: peak temperature grew\n";
      return 1;
    }
    last_peak = p;

    // Swap: copy interior of u_next back into u (ghost stays zero --
    // fixed-temperature boundary).
    for (int k = 0; k < domain.k; ++k)
      for (int j = 0; j < domain.j; ++j)
        for (int i = 0; i < domain.i; ++i)
          u.at(i, j, k) = u_next.at(i, j, k);
  }

  std::cout << "\ntotal simulated GPU time: " << total_sim_ms << " ms ("
            << steps << " steps)\n";
  return 0;
}
