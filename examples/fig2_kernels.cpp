// fig2_kernels: reproduces paper Figure 2 -- the generated star-stencil
// brick kernel in the three GPU programming-model dialects (CUDA, HIP,
// SYCL), emitted by the vector code generator.
//
// The paper's figure shows the radius-2 star kernel WITHOUT vector code
// generation (a plain gather expression); this example prints both that
// naive form (as the array variant) and the full vector-codegen brick
// kernel, so the shuffle-primitive differences between the models
// (__shfl_down_sync vs __shfl_down vs sub_group_shfl_down) are visible.
#include <iostream>

#include "codegen/emit_source.h"
#include "dsl/stencil.h"

int main() {
  using namespace bricksim;
  using codegen::Dialect;

  const dsl::Stencil st = dsl::Stencil::star(2);  // the 13pt of Figure 2

  std::cout << "=== Figure 2 reproduction: generated kernels for the "
            << st.name() << " star stencil ===\n\n";

  for (Dialect d : {Dialect::Cuda, Dialect::Hip, Dialect::Sycl}) {
    const int w = d == Dialect::Sycl ? 16 : d == Dialect::Hip ? 64 : 32;
    std::cout << "---- " << codegen::dialect_name(d)
              << " (bricks codegen, W=" << w << ") ----\n";
    const auto kernel =
        codegen::lower(st, codegen::Variant::BricksCodegen, w);
    std::cout << codegen::emit_kernel_source(kernel, st, d) << "\n";
  }

  std::cout << "---- CUDA (naive array baseline, the Figure 2 style) ----\n";
  const auto naive = codegen::lower(st, codegen::Variant::Array, 32);
  std::cout << codegen::emit_kernel_source(naive, st, Dialect::Cuda);
  return 0;
}
