// The one experiment driver: `bricksim list | run <name...> | all`.
//
// Every paper table/figure is a registered experiment (harness/registry.h);
// the driver materializes each experiment's sweep at most once per
// fingerprint through the content-addressed cache and writes structured
// artifacts (output.txt, tables.json, run_summary.json) under --out.
#include <exception>
#include <iostream>

#include "common/error.h"
#include "harness/registry.h"

int main(int argc, char** argv) {
  try {
    return bricksim::harness::driver_main(argc, argv);
  } catch (const bricksim::UsageError& e) {
    std::cerr << "bricksim: " << e.what() << "\n";
    return 2;  // usage error, per the Unix convention
  } catch (const std::exception& e) {
    std::cerr << "bricksim: " << e.what() << "\n";
    return 1;
  }
}
