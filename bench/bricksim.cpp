// The one experiment driver: `bricksim list | run <name...> | all`, plus
// the service triplet `serve | query | loadtest` (serve/server.h).
//
// Every paper table/figure is a registered experiment (harness/registry.h);
// the driver materializes each experiment's sweep at most once per
// fingerprint through the content-addressed cache and writes structured
// artifacts (output.txt, tables.json, run_summary.json) under --out.
// The service commands dispatch here (not in driver_main) because they
// live one library above it: bricksim_serve links bricksim_harness, never
// the reverse.
#include <cstring>
#include <exception>
#include <iostream>
#include <vector>

#include "common/error.h"
#include "harness/registry.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  try {
    if (argc > 1) {
      // The service argv drops the command word, keeping argv[0] for help.
      std::vector<const char*> rest{argv[0]};
      for (int a = 2; a < argc; ++a) rest.push_back(argv[a]);
      const int n = static_cast<int>(rest.size());
      if (std::strcmp(argv[1], "serve") == 0)
        return bricksim::serve::serve_main(n, rest.data());
      if (std::strcmp(argv[1], "query") == 0)
        return bricksim::serve::query_main(n, rest.data());
      if (std::strcmp(argv[1], "loadtest") == 0)
        return bricksim::serve::loadtest_main(n, rest.data());
    }
    return bricksim::harness::driver_main(argc, argv);
  } catch (const bricksim::UsageError& e) {
    std::cerr << "bricksim: " << e.what() << "\n";
    return 2;  // usage error, per the Unix convention
  } catch (const std::exception& e) {
    std::cerr << "bricksim: " << e.what() << "\n";
    return 1;
  }
}
