// Regenerates paper Figure 3 (long form): the Roofline position (AI,
// GFLOP/s, fraction of the empirical Roofline) of every stencil x variant
// on every (architecture, programming model) platform.
//
// Flags: --n <extent> (default 256; paper uses 512), --progress.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::cout << "Figure 3: Roofline for stencil computations per platform "
               "(domain " << config.domain.i << "^3).\n\n";
  const auto sweep = bricksim::harness::run_sweep(config);
  bricksim::harness::print_table(std::cout, bricksim::harness::make_fig3(sweep), config.csv);
  std::cout << "\nbrickcheck (pre-launch static verification, --check="
            << bricksim::analysis::check_mode_name(config.check_mode) << "):\n";
  bricksim::harness::print_table(
      std::cout, bricksim::harness::make_check_summary(sweep), config.csv);
  return 0;
}
