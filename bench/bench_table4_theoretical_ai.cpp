// Regenerates paper Table 4: theoretical arithmetic intensity (FLOP:Byte)
// for all stencil shapes and sizes, assuming compulsory-only data movement
// (one 8-byte read + one 8-byte write per point).
//
// Uses the shared bench CLI (--csv; the sweep flags are accepted but this
// table is static and runs no sweep).
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  const auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::cout << "Table 4: Theoretical arithmetic intensity (FLOP:Byte).\n\n";
  bricksim::harness::print_table(std::cout, bricksim::harness::make_table4(),
                                 config.csv);
  return 0;
}
