// Regenerates paper Table 4: theoretical arithmetic intensity (FLOP:Byte)
// for all stencil shapes and sizes, assuming compulsory-only data movement
// (one 8-byte read + one 8-byte write per point).
#include <iostream>

#include "harness/harness.h"

int main() {
  std::cout << "Table 4: Theoretical arithmetic intensity (FLOP:Byte).\n\n";
  bricksim::harness::make_table4().print(std::cout);
  return 0;
}
