// Brick-shape autotuning sweep (the paper's conclusion: "one way to achieve
// this speedup is by changing the size of the brick which would expose more
// vector parallelism, amortize shuffling, and potentially improve data
// locality for a specific stencil on an architecture").
//
// For each metric platform and stencil, sweeps candidate (tile_j, tile_k)
// brick shapes with bricks codegen and reports every candidate plus the
// winner versus the paper's default 4 x 4.
//
// Flags: --n <extent> (default 128; must be a multiple of 8 and of every
// platform vector width -- multiples of 64 qualify); --jobs=N tunes the
// (platform, stencil) pairs on N workers with output identical to serial.
#include <iostream>
#include <mutex>
#include <vector>

#include "common/table.h"
#include "common/threadpool.h"
#include "harness/autotune.h"
#include "harness/harness.h"

int main(int argc, char** argv) {
  using namespace bricksim;
  auto config = harness::sweep_config_from_cli(argc, argv, /*default_n=*/128);

  std::cout << "Brick-shape autotuning, bricks codegen (domain "
            << config.domain.i << "^3).\n\n";

  // Each (platform, stencil) tuning run is independent; workers fill the
  // row slot of the pair they claimed, so the table order never changes.
  const auto platforms = model::metric_platforms();
  const auto stencils = dsl::Stencil::paper_catalog();
  struct Pair {
    const model::Platform* pf;
    const dsl::Stencil* st;
  };
  std::vector<Pair> pairs;
  for (const auto& pf : platforms)
    for (const auto& st : stencils) pairs.push_back({&pf, &st});

  std::vector<std::vector<std::string>> rows(pairs.size());
  std::mutex progress_mu;
  const int jobs = config.jobs > 0 ? config.jobs : default_jobs();
  parallel_for(jobs, static_cast<long>(pairs.size()), [&](long n) {
    const auto& [pf, st] = pairs[static_cast<std::size_t>(n)];
    if (config.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      std::cerr << "[tune] " << pf->label() << " " << st->name() << "\n";
    }
    const auto tuned = harness::autotune_brick_shape(
        *st, codegen::Variant::BricksCodegen, *pf, config.domain);
    double base_gflops = 0;
    for (const auto& e : tuned.entries)
      if (e.tile_j == 4 && e.tile_k == 4 && e.tile_i_vectors == 1)
        base_gflops = e.gflops;
    rows[static_cast<std::size_t>(n)] = {
        pf->label(), st->name(),
        std::to_string(tuned.best.tile_j) + "x" +
            std::to_string(tuned.best.tile_k) + "x" +
            std::to_string(tuned.best.tile_i_vectors * pf->gpu.simd_width),
        Table::fmt(tuned.best.gflops, 1), Table::fmt(base_gflops, 1),
        Table::fmt(base_gflops > 0 ? tuned.best.gflops / base_gflops : 0,
                   2) +
            "x"};
  });

  Table summary({"Platform", "Stencil", "best shape", "best GFLOP/s",
                 "4x4 GFLOP/s", "speedup vs 4x4"});
  for (auto& row : rows) summary.add_row(std::move(row));
  harness::print_table(std::cout, summary, config.csv);

  // Detail for one representative case: the 125pt stencil on the A100.
  const auto pf = model::metric_platforms().front();
  const auto detail = harness::autotune_brick_shape(
      dsl::Stencil::cube(2), codegen::Variant::BricksCodegen, pf,
      config.domain);
  std::cout << "\nDetail: 125pt on " << pf.label() << "\n";
  Table t({"shape", "GFLOP/s", "AI (F/B)", "spill slots", "aligns/block"});
  for (const auto& e : detail.entries)
    t.add_row({std::to_string(e.tile_j) + "x" + std::to_string(e.tile_k) +
                   "x" + std::to_string(e.tile_i_vectors * 32),
               Table::fmt(e.gflops, 1), Table::fmt(e.ai, 3),
               std::to_string(e.spill_slots), std::to_string(e.aligns)});
  harness::print_table(std::cout, t, config.csv);
  return 0;
}
