// Deprecated alias for `bricksim run fig4`: same registry emitter, so
// stdout is byte-identical to the driver.  Kept one release; new callers
// should use the driver, which shares one cached sweep across experiments
// (see harness/registry.h and DESIGN.md "One driver").
#include "harness/registry.h"

int main(int argc, char** argv) {
  return bricksim::harness::run_legacy_shim("fig4", argc, argv);
}
