// Regenerates paper Figure 4: L1 data movement per stencil/variant/platform.
// The headline claim: the naive array kernel moves >= 10x the L1 bytes of
// the vector-codegen variants, and bricks codegen is the most L1-efficient.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::cout << "Figure 4: L1 data movement (lower is better; domain "
            << config.domain.i << "^3).\n\n";
  const auto sweep = bricksim::harness::run_sweep(config);
  bricksim::harness::print_table(std::cout, bricksim::harness::make_fig4(sweep), config.csv);
  return 0;
}
