// PVC sub-group width study (paper Section 4.4): "for Intel PVC, where
// there is a choice between 16 or 32, we use 16 because it achieves better
// performance than 32."  This bench runs bricks codegen on the PVC stack at
// both sub-group widths (brick = 4 x 4 x W follows the width) and compares.
//
// Flags: --n <extent> (default 192); --jobs=N runs the per-stencil pairs
// on N workers, output identical to serial.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "common/threadpool.h"
#include "harness/harness.h"

int main(int argc, char** argv) {
  using namespace bricksim;
  auto config = harness::sweep_config_from_cli(argc, argv, /*default_n=*/192);

  arch::GpuArch pvc16 = arch::make_pvc_stack();
  arch::GpuArch pvc32 = arch::make_pvc_stack();
  pvc32.simd_width = 32;
  pvc32.name = "PVC-Stack-SG32";
  const model::Platform p16{pvc16, model::model_for(model::PmKind::SYCL,
                                                    pvc16)};
  const model::Platform p32{pvc32, model::model_for(model::PmKind::SYCL,
                                                    pvc32)};

  const model::Launcher launcher(config.domain);
  std::cout << "PVC sub-group width: 16 vs 32, bricks codegen (domain "
            << config.domain.i << "^3).\n\n";
  Table t({"Stencil", "SG16 GFLOP/s", "SG32 GFLOP/s", "SG16/SG32",
           "SG16 AI", "SG32 AI"});
  const auto stencils = dsl::Stencil::paper_catalog();
  struct Slot {
    model::LaunchResult a, b;
  };
  std::vector<Slot> slots(stencils.size());
  const int jobs = config.jobs > 0 ? config.jobs : default_jobs();
  parallel_for(jobs, static_cast<long>(stencils.size()), [&](long n) {
    auto& s = slots[static_cast<std::size_t>(n)];
    s.a = launcher.run(stencils[static_cast<std::size_t>(n)],
                       codegen::Variant::BricksCodegen, p16);
    s.b = launcher.run(stencils[static_cast<std::size_t>(n)],
                       codegen::Variant::BricksCodegen, p32);
  });
  double better16 = 0, total = 0;
  for (std::size_t n = 0; n < stencils.size(); ++n) {
    const auto& st = stencils[n];
    const double g16 = slots[n].a.normalized_gflops();
    const double g32 = slots[n].b.normalized_gflops();
    if (g16 > g32) ++better16;
    ++total;
    t.add_row({st.name(), Table::fmt(g16, 1), Table::fmt(g32, 1),
               Table::fmt(g16 / g32, 2) + "x",
               Table::fmt(slots[n].a.normalized_ai(), 3),
               Table::fmt(slots[n].b.normalized_ai(), 3)});
  }
  harness::print_table(std::cout, t, config.csv);
  std::cout << "\nSG16 wins " << better16 << "/" << total
            << " stencils (the paper chose 16).\n";
  return 0;
}
