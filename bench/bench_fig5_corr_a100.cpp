// Regenerates paper Figure 5: performance (left) and bytes-accessed (right)
// correlation between CUDA and SYCL on the NVIDIA A100.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  // Only the two A100 programming models are needed.
  std::vector<bricksim::model::Platform> keep;
  for (const auto& pf : config.platforms)
    if (pf.label() == "A100/CUDA" || pf.label() == "A100/SYCL")
      keep.push_back(pf);
  config.platforms = keep;

  const auto sweep = bricksim::harness::run_sweep(config);
  const auto corr = bricksim::harness::make_fig5(sweep);
  std::cout << "Figure 5 (left): performance correlation, CUDA vs SYCL on "
               "A100 (domain " << config.domain.i << "^3).\n\n";
  bricksim::harness::print_table(std::cout, corr.perf, config.csv);
  std::cout << "\nFigure 5 (right): bytes accessed, CUDA vs SYCL on A100.\n\n";
  bricksim::harness::print_table(std::cout, corr.bytes, config.csv);
  return 0;
}
