// Deprecated alias for `bricksim run table1`: same registry emitter, so
// stdout is byte-identical to the driver.  Kept one release; new callers
// should use the driver, which shares one cached sweep across experiments
// (see harness/registry.h and DESIGN.md "One driver").
#include "harness/registry.h"

int main(int argc, char** argv) {
  return bricksim::harness::run_legacy_shim("table1", argc, argv);
}
