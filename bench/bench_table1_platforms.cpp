// Regenerates paper Table 1 in BrickSim terms: the (architecture,
// programming model) combinations of the study and the lowering profile
// standing in for each toolchain (see DESIGN.md's substitution table).
//
// Uses the shared bench CLI (--csv; the sweep flags are accepted but this
// table is static and runs no sweep).
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  const auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::cout << "Table 1: platforms and programming-model lowering profiles "
               "(simulator substitution for compilers/modules).\n\n";
  bricksim::harness::print_table(std::cout, bricksim::harness::make_table1(),
                                 config.csv);
  return 0;
}
