// Regenerates paper Table 1 in BrickSim terms: the (architecture,
// programming model) combinations of the study and the lowering profile
// standing in for each toolchain (see DESIGN.md's substitution table).
#include <iostream>

#include "harness/harness.h"

int main() {
  std::cout << "Table 1: platforms and programming-model lowering profiles "
               "(simulator substitution for compilers/modules).\n\n";
  bricksim::harness::make_table1().print(std::cout);
  return 0;
}
