// Regenerates the paper's methodology step of deriving empirical Rooflines
// with the mixbench microbenchmark (Section 4.4): a sweep of synthetic
// kernels with controlled FLOP:byte ratio per (architecture, model), whose
// plateaus become the bandwidth and FP64 ceilings used in Figure 3 and
// Table 3.
#include <iostream>

#include "common/table.h"
#include "harness/harness.h"

int main() {
  using bricksim::Table;
  std::cout << "Mixbench-derived empirical Rooflines per platform.\n\n";
  for (const auto& pf : bricksim::model::paper_platforms()) {
    const auto emp = bricksim::roofline::mixbench(pf, {128, 128, 128});
    const auto theo = bricksim::roofline::theoretical_roofline(pf.gpu);
    std::cout << pf.label() << ": empirical "
              << Table::fmt(emp.roofline.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(emp.roofline.peak_flops / 1e12, 2)
              << " TFLOP/s (theoretical "
              << Table::fmt(theo.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(theo.peak_flops / 1e12, 2) << " TFLOP/s)\n";
    Table t({"nominal AI", "measured AI", "GFLOP/s", "GB/s"});
    for (const auto& p : emp.points)
      t.add_row({Table::fmt(p.nominal_ai, 2), Table::fmt(p.measured_ai, 2),
                 Table::fmt(p.gflops, 1), Table::fmt(p.gbytes_per_sec, 0)});
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
