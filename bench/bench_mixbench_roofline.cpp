// Regenerates the paper's methodology step of deriving empirical Rooflines
// with the mixbench microbenchmark (Section 4.4): a sweep of synthetic
// kernels with controlled FLOP:byte ratio per (architecture, model), whose
// plateaus become the bandwidth and FP64 ceilings used in Figure 3 and
// Table 3.
//
// Flags: the shared bench CLI; --jobs=N runs the per-platform sweeps on N
// workers (each platform's sweep is independent, so output is identical
// for every job count).
#include <iostream>
#include <vector>

#include "common/table.h"
#include "common/threadpool.h"
#include "harness/harness.h"

int main(int argc, char** argv) {
  using bricksim::Table;
  const auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::cout << "Mixbench-derived empirical Rooflines per platform.\n\n";

  const auto platforms = bricksim::model::paper_platforms();
  std::vector<bricksim::roofline::EmpiricalRoofline> emp(platforms.size());
  const int jobs =
      config.jobs > 0 ? config.jobs : bricksim::default_jobs();
  bricksim::parallel_for(
      jobs, static_cast<long>(platforms.size()), [&](long n) {
        emp[n] = bricksim::roofline::mixbench(platforms[n], {128, 128, 128});
      });

  for (std::size_t n = 0; n < platforms.size(); ++n) {
    const auto& pf = platforms[n];
    const auto theo = bricksim::roofline::theoretical_roofline(pf.gpu);
    std::cout << pf.label() << ": empirical "
              << Table::fmt(emp[n].roofline.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(emp[n].roofline.peak_flops / 1e12, 2)
              << " TFLOP/s (theoretical "
              << Table::fmt(theo.peak_bw / 1e9, 0) << " GB/s, "
              << Table::fmt(theo.peak_flops / 1e12, 2) << " TFLOP/s)\n";
    Table t({"nominal AI", "measured AI", "GFLOP/s", "GB/s"});
    for (const auto& p : emp[n].points)
      t.add_row({Table::fmt(p.nominal_ai, 2), Table::fmt(p.measured_ai, 2),
                 Table::fmt(p.gflops, 1), Table::fmt(p.gbytes_per_sec, 0)});
    bricksim::harness::print_table(std::cout, t, config.csv);
    std::cout << "\n";
  }
  return 0;
}
