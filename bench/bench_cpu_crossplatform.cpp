// CPU extension: the cross-CPU/GPU portability experiment of the paper's
// reference [65] ("Delivering Performance-Portable Stencil Computations on
// CPUs and GPUs Using Bricks", P3HPC'18), which demonstrated BrickLib on
// Intel KNL, Intel Skylake and an NVIDIA GPU.  The same generated kernels
// run here on the two simulated CPUs (OpenMP backend: a warp is one AVX-512
// register, VAlign is valignq) and the A100, and the Pennycook metric is
// computed across the combined CPU+GPU set.
//
// Flags: --n <extent> (default 128; the CPU vector width of 8 keeps even
// small domains many bricks wide).
#include <iostream>

#include "common/table.h"
#include "harness/harness.h"

int main(int argc, char** argv) {
  using namespace bricksim;
  auto config = harness::sweep_config_from_cli(argc, argv, /*default_n=*/128);

  std::vector<model::Platform> platforms = model::cpu_platforms();
  platforms.push_back(model::paper_platforms().front());  // A100/CUDA
  config.platforms = platforms;
  config.variants = {codegen::Variant::BricksCodegen};

  std::cout << "CPU+GPU cross-platform portability, bricks codegen (domain "
            << config.domain.i << "^3).\n\n";
  const auto sweep = harness::run_sweep(config);

  std::vector<std::string> header{"Stencil"};
  for (const auto& pf : platforms) header.push_back(pf.label());
  header.push_back("P");
  Table t(header);

  std::vector<double> all_p;
  for (const auto& st : config.stencils) {
    std::vector<std::string> row{st.name()};
    std::vector<double> effs;
    for (const auto& pf : platforms) {
      const auto* m = sweep.find(st.name(), "bricks codegen", pf.label());
      const double e =
          m ? metrics::fraction_of_roofline(
                  sweep.rooflines.at(pf.label()).roofline, *m)
            : 0;
      effs.push_back(e);
      row.push_back(Table::pct(e));
    }
    const double p = metrics::pennycook_p(effs);
    all_p.push_back(p);
    row.push_back(Table::pct(p));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nGFLOP/s for scale (bricks codegen):\n";
  Table g({"Stencil", "SKX", "KNL", "A100"});
  for (const auto& st : config.stencils) {
    std::vector<std::string> row{st.name()};
    for (const auto& pf : platforms) {
      const auto* m = sweep.find(st.name(), "bricks codegen", pf.label());
      row.push_back(Table::fmt(m ? m->gflops : 0, 1));
    }
    g.add_row(std::move(row));
  }
  g.print(std::cout);
  return 0;
}
