// Regenerates paper Table 2: the stencils of the performance-portability
// evaluation (shape, radius, points, unique coefficients).
#include <iostream>

#include "harness/harness.h"

int main() {
  std::cout << "Table 2: Stencils used for performance portability "
               "evaluation.\n\n";
  bricksim::harness::make_table2().print(std::cout);
  return 0;
}
