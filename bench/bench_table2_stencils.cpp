// Regenerates paper Table 2: the stencils of the performance-portability
// evaluation (shape, radius, points, unique coefficients).
//
// Uses the shared bench CLI (--csv; the sweep flags are accepted but this
// table is static and runs no sweep).
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  const auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::cout << "Table 2: Stencils used for performance portability "
               "evaluation.\n\n";
  bricksim::harness::print_table(std::cout, bricksim::harness::make_table2(),
                                 config.csv);
  return 0;
}
