// Regenerates paper Table 3: the Pennycook performance-portability metric P
// for bricks codegen, with efficiency = fraction of the empirical Roofline
// at the measured arithmetic intensity.  The paper reports P > 60% averaged
// across all platforms and programming models, with 125pt the weakest row.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  config.variants = {bricksim::codegen::Variant::BricksCodegen};
  config.platforms = bricksim::model::metric_platforms();
  const auto sweep = bricksim::harness::run_sweep(config);
  std::cout << "Table 3: performance portability P from fraction of the "
               "Roofline, bricks codegen (domain " << config.domain.i
            << "^3).\n\n";
  bricksim::harness::print_table(std::cout, bricksim::harness::make_table3(sweep), config.csv);
  return 0;
}
