// Component microbenchmarks (google-benchmark): throughput of the building
// blocks underneath the experiment harness -- cache simulation, code
// generation, register allocation, brick layout transforms, functional
// stencil execution, and a full counters-only kernel simulation.
#include <benchmark/benchmark.h>

#include "brick/brick.h"
#include "brick/exchange.h"
#include "codegen/codegen.h"
#include "codegen/emit_source.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "ir/regalloc.h"
#include "memsim/cache.h"
#include "memsim/hierarchy.h"
#include "model/launcher.h"
#include "simt/machine.h"

namespace {

using namespace bricksim;

void BM_CacheAccess(benchmark::State& state) {
  memsim::SetAssocCache cache({40ull * 1024 * 1024, 128, 32, 16});
  SplitMix64 rng(1);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line, false));
    line = rng.next_below(1 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyStream(benchmark::State& state) {
  const arch::GpuArch gpu = arch::make_a100();
  memsim::MemoryHierarchy hier(gpu);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier.access(0, addr, 256, false));
    addr += 256;
  }
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HierarchyStream);

void BM_Lower(benchmark::State& state) {
  const auto st = dsl::Stencil::cube(2);
  for (auto _ : state) {
    auto lowered = codegen::lower(st, codegen::Variant::BricksCodegen, 32);
    benchmark::DoNotOptimize(lowered.program.insts().size());
  }
}
BENCHMARK(BM_Lower);

void BM_RegAlloc(benchmark::State& state) {
  const auto st = dsl::Stencil::cube(2);
  const auto lowered =
      codegen::lower(st, codegen::Variant::ArrayCodegen, 32);
  for (auto _ : state) {
    auto ra = ir::allocate_registers(lowered.program, 64);
    benchmark::DoNotOptimize(ra.spill_slots);
  }
}
BENCHMARK(BM_RegAlloc);

void BM_BrickFromHost(benchmark::State& state) {
  const Vec3 n{64, 64, 64};
  HostGrid host(n, {4, 4, 4});
  SplitMix64 rng(7);
  host.fill_random(rng);
  brick::BrickDecomp decomp(n, {32, 4, 4});
  brick::BrickedArray bricks(decomp);
  for (auto _ : state) {
    bricks.from_host(host);
    benchmark::DoNotOptimize(bricks.raw().data());
  }
  state.SetBytesProcessed(state.iterations() * n.volume() * kElemBytes);
}
BENCHMARK(BM_BrickFromHost);

void BM_ReferenceStencil(benchmark::State& state) {
  const auto st = dsl::Stencil::star(static_cast<int>(state.range(0)));
  const Vec3 n{64, 64, 64};
  HostGrid in(n, {4, 4, 4}), out(n, {0, 0, 0});
  SplitMix64 rng(7);
  in.fill_random(rng);
  for (auto _ : state) {
    dsl::apply_reference(st, in, out);
    benchmark::DoNotOptimize(out.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * n.volume());
}
BENCHMARK(BM_ReferenceStencil)->Arg(1)->Arg(4);

void BM_PeriodicGhostFill(benchmark::State& state) {
  const Vec3 n{64, 32, 32};
  brick::BrickDecomp decomp(n, {32, 4, 4});
  brick::BrickedArray a(decomp);
  HostGrid host(n, {0, 0, 0});
  SplitMix64 rng(9);
  host.fill_random(rng);
  a.from_host(host);
  for (auto _ : state) {
    brick::fill_periodic_ghost(a);
    benchmark::DoNotOptimize(a.raw().data());
  }
}
BENCHMARK(BM_PeriodicGhostFill);

void BM_HaloExchange(benchmark::State& state) {
  const Vec3 n{64, 32, 32};
  brick::BrickDecomp decomp(n, {32, 4, 4});
  brick::BrickedArray lo(decomp), hi(decomp);
  for (auto _ : state) {
    brick::exchange_ghost(lo, hi, 0);
    benchmark::DoNotOptimize(lo.raw().data());
  }
}
BENCHMARK(BM_HaloExchange);

void BM_EmitSource(benchmark::State& state) {
  const auto st = dsl::Stencil::cube(2);
  const auto k = codegen::lower(st, codegen::Variant::BricksCodegen, 32);
  for (auto _ : state) {
    const auto src =
        codegen::emit_kernel_source(k, st, codegen::Dialect::Sycl);
    benchmark::DoNotOptimize(src.size());
  }
}
BENCHMARK(BM_EmitSource);

void BM_LowerFolded(benchmark::State& state) {
  const auto st = dsl::Stencil::star(4);
  codegen::Options opts;
  opts.tile_i_vectors = 2;
  for (auto _ : state) {
    auto k = codegen::lower(st, codegen::Variant::BricksCodegen, 32, opts);
    benchmark::DoNotOptimize(k.program.insts().size());
  }
}
BENCHMARK(BM_LowerFolded);

void BM_CountersOnlyKernel(benchmark::State& state) {
  const auto platforms = model::paper_platforms();
  const model::Platform& pf = platforms[0];  // A100/CUDA
  const auto st = dsl::Stencil::star(2);
  const model::Launcher launcher({64, 64, 64});
  for (auto _ : state) {
    auto res =
        launcher.run(st, codegen::Variant::BricksCodegen, pf);
    benchmark::DoNotOptimize(res.report.seconds);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 64);
}
BENCHMARK(BM_CountersOnlyKernel);

}  // namespace
