// Component microbenchmarks (google-benchmark): throughput of the building
// blocks underneath the experiment harness -- cache simulation, code
// generation, register allocation, brick layout transforms, functional
// stencil execution, and a full counters-only kernel simulation.
#include <benchmark/benchmark.h>

#include "brick/brick.h"
#include "brick/exchange.h"
#include "codegen/codegen.h"
#include "codegen/emit_source.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "ir/regalloc.h"
#include "memsim/cache.h"
#include "memsim/hierarchy.h"
#include "model/launcher.h"
#include "simt/execplan.h"
#include "simt/machine.h"

namespace {

using namespace bricksim;

void BM_CacheAccess(benchmark::State& state) {
  memsim::SetAssocCache cache({40ull * 1024 * 1024, 128, 32, 16});
  SplitMix64 rng(1);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line, false));
    line = rng.next_below(1 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyStream(benchmark::State& state) {
  const arch::GpuArch gpu = arch::make_a100();
  memsim::MemoryHierarchy hier(gpu);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier.access(0, addr, 256, false));
    addr += 256;
  }
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HierarchyStream);

void BM_Lower(benchmark::State& state) {
  const auto st = dsl::Stencil::cube(2);
  for (auto _ : state) {
    auto lowered = codegen::lower(st, codegen::Variant::BricksCodegen, 32);
    benchmark::DoNotOptimize(lowered.program.insts().size());
  }
}
BENCHMARK(BM_Lower);

void BM_RegAlloc(benchmark::State& state) {
  const auto st = dsl::Stencil::cube(2);
  const auto lowered =
      codegen::lower(st, codegen::Variant::ArrayCodegen, 32);
  for (auto _ : state) {
    auto ra = ir::allocate_registers(lowered.program, 64);
    benchmark::DoNotOptimize(ra.spill_slots);
  }
}
BENCHMARK(BM_RegAlloc);

void BM_BrickFromHost(benchmark::State& state) {
  const Vec3 n{64, 64, 64};
  HostGrid host(n, {4, 4, 4});
  SplitMix64 rng(7);
  host.fill_random(rng);
  brick::BrickDecomp decomp(n, {32, 4, 4});
  brick::BrickedArray bricks(decomp);
  for (auto _ : state) {
    bricks.from_host(host);
    benchmark::DoNotOptimize(bricks.raw().data());
  }
  state.SetBytesProcessed(state.iterations() * n.volume() * kElemBytes);
}
BENCHMARK(BM_BrickFromHost);

void BM_ReferenceStencil(benchmark::State& state) {
  const auto st = dsl::Stencil::star(static_cast<int>(state.range(0)));
  const Vec3 n{64, 64, 64};
  HostGrid in(n, {4, 4, 4}), out(n, {0, 0, 0});
  SplitMix64 rng(7);
  in.fill_random(rng);
  for (auto _ : state) {
    dsl::apply_reference(st, in, out);
    benchmark::DoNotOptimize(out.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * n.volume());
}
BENCHMARK(BM_ReferenceStencil)->Arg(1)->Arg(4);

void BM_PeriodicGhostFill(benchmark::State& state) {
  const Vec3 n{64, 32, 32};
  brick::BrickDecomp decomp(n, {32, 4, 4});
  brick::BrickedArray a(decomp);
  HostGrid host(n, {0, 0, 0});
  SplitMix64 rng(9);
  host.fill_random(rng);
  a.from_host(host);
  for (auto _ : state) {
    brick::fill_periodic_ghost(a);
    benchmark::DoNotOptimize(a.raw().data());
  }
}
BENCHMARK(BM_PeriodicGhostFill);

void BM_HaloExchange(benchmark::State& state) {
  const Vec3 n{64, 32, 32};
  brick::BrickDecomp decomp(n, {32, 4, 4});
  brick::BrickedArray lo(decomp), hi(decomp);
  for (auto _ : state) {
    brick::exchange_ghost(lo, hi, 0);
    benchmark::DoNotOptimize(lo.raw().data());
  }
}
BENCHMARK(BM_HaloExchange);

void BM_EmitSource(benchmark::State& state) {
  const auto st = dsl::Stencil::cube(2);
  const auto k = codegen::lower(st, codegen::Variant::BricksCodegen, 32);
  for (auto _ : state) {
    const auto src =
        codegen::emit_kernel_source(k, st, codegen::Dialect::Sycl);
    benchmark::DoNotOptimize(src.size());
  }
}
BENCHMARK(BM_EmitSource);

void BM_LowerFolded(benchmark::State& state) {
  const auto st = dsl::Stencil::star(4);
  codegen::Options opts;
  opts.tile_i_vectors = 2;
  for (auto _ : state) {
    auto k = codegen::lower(st, codegen::Variant::BricksCodegen, 32, opts);
    benchmark::DoNotOptimize(k.program.insts().size());
  }
}
BENCHMARK(BM_LowerFolded);

void BM_CountersOnlyKernel(benchmark::State& state) {
  const auto platforms = model::paper_platforms();
  const model::Platform& pf = platforms[0];  // A100/CUDA
  const auto st = dsl::Stencil::star(2);
  const model::Launcher launcher({64, 64, 64});
  for (auto _ : state) {
    auto res =
        launcher.run(st, codegen::Variant::BricksCodegen, pf);
    benchmark::DoNotOptimize(res.report.seconds);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 64);
}
BENCHMARK(BM_CountersOnlyKernel);

// --- Replay-only microbenches (scripts/bench_wall.sh --micro) ---------------
//
// The decode step (ExecPlan construction: instruction stream, SoA lanes,
// block classes, congruence analysis) is hoisted OUT of the timed loop, so
// these isolate the per-launch replay cost each engine pays.  BENCH_replay.json
// uses them to separate decode cost from replay cost; Arg(0) is the array
// codegen layout, Arg(1) the bricks layout (star-2 on A100/CUDA at 64^3).

codegen::Variant micro_variant(std::int64_t arg) {
  return arg == 0 ? codegen::Variant::ArrayCodegen
                  : codegen::Variant::BricksCodegen;
}

model::PreparedLaunch micro_prepare(std::int64_t arg,
                                    const model::Platform& pf) {
  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(analysis::CheckMode::Off);
  return launcher.prepare(dsl::Stencil::star(2), micro_variant(arg), pf);
}

void BM_PlanDecode(benchmark::State& state) {
  const model::Platform pf = model::paper_platforms().front();
  model::PreparedLaunch prep = micro_prepare(state.range(0), pf);
  for (auto _ : state) {
    simt::ExecPlan plan(prep.kernel, pf.gpu, simt::ExecMode::CountersOnly);
    benchmark::DoNotOptimize(plan.soa().kind.size());
  }
}
BENCHMARK(BM_PlanDecode)->Arg(0)->Arg(1);

void BM_PlanReplaySoa(benchmark::State& state) {
  const model::Platform pf = model::paper_platforms().front();
  model::PreparedLaunch prep = micro_prepare(state.range(0), pf);
  const simt::ExecPlan plan(prep.kernel, pf.gpu,
                            simt::ExecMode::CountersOnly);
  memsim::MemoryHierarchy hier(pf.gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.replay(hier).seconds);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 64);
}
BENCHMARK(BM_PlanReplaySoa)->Arg(0)->Arg(1);

void BM_PlanReplayAos(benchmark::State& state) {
  const model::Platform pf = model::paper_platforms().front();
  model::PreparedLaunch prep = micro_prepare(state.range(0), pf);
  const simt::ExecPlan plan(prep.kernel, pf.gpu,
                            simt::ExecMode::CountersOnly);
  memsim::MemoryHierarchy hier(pf.gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.replay_reference(hier).seconds);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 64);
}
BENCHMARK(BM_PlanReplayAos)->Arg(0)->Arg(1);

void BM_InterpReplay(benchmark::State& state) {
  // The interpreter has no decode step: every launch re-walks the
  // ir::Program per block, so the whole run IS replay.
  const model::Platform pf = model::paper_platforms().front();
  model::PreparedLaunch prep = micro_prepare(state.range(0), pf);
  simt::Machine machine(pf.gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine
                                 .run(prep.kernel,
                                      simt::ExecMode::CountersOnly,
                                      simt::Engine::Interp)
                                 .seconds);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 64);
}
BENCHMARK(BM_InterpReplay)->Arg(0)->Arg(1);

}  // namespace
