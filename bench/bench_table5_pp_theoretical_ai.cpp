// Regenerates paper Table 5: the Pennycook performance-portability metric P
// for bricks codegen, with efficiency = fraction of THEORETICAL arithmetic
// intensity (proximity of measured data movement to the compulsory-miss
// bound of an infinite cache).  The paper reports ~70% average.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  config.variants = {bricksim::codegen::Variant::BricksCodegen};
  config.platforms = bricksim::model::metric_platforms();
  const auto sweep = bricksim::harness::run_sweep(config);
  std::cout << "Table 5: performance portability P from fraction of "
               "theoretical AI, bricks codegen (domain " << config.domain.i
            << "^3).\n\n";
  bricksim::harness::print_table(std::cout, bricksim::harness::make_table5(sweep), config.csv);
  return 0;
}
