// Regenerates paper Figure 6: performance (left) and bytes-accessed (right)
// correlation between HIP and SYCL on one MI250X GCD.  The signature
// feature: `array codegen` under HIP moves an anomalously large number of
// bytes (>10 GB at 512^3) while every other HIP kernel sits near the
// compulsory-traffic bound.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  std::vector<bricksim::model::Platform> keep;
  for (const auto& pf : config.platforms)
    if (pf.label() == "MI250X-GCD/HIP" || pf.label() == "MI250X-GCD/SYCL")
      keep.push_back(pf);
  config.platforms = keep;

  const auto sweep = bricksim::harness::run_sweep(config);
  const auto corr = bricksim::harness::make_fig6(sweep);
  std::cout << "Figure 6 (left): performance correlation, HIP vs SYCL on "
               "MI250X GCD (domain " << config.domain.i << "^3).\n\n";
  bricksim::harness::print_table(std::cout, corr.perf, config.csv);
  std::cout << "\nFigure 6 (right): bytes accessed, HIP vs SYCL on MI250X "
               "GCD.\n\n";
  bricksim::harness::print_table(std::cout, corr.bytes, config.csv);
  return 0;
}
