// Ablation of the vector code generator's optimisations (DESIGN.md calls
// these out): starting from full bricks codegen, individually disable
//   * load CSE ("reuse of array common subexpressions"),
//   * vector scatter (force gather for the cube stencils),
// and force scatter where the heuristic picks gather, then compare against
// the naive array baseline.  Shows where each of the paper's Section 3
// optimisations earns its keep (instruction counts, spills, L1 bytes, time).
//
// Flags: --n <extent> (default 256: the MI250X wave-64 bricks need a few
// interior bricks along i for ghost-layer effects to be representative);
// --jobs=N runs the ablation points on N workers, output identical to
// serial.
#include <iostream>
#include <mutex>
#include <vector>

#include "common/table.h"
#include "common/threadpool.h"
#include "harness/harness.h"

int main(int argc, char** argv) {
  using namespace bricksim;
  auto config = harness::sweep_config_from_cli(argc, argv, /*default_n=*/256);

  struct Config {
    const char* name;
    codegen::Variant variant;
    codegen::Options opts;
  };
  codegen::Options no_cse;
  no_cse.enable_cse = false;
  codegen::Options gather;
  gather.force_gather = true;
  codegen::Options scatter;
  scatter.force_scatter = true;
  codegen::Options gather_sched;
  gather_sched.force_gather = true;
  gather_sched.reorder_for_pressure = true;
  const Config configs[] = {
      {"array (naive baseline)", codegen::Variant::Array, {}},
      {"bricks codegen", codegen::Variant::BricksCodegen, {}},
      {"bricks codegen, no CSE", codegen::Variant::BricksCodegen, no_cse},
      {"bricks codegen, force gather", codegen::Variant::BricksCodegen,
       gather},
      {"bricks codegen, gather + reorder [44]",
       codegen::Variant::BricksCodegen, gather_sched},
      {"bricks codegen, force scatter", codegen::Variant::BricksCodegen,
       scatter},
  };

  const model::Launcher launcher(config.domain);
  const auto platforms = model::metric_platforms();

  std::cout << "Codegen ablation (domain " << config.domain.i << "^3).\n\n";

  // Flatten (platform, stencil, config), launch in parallel into one row
  // slot each, then assemble the per-platform tables in canonical order.
  const std::vector<model::Platform> pfs = {platforms[0], platforms[2],
                                            platforms[4]};
  const std::vector<dsl::Stencil> sts = {dsl::Stencil::star(2),
                                         dsl::Stencil::cube(2)};
  struct Item {
    std::size_t pf;
    const dsl::Stencil* st;
    const Config* c;
  };
  std::vector<Item> items;
  for (std::size_t p = 0; p < pfs.size(); ++p)
    for (const auto& st : sts)
      for (const Config& c : configs) items.push_back({p, &st, &c});

  std::vector<std::vector<std::string>> rows(items.size());
  std::mutex progress_mu;
  const int jobs = config.jobs > 0 ? config.jobs : default_jobs();
  parallel_for(jobs, static_cast<long>(items.size()), [&](long n) {
    const Item& it = items[static_cast<std::size_t>(n)];
    if (config.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      std::cerr << "[ablation] " << pfs[it.pf].label() << " "
                << it.st->name() << " " << it.c->name << "\n";
    }
    const model::LaunchResult r =
        launcher.run(*it.st, it.c->variant, pfs[it.pf], it.c->opts);
    rows[static_cast<std::size_t>(n)] = {
        it.st->name(), it.c->name, Table::fmt(r.normalized_gflops(), 1),
        Table::fmt(r.normalized_ai(), 3),
        Table::fmt(r.report.traffic.l1_total() / 1e9, 2),
        std::to_string(r.spill_slots),
        r.used_scatter ? "scatter" : "gather"};
  });

  std::size_t n = 0;
  for (std::size_t p = 0; p < pfs.size(); ++p) {
    Table t({"Stencil", "Configuration", "GFLOP/s", "AI (F/B)", "L1 GB",
             "spills", "mode"});
    for (std::size_t r = 0; r < sts.size() * std::size(configs); ++r)
      t.add_row(std::move(rows[n++]));
    std::cout << pfs[p].label() << ":\n";
    harness::print_table(std::cout, t, config.csv);
    std::cout << "\n";
  }
  return 0;
}
