// Regenerates paper Figure 7: the potential-speedup plot for bricks codegen.
// x = fraction of theoretical AI, y = fraction of the Roofline; iso-curves
// x*y = 1/s are a constant potential speedup s from any mix of improved
// data locality and improved code generation / bandwidth.
#include <iostream>

#include "harness/harness.h"

int main(int argc, char** argv) {
  auto config = bricksim::harness::sweep_config_from_cli(argc, argv);
  config.variants = {bricksim::codegen::Variant::BricksCodegen};
  const auto sweep = bricksim::harness::run_sweep(config);
  std::cout << "Figure 7: potential speed-up for bricks codegen (domain "
            << config.domain.i << "^3).\n\n";
  bricksim::harness::print_table(std::cout, bricksim::harness::make_fig7(sweep), config.csv);
  return 0;
}
