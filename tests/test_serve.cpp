// `bricksim serve` (serve/server.h): frame codec round trips, the
// socket protocol end to end against an in-process Server, warm/cold
// accounting over the wire, graceful drain via the shutdown op, and the
// loadtest client driving a real mixed storm.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "harness/registry.h"
#include "serve/server.h"

namespace bricksim::serve {
namespace {

namespace fs = std::filesystem;

TEST(Framing, RoundTripsPayloads) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const std::vector<std::string> payloads = {
      "", "{}", std::string("x"), std::string(100000, 'y')};
  for (const auto& p : payloads) {
    std::thread writer([&] { write_frame(sp[0], p); });
    const auto got = read_frame(sp[1]);
    writer.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
  }
  ::close(sp[0]);
  // Peer closed before any prefix byte: clean EOF, not an error.
  EXPECT_EQ(read_frame(sp[1]), std::nullopt);
  ::close(sp[1]);
}

TEST(Framing, AbortFdUnblocksIdleReader) {
  int sp[2], ab[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ASSERT_EQ(::pipe(ab), 0);
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const char b = 1;
    ASSERT_EQ(::write(ab[1], &b, 1), 1);
  });
  // No data ever arrives; the abort fd must unblock the idle read.
  EXPECT_EQ(read_frame(sp[1], ab[0]), std::nullopt);
  aborter.join();
  for (const int fd : {sp[0], sp[1], ab[0], ab[1]}) ::close(fd);
}

TEST(Framing, TruncatedPayloadThrows) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  // Prefix promises 100 bytes; only 3 arrive before EOF.
  const char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(sp[0], prefix, 4, 0), 4);
  ASSERT_EQ(::send(sp[0], "abc", 3, 0), 3);
  ::close(sp[0]);
  EXPECT_THROW(read_frame(sp[1]), Error);
  ::close(sp[1]);
}

/// An in-process server on a fresh socket + cache, drained on destruction.
/// `tweak` adjusts ServerOptions (queue bounds, timeouts, ...) before start.
class ServerFixture {
 public:
  explicit ServerFixture(const std::string& name,
                         std::function<void(ServerOptions&)> tweak = {}) {
    const fs::path root = fs::path(testing::TempDir()) / name;
    fs::remove_all(root);
    fs::create_directories(root);
    ServerOptions opts;
    opts.socket_path = (root / "s.sock").string();
    opts.cache_dir = (root / "cache").string();
    opts.workers = 2;
    if (tweak) tweak(opts);
    server_ = std::make_unique<Server>(opts);
    server_->start();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~ServerFixture() {
    if (thread_.joinable()) {
      server_->stop();
      thread_.join();
    }
  }

  json::Value call(const json::Value& req) {
    return client_call(server_->socket_path(), req);
  }
  json::Value op(const std::string& name) {
    json::Value req = json::Value::object();
    req["op"] = name;
    return call(req);
  }
  Server& server() { return *server_; }
  void join() { thread_.join(); }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST(Serve, HealthzCountersAndList) {
  ServerFixture fx("serve_basic");
  const json::Value health = fx.op("healthz");
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("status").as_string(), "serving");
  EXPECT_EQ(health.at("inflight").as_long(), 0);

  const json::Value counters = fx.op("counters");
  ASSERT_TRUE(counters.at("ok").as_bool());
  EXPECT_EQ(counters.at("counters").at("requests").as_long(), 0);

  const json::Value list = fx.op("list");
  ASSERT_TRUE(list.at("ok").as_bool());
  const json::Value& exps = list.at("experiments");
  ASSERT_EQ(exps.size(), harness::experiment_registry().size());
  EXPECT_EQ(exps[0].at("name").as_string(),
            harness::experiment_registry().front().name);
  EXPECT_TRUE(exps[0].contains("sweep"));
  EXPECT_TRUE(exps[0].contains("default_n"));
}

TEST(Serve, SweepColdThenWarmOverTheWire) {
  ServerFixture fx("serve_sweep");
  json::Value req = json::Value::object();
  req["op"] = "sweep";
  req["kind"] = "cpu";
  req["n"] = 64;

  const json::Value cold = fx.call(req);
  ASSERT_TRUE(cold.at("ok").as_bool());
  EXPECT_EQ(cold.at("status").as_string(), "simulated");
  EXPECT_GT(cold.at("measurements").as_long(), 0);
  EXPECT_FALSE(cold.at("fingerprint").as_string().empty());

  const json::Value warm = fx.call(req);
  EXPECT_EQ(warm.at("status").as_string(), "warm_memo");
  EXPECT_EQ(warm.at("admission").as_string(), "warm_memo");
  EXPECT_EQ(warm.at("fingerprint").as_string(),
            cold.at("fingerprint").as_string());
  EXPECT_EQ(warm.at("measurements").as_long(),
            cold.at("measurements").as_long());

  const json::Value counters = fx.op("counters").at("counters");
  EXPECT_EQ(counters.at("cold_misses").as_long(), 1);
  EXPECT_EQ(counters.at("warm_memo").as_long(), 1);
  EXPECT_EQ(counters.at("enqueued").as_long(), 1);
}

TEST(Serve, MalformedRequestsKeepTheConnectionOpen) {
  ServerFixture fx("serve_errors");
  const json::Value bad_op = fx.op("frobnicate");
  EXPECT_FALSE(bad_op.at("ok").as_bool());
  EXPECT_NE(bad_op.at("error").as_string().find("unknown op"),
            std::string::npos);

  json::Value bad_n = json::Value::object();
  bad_n["op"] = "sweep";
  bad_n["n"] = 63;
  const json::Value reply = fx.call(bad_n);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_NE(reply.at("error").as_string().find("multiple of 64"),
            std::string::npos);

  // The server survived both: a well-formed request still works.
  EXPECT_TRUE(fx.op("healthz").at("ok").as_bool());
}

TEST(Serve, ExperimentOpRunsAnEmitter) {
  ServerFixture fx("serve_experiment");
  json::Value req = json::Value::object();
  req["op"] = "experiment";
  req["name"] = "table2";  // static: no sweep, instant
  const json::Value reply = fx.call(req);
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("status").as_string(), "ok");
  EXPECT_NE(reply.at("output").as_string().find("Table 2"),
            std::string::npos);
  EXPECT_EQ(reply.at("failures").as_long(), 0);

  json::Value unknown = json::Value::object();
  unknown["op"] = "experiment";
  unknown["name"] = "nope";
  EXPECT_FALSE(fx.call(unknown).at("ok").as_bool());
}

TEST(Serve, ShutdownOpDrainsAndUnlinksTheSocket) {
  ServerFixture fx("serve_shutdown");
  const std::string socket_path = fx.server().socket_path();
  ASSERT_TRUE(fs::exists(socket_path));
  const json::Value reply = fx.op("shutdown");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("draining").as_bool());
  fx.join();  // run() returns after the drain
  EXPECT_FALSE(fs::exists(socket_path));
}

TEST(Serve, LoadtestClientDrivesAMixedStorm) {
  ServerFixture fx("serve_loadtest");
  const std::string socket_flag = "--socket=" + fx.server().socket_path();
  const std::vector<const char*> argv = {
      "bricksim",       socket_flag.c_str(), "--requests=60",
      "--threads=6",    "--kind=cpu",        "--hot-n=64",
      "--cold-ns=128",  "--cold-every=10"};
  testing::internal::CaptureStdout();
  const int rc =
      loadtest_main(static_cast<int>(argv.size()), argv.data());
  const json::Value tally =
      json::Value::parse(testing::internal::GetCapturedStdout());
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(tally.at("protocol_errors").as_long(), 0);

  const json::Value counters = fx.op("counters").at("counters");
  EXPECT_EQ(counters.at("requests").as_long(), 60);
  // Two fingerprints (hot 64^3, cold 128^3): at most two simulations, and
  // every warm hit stayed off the pool.
  EXPECT_EQ(counters.at("simulated").as_long(), 2);
  EXPECT_EQ(counters.at("enqueued").as_long(),
            counters.at("cold_misses").as_long());
  EXPECT_EQ(counters.at("requests").as_long(),
            counters.at("warm_memo").as_long() +
                counters.at("coalesced").as_long() +
                counters.at("cold_misses").as_long() +
                counters.at("rejected").as_long() +
                counters.at("overloaded").as_long());
}

TEST(Serve, OverloadShedsOverTheWireAndBackoffConverges) {
  // One worker, a one-deep admission queue, and two parked leaders: a
  // third distinct cold sweep is shed with a retry hint.  The query
  // client's jittered backoff then converges once capacity frees up.
  ServerFixture fx("serve_overload", [](ServerOptions& o) {
    o.workers = 1;
    o.max_queue = 1;
  });
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> started{0};
  fx.server().broker().set_pre_run_hook([&](const std::string&) {
    started.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  });

  const auto sweep_req = [](long n) {
    json::Value req = json::Value::object();
    req["op"] = "sweep";
    req["kind"] = "cpu";
    req["n"] = n;
    return req;
  };
  // Leader 1 occupies the worker; leader 2 fills the queue.
  std::thread runner([&] { fx.call(sweep_req(64)); });
  while (started.load() == 0) std::this_thread::yield();
  std::thread waiter([&] { fx.call(sweep_req(128)); });
  while (true) {
    const json::Value c = fx.op("counters").at("counters");
    if (c.at("queued").as_long() >= 1) break;
    std::this_thread::yield();
  }

  const json::Value shed = fx.call(sweep_req(192));
  ASSERT_TRUE(shed.at("ok").as_bool());
  EXPECT_EQ(shed.at("status").as_string(), "overloaded");
  EXPECT_GT(shed.at("retry_after_ms").as_long(), 0);

  // The retrying client is launched WHILE the server is overloaded, then
  // the gate opens: its backoff must land the request once capacity
  // returns -- the convergence half of the admission-control contract.
  const std::string socket_flag = "--socket=" + fx.server().socket_path();
  std::atomic<int> query_rc{-1};
  std::thread retrier([&] {
    const std::vector<const char*> argv = {
        "bricksim",    socket_flag.c_str(), "sweep", "--kind=cpu",
        "--n=192",     "--retries=20"};
    testing::internal::CaptureStdout();
    query_rc.store(query_main(static_cast<int>(argv.size()), argv.data()));
    const json::Value reply =
        json::Value::parse(testing::internal::GetCapturedStdout());
    EXPECT_NE(reply.at("status").as_string(), "overloaded");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
  }
  cv.notify_all();
  runner.join();
  waiter.join();
  retrier.join();
  EXPECT_EQ(query_rc.load(), 0);

  const json::Value counters = fx.op("counters").at("counters");
  EXPECT_GE(counters.at("overloaded").as_long(), 1);
  EXPECT_EQ(counters.at("requests").as_long(),
            counters.at("warm_memo").as_long() +
                counters.at("coalesced").as_long() +
                counters.at("cold_misses").as_long() +
                counters.at("rejected").as_long() +
                counters.at("overloaded").as_long());
  EXPECT_GT(counters.at("p50_ms").as_double(), 0.0);
}

TEST(Serve, LoadtestRetriesThroughAnOverloadStorm) {
  // A storm of distinct colds at 4x the admission bound against one
  // worker: shedding must kick in, every client must converge through
  // backoff (zero gave_up), and nothing may hang or error.
  ServerFixture fx("serve_overload_storm", [](ServerOptions& o) {
    o.workers = 1;
    o.max_queue = 1;
  });
  const std::string socket_flag = "--socket=" + fx.server().socket_path();
  const std::vector<const char*> argv = {
      "bricksim",      socket_flag.c_str(),
      "--requests=16", "--threads=8",
      "--kind=cpu",    "--hot-n=64",
      "--cold-ns=128,192", "--cold-every=2",
      "--retries=25"};
  testing::internal::CaptureStdout();
  const int rc = loadtest_main(static_cast<int>(argv.size()), argv.data());
  const json::Value tally =
      json::Value::parse(testing::internal::GetCapturedStdout());
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(tally.at("protocol_errors").as_long(), 0);
  EXPECT_EQ(tally.at("gave_up").as_long(), 0);
  EXPECT_EQ(tally.at("succeeded").as_long(), 16);
  EXPECT_GE(tally.at("p99_ms").as_double(), tally.at("p50_ms").as_double());
  // Client-side and server-side shed accounting agree.
  const json::Value counters = fx.op("counters").at("counters");
  EXPECT_EQ(tally.at("shed").as_long(),
            counters.at("overloaded").as_long());
}

}  // namespace
}  // namespace bricksim::serve
