// Unit tests for the programming-model layer and launcher: platform
// validity, the HIP==CUDA-on-NVIDIA identity, lowering-profile effects,
// and launcher precondition checking.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"

namespace bricksim::model {
namespace {

TEST(ProgModel, SupportedCombinations) {
  const auto a100 = arch::make_a100();
  const auto mi = arch::make_mi250x_gcd();
  const auto pvc = arch::make_pvc_stack();
  EXPECT_NO_THROW(model_for(PmKind::CUDA, a100));
  EXPECT_NO_THROW(model_for(PmKind::HIP, a100));
  EXPECT_NO_THROW(model_for(PmKind::SYCL, a100));
  EXPECT_NO_THROW(model_for(PmKind::HIP, mi));
  EXPECT_NO_THROW(model_for(PmKind::SYCL, mi));
  EXPECT_NO_THROW(model_for(PmKind::SYCL, pvc));
  // The study has no CUDA on AMD/Intel and no HIP on Intel.
  EXPECT_THROW(model_for(PmKind::CUDA, mi), Error);
  EXPECT_THROW(model_for(PmKind::CUDA, pvc), Error);
  EXPECT_THROW(model_for(PmKind::HIP, pvc), Error);
}

TEST(ProgModel, PlatformLists) {
  const auto all = paper_platforms();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].label(), "A100/CUDA");
  EXPECT_EQ(all[1].label(), "A100/HIP");
  EXPECT_EQ(all[5].label(), "PVC-Stack/SYCL");
  const auto metric = metric_platforms();
  ASSERT_EQ(metric.size(), 5u);
  for (const auto& p : metric) EXPECT_NE(p.label(), "A100/HIP");
}

TEST(ProgModel, HipOnNvidiaIsExactlyCuda) {
  // "HIP interface is a wrapper for the NVIDIA compiler" -- identical
  // lowering except the name.
  const auto a100 = arch::make_a100();
  const auto cuda = model_for(PmKind::CUDA, a100);
  const auto hip = model_for(PmKind::HIP, a100);
  EXPECT_EQ(hip.addr_ops_per_load_naive, cuda.addr_ops_per_load_naive);
  EXPECT_EQ(hip.naive_extra_cycles_per_load, cuda.naive_extra_cycles_per_load);
  EXPECT_EQ(hip.bw_derate, cuda.bw_derate);
  EXPECT_EQ(hip.streaming_stores, cuda.streaming_stores);
  EXPECT_EQ(hip.bypass_l2_unaligned_vloads, cuda.bypass_l2_unaligned_vloads);
}

TEST(ProgModel, QuirksLandOnTheRightPlatforms) {
  const auto mi = arch::make_mi250x_gcd();
  EXPECT_TRUE(model_for(PmKind::HIP, mi).bypass_l2_unaligned_vloads);
  EXPECT_FALSE(model_for(PmKind::SYCL, mi).bypass_l2_unaligned_vloads);
  const auto a100 = arch::make_a100();
  EXPECT_FALSE(model_for(PmKind::SYCL, a100).streaming_stores);
  EXPECT_TRUE(model_for(PmKind::SYCL, mi).streaming_stores);
}

TEST(Arch, PeaksMatchPaperSection41) {
  // ~9.7, ~24 and ~16 TFLOP/s FP64; 1.5-1.65 TB/s HBM each.
  EXPECT_NEAR(arch::make_a100().peak_fp64_flops() / 1e12, 9.7, 0.3);
  EXPECT_NEAR(arch::make_mi250x_gcd().peak_fp64_flops() / 1e12, 24.0, 0.5);
  EXPECT_NEAR(arch::make_pvc_stack().peak_fp64_flops() / 1e12, 16.0, 0.5);
  EXPECT_NEAR(arch::make_a100().peak_hbm_bytes_per_sec() / 1e12, 1.555, 0.01);
  EXPECT_EQ(arch::make_a100().simd_width, 32);
  EXPECT_EQ(arch::make_mi250x_gcd().simd_width, 64);
  EXPECT_EQ(arch::make_pvc_stack().simd_width, 16);
}

TEST(Arch, AchievedBwDecaysWithStreams) {
  const auto pvc = arch::make_pvc_stack();
  const double one = pvc.achieved_bw(1);
  const double few = pvc.achieved_bw(5);
  const double many = pvc.achieved_bw(25);
  EXPECT_GT(one, few);
  EXPECT_GT(few, many);
  EXPECT_THROW(arch::arch_by_name("H100"), Error);
  EXPECT_EQ(arch::arch_by_name("A100").name, "A100");
}

TEST(Launcher, RejectsBadDomainsAndGrids) {
  EXPECT_THROW(Launcher({0, 64, 64}), Error);
  const auto pf = paper_platforms().front();  // A100, W=32
  const auto st = dsl::Stencil::star(1);
  // Domain not divisible by the tile.
  EXPECT_THROW(Launcher({48, 16, 16}).run(st, codegen::Variant::Array, pf),
               Error);
  // Functional with too-small ghost.
  Launcher l({64, 16, 16});
  HostGrid in({64, 16, 16}, {1, 1, 1}), out({64, 16, 16}, {0, 0, 0});
  EXPECT_THROW(l.run_functional(dsl::Stencil::star(2),
                                codegen::Variant::Array, pf, in, out),
               Error);
  // Mismatched interiors.
  HostGrid small({32, 16, 16}, {4, 4, 4});
  EXPECT_THROW(l.run_functional(st, codegen::Variant::Array, pf, small, out),
               Error);
}

TEST(Launcher, HipAndCudaMeasurementsIdenticalOnA100) {
  const auto platforms = paper_platforms();
  const Launcher l({64, 32, 32});
  for (const auto& st :
       {dsl::Stencil::star(2), dsl::Stencil::cube(1)}) {
    for (const auto variant : {codegen::Variant::Array,
                               codegen::Variant::BricksCodegen}) {
      const auto cuda = l.run(st, variant, platforms[0]);
      const auto hip = l.run(st, variant, platforms[1]);
      EXPECT_EQ(cuda.report.traffic.hbm_total(),
                hip.report.traffic.hbm_total());
      EXPECT_EQ(cuda.report.flops_executed, hip.report.flops_executed);
      EXPECT_DOUBLE_EQ(cuda.report.seconds, hip.report.seconds);
    }
  }
}

TEST(Launcher, NormalizedFlopsAreVariantIndependent) {
  const auto pf = paper_platforms().front();
  const Launcher l({64, 32, 32});
  const auto st = dsl::Stencil::cube(2);
  const auto a = l.run(st, codegen::Variant::Array, pf);
  const auto b = l.run(st, codegen::Variant::BricksCodegen, pf);
  EXPECT_EQ(a.normalized_flops, b.normalized_flops);
  EXPECT_EQ(a.normalized_flops,
            st.flops_per_point() * (Vec3{64, 32, 32}.volume()));
  // Scatter executes MORE flops than the normalised count.
  EXPECT_GT(static_cast<long>(b.report.flops_executed), b.normalized_flops);
  EXPECT_TRUE(b.used_scatter);
}

TEST(Launcher, SpillsReportedForGatherHighOrder) {
  const auto pf = paper_platforms().front();
  const Launcher l({64, 32, 32});
  codegen::Options gather;
  gather.force_gather = true;
  const auto res =
      l.run(dsl::Stencil::cube(2), codegen::Variant::BricksCodegen, pf,
            gather);
  EXPECT_GT(res.spill_slots, 0);
  EXPECT_GT(res.inst_stats.spill_loads, 0);
}

TEST(Profiler, MeasurementSnapshotsLaunchResult) {
  const auto pf = paper_platforms().front();
  const Launcher l({64, 32, 32});
  const auto st = dsl::Stencil::star(1);
  const auto m =
      profiler::run_and_measure(l, st, codegen::Variant::BricksCodegen, pf);
  EXPECT_EQ(m.stencil, "7pt");
  EXPECT_EQ(m.variant, "bricks codegen");
  EXPECT_EQ(m.arch, "A100");
  EXPECT_EQ(m.pm, "CUDA");
  EXPECT_GT(m.seconds, 0);
  EXPECT_GT(m.gflops, 0);
  EXPECT_GT(m.ai, 0);
  EXPECT_EQ(m.hbm_bytes, m.hbm_read_bytes + m.hbm_write_bytes);
  EXPECT_FALSE(m.bottleneck.empty());

  std::ostringstream os;
  profiler::print_report(os, m);
  EXPECT_NE(os.str().find("bricks codegen"), std::string::npos);
  EXPECT_NE(os.str().find("GFLOP/s"), std::string::npos);
}

}  // namespace
}  // namespace bricksim::model
