// Unit tests for the Roofline model, the mixbench sweep, and the
// performance-portability metrics.
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "model/progmodel.h"
#include "roofline/roofline.h"

namespace bricksim {
namespace {

TEST(Roofline, AttainableAndRidge) {
  const roofline::Roofline rl{1000e9, 8000e9};
  EXPECT_DOUBLE_EQ(rl.ridge(), 8.0);
  EXPECT_DOUBLE_EQ(rl.attainable(2.0), 2000e9);   // memory-bound
  EXPECT_DOUBLE_EQ(rl.attainable(100.0), 8000e9); // compute-bound
  EXPECT_DOUBLE_EQ(rl.fraction(1000.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(rl.fraction(8000.0, 100.0), 1.0);
}

TEST(Roofline, TheoreticalMatchesArch) {
  const auto a100 = arch::make_a100();
  const auto rl = roofline::theoretical_roofline(a100);
  EXPECT_DOUBLE_EQ(rl.peak_bw, a100.peak_hbm_bytes_per_sec());
  EXPECT_DOUBLE_EQ(rl.peak_flops, a100.peak_fp64_flops());
}

TEST(Mixbench, CeilingsBelowTheoreticalAboveHalf) {
  for (const auto& pf : model::paper_platforms()) {
    const auto emp = roofline::mixbench(pf, {64, 64, 64});
    const auto theo = roofline::theoretical_roofline(pf.gpu);
    EXPECT_LE(emp.roofline.peak_bw, theo.peak_bw) << pf.label();
    EXPECT_GE(emp.roofline.peak_bw, 0.5 * theo.peak_bw) << pf.label();
    EXPECT_LE(emp.roofline.peak_flops, theo.peak_flops * 1.001) << pf.label();
    EXPECT_GE(emp.roofline.peak_flops, 0.5 * theo.peak_flops) << pf.label();
  }
}

TEST(Mixbench, GflopsMonotoneInAiUntilPlateau) {
  const auto pf = model::paper_platforms().front();
  const auto emp = roofline::mixbench(pf, {64, 64, 64});
  ASSERT_GE(emp.points.size(), 5u);
  for (std::size_t n = 1; n < emp.points.size(); ++n)
    EXPECT_GE(emp.points[n].gflops, emp.points[n - 1].gflops * 0.999)
        << "point " << n;
  // The last point must be essentially compute-bound.
  EXPECT_NEAR(emp.points.back().gflops * 1e9, emp.roofline.peak_flops,
              0.05 * emp.roofline.peak_flops);
}

TEST(Mixbench, MeasuredAiTracksNominal) {
  const auto pf = model::paper_platforms().front();
  const auto emp = roofline::mixbench(pf, {64, 64, 64});
  for (const auto& p : emp.points) {
    if (p.nominal_ai == 0) continue;
    EXPECT_NEAR(p.measured_ai / p.nominal_ai, 1.0, 0.35) << p.nominal_ai;
  }
}

TEST(Pennycook, HandValues) {
  const double effs[] = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(metrics::pennycook_p(effs), 0.5);
  const double mixed[] = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(metrics::pennycook_p(mixed), 2.0 / 3.0);
  const double with_zero[] = {1.0, 0.0};
  EXPECT_EQ(metrics::pennycook_p(with_zero), 0.0);  // unsupported platform
}

TEST(Metrics, EfficiencySummaryConsistency) {
  const double effs[] = {0.5, 0.8, 1.0};
  const auto s = metrics::summarize_efficiencies(effs);
  EXPECT_NEAR(s.p, 3.0 / (2.0 + 1.25 + 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  EXPECT_DOUBLE_EQ(s.min_max, 0.5);
  EXPECT_GT(s.stddev, 0);
  EXPECT_GT(s.cv, 0);
  // Perfectly consistent set.
  const double same[] = {0.7, 0.7, 0.7};
  const auto u = metrics::summarize_efficiencies(same);
  EXPECT_DOUBLE_EQ(u.min_max, 1.0);
  EXPECT_NEAR(u.cv, 0.0, 1e-12);  // floating-point dust from the mean
  EXPECT_DOUBLE_EQ(u.p, 0.7);
  // Empty set.
  EXPECT_EQ(metrics::summarize_efficiencies({}).p, 0.0);
}

TEST(Metrics, FractionOfTheoreticalAiCapsAtOne) {
  const auto st = dsl::Stencil::star(1);  // theoretical AI 0.5
  profiler::Measurement m;
  m.ai = 0.25;
  EXPECT_DOUBLE_EQ(metrics::fraction_of_theoretical_ai(st, m), 0.5);
  m.ai = 0.7;
  EXPECT_DOUBLE_EQ(metrics::fraction_of_theoretical_ai(st, m), 1.0);
}

TEST(Metrics, PotentialSpeedupIsInverseProduct) {
  EXPECT_DOUBLE_EQ(metrics::potential_speedup(0.5, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(metrics::potential_speedup(1.0, 1.0), 1.0);
  EXPECT_EQ(metrics::potential_speedup(0.0, 0.5), 0.0);
}

TEST(Metrics, CompulsoryBytesMatchPaperNumber) {
  // "one read and one write using double precision, giving us a total of
  // 2.15 GBytes" for 512^3.
  EXPECT_NEAR(
      static_cast<double>(metrics::compulsory_bytes({512, 512, 512})) / 1e9,
      2.147, 0.001);
}

TEST(Metrics, CorrelatePairsByStencilAndVariant) {
  profiler::Measurement a1, a2, b1;
  a1.stencil = "7pt";
  a1.variant = "array";
  a1.gflops = 100;
  a1.hbm_bytes = 4000000000ull;
  a2.stencil = "13pt";
  a2.variant = "array";
  a2.gflops = 150;
  b1.stencil = "7pt";
  b1.variant = "array";
  b1.gflops = 50;
  b1.hbm_bytes = 2000000000ull;

  const profiler::Measurement ys[] = {a1, a2};
  const profiler::Measurement xs[] = {b1};
  const auto perf =
      metrics::correlate(ys, xs, metrics::CorrMetric::Gflops);
  ASSERT_EQ(perf.size(), 1u);  // 13pt has no partner
  EXPECT_EQ(perf[0].stencil, "7pt");
  EXPECT_EQ(perf[0].y, 100);
  EXPECT_EQ(perf[0].x, 50);
  const auto bytes =
      metrics::correlate(ys, xs, metrics::CorrMetric::HbmGbytes);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_DOUBLE_EQ(bytes[0].y, 4.0);
  EXPECT_DOUBLE_EQ(bytes[0].x, 2.0);
}

}  // namespace
}  // namespace bricksim
