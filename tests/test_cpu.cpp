// Tests for the CPU extension backend: architecture descriptors, the
// OpenMP lowering profile, and -- most importantly -- functional
// correctness of every kernel variant on the AVX-512-style machine
// (W = 8, one resident brick per core, valignq-style VAlign).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"
#include "roofline/roofline.h"

namespace bricksim {
namespace {

TEST(CpuArch, DescriptorsAreSane) {
  const auto skx = arch::make_skylake();
  EXPECT_EQ(skx.simd_width, 8);  // AVX-512 doubles
  EXPECT_NEAR(skx.peak_fp64_flops() / 1e12, 1.6, 0.2);
  const auto knl = arch::make_knl();
  EXPECT_EQ(knl.simd_width, 8);
  EXPECT_NEAR(knl.peak_fp64_flops() / 1e12, 3.0, 0.2);
  EXPECT_GT(knl.peak_hbm_bytes_per_sec(), skx.peak_hbm_bytes_per_sec());
  EXPECT_EQ(arch::arch_by_name("SKX").name, "SKX");
  EXPECT_EQ(arch::arch_by_name("KNL").name, "KNL");
}

TEST(CpuModel, OpenMpOnlyOnCpus) {
  EXPECT_NO_THROW(model::model_for(model::PmKind::OpenMP,
                                   arch::make_skylake()));
  EXPECT_NO_THROW(model::model_for(model::PmKind::OpenMP, arch::make_knl()));
  EXPECT_THROW(model::model_for(model::PmKind::OpenMP, arch::make_a100()),
               Error);
  EXPECT_THROW(model::model_for(model::PmKind::CUDA, arch::make_skylake()),
               Error);
  const auto plats = model::cpu_platforms();
  ASSERT_EQ(plats.size(), 2u);
  EXPECT_EQ(plats[0].label(), "SKX/OpenMP");
  EXPECT_EQ(plats[1].label(), "KNL/OpenMP");
}

class CpuEndToEnd : public testing::TestWithParam<
                        std::tuple<std::string, codegen::Variant>> {};

TEST_P(CpuEndToEnd, MatchesScalarReference) {
  const auto& [stencil_name, variant] = GetParam();
  dsl::Stencil st = dsl::Stencil::star(1);
  for (const auto& s : dsl::Stencil::paper_catalog())
    if (s.name() == stencil_name) st = s;

  for (const auto& pf : model::cpu_platforms()) {
    const Vec3 domain{16, 8, 8};  // two bricks per dimension at W = 8
    const Vec3 ghost{st.radius(), st.radius(), st.radius()};
    HostGrid in(domain, ghost), expect(domain, {0, 0, 0}),
        got(domain, {0, 0, 0});
    SplitMix64 rng(11);
    in.fill_random(rng);
    dsl::apply_reference(st, in, expect);

    const model::Launcher launcher(domain);
    const auto res = launcher.run_functional(st, variant, pf, in, got);
    const double err = dsl::max_rel_error(expect, got);
    if (res.used_scatter)
      EXPECT_LE(err, 1e-12) << pf.label();
    else
      EXPECT_EQ(err, 0.0) << pf.label();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStencilsVariants, CpuEndToEnd,
    testing::Combine(testing::Values("7pt", "13pt", "19pt", "25pt", "27pt",
                                     "125pt"),
                     testing::Values(codegen::Variant::Array,
                                     codegen::Variant::ArrayCodegen,
                                     codegen::Variant::BricksCodegen)),
    [](const auto& info) {
      std::string s = std::get<0>(info.param) + "_" +
                      codegen::variant_name(std::get<1>(info.param));
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(CpuPerformance, BandwidthBoundStencilsScaleWithMemory) {
  // KNL's MCDRAM gives it ~3x SKX's bandwidth; a 7pt stencil (far below
  // both ridges) must reflect that, up to model noise.
  const model::Launcher launcher({64, 64, 64});
  const auto skx = model::cpu_platforms()[0];
  const auto knl = model::cpu_platforms()[1];
  const auto st = dsl::Stencil::star(1);
  const auto m_skx = profiler::run_and_measure(
      launcher, st, codegen::Variant::BricksCodegen, skx);
  const auto m_knl = profiler::run_and_measure(
      launcher, st, codegen::Variant::BricksCodegen, knl);
  EXPECT_GT(m_knl.gflops, 1.8 * m_skx.gflops);
  EXPECT_LT(m_knl.gflops, 5.0 * m_skx.gflops);
}

TEST(CpuPerformance, MixbenchDerivesCpuRooflines) {
  for (const auto& pf : model::cpu_platforms()) {
    const auto emp = roofline::mixbench(pf, {64, 64, 64});
    const auto theo = roofline::theoretical_roofline(pf.gpu);
    EXPECT_LE(emp.roofline.peak_bw, theo.peak_bw) << pf.label();
    EXPECT_GE(emp.roofline.peak_bw, 0.5 * theo.peak_bw) << pf.label();
    EXPECT_GE(emp.roofline.peak_flops, 0.5 * theo.peak_flops) << pf.label();
  }
}

TEST(CpuPerformance, BricksBeatArraysOnCpusToo) {
  // The brick layout's locality benefit is architecture-independent.
  const model::Launcher launcher({128, 64, 64});
  for (const auto& pf : model::cpu_platforms()) {
    const auto st = dsl::Stencil::star(2);
    const auto arr = profiler::run_and_measure(
        launcher, st, codegen::Variant::Array, pf);
    const auto bricks = profiler::run_and_measure(
        launcher, st, codegen::Variant::BricksCodegen, pf);
    EXPECT_GT(bricks.ai, arr.ai) << pf.label();
  }
}

}  // namespace
}  // namespace bricksim
