// SoA-vs-AoS equivalence suite for the structure-of-arrays replay engine
// (ExecPlan::replay_counters and its sharded variant, PR "SoA replay
// engine").  The SoA layout, the batched address generation, the block-class
// specialization, and the congruence-class lumping are all pure replay-speed
// optimizations: every KernelReport must be BIT-IDENTICAL to the reference
// AoS replay (ExecPlan::replay_reference), so every comparison here uses
// operator== (exact), never tolerances:
//
//   * catalog level: every (stencil, variant) of every paper platform, both
//     ExecModes, shards {1, 2, 7, 32}, replayed through both layouts via the
//     Launcher plan hook (production decode products, not fixtures);
//   * congruence level: a uniform array launch must lump (lump_factor > 1)
//     and stay bit-identical; a prime block count and a shuffled
//     (corner-heavy) brick decomposition must take the general path
//     (lump_factor == 1) and stay bit-identical.
#include <gtest/gtest.h>

#include <vector>

#include "common/grid.h"
#include "common/rng.h"
#include "dsl/stencil.h"
#include "memsim/hierarchy.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "simt/execplan.h"
#include "simt/machine.h"

namespace bricksim {
namespace {

using codegen::Variant;

constexpr int kShardCounts[] = {1, 2, 7, 32};

/// Replays `plan` through the reference AoS layout and through the SoA
/// engines (serial and every shard count) on a private hierarchy, and
/// asserts bit-identical reports.  Returns the reference report.
simt::KernelReport expect_layouts_agree(const simt::ExecPlan& plan,
                                        const std::string& what) {
  memsim::MemoryHierarchy hier(plan.arch());
  const simt::KernelReport ref = plan.replay_reference(hier);
  const simt::KernelReport soa = plan.replay(hier);
  EXPECT_TRUE(soa == ref) << what << " (SoA serial vs AoS reference)";
  for (const int shards : kShardCounts) {
    const simt::KernelReport sh = plan.replay_sharded(hier, shards);
    EXPECT_TRUE(sh == ref) << what << " (SoA shards=" << shards
                           << " vs AoS reference)";
  }
  return ref;
}

// --- Catalog-level equivalence through the production decode ----------------

class SoaCatalog : public testing::TestWithParam<std::string> {};

TEST_P(SoaCatalog, ReportsBitIdenticalAcrossLayoutsAndShards) {
  const auto platforms = model::paper_platforms();
  const model::Platform* pf = nullptr;
  for (const auto& p : platforms)
    if (p.label() == GetParam()) pf = &p;
  ASSERT_NE(pf, nullptr);

  // Counters-only on a 128x64x64 domain: at least two blocks along i on
  // every platform (MI250X tiles are 64 elements wide), so the lumped fast
  // path, the batch address generation and the block classes are all live.
  long lumped = 0;
  model::Launcher launcher({128, 64, 64});
  launcher.set_check_mode(analysis::CheckMode::Off);
  launcher.set_plan_hook(
      [&lumped](const simt::ExecPlan& plan, const simt::Kernel&) {
        lumped += plan.lump_factor() > 1 ? 1 : 0;
        expect_layouts_agree(plan, "counters 64^3");
      });
  for (const auto& st : dsl::Stencil::paper_catalog())
    for (const auto v :
         {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen})
      launcher.run(st, v, *pf);
  // The catalog at 64^3 must actually exercise the lumped fast path
  // somewhere, or the equivalence above proves less than it claims.
  EXPECT_GT(lumped, 0) << "no catalog config lumped on " << pf->label();

  // Functional on a small domain: replay() dispatches to the reference
  // engine, and the sharded replay must agree while writing real data.
  const auto st = dsl::Stencil::paper_catalog()[1];  // 13pt star, radius 2
  const Vec3 domain{2 * pf->gpu.simd_width, 8, 8};
  HostGrid in(domain, {st.radius(), st.radius(), st.radius()});
  SplitMix64 rng(23);
  in.fill_random(rng);
  HostGrid out(domain, {0, 0, 0});
  model::Launcher flauncher(domain);
  flauncher.set_check_mode(analysis::CheckMode::Off);
  flauncher.set_plan_hook(
      [](const simt::ExecPlan& plan, const simt::Kernel&) {
        expect_layouts_agree(plan, "functional");
      });
  for (const auto v :
       {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen})
    flauncher.run_functional(st, v, *pf, in, out);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPlatforms, SoaCatalog,
    testing::ValuesIn([] {
      std::vector<std::string> labels;
      for (const auto& p : model::paper_platforms())
        labels.push_back(p.label());
      return labels;
    }()),
    [](const auto& info) {
      std::string s = info.param;
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

// --- Congruence-class lumping (fixture-level) -------------------------------

simt::Kernel make_kernel(const ir::Program& prog, Vec3 blocks,
                         std::vector<double>& in, std::vector<double>& out,
                         Vec3& padded) {
  const Vec3 interior{blocks.i * 8, blocks.j * 4, blocks.k * 4};
  padded = {interior.i + 16, interior.j + 16, interior.k + 16};
  in.assign(static_cast<std::size_t>(padded.volume()), 0.0);
  out.assign(static_cast<std::size_t>(padded.volume()), 0.0);

  simt::DeviceAllocator dev(128);
  simt::GridBinding gi;
  gi.padded = padded;
  gi.ghost = {8, 8, 8};
  gi.device_base = dev.allocate(in.size() * kElemBytes);
  simt::GridBinding go = gi;
  go.device_base = dev.allocate(out.size() * kElemBytes);

  simt::Kernel k;
  k.program = &prog;
  k.blocks = blocks;
  k.tile = {8, 4, 4};
  k.grids = {gi, go};  // counters-only: no functional backing store
  for (int n = 0; n < prog.num_constants(); ++n)
    k.constants.push_back(0.5 + n);
  return k;
}

ir::MemRef aref(int grid, int di, int dj = 0, int dk = 0) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  m.vectorized = true;
  return m;
}

/// A small array program with loads at several offsets, a spill round trip
/// and a store: everything the congruence window has to replicate per mate.
ir::Program array_program() {
  ir::Program p(8);
  p.add_constant("c0");
  const int a = p.load(aref(0, 0));
  const int b = p.load(aref(0, 3));  // unaligned: bypass candidate
  const int c = p.load(aref(0, 8));
  ir::MemRef sp;
  sp.space = ir::Space::Spill;
  sp.slot = 0;
  p.store(a, sp);
  const int s1 = p.add(a, b);
  const int s2 = p.fma(s1, c, a);
  const int s3 = p.add(s2, p.load(sp));
  p.store(s3, aref(1, 0));
  p.set_num_spill_slots(1);
  return p;
}

/// MI250X geometry (64-byte L1 lines and sectors) makes the fixture's
/// 64-byte block-i delta lump-eligible; 4 cores so G = gcd(blocks.i, 4, R).
arch::GpuArch lump_arch() {
  arch::GpuArch a = arch::make_mi250x_gcd();
  a.num_cores = 4;
  return a;
}

TEST(SoaCongruence, UniformArrayDomainLumps) {
  static const ir::Program prog = array_program();
  std::vector<double> in, out;
  Vec3 padded;
  const arch::GpuArch arch = lump_arch();
  simt::Kernel k = make_kernel(prog, {4, 4, 2}, in, out, padded);
  k.read_streams = 2;
  k.extra_cycles_per_load = 2.0;
  const simt::ExecPlan plan(k, arch, simt::ExecMode::CountersOnly);
  EXPECT_EQ(plan.lump_factor(), 4);  // gcd(blocks.i=4, cores=4, resident)
  EXPECT_EQ(plan.lump_delta_bytes(), 8u * kElemBytes);  // tile.i elements
  EXPECT_EQ(plan.num_corner_blocks(), 0u);  // array launches are all-interior
  expect_layouts_agree(plan, "uniform array domain");
}

TEST(SoaCongruence, PrimeBlockCountTakesGeneralPath) {
  static const ir::Program prog = array_program();
  std::vector<double> in, out;
  Vec3 padded;
  const arch::GpuArch arch = lump_arch();
  simt::Kernel k = make_kernel(prog, {3, 2, 2}, in, out, padded);
  const simt::ExecPlan plan(k, arch, simt::ExecMode::CountersOnly);
  EXPECT_EQ(plan.lump_factor(), 1);  // gcd(3, 4) == 1: nothing to lump
  expect_layouts_agree(plan, "prime block count");
}

TEST(SoaCongruence, MisalignedDeltaTakesGeneralPath) {
  // A100 L1 lines are 128 bytes; the fixture's 64-byte block-i delta breaks
  // line congruence, so lumping must disarm even though gcd would allow it.
  static const ir::Program prog = array_program();
  std::vector<double> in, out;
  Vec3 padded;
  arch::GpuArch arch = arch::make_a100();
  arch.num_cores = 4;
  simt::Kernel k = make_kernel(prog, {4, 4, 2}, in, out, padded);
  const simt::ExecPlan plan(k, arch, simt::ExecMode::CountersOnly);
  EXPECT_EQ(plan.lump_factor(), 1);
  expect_layouts_agree(plan, "misaligned delta");
}

TEST(SoaCongruence, ShuffledBricksAreCornersAndTakeGeneralPath) {
  // The same bricks config decoded twice: the natural decomposition lumps
  // with zero corner blocks; the shuffled decomposition (a deterministic
  // permutation of brick storage order, so no two blocks' event streams are
  // congruent) must classify corners and fall back to the general path --
  // and both must stay bit-identical to the AoS reference.
  const model::Platform pf = model::paper_platforms().front();
  const dsl::Stencil st = dsl::Stencil::paper_catalog().front();

  int lump_natural = -1, lump_shuffled = -1;
  std::uint64_t corners_natural = 0, corners_shuffled = 0;

  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(analysis::CheckMode::Off);
  launcher.set_plan_hook([&](const simt::ExecPlan& plan, const simt::Kernel&) {
    lump_natural = plan.lump_factor();
    corners_natural = plan.num_corner_blocks();
    expect_layouts_agree(plan, "natural bricks");
  });
  launcher.run(st, Variant::BricksCodegen, pf);

  codegen::Options opts;
  opts.shuffled_brick_order = true;
  launcher.set_plan_hook([&](const simt::ExecPlan& plan, const simt::Kernel&) {
    lump_shuffled = plan.lump_factor();
    corners_shuffled = plan.num_corner_blocks();
    expect_layouts_agree(plan, "shuffled bricks");
  });
  launcher.run(st, Variant::BricksCodegen, pf, opts);

  EXPECT_GT(lump_natural, 1) << "natural decomposition should lump";
  EXPECT_EQ(corners_natural, 0u);
  EXPECT_EQ(lump_shuffled, 1) << "shuffled decomposition must not lump";
  EXPECT_GT(corners_shuffled, 0u) << "shuffled adjacency must yield corners";
}

}  // namespace
}  // namespace bricksim
