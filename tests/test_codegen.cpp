// Unit and property tests for the vector code generator: instruction
// shapes of the three variants, the CSE and scatter optimisations, stream
// counting, and the lowering-cost injection.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/emit_source.h"
#include "common/error.h"
#include "dsl/stencil.h"
#include "ir/regalloc.h"

namespace bricksim::codegen {
namespace {

constexpr int kRows = kTileJ * kTileK;  // output rows per block

ir::InstStats stats_of(const dsl::Stencil& st, Variant v, int w,
                       Options opts = {}, LoweringCosts costs = {}) {
  return lower(st, v, w, opts, costs).program.stats();
}

TEST(Lower, NaiveArrayLoadsEveryPointPerOutput) {
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    const auto s = stats_of(st, Variant::Array, 32);
    EXPECT_EQ(s.loads, kRows * st.num_points()) << st.name();
    EXPECT_EQ(s.stores, kRows) << st.name();
    EXPECT_EQ(s.aligns, 0) << st.name();  // naive kernels never shuffle
  }
}

TEST(Lower, NaiveFlopsMatchSymmetryMinimalCount) {
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    const auto s = stats_of(st, Variant::Array, 32);
    EXPECT_EQ(s.flops_per_lane, kRows * st.flops_per_point()) << st.name();
  }
}

TEST(Lower, ArrayCodegenCseReducesLoads) {
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    const auto naive = stats_of(st, Variant::Array, 32);
    const auto cg = stats_of(st, Variant::ArrayCodegen, 32);
    EXPECT_LT(cg.loads, naive.loads) << st.name();
  }
}

TEST(Lower, DisablingCseRestoresPerUseLoads) {
  const auto st = dsl::Stencil::star(2);
  Options no_cse;
  no_cse.enable_cse = false;
  no_cse.force_gather = true;  // isolate the CSE effect
  Options cse;
  cse.force_gather = true;
  const auto with = stats_of(st, Variant::ArrayCodegen, 32, cse);
  const auto without = stats_of(st, Variant::ArrayCodegen, 32, no_cse);
  EXPECT_GT(without.loads, with.loads);
  EXPECT_EQ(without.loads, kRows * st.num_points());
}

TEST(Lower, BrickCodegenUsesAlignsForIShifts) {
  const auto st = dsl::Stencil::star(2);
  const auto s = stats_of(st, Variant::BricksCodegen, 32);
  // Four i-shifts (+-1, +-2) per output row, CSE'd across rows ->
  // exactly 4 aligns per (vj, vk) row.
  EXPECT_EQ(s.aligns, 4 * kRows);
  // Arrays never need aligns (unaligned vector loads are native).
  EXPECT_EQ(stats_of(st, Variant::ArrayCodegen, 32).aligns, 0);
}

TEST(Lower, ScatterHeuristicPicksCubesOnly) {
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    const auto k = lower(st, Variant::BricksCodegen, 32);
    EXPECT_EQ(k.used_scatter, st.num_points() >= 27) << st.name();
  }
  // Naive kernels never scatter.
  Options force;
  force.force_scatter = true;
  EXPECT_FALSE(lower(dsl::Stencil::cube(2), Variant::Array, 32, force)
                   .used_scatter);
}

TEST(Lower, ForceFlagsOverrideHeuristic) {
  const auto st = dsl::Stencil::star(1);  // 7 points: default gather
  Options scatter;
  scatter.force_scatter = true;
  EXPECT_TRUE(
      lower(st, Variant::BricksCodegen, 32, scatter).used_scatter);
  Options gather;
  gather.force_gather = true;
  EXPECT_FALSE(lower(dsl::Stencil::cube(2), Variant::BricksCodegen, 32,
                     gather)
                   .used_scatter);
  Options both;
  both.force_scatter = both.force_gather = true;
  EXPECT_THROW(lower(st, Variant::BricksCodegen, 32, both), Error);
}

TEST(Lower, ScatterShrinksLiveSetForHighOrderStencils) {
  // The paper's rationale for vector scatter: gather-mode 125pt needs far
  // more simultaneously-live vectors than scatter mode.
  const auto st = dsl::Stencil::cube(2);
  Options g, s;
  g.force_gather = true;
  s.force_scatter = true;
  const auto gather = lower(st, Variant::BricksCodegen, 32, g);
  const auto scatter = lower(st, Variant::BricksCodegen, 32, s);
  // Compare spill behaviour at a realistic budget.
  const auto ra_g = ir::allocate_registers(gather.program, 64);
  const auto ra_s = ir::allocate_registers(scatter.program, 64);
  EXPECT_GT(ra_g.spill_slots, 0);
  EXPECT_EQ(ra_s.spill_slots, 0);
}

TEST(Lower, StreamCountsFollowStencilShape) {
  // Arrays: distinct (o.j, o.k) rows; bricks add the two i-neighbour
  // brick columns.
  EXPECT_EQ(lower(dsl::Stencil::star(1), Variant::Array, 32).read_streams, 5);
  EXPECT_EQ(lower(dsl::Stencil::star(4), Variant::Array, 32).read_streams,
            17);
  EXPECT_EQ(lower(dsl::Stencil::cube(1), Variant::Array, 32).read_streams, 9);
  EXPECT_EQ(lower(dsl::Stencil::cube(2), Variant::Array, 32).read_streams,
            25);
  EXPECT_EQ(
      lower(dsl::Stencil::star(1), Variant::BricksCodegen, 32).read_streams,
      7);
  EXPECT_EQ(
      lower(dsl::Stencil::cube(2), Variant::BricksCodegen, 32).read_streams,
      27);
}

TEST(Lower, AddressOpsInjectedPerMemoryAccess) {
  const auto st = dsl::Stencil::star(1);
  LoweringCosts costs;
  costs.addr_ops_per_load = 7;
  costs.addr_ops_per_store = 3;
  const auto with = stats_of(st, Variant::Array, 32, {}, costs);
  const auto without = stats_of(st, Variant::Array, 32);
  EXPECT_EQ(with.int_ops - without.int_ops,
            7 * with.loads + 3 * with.stores);
}

TEST(Lower, BrickLoadsAreVectorizedAndInNeighborRange) {
  const auto k = lower(dsl::Stencil::cube(2), Variant::BricksCodegen, 32);
  int loads = 0;
  for (const auto& in : k.program.insts()) {
    if (in.op != ir::Op::VLoad) continue;
    ++loads;
    EXPECT_EQ(in.mem.space, ir::Space::Brick);
    EXPECT_TRUE(in.mem.vectorized);
    EXPECT_GE(in.mem.nbr_di, -1);
    EXPECT_LE(in.mem.nbr_di, 1);
    EXPECT_GE(in.mem.vj, 0);
    EXPECT_LT(in.mem.vj, kTileJ);
    EXPECT_GE(in.mem.vk, 0);
    EXPECT_LT(in.mem.vk, kTileK);
  }
  EXPECT_GT(loads, 0);
}

TEST(Lower, NaiveLoadsAreNotMarkedVectorized) {
  const auto k = lower(dsl::Stencil::star(1), Variant::Array, 32);
  for (const auto& in : k.program.insts()) {
    if (in.op == ir::Op::VLoad) {
      EXPECT_FALSE(in.mem.vectorized);
    }
  }
}

TEST(Lower, RejectsUnsupportedShapes) {
  EXPECT_THROW(lower(dsl::Stencil::star(5), Variant::Array, 32), Error);
  EXPECT_THROW(lower(dsl::Stencil::star(1), Variant::Array, 12), Error);
  EXPECT_THROW(lower(dsl::Stencil::star(1), Variant::Array, 4), Error);
}

// --- Source emission (the Figure 2 reproduction path) ------------------------

TEST(EmitSource, DialectsUseTheirOwnPrimitives) {
  // Paper Section 3: CUDA >= 9 uses __shfl_*_sync, HIP __shfl_*, SYCL
  // sub_group_shfl_*; block indices differ per model.
  const auto st = dsl::Stencil::star(2);
  const auto k = lower(st, Variant::BricksCodegen, 32);

  const std::string cuda = emit_kernel_source(k, st, Dialect::Cuda);
  EXPECT_NE(cuda.find("__shfl_down_sync"), std::string::npos);
  EXPECT_NE(cuda.find("blockIdx.z"), std::string::npos);
  EXPECT_NE(cuda.find("__global__"), std::string::npos);
  EXPECT_EQ(cuda.find("hipBlockIdx"), std::string::npos);

  const std::string hip = emit_kernel_source(k, st, Dialect::Hip);
  EXPECT_NE(hip.find("__shfl_down("), std::string::npos);
  EXPECT_NE(hip.find("hipBlockIdx_z"), std::string::npos);
  EXPECT_EQ(hip.find("_sync"), std::string::npos);

  const std::string sycl = emit_kernel_source(k, st, Dialect::Sycl);
  EXPECT_NE(sycl.find("sub_group_shfl_down"), std::string::npos);
  EXPECT_NE(sycl.find("parallel_for"), std::string::npos);
  EXPECT_NE(sycl.find("WIid.get_group"), std::string::npos);

  const std::string omp = emit_kernel_source(k, st, Dialect::OpenMp);
  EXPECT_NE(omp.find("valignq"), std::string::npos);
}

TEST(EmitSource, BrickVsArrayAddressing) {
  const auto st = dsl::Stencil::star(1);
  const auto bricks = lower(st, Variant::BricksCodegen, 32);
  const auto arrays = lower(st, Variant::Array, 32);
  const std::string b = emit_kernel_source(bricks, st, Dialect::Cuda);
  const std::string a = emit_kernel_source(arrays, st, Dialect::Cuda);
  EXPECT_NE(b.find("adj(b,"), std::string::npos);
  EXPECT_NE(b.find("grid[tk][tj][ti]"), std::string::npos);
  EXPECT_EQ(a.find("adj(b,"), std::string::npos);
  EXPECT_NE(a.find("in_vec("), std::string::npos);
  // Naive kernels contain no shuffles at all.
  EXPECT_EQ(a.find("__shfl"), std::string::npos);
}

TEST(EmitSource, OneStatementPerInstruction) {
  const auto st = dsl::Stencil::cube(1);
  const auto k = lower(st, Variant::BricksCodegen, 32);
  const std::string src = emit_kernel_source(k, st, Dialect::Cuda);
  // Count "vec vN = " definitions: one per dst-defining instruction.
  std::size_t defs = 0, pos = 0;
  while ((pos = src.find("vec v", pos)) != std::string::npos) {
    ++defs;
    ++pos;
  }
  std::size_t expected = 0;
  for (const auto& in : k.program.insts())
    if (in.dst >= 0) ++expected;
  EXPECT_EQ(defs, expected);
  // Header documents the configuration.
  EXPECT_NE(src.find("scatter"), std::string::npos);
  EXPECT_NE(src.find("W=32"), std::string::npos);
}

/// Property sweep: for every paper stencil, variant and vector width, the
/// program verifies, stores exactly 16 rows, and executes at least the
/// symmetry-minimal FLOPs.
struct ShapeCase {
  std::string stencil;
  Variant variant;
  int w;
};

class LoweringSweep : public testing::TestWithParam<ShapeCase> {};

TEST_P(LoweringSweep, WellFormedPrograms) {
  const auto& c = GetParam();
  dsl::Stencil st = dsl::Stencil::star(1);
  for (const auto& s : dsl::Stencil::paper_catalog())
    if (s.name() == c.stencil) st = s;
  const auto k = lower(st, c.variant, c.w);
  EXPECT_NO_THROW(k.program.verify());
  const auto s = k.program.stats();
  EXPECT_EQ(s.stores, kRows);
  EXPECT_GE(s.flops_per_lane, kRows * st.flops_per_point());
  EXPECT_EQ(k.program.num_grids(), 2);
  EXPECT_EQ(k.program.num_constants(), st.num_unique_coefficients());
}

std::vector<ShapeCase> sweep_cases() {
  std::vector<ShapeCase> cases;
  for (const auto& st : dsl::Stencil::paper_catalog())
    for (Variant v :
         {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen})
      for (int w : {16, 32, 64})
        cases.push_back({st.name(), v, w});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, LoweringSweep, testing::ValuesIn(sweep_cases()),
    [](const testing::TestParamInfo<ShapeCase>& info) {
      std::string s = info.param.stencil + "_" +
                      variant_name(info.param.variant) + "_w" +
                      std::to_string(info.param.w);
      for (char& ch : s)
        if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return s;
    });

}  // namespace
}  // namespace bricksim::codegen
